//! `mimir-doctor`: diagnose a Mimir trace export from the command line.
//!
//! ```text
//! mimir-doctor [--json] [--critical-path] [--fail-on info|warn|critical] <file>...
//! ```
//!
//! Inputs are the files the trace stack writes: `<label>.jsonl` (full
//! counters and event lines — preferred) or `<label>.trace.json`
//! (chrome timeline; only the trace-health rules can run). Multiple
//! files are diagnosed as independent runs and the findings are
//! concatenated.
//!
//! `--critical-path` additionally prints the measured critical path's
//! per-segment breakdown for each input that carries flow events (with
//! `--json`, a `critical_paths` object keyed by file joins the
//! diagnosis).
//!
//! Exit status: `0` clean (or nothing at/above `--fail-on`), `1` when a
//! finding reaches the `--fail-on` severity (default: `critical`), `2`
//! on usage or read errors.

use mimir_doctor::{critical_path, diagnose, ingest_path_text, Diagnosis, Severity};
use mimir_obs::Json;

fn usage() -> ! {
    eprintln!(
        "usage: mimir-doctor [--json] [--critical-path] [--fail-on info|warn|critical] <file>...\n\
         \n\
         Diagnoses Mimir trace exports (.jsonl preferred; .trace.json\n\
         yields a skeleton view). Prints human text by default, a JSON\n\
         document with --json. --critical-path adds the measured\n\
         critical path's per-segment breakdown for inputs that carry\n\
         flow events. Exits 1 when any finding reaches the --fail-on\n\
         severity (default critical), 2 on bad input."
    );
    std::process::exit(2);
}

fn main() {
    let mut json = false;
    let mut want_path = false;
    let mut fail_on = Severity::Critical;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--critical-path" => want_path = true,
            "--fail-on" => {
                let Some(level) = args.next().as_deref().and_then(Severity::parse) else {
                    usage();
                };
                fail_on = level;
            }
            "-h" | "--help" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        usage();
    }

    let mut combined = Diagnosis::default();
    let mut breakdowns: Vec<(String, mimir_doctor::CriticalPath)> = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mimir-doctor: {path}: {e}");
                std::process::exit(2);
            }
        };
        let reports = match ingest_path_text(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mimir-doctor: {path}: {e}");
                std::process::exit(2);
            }
        };
        combined.findings.extend(diagnose(&reports).findings);
        if want_path {
            if let Some(cp) = critical_path(&reports) {
                breakdowns.push((path.clone(), cp));
            }
        }
    }
    combined.findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.title.cmp(&b.title))
    });

    if json {
        let mut doc = combined.to_json();
        if want_path {
            let paths_obj = Json::Obj(
                breakdowns
                    .iter()
                    .map(|(p, cp)| (p.clone(), cp.to_json()))
                    .collect(),
            );
            if let Json::Obj(fields) = &mut doc {
                fields.push(("critical_paths".into(), paths_obj));
            }
        }
        println!("{}", doc.to_pretty());
    } else {
        print!("{}", combined.to_text());
        for (p, cp) in &breakdowns {
            println!("\n{p}:");
            print!("{}", cp.to_text());
        }
        if want_path && breakdowns.is_empty() {
            println!(
                "\nno critical path could be measured — the export carries no \
                 matched flow events (run with MIMIR_TRACE=1 and flow tracing on)"
            );
        }
    }
    let failed = combined.worst_severity().is_some_and(|w| w >= fail_on);
    std::process::exit(i32::from(failed));
}
