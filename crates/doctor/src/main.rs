//! `mimir-doctor`: diagnose a Mimir trace export from the command line.
//!
//! ```text
//! mimir-doctor [--json] [--fail-on info|warn|critical] <file>...
//! ```
//!
//! Inputs are the files the trace stack writes: `<label>.jsonl` (full
//! counters — preferred) or `<label>.trace.json` (chrome timeline; only
//! the trace-health rules can run). Multiple files are diagnosed as
//! independent runs and the findings are concatenated.
//!
//! Exit status: `0` clean (or nothing at/above `--fail-on`), `1` when a
//! finding reaches the `--fail-on` severity (default: `critical`), `2`
//! on usage or read errors.

use mimir_doctor::{diagnose, ingest_path_text, Diagnosis, Severity};

fn usage() -> ! {
    eprintln!(
        "usage: mimir-doctor [--json] [--fail-on info|warn|critical] <file>...\n\
         \n\
         Diagnoses Mimir trace exports (.jsonl preferred; .trace.json\n\
         yields a skeleton view). Prints human text by default, a JSON\n\
         document with --json. Exits 1 when any finding reaches the\n\
         --fail-on severity (default critical), 2 on bad input."
    );
    std::process::exit(2);
}

fn main() {
    let mut json = false;
    let mut fail_on = Severity::Critical;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fail-on" => {
                let Some(level) = args.next().as_deref().and_then(Severity::parse) else {
                    usage();
                };
                fail_on = level;
            }
            "-h" | "--help" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        usage();
    }

    let mut combined = Diagnosis::default();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mimir-doctor: {path}: {e}");
                std::process::exit(2);
            }
        };
        let reports = match ingest_path_text(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mimir-doctor: {path}: {e}");
                std::process::exit(2);
            }
        };
        combined.findings.extend(diagnose(&reports).findings);
    }
    combined.findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.title.cmp(&b.title))
    });

    if json {
        println!("{}", combined.to_json().to_pretty());
    } else {
        print!("{}", combined.to_text());
    }
    let failed = combined.worst_severity().is_some_and(|w| w >= fail_on);
    std::process::exit(i32::from(failed));
}
