//! `mimir-doctor`: diagnose a Mimir trace export from the command line.
//!
//! ```text
//! mimir-doctor [--json] [--critical-path] [--fail-on info|warn|critical] <file|dir>...
//! mimir-doctor --watch <dir> [--once] [--interval <ms>]
//! ```
//!
//! Inputs are the files the trace stack writes: `<label>.jsonl` (full
//! counters and event lines — preferred) or `<label>.trace.json`
//! (chrome timeline; only the trace-health rules can run). Multiple
//! files are diagnosed as independent runs and the findings are
//! concatenated. A *directory* input is treated as a flight-recorder
//! dump dir (`rank*.crash.jsonl` corpses from a crashed run): the dumps
//! are triaged post-mortem, including naming any rank that died without
//! dumping.
//!
//! `--watch <dir>` live-attaches to a running job's telemetry directory
//! (`MIMIR_LIVE_DIR`): the live-capable rules re-run over a rolling
//! window as the ranks publish, findings stream to
//! `<dir>/findings.jsonl`, and a per-rank status view refreshes every
//! `--interval` ms (default 500) until every rank disarms. `--once`
//! renders a single snapshot and exits.
//!
//! `--critical-path` additionally prints the measured critical path's
//! per-segment breakdown for each input that carries flow events (with
//! `--json`, a `critical_paths` object keyed by file joins the
//! diagnosis).
//!
//! Exit status: `0` clean (or nothing at/above `--fail-on`), `1` when a
//! finding reaches the `--fail-on` severity (default: `critical`), `2`
//! on usage or read errors.

use mimir_doctor::{
    critical_path, diagnose, diagnose_postmortem, ingest_path_text, Diagnosis, LiveWatcher,
    Severity,
};
use mimir_obs::Json;

fn usage() -> ! {
    eprintln!(
        "usage: mimir-doctor [--json] [--critical-path] [--fail-on info|warn|critical] <file|dir>...\n\
         \x20      mimir-doctor --watch <dir> [--once] [--interval <ms>]\n\
         \n\
         Diagnoses Mimir trace exports (.jsonl preferred; .trace.json\n\
         yields a skeleton view; a directory is triaged as a\n\
         flight-recorder dump dir). Prints human text by default, a JSON\n\
         document with --json. --critical-path adds the measured\n\
         critical path's per-segment breakdown for inputs that carry\n\
         flow events. --watch live-attaches to a running job's\n\
         MIMIR_LIVE_DIR, streaming findings to <dir>/findings.jsonl.\n\
         Exits 1 when any finding reaches the --fail-on severity\n\
         (default critical), 2 on bad input."
    );
    std::process::exit(2);
}

/// Live-attach loop: poll, render, repeat until every rank disarms (or
/// forever if no rank ever appears — ^C is the exit). Returns the worst
/// severity fired, for the exit status.
fn watch(dir: &str, interval_ms: u64, once: bool) -> Option<Severity> {
    let mut watcher = LiveWatcher::new(dir);
    loop {
        watcher.step();
        let view = watcher.render();
        if once {
            print!("{view}");
        } else {
            // Full clear + home: the view is a small status page.
            print!("\x1b[2J\x1b[H{view}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        if once || watcher.finished() {
            if !once {
                println!("\nall ranks disarmed — watch complete");
            }
            return watcher.findings().iter().map(|f| f.severity).max();
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

fn main() {
    let mut json = false;
    let mut want_path = false;
    let mut fail_on = Severity::Critical;
    let mut watch_dir: Option<String> = None;
    let mut once = false;
    let mut interval_ms = 500u64;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--critical-path" => want_path = true,
            "--fail-on" => {
                let Some(level) = args.next().as_deref().and_then(Severity::parse) else {
                    usage();
                };
                fail_on = level;
            }
            "--watch" => {
                let Some(dir) = args.next() else { usage() };
                watch_dir = Some(dir);
            }
            "--once" => once = true,
            "--interval" => {
                let Some(ms) = args.next().as_deref().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                interval_ms = ms;
            }
            "-h" | "--help" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => paths.push(arg),
        }
    }
    if let Some(dir) = watch_dir {
        if !paths.is_empty() {
            usage();
        }
        let worst = watch(&dir, interval_ms, once);
        let failed = worst.is_some_and(|w| w >= fail_on);
        std::process::exit(i32::from(failed));
    }
    if paths.is_empty() {
        usage();
    }

    let mut combined = Diagnosis::default();
    let mut breakdowns: Vec<(String, mimir_doctor::CriticalPath)> = Vec::new();
    for path in &paths {
        if std::fs::metadata(path).map(|m| m.is_dir()).unwrap_or(false) {
            match diagnose_postmortem(std::path::Path::new(path)) {
                Ok(d) => combined.findings.extend(d.findings),
                Err(e) => {
                    eprintln!("mimir-doctor: {e}");
                    std::process::exit(2);
                }
            }
            continue;
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mimir-doctor: {path}: {e}");
                std::process::exit(2);
            }
        };
        let reports = match ingest_path_text(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mimir-doctor: {path}: {e}");
                std::process::exit(2);
            }
        };
        combined.findings.extend(diagnose(&reports).findings);
        if want_path {
            if let Some(cp) = critical_path(&reports) {
                breakdowns.push((path.clone(), cp));
            }
        }
    }
    combined.findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.title.cmp(&b.title))
    });

    if json {
        let mut doc = combined.to_json();
        if want_path {
            let paths_obj = Json::Obj(
                breakdowns
                    .iter()
                    .map(|(p, cp)| (p.clone(), cp.to_json()))
                    .collect(),
            );
            if let Json::Obj(fields) = &mut doc {
                fields.push(("critical_paths".into(), paths_obj));
            }
        }
        println!("{}", doc.to_pretty());
    } else {
        print!("{}", combined.to_text());
        for (p, cp) in &breakdowns {
            println!("\n{p}:");
            print!("{}", cp.to_text());
        }
        if want_path && breakdowns.is_empty() {
            println!(
                "\nno critical path could be measured — the export carries no \
                 matched flow events (run with MIMIR_TRACE=1 and flow tracing on)"
            );
        }
    }
    let failed = combined.worst_severity().is_some_and(|w| w >= fail_on);
    std::process::exit(i32::from(failed));
}
