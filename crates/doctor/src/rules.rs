//! The diagnosis rules. Each rule reads the gathered [`RankReport`]s
//! and pushes zero or more [`Finding`]s; thresholds are module
//! constants so tests (and readers) see the exact trip points.

use mimir_obs::{Json, RankReport};

use crate::critical_path::CriticalPath;
use crate::{Finding, Severity};

/// A straggler must cost peers at least this much absolute wait —
/// below it the "skew" is scheduling noise, not a diagnosis.
pub const STRAGGLER_MIN_WAIT_NS: u64 = 10_000_000;
/// …and the spread between the most- and least-waiting rank must be at
/// least this fraction of the maximum.
pub const STRAGGLER_SPREAD: f64 = 0.5;
/// Receive imbalance (max rank / fair share, permille) that merits a
/// warning: 2× the fair share.
pub const SKEW_WARN_PERMILLE: u64 = 2000;
/// Imbalance that merits a critical finding: 4× the fair share.
pub const SKEW_CRIT_PERMILLE: u64 = 4000;
/// Pool headroom margin (permille of budget) under which a run is one
/// growth spurt away from OOM.
pub const HEADROOM_WARN_PERMILLE: u64 = 100;
/// Trace-event loss fraction above which the timeline is untrustworthy.
pub const DROP_CRIT_FRACTION: f64 = 0.05;
/// Slack over the fair `1000/p` permille share of the measured critical
/// path one rank may hold before the path finding warns: fair + 150‰.
pub const PATH_SHARE_SLACK_PERMILLE: u64 = 150;
/// A dominant rank is *critical* (not just a warning) when its on-path
/// time also covers at least this fraction of the run's wall time…
pub const PATH_CRIT_WALL_FRACTION: f64 = 0.5;
/// …and the wall is long enough to matter; start-up noise dominates
/// shorter runs.
pub const PATH_CRIT_MIN_WALL_NS: u64 = 100_000_000;
/// Wall-time fraction spent blocked that makes a rank a deadlock
/// suspect (when it also received nothing).
pub const DEADLOCK_WAIT_FRACTION: f64 = 0.95;
/// Ignore deadlock suspicion on runs shorter than this: start-up
/// barriers dominate tiny runs.
pub const DEADLOCK_MIN_WALL_NS: u64 = 100_000_000;
/// Mode switches in one job above which the adaptive controller is
/// flapping rather than converging — the hysteresis window is too short
/// for the workload's noise.
pub const ADAPT_FLAP_WARN: u64 = 4;
/// Cache hit rate (hits / lookups, permille) under which the cache is
/// mostly paying misses — names are wrong or datasets are one-shot.
pub const CACHE_HIT_WARN_PERMILLE: u64 = 500;
/// Fraction of the pool budget (permille) the cache must crowd before a
/// low hit rate is worth a warning — a small cold cache is harmless.
pub const CACHE_CROWD_PERMILLE: u64 = 300;
/// An evict→reload of the same cached name within this window is
/// thrash: the pool is too small for the working set being chained.
pub const CACHE_THRASH_WINDOW_NS: u64 = 1_000_000_000;
/// Transport handshake time above which world bootstrap stalled —
/// connect retries or a peer that was slow to bind its socket.
pub const HANDSHAKE_WARN_NS: u64 = 1_000_000_000;
/// Average wire bytes per frame under which the run is paying framing
/// and syscall overhead on chatter rather than moving data…
pub const TINY_FRAME_WARN_BYTES: u64 = 256;
/// …but only once enough frames flowed for the ratio to be a pattern.
pub const TINY_FRAME_MIN_FRAMES: u64 = 1000;

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

/// The measured critical path: reports the per-segment breakdown of the
/// chain of work and messages that determined the wall time, and warns
/// when one rank holds far more of the path than its fair share. This is
/// a *measurement* (happens-before edges from flow events), so when it
/// runs, [`straggler`]'s counter-based guess is suppressed by the caller.
pub fn critical_path_rule(path: &CriticalPath, reports: &[RankReport], out: &mut Vec<Finding>) {
    let p = reports.len().max(1) as u64;
    let fair_permille = 1000 / p;
    let share = path.dominant_share_permille;
    let dominant_ns = path
        .rank_path_ns
        .first()
        .map(|&(_, ns)| ns)
        .unwrap_or_default();
    let outsized = share > fair_permille + PATH_SHARE_SLACK_PERMILLE;
    let severity = if outsized
        && path.wall_ns >= PATH_CRIT_MIN_WALL_NS
        && dominant_ns as f64 >= PATH_CRIT_WALL_FRACTION * path.wall_ns as f64
    {
        Severity::Critical
    } else if outsized {
        Severity::Warn
    } else {
        Severity::Info
    };
    let rounds_total = path.gating.len() as u64;
    // Join the path's per-round gating ranks with the shuffle's receive
    // totals: a rank that both gates rounds and holds an outsized slice
    // of the received bytes is skew-bound (fix the partitioner or divert
    // the hot keys), not compute-bound (fix placement).
    let total_recv: u64 = reports.iter().map(|r| r.shuffle.bytes_received).sum();
    let dominant_recv = reports
        .iter()
        .find(|r| r.rank == path.dominant_rank)
        .map(|r| r.shuffle.bytes_received)
        .unwrap_or(0);
    let recv_share_permille = if total_recv > 0 {
        (dominant_recv as u128 * 1000 * p as u128 / total_recv as u128) as u64
    } else {
        0
    };
    let gated_rounds: Vec<u64> = path
        .gating
        .iter()
        .filter(|&&(_, rank)| rank == path.dominant_rank)
        .map(|&(round, _)| round)
        .collect();
    let skew_bound = recv_share_permille >= SKEW_WARN_PERMILLE;
    out.push(Finding {
        severity,
        code: "critical-path",
        title: if outsized && skew_bound && !gated_rounds.is_empty() {
            format!(
                "rank {} gated round {} while holding {:.1}x its fair \
                 receive share ({} of {} rounds on a {:.1}% path slice)",
                path.dominant_rank,
                gated_rounds[0],
                recv_share_permille as f64 / 1000.0,
                gated_rounds.len(),
                rounds_total,
                share as f64 / 10.0,
            )
        } else if outsized {
            format!(
                "the measured critical path runs through rank {} for {:.1}% \
                 of its length (fair share {:.1}%), gating {} of {} rounds",
                path.dominant_rank,
                share as f64 / 10.0,
                fair_permille as f64 / 10.0,
                path.rounds_gated_by(path.dominant_rank),
                rounds_total,
            )
        } else {
            format!(
                "the measured critical path is balanced: no rank holds more \
                 than {:.1}% of it across {} message edge(s)",
                share as f64 / 10.0,
                path.edges,
            )
        },
        phase: path.dominant_phase,
        ranks: vec![path.dominant_rank],
        evidence: vec![
            ("wall_ns".into(), num(path.wall_ns)),
            ("path_ns".into(), num(path.path_ns)),
            ("compute_ns".into(), num(path.compute_ns)),
            ("comm_ns".into(), num(path.comm_ns)),
            ("wait_ns".into(), num(path.wait_ns)),
            ("edges".into(), num(path.edges)),
            ("dominant_rank".into(), num(path.dominant_rank)),
            ("dominant_path_ns".into(), num(dominant_ns)),
            ("dominant_share_permille".into(), num(share)),
            (
                "rounds_gated_by_dominant".into(),
                num(path.rounds_gated_by(path.dominant_rank)),
            ),
            ("rounds_total".into(), num(rounds_total)),
            ("dominant_recv_bytes".into(), num(dominant_recv)),
            (
                "dominant_recv_share_permille".into(),
                num(recv_share_permille),
            ),
            (
                "gated_rounds".into(),
                Json::Arr(gated_rounds.iter().map(|&r| Json::Num(r as f64)).collect()),
            ),
        ],
        hint: if skew_bound {
            "The gating rank also holds an outsized share of the received \
             bytes: the path is skew-bound. Split the heavy keys with a \
             custom partitioner, enable partial reduction (paper §III-C2), \
             or run ShuffleMode::Adaptive so the hot destination is \
             diverted through the salted two-stage path mid-job."
        } else {
            "The path is measured from message-level happens-before \
             edges, not inferred from wait counters. If one rank \
             dominates, rebalance its input or check its placement; if \
             `wait`/`comm` dominate the breakdown, the shuffle is \
             latency-bound — grow comm buffers or enable overlapped \
             rounds (paper §III-B)."
        },
    });
}

/// Wait-state attribution across ranks: when most ranks spend long in
/// the shuffle's sync votes and the phase barriers, the rank that waited
/// *least* is the one everyone else was waiting for.
pub fn straggler(reports: &[RankReport], out: &mut Vec<Finding>) {
    if reports.len() < 2 {
        return;
    }
    let wait = |r: &RankReport| r.waits.sync_wait_ns + r.waits.barrier_wait_ns;
    let (mut min_rank, mut min_wait) = (0u64, u64::MAX);
    let (mut max_rank, mut max_wait) = (0u64, 0u64);
    for r in reports {
        let w = wait(r);
        if w < min_wait {
            (min_rank, min_wait) = (r.rank, w);
        }
        if w > max_wait {
            (max_rank, max_wait) = (r.rank, w);
        }
    }
    if max_wait < STRAGGLER_MIN_WAIT_NS {
        return;
    }
    let spread = (max_wait - min_wait) as f64 / max_wait as f64;
    if spread < STRAGGLER_SPREAD {
        return;
    }
    let wall_ns = reports
        .iter()
        .map(|r| ((r.times.map_s + r.times.convert_s + r.times.reduce_s) * 1e9) as u64)
        .max()
        .unwrap_or(0);
    let severity = if wall_ns > 0 && max_wait as f64 >= 0.5 * wall_ns as f64 {
        Severity::Critical
    } else {
        Severity::Warn
    };
    out.push(Finding {
        severity,
        code: "straggler",
        title: format!(
            "rank {min_rank} is the critical rank: peers waited up to \
             {:.1} ms for it ({}% spread in sync+barrier wait)",
            max_wait as f64 / 1e6,
            (spread * 100.0) as u64,
        ),
        phase: "map/aggregate (shuffle) + phase barriers",
        ranks: vec![min_rank, max_rank],
        evidence: vec![
            ("min_wait_ns".into(), num(min_wait)),
            ("max_wait_ns".into(), num(max_wait)),
            ("critical_rank".into(), num(min_rank)),
            ("most_delayed_rank".into(), num(max_rank)),
            ("wall_ns".into(), num(wall_ns)),
        ],
        hint: "One rank arrives late at every collective: check its input \
               share and placement. The interleaved shuffle (paper §III-B) \
               only overlaps waits it can see — a compute-bound straggler \
               needs rebalanced input, not more buffering.",
    });
}

/// Partition skew: per-destination histograms inside a rank (recorded by
/// the shuffler) and receive totals across ranks both measure how far
/// the partitioner is from the uniform ideal the paper assumes.
pub fn partition_skew(reports: &[RankReport], out: &mut Vec<Finding>) {
    // Cross-rank: who received how much.
    let total: u64 = reports.iter().map(|r| r.shuffle.bytes_received).sum();
    let (mut hot_rank, mut hot_bytes) = (0u64, 0u64);
    for r in reports {
        if r.shuffle.bytes_received > hot_bytes {
            (hot_rank, hot_bytes) = (r.rank, r.shuffle.bytes_received);
        }
    }
    let cross_permille = if total > 0 {
        (hot_bytes as u128 * 1000 * reports.len() as u128 / total as u128) as u64
    } else {
        0
    };
    // In-rank: worst per-destination histogram any sender saw.
    let dest_permille = reports
        .iter()
        .map(|r| r.shuffle.imbalance_permille)
        .max()
        .unwrap_or(0);
    let gini = reports
        .iter()
        .map(|r| r.shuffle.gini_permille)
        .max()
        .unwrap_or(0);
    let worst = cross_permille.max(dest_permille);
    if worst < SKEW_WARN_PERMILLE {
        return;
    }
    let severity = if worst >= SKEW_CRIT_PERMILLE {
        Severity::Critical
    } else {
        Severity::Warn
    };
    out.push(Finding {
        severity,
        code: "partition-skew",
        title: format!(
            "shuffle traffic is skewed: the hottest partition carries \
             {:.1}x its fair share (rank {hot_rank} received {hot_bytes} B)",
            worst as f64 / 1000.0,
        ),
        phase: "map/aggregate (shuffle)",
        ranks: vec![hot_rank],
        evidence: vec![
            ("imbalance_permille".into(), num(worst)),
            ("cross_rank_permille".into(), num(cross_permille)),
            ("per_dest_permille".into(), num(dest_permille)),
            ("gini_permille".into(), num(gini)),
            ("hot_rank_bytes".into(), num(hot_bytes)),
            ("total_bytes".into(), num(total)),
        ],
        hint: "Skewed map output concentrates memory and time on few ranks. \
               Enable partial reduction so duplicates fold before they \
               travel (paper §III-C2), or install a custom partitioner that \
               splits the heavy keys.",
    });
}

/// Memory headroom: peak vs budget per node pool, and hard violations.
pub fn memory_headroom(reports: &[RankReport], out: &mut Vec<Finding>) {
    let ooms: u64 = reports.iter().map(|r| r.mem.oom_events).sum();
    if ooms > 0 {
        let ranks: Vec<u64> = reports
            .iter()
            .filter(|r| r.mem.oom_events > 0)
            .map(|r| r.rank)
            .collect();
        out.push(Finding {
            severity: Severity::Critical,
            code: "memory-headroom",
            title: format!("{ooms} allocation(s) were refused for exceeding the pool budget"),
            phase: "",
            ranks,
            evidence: vec![("oom_events".into(), num(ooms))],
            hint: "The job's working set exceeds the node budget. Shrink the \
                   comm buffers, enable KV compression or partial reduction \
                   (paper §III-C), or raise the budget / spill threshold.",
        });
        return;
    }
    // Tightest margin across the metered pools (budget 0 = unmetered).
    let mut tightest: Option<(&RankReport, u64)> = None;
    for r in reports {
        if r.mem.budget_bytes == 0 || r.mem.peak_bytes == 0 {
            continue;
        }
        let margin =
            (r.mem.budget_bytes.saturating_sub(r.mem.peak_bytes)) * 1000 / r.mem.budget_bytes;
        if tightest.is_none_or(|(_, m)| margin < m) {
            tightest = Some((r, margin));
        }
    }
    if let Some((r, margin)) = tightest {
        if margin < HEADROOM_WARN_PERMILLE {
            out.push(Finding {
                severity: Severity::Warn,
                code: "memory-headroom",
                title: format!(
                    "pool peak came within {:.1}% of the budget on rank {} \
                     ({} of {} bytes)",
                    margin as f64 / 10.0,
                    r.rank,
                    r.mem.peak_bytes,
                    r.mem.budget_bytes,
                ),
                phase: "",
                ranks: vec![r.rank],
                evidence: vec![
                    ("peak_bytes".into(), num(r.mem.peak_bytes)),
                    ("budget_bytes".into(), num(r.mem.budget_bytes)),
                    ("margin_permille".into(), num(margin)),
                ],
                hint: "Under 10% headroom, any input growth tips the run into \
                       OOM. The paper's Figure 8 family shows peak memory \
                       tracking the shuffle buffers: reduce comm_buf_size or \
                       turn on partial reduction before scaling up.",
            });
        }
    }
}

/// Spill amplification: spilling more bytes than the job emitted means
/// the out-of-core path is thrashing, not absorbing a burst.
pub fn spill_amplification(reports: &[RankReport], out: &mut Vec<Finding>) {
    let spilled: u64 = reports
        .iter()
        .map(|r| r.shuffle.spilled_bytes + r.jobs.iter().map(|j| j.spill_bytes).sum::<u64>())
        .sum();
    let emitted: u64 = reports.iter().map(|r| r.shuffle.kv_bytes_emitted).sum();
    if spilled == 0 || emitted == 0 || spilled <= emitted {
        return;
    }
    out.push(Finding {
        severity: Severity::Warn,
        code: "spill-amplification",
        title: format!(
            "spilled {spilled} B against {emitted} B of emitted KVs \
             ({:.1}x amplification)",
            spilled as f64 / emitted as f64
        ),
        phase: "map/aggregate (shuffle)",
        ranks: Vec::new(),
        evidence: vec![
            ("spilled_bytes".into(), num(spilled)),
            ("emitted_bytes".into(), num(emitted)),
        ],
        hint: "Each spilled byte is written and re-read: amplification above \
               1x means the memory budget forces repeated spilling. Raise \
               the budget, or cut the working set with KV compression / \
               partial reduction (paper §III-C).",
    });
}

/// Trace-ring overwrites: a truncated timeline silently biases every
/// timeline-derived conclusion, so loss itself is a finding.
pub fn dropped_events(reports: &[RankReport], out: &mut Vec<Finding>) {
    let dropped: u64 = reports.iter().map(|r| r.events_dropped).sum();
    if dropped == 0 {
        return;
    }
    let retained: u64 = reports.iter().map(|r| r.events.len() as u64).sum();
    let fraction = dropped as f64 / (dropped + retained) as f64;
    let severity = if fraction > DROP_CRIT_FRACTION {
        Severity::Critical
    } else {
        Severity::Warn
    };
    out.push(Finding {
        severity,
        code: "dropped-events",
        title: format!(
            "{dropped} trace event(s) were overwritten ({:.1}% of the stream)",
            fraction * 100.0
        ),
        phase: "",
        ranks: reports
            .iter()
            .filter(|r| r.events_dropped > 0)
            .map(|r| r.rank)
            .collect(),
        evidence: vec![
            ("events_dropped".into(), num(dropped)),
            ("events_retained".into(), num(retained)),
        ],
        hint: "The ring kept only the newest window; early phases are \
               missing from the timeline. Raise MIMIR_TRACE_CAP (each event \
               is 32 bytes; the default 64Ki events = 2 MiB per rank).",
    });
}

/// Scheduler job lifecycle: every non-`Done` outcome and every
/// suspend-and-retry cycle is worth a line. Outcome codes mirror
/// `mimir_sched::JobOutcome` (the doctor reads reports, not the crate).
pub fn job_lifecycle(reports: &[RankReport], out: &mut Vec<Finding>) {
    // Records are replicated per rank; take the widest view seen.
    let Some(r) = reports.iter().max_by_key(|r| r.jobs.len()) else {
        return;
    };
    for j in &r.jobs {
        let (severity, what) = match j.outcome {
            0 => {
                if j.retries > 0 {
                    (
                        Severity::Warn,
                        format!(
                            "finished only after {} suspend-and-retry cycle(s)",
                            j.retries
                        ),
                    )
                } else {
                    continue;
                }
            }
            1 => (Severity::Warn, "died of a peer's disconnect".to_string()),
            2 => (Severity::Info, "was cancelled".to_string()),
            3 => (
                Severity::Critical,
                "ran out of pool memory (retries exhausted)".to_string(),
            ),
            4 => (Severity::Critical, "failed".to_string()),
            _ => (Severity::Critical, "panicked".to_string()),
        };
        out.push(Finding {
            severity,
            code: "job-lifecycle",
            title: format!("job {} `{}` {what}", j.id, j.name),
            phase: "",
            ranks: Vec::new(),
            evidence: vec![
                ("job_id".into(), num(j.id)),
                ("outcome_code".into(), num(j.outcome)),
                ("retries".into(), num(j.retries)),
                ("footprint_bytes".into(), num(j.footprint_bytes)),
            ],
            hint: "Suspend-and-retry doubles the footprint estimate each \
                   cycle: a job that retries often was submitted with a far \
                   too small footprint, and one that exhausts retries cannot \
                   fit at all — split its input or raise the node budget.",
        });
    }
}

/// Deadlock suspect: a rank that spent ≥95% of its wall time blocked
/// and received nothing was almost certainly waiting on a peer that
/// never spoke — a mis-sequenced collective or a lost message.
pub fn deadlock_suspect(reports: &[RankReport], out: &mut Vec<Finding>) {
    for r in reports {
        let wall_ns = ((r.times.map_s + r.times.convert_s + r.times.reduce_s) * 1e9) as u64;
        if wall_ns < DEADLOCK_MIN_WALL_NS || r.comm.bytes_recvd > 0 {
            continue;
        }
        let wait = r.waits.total_wait_ns;
        if (wait as f64) < DEADLOCK_WAIT_FRACTION * wall_ns as f64 {
            continue;
        }
        out.push(Finding {
            severity: Severity::Warn,
            code: "deadlock-suspect",
            title: format!(
                "rank {} spent {:.0}% of its wall time blocked and received \
                 no data",
                r.rank,
                100.0 * wait as f64 / wall_ns as f64
            ),
            phase: "",
            ranks: vec![r.rank],
            evidence: vec![
                ("total_wait_ns".into(), num(wait)),
                ("wall_ns".into(), num(wall_ns)),
                ("bytes_recvd".into(), num(r.comm.bytes_recvd)),
            ],
            hint: "Check for a rank that exited early or a collective called \
                   in different orders on different ranks — the SPMD \
                   discipline requires identical call sequences everywhere.",
        });
    }
}

/// Adaptation audit: what the adaptive shuffle controller did during the
/// run, whether it converged or flapped, and whether the decisions paid
/// off (per-round wait before vs after convergence, read from the
/// `RoundWait` event stream). Silent on non-adaptive runs — every
/// counter in the report's `adapt` section is zero there.
pub fn adaptation(reports: &[RankReport], out: &mut Vec<Finding>) {
    use mimir_obs::EventKind;
    // Lockstep decisions are identical on every rank (max); hot-key
    // staging is per-sender work (sum).
    let max = |f: fn(&RankReport) -> u64| reports.iter().map(f).max().unwrap_or(0);
    let sum = |f: fn(&RankReport) -> u64| reports.iter().map(f).sum::<u64>();
    let switches = max(|r| r.adapt.mode_switches);
    let grows = max(|r| r.adapt.grow_steps);
    let shrinks = max(|r| r.adapt.shrink_steps);
    let converged = max(|r| r.adapt.converged_round);
    let fill = max(|r| r.adapt.final_fill_permille);
    let overlap = max(|r| r.adapt.final_overlap);
    let trips = sum(|r| r.adapt.hot_trips);
    let staged = sum(|r| r.adapt.hot_staged_kvs);
    let uniques = sum(|r| r.adapt.hot_unique_kvs);
    let jumbo = sum(|r| r.adapt.jumbo_floor_hits);
    if switches + grows + shrinks + trips + jumbo == 0 && converged == 0 {
        return;
    }
    // Per-round wait split around the convergence round: did the
    // decisions actually shrink the waits they were voted on?
    let (mut before_ns, mut before_rounds) = (0u64, 0u64);
    let (mut after_ns, mut after_rounds) = (0u64, 0u64);
    for r in reports {
        let mut round = 0u64;
        for e in &r.events {
            if matches!(e.kind, EventKind::RoundWait) {
                round += 1;
                if converged > 0 && round > converged {
                    after_ns += e.a + e.b;
                    after_rounds += 1;
                } else {
                    before_ns += e.a + e.b;
                    before_rounds += 1;
                }
            }
        }
    }
    let per_round = |ns: u64, n: u64| ns.checked_div(n).unwrap_or(0);
    let severity = if switches >= ADAPT_FLAP_WARN {
        Severity::Warn
    } else {
        Severity::Info
    };
    let title = if switches >= ADAPT_FLAP_WARN {
        format!(
            "the adaptive controller flapped: {switches} mode switches in \
             one job — widen the hysteresis/cooldown windows"
        )
    } else {
        format!(
            "the adaptive controller made {} decision(s): {switches} mode \
             switch(es), {grows}+{shrinks} round-size steps, {trips} \
             hot-key diversion(s); settled on {} at fill {:.0}%",
            switches + grows + shrinks + trips,
            if overlap != 0 {
                "overlapped posting"
            } else {
                "zero-copy posting"
            },
            fill as f64 / 10.0,
        )
    };
    out.push(Finding {
        severity,
        code: "adaptation",
        title,
        phase: "map/aggregate (shuffle)",
        ranks: Vec::new(),
        evidence: vec![
            ("mode_switches".into(), num(switches)),
            ("grow_steps".into(), num(grows)),
            ("shrink_steps".into(), num(shrinks)),
            ("converged_round".into(), num(converged)),
            ("final_fill_permille".into(), num(fill)),
            ("final_overlap".into(), num(overlap)),
            ("hot_trips".into(), num(trips)),
            ("hot_staged_kvs".into(), num(staged)),
            ("hot_unique_kvs".into(), num(uniques)),
            ("jumbo_floor_hits".into(), num(jumbo)),
            (
                "wait_per_round_before_ns".into(),
                num(per_round(before_ns, before_rounds)),
            ),
            (
                "wait_per_round_after_ns".into(),
                num(per_round(after_ns, after_rounds)),
            ),
        ],
        hint: "Adaptive decisions are taken by lockstep majority ballot \
               (identical on every rank). Flapping means the wait signal \
               oscillates around a policy bound: raise hysteresis_rounds \
               or cooldown_rounds. A fill well below 100% with zero mode \
               switches means the workload is straggler-bound and smaller \
               rounds amortized the votes.",
    });
}

/// Cross-job cache audit: is the retained memory paying for itself?
/// Warns on a low hit rate while cached bytes crowd the pool, warns on
/// eviction thrash (an evict→reload of the same name inside one
/// window), and otherwise reports what the cache saved — elisions and
/// per-name residency. Silent when no run touched the cache.
pub fn cache_efficiency(reports: &[RankReport], out: &mut Vec<Finding>) {
    use mimir_obs::EventKind;
    // Per-rank caches hold disjoint partitions of named datasets, so
    // activity counters and bytes sum across ranks; the pool budget is
    // the shared per-node figure, so it maxes.
    let sum = |f: fn(&RankReport) -> u64| reports.iter().map(f).sum::<u64>();
    let hits = sum(|r| r.cache.hits);
    let misses = sum(|r| r.cache.misses);
    let elisions = sum(|r| r.cache.elisions);
    let evictions = sum(|r| r.cache.evictions);
    let reloads = sum(|r| r.cache.reloads);
    let cached = sum(|r| r.cache.cached_bytes);
    if hits + misses + elisions + evictions + reloads + cached == 0 {
        return;
    }
    let budget = reports
        .iter()
        .map(|r| r.mem.budget_bytes)
        .max()
        .unwrap_or(0);
    let lookups = hits + misses;
    let hit_permille = (hits * 1000).checked_div(lookups).unwrap_or(1000);
    let crowd_permille = if budget > 0 {
        (cached as u128 * 1000 / budget as u128) as u64
    } else {
        0
    };
    // Per-name residency and elision savings, merged across ranks.
    let mut names: Vec<(String, u64, u64)> = Vec::new();
    for r in reports {
        for rec in &r.cache_names {
            match names.iter_mut().find(|(n, _, _)| n == &rec.name) {
                Some((_, b, e)) => {
                    *b += rec.bytes;
                    *e += rec.elisions;
                }
                None => names.push((rec.name.clone(), rec.bytes, rec.elisions)),
            }
        }
    }
    names.sort_by(|a, b| a.0.cmp(&b.0));
    let mut evidence = vec![
        ("hits".into(), num(hits)),
        ("misses".into(), num(misses)),
        ("elisions".into(), num(elisions)),
        ("evictions".into(), num(evictions)),
        ("reloads".into(), num(reloads)),
        ("cached_bytes".into(), num(cached)),
        ("hit_permille".into(), num(hit_permille)),
        ("crowd_permille".into(), num(crowd_permille)),
    ];
    for (name, bytes, el) in &names {
        evidence.push((format!("name:{name}:bytes"), num(*bytes)));
        evidence.push((format!("name:{name}:elisions"), num(*el)));
    }
    // Thrash: an eviction followed by a reload of the same name (event
    // payload `a` carries the name hash) inside the window means the
    // pool evicted data the very next job needed back.
    let mut thrash_ranks = Vec::new();
    for r in reports {
        let mut evicted: Vec<(u64, u64)> = Vec::new(); // (name_hash, t_ns)
        let mut thrashed = false;
        for e in &r.events {
            match e.kind {
                EventKind::CacheEvict => evicted.push((e.a, e.t_ns)),
                EventKind::CacheReload
                    if evicted.iter().any(|&(h, t)| {
                        h == e.a && e.t_ns.saturating_sub(t) <= CACHE_THRASH_WINDOW_NS
                    }) =>
                {
                    thrashed = true;
                }
                _ => {}
            }
        }
        if thrashed {
            thrash_ranks.push(r.rank);
        }
    }
    if !thrash_ranks.is_empty() {
        out.push(Finding {
            severity: Severity::Warn,
            code: "cache-efficiency",
            title: format!(
                "cache thrash: {} rank(s) evicted a cached dataset and \
                 reloaded the same name within {} ms",
                thrash_ranks.len(),
                CACHE_THRASH_WINDOW_NS / 1_000_000
            ),
            phase: "",
            ranks: thrash_ranks,
            evidence,
            hint: "The pool is too small for the chained working set: the \
                   admission relief loop spilled a dataset the very next \
                   job checked out again. Raise the budget, shrink the \
                   cached datasets, or drop names the chain no longer \
                   reads (cache_remove) so eviction picks true cold data.",
        });
        return;
    }
    if lookups > 0
        && hit_permille < CACHE_HIT_WARN_PERMILLE
        && crowd_permille > CACHE_CROWD_PERMILLE
    {
        out.push(Finding {
            severity: Severity::Warn,
            code: "cache-efficiency",
            title: format!(
                "cache holds {:.0}% of the pool but answers only {:.0}% of \
                 lookups",
                crowd_permille as f64 / 10.0,
                hit_permille as f64 / 10.0
            ),
            phase: "",
            ranks: Vec::new(),
            evidence,
            hint: "Retained partitions charge the same pool admission \
                   meters, so a cold cache squeezes every tenant. Check \
                   the chain's names: a miss means input_cached asked for \
                   a name no prior job stashed with output_cached.",
        });
        return;
    }
    out.push(Finding {
        severity: Severity::Info,
        code: "cache-efficiency",
        title: format!(
            "cross-job cache served {hits} checkout(s) and elided \
             {elisions} shuffle(s); {cached} B resident across {} name(s)",
            names.len()
        ),
        phase: "",
        ranks: Vec::new(),
        evidence,
        hint: "Each elision is a full exchange the chained job skipped \
               because the producer's partitioner fingerprint matched — \
               the M3R-style payoff of keeping de-serialized partitions \
               in place across jobs.",
    });
}

/// Transport wire health: silent on in-process runs (no wire counters),
/// otherwise reports the socket backend's traffic and warns on the two
/// pathologies the counters make visible — a stalled world bootstrap
/// (handshake time over [`HANDSHAKE_WARN_NS`]) and tiny-message chatter
/// (average frame under [`TINY_FRAME_WARN_BYTES`] across at least
/// [`TINY_FRAME_MIN_FRAMES`] frames, i.e. framing overhead rivals the
/// payload).
pub fn transport(reports: &[RankReport], out: &mut Vec<Finding>) {
    let frames: u64 = reports.iter().map(|r| r.comm.wire_frames_sent).sum();
    let wire_bytes: u64 = reports.iter().map(|r| r.comm.wire_bytes_sent).sum();
    let recv_allocs: u64 = reports.iter().map(|r| r.comm.wire_recv_allocs).sum();
    let max_handshake = reports
        .iter()
        .map(|r| r.comm.handshake_ns)
        .max()
        .unwrap_or(0);
    if frames == 0 && max_handshake == 0 {
        // In-process backend: no wire, nothing to diagnose.
        return;
    }
    let stalled: Vec<u64> = reports
        .iter()
        .filter(|r| r.comm.handshake_ns > HANDSHAKE_WARN_NS)
        .map(|r| r.rank)
        .collect();
    let has_stall = !stalled.is_empty();
    if has_stall {
        out.push(Finding {
            severity: Severity::Warn,
            code: "transport",
            title: format!(
                "transport handshake stalled: {:.2} s on the slowest rank",
                max_handshake as f64 / 1e9
            ),
            phase: "bootstrap",
            ranks: stalled,
            evidence: vec![
                ("max_handshake_ns".into(), num(max_handshake)),
                ("warn_ns".into(), num(HANDSHAKE_WARN_NS)),
            ],
            hint: "World bootstrap burned wall time in connect retries or \
                   waiting on peers to bind their sockets. Check for ranks \
                   starting late (slow fork, loaded machine) or a stale \
                   rendezvous directory; raise connect_window only if the \
                   stall is genuine start-up skew.",
        });
    }
    let avg = wire_bytes.checked_div(frames).unwrap_or(0);
    if frames >= TINY_FRAME_MIN_FRAMES && avg < TINY_FRAME_WARN_BYTES {
        out.push(Finding {
            severity: Severity::Warn,
            code: "transport",
            title: format!(
                "tiny-message chatter: {frames} frames averaging {avg} B \
                 on the wire"
            ),
            phase: "",
            ranks: Vec::new(),
            evidence: vec![
                ("wire_frames_sent".into(), num(frames)),
                ("avg_frame_bytes".into(), num(avg)),
                ("warn_bytes".into(), num(TINY_FRAME_WARN_BYTES)),
            ],
            hint: "Each frame pays a header and a socket write; at this \
                   size the overhead rivals the payload. Batch KVs into \
                   larger exchanges (bigger shuffle rounds, Alltoallv mode) \
                   instead of many small point-to-point sends.",
        });
        return;
    }
    if !has_stall {
        out.push(Finding {
            severity: Severity::Info,
            code: "transport",
            title: format!(
                "socket transport moved {wire_bytes} B in {frames} frames \
                 ({avg} B/frame)"
            ),
            phase: "",
            ranks: Vec::new(),
            evidence: vec![
                ("wire_bytes_sent".into(), num(wire_bytes)),
                ("wire_frames_sent".into(), num(frames)),
                ("wire_recv_allocs".into(), num(recv_allocs)),
                ("max_handshake_ns".into(), num(max_handshake)),
            ],
            hint: "Wire counters include framing headers; recv_allocs \
                   counts reader-pool misses (flat after warm-up when the \
                   pooled-buffer economy is working).",
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(n: usize) -> Vec<RankReport> {
        (0..n)
            .map(|r| {
                let mut rep = RankReport::new(r);
                rep.ranks = n as u64;
                rep
            })
            .collect()
    }

    use mimir_obs::{pack_rank_bytes, Event, EventKind, Phase};

    /// Two ranks, wall 100 ms: rank 1 computes for 90 ms while rank 0
    /// waits, then the done-vote message releases rank 0.
    fn delayed_sender_world(scale_ns: u64) -> Vec<RankReport> {
        let ev = |t_ns, kind, a, b| Event { t_ns, kind, a, b };
        let f = (1u64 << mimir_obs::FLOW_SEQ_BITS) | 1;
        let mut reports = world(2);
        reports[0].events = vec![
            ev(0, EventKind::PhaseBegin, Phase::Map as u64, 0),
            ev(scale_ns / 20, EventKind::StepBegin, 0, 0), // sync
            ev(
                scale_ns * 95 / 100,
                EventKind::FlowRecv,
                f,
                pack_rank_bytes(1, 8),
            ),
            ev(scale_ns * 96 / 100, EventKind::StepEnd, 0, 0),
            ev(scale_ns, EventKind::PhaseEnd, Phase::Map as u64, 0),
        ];
        reports[1].events = vec![
            ev(0, EventKind::PhaseBegin, Phase::Map as u64, 0),
            ev(
                scale_ns * 90 / 100,
                EventKind::FlowSend,
                f,
                pack_rank_bytes(0, 8),
            ),
            ev(
                scale_ns * 92 / 100,
                EventKind::PhaseEnd,
                Phase::Map as u64,
                0,
            ),
        ];
        reports
    }

    #[test]
    fn critical_path_rule_grades_dominance_by_wall_impact() {
        // 100 ms wall, rank 1 holds ~95% of the path: critical.
        let reports = delayed_sender_world(100_000_000);
        let path = crate::critical_path(&reports).expect("measured");
        let mut out = Vec::new();
        critical_path_rule(&path, &reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "critical-path");
        assert_eq!(out[0].severity, Severity::Critical);
        assert_eq!(out[0].ranks, vec![1]);
        assert_eq!(out[0].phase, "map");

        // Same shape at 1 ms wall: outsized share, but too short to be
        // more than a warning.
        let reports = delayed_sender_world(1_000_000);
        let path = crate::critical_path(&reports).expect("measured");
        let mut out = Vec::new();
        critical_path_rule(&path, &reports, &mut out);
        assert_eq!(out[0].severity, Severity::Warn);
    }

    #[test]
    fn measured_path_suppresses_the_straggler_guess() {
        // Counters that would trip the straggler heuristic…
        let mut reports = delayed_sender_world(100_000_000);
        for r in &mut reports {
            r.waits.sync_wait_ns = 90_000_000;
            r.times.map_s = 0.1;
        }
        reports[1].waits.sync_wait_ns = 1_000_000;
        // …are superseded by the measured path.
        let d = crate::diagnose(&reports);
        assert!(
            d.findings.iter().any(|f| f.code == "critical-path"),
            "no path finding:\n{}",
            d.to_text()
        );
        assert!(
            d.findings.iter().all(|f| f.code != "straggler"),
            "heuristic not suppressed:\n{}",
            d.to_text()
        );
        // Without events the heuristic still runs.
        for r in &mut reports {
            r.events.clear();
        }
        let d = crate::diagnose(&reports);
        assert!(
            d.findings.iter().any(|f| f.code == "straggler"),
            "fallback heuristic missing:\n{}",
            d.to_text()
        );
    }

    #[test]
    fn balanced_path_reports_info_only() {
        // Two ranks alternating evenly: shares ~50% each, fair = 500‰.
        let ev = |t_ns, kind, a, b| Event { t_ns, kind, a, b };
        let f01 = 1u64; // rank 0, seq 1
        let f10 = (1u64 << mimir_obs::FLOW_SEQ_BITS) | 1;
        let mut reports = world(2);
        reports[0].events = vec![
            ev(0, EventKind::PhaseBegin, Phase::Map as u64, 0),
            ev(50, EventKind::FlowSend, f01, pack_rank_bytes(1, 8)),
            ev(105, EventKind::FlowRecv, f10, pack_rank_bytes(1, 8)),
            ev(110, EventKind::PhaseEnd, Phase::Map as u64, 0),
        ];
        reports[1].events = vec![
            ev(0, EventKind::PhaseBegin, Phase::Map as u64, 0),
            ev(55, EventKind::FlowRecv, f01, pack_rank_bytes(0, 8)),
            ev(100, EventKind::FlowSend, f10, pack_rank_bytes(0, 8)),
            ev(108, EventKind::PhaseEnd, Phase::Map as u64, 0),
        ];
        let path = crate::critical_path(&reports).expect("measured");
        let mut out = Vec::new();
        critical_path_rule(&path, &reports, &mut out);
        assert_eq!(out[0].severity, Severity::Info, "{}", out[0].title);
        assert!(out[0].title.contains("balanced"));
    }

    #[test]
    fn critical_path_joins_gating_with_receive_share() {
        // Rank 1 dominates the path AND holds 1.9x the fair receive
        // share — the finding names the joined skew-bound diagnosis.
        let mut reports = delayed_sender_world(100_000_000);
        reports[1].shuffle.bytes_received = 3800;
        reports[0].shuffle.bytes_received = 200;
        let path = crate::critical_path(&reports).expect("measured");
        let mut out = Vec::new();
        critical_path_rule(&path, &reports, &mut out);
        assert_eq!(out.len(), 1);
        let f = &out[0];
        let ev = |k: &str| {
            f.evidence
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing evidence {k}:\n{f:?}"))
        };
        assert_eq!(ev("dominant_recv_bytes"), Json::Num(3800.0));
        assert_eq!(ev("dominant_recv_share_permille"), Json::Num(1900.0));
        assert!(matches!(ev("gated_rounds"), Json::Arr(_)));
        // 1.9x is below the 2x skew bound: the generic title still runs.
        assert!(f.title.contains("critical path runs through rank 1"));

        // Push the share past the 2x trip and record a round window the
        // dominant rank's path stretch covers: the joined title takes
        // over, naming the gated round.
        reports[1].shuffle.bytes_received = 10_000;
        reports[0].shuffle.bytes_received = 0;
        let ev = |t_ns, kind, a, b| Event { t_ns, kind, a, b };
        reports[1]
            .events
            .insert(1, ev(10_000_000, EventKind::RoundBegin, 7, 0));
        reports[1]
            .events
            .insert(2, ev(80_000_000, EventKind::RoundEnd, 7, 0));
        let path = crate::critical_path(&reports).expect("measured");
        let mut out = Vec::new();
        critical_path_rule(&path, &reports, &mut out);
        let f = &out[0];
        assert!(
            f.title.contains("gated round 7") && f.title.contains("fair receive share"),
            "joined title missing: {}",
            f.title
        );
        assert!(f.hint.contains("Adaptive"), "skew-bound hint: {}", f.hint);
    }

    #[test]
    fn adaptation_is_silent_without_adaptive_activity() {
        let mut out = Vec::new();
        adaptation(&world(4), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn adaptation_reports_decisions_and_wait_split() {
        let mut reports = world(2);
        for r in &mut reports {
            r.adapt.mode_switches = 1;
            r.adapt.grow_steps = 2;
            r.adapt.converged_round = 2;
            r.adapt.final_fill_permille = 750;
            r.adapt.final_overlap = 1;
        }
        reports[0].adapt.hot_trips = 1;
        reports[0].adapt.hot_staged_kvs = 500;
        reports[0].adapt.hot_unique_kvs = 10;
        // Waits: 4 rounds per rank, 100 µs before convergence, 20 µs after.
        let ev = |t_ns, a, b| Event {
            t_ns,
            kind: EventKind::RoundWait,
            a,
            b,
        };
        for r in &mut reports {
            r.events = vec![
                ev(10, 60_000, 40_000),
                ev(20, 70_000, 30_000),
                ev(30, 15_000, 5_000),
                ev(40, 12_000, 8_000),
            ];
        }
        let mut out = Vec::new();
        adaptation(&reports, &mut out);
        assert_eq!(out.len(), 1);
        let f = &out[0];
        assert_eq!(f.code, "adaptation");
        assert_eq!(f.severity, Severity::Info);
        assert!(f.title.contains("4 decision(s)"), "{}", f.title);
        assert!(f.title.contains("overlapped"), "{}", f.title);
        let ev_of = |k: &str| {
            f.evidence
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing evidence {k}"))
        };
        assert_eq!(ev_of("hot_trips"), Json::Num(1.0));
        assert_eq!(ev_of("wait_per_round_before_ns"), Json::Num(100_000.0));
        assert_eq!(ev_of("wait_per_round_after_ns"), Json::Num(20_000.0));
    }

    #[test]
    fn adaptation_flags_flapping_as_a_warning() {
        let mut reports = world(2);
        for r in &mut reports {
            r.adapt.mode_switches = ADAPT_FLAP_WARN;
        }
        let mut out = Vec::new();
        adaptation(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warn);
        assert!(out[0].title.contains("flapped"), "{}", out[0].title);
    }

    #[test]
    fn cache_efficiency_is_silent_without_cache_activity() {
        let mut out = Vec::new();
        cache_efficiency(&world(2), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn cache_efficiency_reports_elisions_as_info() {
        let mut reports = world(2);
        for r in &mut reports {
            r.cache.hits = 5;
            r.cache.elisions = 4;
            r.cache.cached_bytes = 4096;
            r.cache_names = vec![mimir_obs::CacheNameRecord {
                name: "pr".into(),
                bytes: 4096,
                elisions: 4,
            }];
        }
        let mut out = Vec::new();
        cache_efficiency(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "cache-efficiency");
        assert_eq!(out[0].severity, Severity::Info);
        assert!(out[0].title.contains("elided 8"), "{}", out[0].title);
        let ev_of = |k: &str| {
            out[0]
                .evidence
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing evidence {k}"))
        };
        assert_eq!(ev_of("name:pr:bytes"), Json::Num(8192.0));
        assert_eq!(ev_of("name:pr:elisions"), Json::Num(8.0));
    }

    #[test]
    fn cache_efficiency_warns_on_cold_cache_crowding_the_pool() {
        let mut reports = world(2);
        for r in &mut reports {
            r.cache.hits = 1;
            r.cache.misses = 9;
            r.cache.cached_bytes = 400 << 10;
            r.mem.budget_bytes = 1 << 20;
        }
        let mut out = Vec::new();
        cache_efficiency(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warn);
        assert!(out[0].title.contains("lookups"), "{}", out[0].title);
    }

    #[test]
    fn cache_efficiency_warns_on_eviction_thrash() {
        let ev = |t_ns, kind, a| Event {
            t_ns,
            kind,
            a,
            b: 0,
        };
        let mut reports = world(2);
        reports[0].cache.evictions = 1;
        reports[0].cache.reloads = 1;
        reports[0].events = vec![
            ev(0, EventKind::CacheEvict, 77),
            ev(CACHE_THRASH_WINDOW_NS / 2, EventKind::CacheReload, 77),
        ];
        let mut out = Vec::new();
        cache_efficiency(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warn);
        assert!(out[0].title.contains("thrash"), "{}", out[0].title);
        assert_eq!(out[0].ranks, vec![0]);

        // The same pair outside the window is not thrash: with no other
        // pressure signals the rule reports the plain Info summary.
        reports[0].events[1].t_ns = CACHE_THRASH_WINDOW_NS * 2;
        let mut out = Vec::new();
        cache_efficiency(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Info);
    }

    #[test]
    fn transport_is_silent_on_inproc_runs() {
        let mut out = Vec::new();
        transport(&world(4), &mut out);
        assert!(out.is_empty(), "no wire counters, no finding");
    }

    #[test]
    fn transport_reports_healthy_wire_as_info() {
        let mut reports = world(2);
        for r in &mut reports {
            r.comm.wire_frames_sent = 100;
            r.comm.wire_bytes_sent = 100 * 4096;
            r.comm.wire_recv_allocs = 3;
            r.comm.handshake_ns = 2_000_000;
        }
        let mut out = Vec::new();
        transport(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "transport");
        assert_eq!(out[0].severity, Severity::Info);
        assert!(
            out[0].title.contains("4096 B/frame"),
            "got: {}",
            out[0].title
        );
    }

    #[test]
    fn transport_warns_on_handshake_stall_naming_the_rank() {
        let mut reports = world(3);
        for r in &mut reports {
            r.comm.wire_frames_sent = 10;
            r.comm.wire_bytes_sent = 10 * 1024;
            r.comm.handshake_ns = 1_000_000;
        }
        reports[1].comm.handshake_ns = HANDSHAKE_WARN_NS * 3;
        let mut out = Vec::new();
        transport(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warn);
        assert_eq!(out[0].ranks, vec![1]);
        assert!(out[0].title.contains("handshake stalled"));
    }

    #[test]
    fn transport_warns_on_tiny_message_chatter() {
        let mut reports = world(2);
        for r in &mut reports {
            r.comm.wire_frames_sent = TINY_FRAME_MIN_FRAMES;
            // Average well under the threshold: header-dominated chatter.
            r.comm.wire_bytes_sent = TINY_FRAME_MIN_FRAMES * 40;
            r.comm.handshake_ns = 1_000_000;
        }
        let mut out = Vec::new();
        transport(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warn);
        assert!(out[0].title.contains("tiny-message chatter"));

        // The same frame count with healthy frame sizes is only info.
        for r in &mut reports {
            r.comm.wire_bytes_sent = TINY_FRAME_MIN_FRAMES * 4096;
        }
        let mut out = Vec::new();
        transport(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Info);
    }

    #[test]
    fn straggler_names_the_least_waiting_rank() {
        let mut reports = world(4);
        for r in &mut reports {
            r.waits.sync_wait_ns = 40_000_000;
            r.waits.barrier_wait_ns = 10_000_000;
            r.times.map_s = 0.06;
        }
        reports[2].waits.sync_wait_ns = 1_000_000;
        reports[2].waits.barrier_wait_ns = 0;
        let mut out = Vec::new();
        straggler(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "straggler");
        assert_eq!(out[0].ranks[0], 2, "critical rank = least waiting");
        assert_eq!(
            out[0].severity,
            Severity::Critical,
            "50 ms of 60 ms wall is critical"
        );
        // Uniform waits: no finding.
        let mut out = Vec::new();
        straggler(&world(4), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn skew_fires_on_concentration_and_names_the_phase() {
        let mut reports = world(4);
        for r in &mut reports {
            r.shuffle.kv_bytes_emitted = 1000;
        }
        reports[0].shuffle.bytes_received = 4000; // everything lands on rank 0
        let mut out = Vec::new();
        partition_skew(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Critical, "4x fair share");
        assert_eq!(out[0].phase, "map/aggregate (shuffle)");
        assert_eq!(out[0].ranks, vec![0]);
        assert!(out[0].hint.contains("III-C2"), "paper-grounded hint");

        // Uniform receives: silent.
        let mut reports = world(4);
        for r in &mut reports {
            r.shuffle.bytes_received = 1000;
        }
        let mut out = Vec::new();
        partition_skew(&reports, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn skew_reads_the_per_destination_histogram_too() {
        let mut reports = world(2);
        reports[1].shuffle.imbalance_permille = 2500; // sender-side view
        let mut out = Vec::new();
        partition_skew(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warn);
    }

    #[test]
    fn headroom_margins_and_violations() {
        let mut reports = world(2);
        reports[0].mem.budget_bytes = 1000;
        reports[0].mem.peak_bytes = 950; // 5% margin
        let mut out = Vec::new();
        memory_headroom(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warn);

        reports[1].mem.oom_events = 3;
        let mut out = Vec::new();
        memory_headroom(&reports, &mut out);
        assert_eq!(out.len(), 1, "violation supersedes the margin warning");
        assert_eq!(out[0].severity, Severity::Critical);
        assert_eq!(out[0].ranks, vec![1]);

        // Comfortable margin, no OOM: silent. Unmetered (budget 0): silent.
        let mut reports = world(2);
        reports[0].mem.budget_bytes = 1000;
        reports[0].mem.peak_bytes = 500;
        let mut out = Vec::new();
        memory_headroom(&reports, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn spill_amplification_needs_spill_above_emitted() {
        let mut reports = world(2);
        reports[0].shuffle.kv_bytes_emitted = 100;
        reports[0].shuffle.spilled_bytes = 350;
        let mut out = Vec::new();
        spill_amplification(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].title.contains("3.5x"));

        reports[0].shuffle.spilled_bytes = 50; // absorbing a burst is fine
        let mut out = Vec::new();
        spill_amplification(&reports, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn dropped_events_scale_with_loss_fraction() {
        let mut reports = world(1);
        reports[0].events_dropped = 1;
        for _ in 0..99 {
            reports[0].events.push(mimir_obs::Event {
                t_ns: 0,
                kind: mimir_obs::EventKind::MemSample,
                a: 0,
                b: 0,
            });
        }
        let mut out = Vec::new();
        dropped_events(&reports, &mut out);
        assert_eq!(out[0].severity, Severity::Warn, "1% loss warns");
        assert!(out[0].hint.contains("MIMIR_TRACE_CAP"));

        reports[0].events_dropped = 50;
        let mut out = Vec::new();
        dropped_events(&reports, &mut out);
        assert_eq!(out[0].severity, Severity::Critical, "33% loss is critical");
    }

    #[test]
    fn job_lifecycle_reads_outcomes_and_retries() {
        let mut reports = world(2);
        let job = |id: u64, outcome: u64, retries: u64| mimir_obs::JobRecord {
            id,
            name: format!("j{id}"),
            outcome,
            retries,
            ..mimir_obs::JobRecord::default()
        };
        reports[0].jobs = vec![
            job(0, 0, 0), // clean: silent
            job(1, 0, 2), // retried: warn
            job(2, 2, 0), // cancelled: info
            job(3, 3, 3), // OOM: critical
        ];
        let mut out = Vec::new();
        job_lifecycle(&reports, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].severity, Severity::Warn);
        assert_eq!(out[1].severity, Severity::Info);
        assert_eq!(out[2].severity, Severity::Critical);
    }

    #[test]
    fn deadlock_suspect_needs_high_wait_and_silence() {
        let mut reports = world(2);
        reports[1].times.map_s = 0.2;
        reports[1].waits.total_wait_ns = 198_000_000;
        reports[1].comm.bytes_recvd = 0;
        let mut out = Vec::new();
        deadlock_suspect(&reports, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ranks, vec![1]);

        reports[1].comm.bytes_recvd = 4096; // it did talk: not a deadlock
        let mut out = Vec::new();
        deadlock_suspect(&reports, &mut out);
        assert!(out.is_empty());
    }
}
