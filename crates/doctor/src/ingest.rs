//! Readers for the two on-disk trace formats the stack exports.
//!
//! - **JSONL** (`<label>.jsonl`): the native input. Each `report` line
//!   deserializes back into a full [`RankReport`], so every rule runs at
//!   full strength. `header` and `event` lines are tolerated and the
//!   header's loss count is folded in when the report lines predate the
//!   loss accounting.
//! - **Chrome trace** (`<label>.trace.json`): a timeline, not a counter
//!   dump. Ingestion reconstructs a skeleton — the rank set from the
//!   process-name metadata and the loss count from the trace-level
//!   `metadata` object — which is enough for the trace-health rules but
//!   leaves the counter-based rules blind. Prefer the JSONL file.

use mimir_obs::{Event, EventKind, Json, RankReport};

/// Parses a JSON-lines export into per-rank reports.
///
/// Tolerates `header` records, blank lines, and trailing newlines.
/// `event` lines are reattached to their rank's report (the exporter
/// strips the event dump from the `report` line and streams it as
/// individual lines), so timeline-based analyses — the critical path
/// above all — run at full strength on a re-ingested export. Events of
/// an unknown kind or without a matching report are skipped, not fatal,
/// so a future exporter revision stays readable.
///
/// # Errors
/// Malformed JSON, a `report` line that does not deserialize, or an
/// input containing no report lines at all.
pub fn ingest_jsonl(text: &str) -> Result<Vec<RankReport>, String> {
    let docs = Json::parse_lines(text).map_err(|e| e.to_string())?;
    let mut reports = Vec::new();
    let mut header_dropped = 0u64;
    let mut events: Vec<(u64, Event)> = Vec::new();
    for d in &docs {
        match d.get("record").and_then(Json::as_str) {
            Some("report") => {
                reports.push(RankReport::from_json(d).map_err(|e| e.to_string())?);
            }
            Some("header") => {
                header_dropped = d.get("events_dropped").and_then(Json::as_u64).unwrap_or(0);
            }
            Some("event") => {
                let field = |k: &str| d.get(k).and_then(Json::as_u64);
                let kind = d
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(EventKind::from_name);
                if let (Some(rank), Some(t_ns), Some(kind)) = (field("rank"), field("t_ns"), kind) {
                    events.push((
                        rank,
                        Event {
                            t_ns,
                            kind,
                            a: field("a").unwrap_or(0),
                            b: field("b").unwrap_or(0),
                        },
                    ));
                }
            }
            _ => {}
        }
    }
    if reports.is_empty() {
        return Err("no `report` records found — is this a mimir .jsonl export?".into());
    }
    // Reattach the streamed event lines. Report lines carry an empty
    // `events` array by construction, but appending (rather than
    // replacing) also tolerates a hand-merged file.
    for (rank, e) in events {
        if let Some(r) = reports.iter_mut().find(|r| r.rank == rank) {
            r.events.push(e);
        }
    }
    // Belt and braces: if the header reports loss the report lines don't
    // carry (an older exporter), pin it on rank 0 so the dropped-events
    // rule still sees it.
    if header_dropped > 0 && reports.iter().all(|r| r.events_dropped == 0) {
        reports[0].events_dropped = header_dropped;
    }
    Ok(reports)
}

/// Reconstructs a report *skeleton* from a chrome trace: rank ids from
/// the `process_name` metadata and the loss count from the trace-level
/// `metadata` object. Counter-based rules see zeros; use the JSONL
/// export for a full diagnosis.
///
/// # Errors
/// Malformed JSON or a document without a `traceEvents` array.
pub fn ingest_chrome(text: &str) -> Result<Vec<RankReport>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| "no `traceEvents` array — is this a chrome trace?".to_string())?;
    // Rank lanes are announced as `thread_name` metadata named
    // "rank N" (job lanes are named "rN job J" and live on high tids).
    let mut ranks: Vec<u64> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("rank "))
        })
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    ranks.sort_unstable();
    ranks.dedup();
    if ranks.is_empty() {
        return Err("chrome trace contains no events".into());
    }
    let n = ranks.len() as u64;
    let mut reports: Vec<RankReport> = ranks
        .into_iter()
        .map(|r| {
            let mut rep = RankReport::new(r as usize);
            rep.ranks = n;
            rep
        })
        .collect();
    if let Some(dropped) = doc
        .get("metadata")
        .and_then(|m| m.get("events_dropped"))
        .and_then(Json::as_u64)
    {
        reports[0].events_dropped = dropped;
    }
    Ok(reports)
}

/// Dispatches on content: a chrome trace is one JSON document with a
/// `traceEvents` key; everything else is treated as JSONL.
///
/// # Errors
/// Whatever the underlying reader reports.
pub fn ingest_path_text(text: &str) -> Result<Vec<RankReport>, String> {
    if Json::parse(text)
        .map(|d| d.get("traceEvents").is_some())
        .unwrap_or(false)
    {
        ingest_chrome(text)
    } else {
        ingest_jsonl(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimir_obs::{chrome_trace, jsonl_string, Event, EventKind};

    fn sample_world() -> Vec<RankReport> {
        (0..3usize)
            .map(|r| {
                let mut rep = RankReport::new(r);
                rep.ranks = 3;
                rep.shuffle.kvs_emitted = 100 + r as u64;
                rep.waits.sync_wait_ns = 5_000 * (r as u64 + 1);
                rep
            })
            .collect()
    }

    #[test]
    fn jsonl_roundtrips_through_ingest() {
        let reports = sample_world();
        let text = jsonl_string(&reports);
        let back = ingest_jsonl(&text).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in reports.iter().zip(&back) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.shuffle.kvs_emitted, b.shuffle.kvs_emitted);
            assert_eq!(a.waits.sync_wait_ns, b.waits.sync_wait_ns);
        }
        // Trailing newlines and blank lines are tolerated.
        let padded = format!("{text}\n\n\n");
        assert_eq!(ingest_jsonl(&padded).unwrap().len(), 3);
    }

    #[test]
    fn event_lines_reattach_to_their_rank() {
        let mut reports = sample_world();
        let flow = (1u64 << 48) | 1;
        reports[1].events.push(Event {
            t_ns: 7,
            kind: EventKind::RoundBegin,
            a: 3,
            b: 0,
        });
        reports[1].events.push(Event {
            t_ns: 9,
            kind: EventKind::FlowSend,
            a: flow,
            b: 8,
        });
        let text = jsonl_string(&reports);
        let back = ingest_jsonl(&text).unwrap();
        assert!(back[0].events.is_empty());
        assert_eq!(back[2].events, Vec::new());
        assert_eq!(
            back[1].events, reports[1].events,
            "streamed event lines reattach losslessly"
        );
    }

    #[test]
    fn jsonl_with_loss_keeps_the_header_and_counts() {
        let mut reports = sample_world();
        reports[1].events_dropped = 9;
        let text = jsonl_string(&reports);
        let back = ingest_jsonl(&text).unwrap();
        assert_eq!(back.iter().map(|r| r.events_dropped).sum::<u64>(), 9);
    }

    #[test]
    fn non_reports_are_rejected_with_a_readable_error() {
        assert!(ingest_jsonl("{\"record\":\"event\"}\n")
            .unwrap_err()
            .contains("report"));
        assert!(ingest_jsonl("not json").is_err());
    }

    #[test]
    fn chrome_ingest_reconstructs_the_rank_skeleton() {
        let mut reports = sample_world();
        reports[2].events_dropped = 4;
        let text = chrome_trace(&reports).to_string();
        let back = ingest_path_text(&text).unwrap();
        assert_eq!(back.len(), 3, "one skeleton report per pid");
        assert_eq!(
            back.iter().map(|r| r.events_dropped).sum::<u64>(),
            4,
            "loss survives via the trace metadata"
        );
    }

    #[test]
    fn dispatch_picks_jsonl_for_jsonl() {
        let text = jsonl_string(&sample_world());
        let back = ingest_path_text(&text).unwrap();
        assert_eq!(
            back[0].shuffle.kvs_emitted, 100,
            "full counters, not a skeleton"
        );
    }
}
