//! The happens-before graph and its longest path.
//!
//! Every message the runtime ships carries a flow id; the sender records
//! a [`FlowSend`](EventKind::FlowSend) and the matching receive records a
//! [`FlowRecv`](EventKind::FlowRecv). Together with each rank's local
//! event order, those pairs are the complete happens-before relation of
//! the run — local program order plus one cross-rank edge per message.
//! This module rebuilds that DAG from gathered [`RankReport`]s (event
//! timestamps must share one epoch, which the trace session guarantees)
//! and extracts the **critical path**: the chain of work and messages
//! that actually determined the wall time, as opposed to the straggler
//! heuristic's guess from aggregate wait counters.
//!
//! The walk runs backwards from the globally latest event. On a rank's
//! lane it scans toward the past; at each `FlowRecv` it asks whether the
//! matching send happened *after* the receiver's previous local event —
//! if so, the receiver was blocked on that message, the path jumps to
//! the sender's lane at the send, and the skipped local stretch was
//! off-path waiting. If not, the message arrived early and the walk
//! keeps descending locally. This is the classic critical-path
//! backtrace; it is valid here because the transport is eager (a send
//! is visible as soon as it happens) and all recorders share an epoch.
//!
//! On-path time is classified against the rank's span events:
//! `sync`/`recv` steps are **wait**, `alltoallv`/`post`/`drain` steps
//! and the message edges themselves are **comm**, everything else is
//! **compute**.

use std::collections::HashMap;

use mimir_obs::{Event, EventKind, Json, Phase, RankReport, Step, FLOW_SEQ_BITS};

/// What a stretch of the critical path was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Local work outside any communication step span.
    Compute,
    /// Data movement: `alltoallv`/`post`/`drain` steps and the in-flight
    /// time of a gating message.
    Comm,
    /// Blocked time: `sync` vote and `recv` completion steps.
    Wait,
}

impl SegmentKind {
    /// Stable lowercase name (used in JSON and text renderings).
    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::Comm => "comm",
            SegmentKind::Wait => "wait",
        }
    }
}

/// One contiguous stretch of the critical path on a single rank (or in
/// flight between two ranks, for [`SegmentKind::Comm`] edges where
/// `rank` is the *sender*).
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// The rank holding the path during this stretch.
    pub rank: u64,
    /// Start, nanoseconds since the shared epoch.
    pub from_ns: u64,
    /// End, nanoseconds since the shared epoch.
    pub to_ns: u64,
    /// How the stretch was spent.
    pub kind: SegmentKind,
}

impl Segment {
    fn dur(&self) -> u64 {
        self.to_ns.saturating_sub(self.from_ns)
    }
}

/// The extracted critical path of one run.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Span of the whole event stream: latest minus earliest timestamp.
    pub wall_ns: u64,
    /// Length of the path itself (its segments are contiguous in time).
    pub path_ns: u64,
    /// On-path nanoseconds classified as local work.
    pub compute_ns: u64,
    /// On-path nanoseconds classified as data movement (incl. edges).
    pub comm_ns: u64,
    /// On-path nanoseconds classified as blocked.
    pub wait_ns: u64,
    /// Cross-rank message edges the path followed.
    pub edges: u64,
    /// Per-rank on-path time, descending: `(rank, ns)`.
    pub rank_path_ns: Vec<(u64, u64)>,
    /// The rank holding the largest slice of the path.
    pub dominant_rank: u64,
    /// Dominant rank's on-path time as a permille of all on-rank path
    /// time (edges excluded from the denominator).
    pub dominant_share_permille: u64,
    /// Phase name where the dominant rank spent most of its path time
    /// (`""` when no phase spans overlap).
    pub dominant_phase: &'static str,
    /// Exchange round → the rank the path ran through for most of that
    /// round's window (the rank gating the round).
    pub gating: Vec<(u64, u64)>,
    /// The path, earliest segment first.
    pub segments: Vec<Segment>,
}

impl CriticalPath {
    /// How many of the observed exchange rounds `rank` gated.
    pub fn rounds_gated_by(&self, rank: u64) -> u64 {
        self.gating.iter().filter(|&&(_, r)| r == rank).count() as u64
    }

    /// Structured rendering for the `--critical-path` artifact.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("wall_ns", Json::Num(self.wall_ns as f64)),
            ("path_ns", Json::Num(self.path_ns as f64)),
            ("compute_ns", Json::Num(self.compute_ns as f64)),
            ("comm_ns", Json::Num(self.comm_ns as f64)),
            ("wait_ns", Json::Num(self.wait_ns as f64)),
            ("edges", Json::Num(self.edges as f64)),
            ("dominant_rank", Json::Num(self.dominant_rank as f64)),
            (
                "dominant_share_permille",
                Json::Num(self.dominant_share_permille as f64),
            ),
            ("dominant_phase", Json::Str(self.dominant_phase.into())),
            (
                "rank_path_ns",
                Json::Obj(
                    self.rank_path_ns
                        .iter()
                        .map(|&(r, ns)| (r.to_string(), Json::Num(ns as f64)))
                        .collect(),
                ),
            ),
            (
                "gating",
                Json::Arr(
                    self.gating
                        .iter()
                        .map(|&(round, rank)| {
                            Json::obj(vec![
                                ("round", Json::Num(round as f64)),
                                ("rank", Json::Num(rank as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "segments",
                Json::Arr(
                    self.segments
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("rank", Json::Num(s.rank as f64)),
                                ("from_ns", Json::Num(s.from_ns as f64)),
                                ("to_ns", Json::Num(s.to_ns as f64)),
                                ("kind", Json::Str(s.kind.name().into())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Human rendering: the summary plus one line per segment.
    pub fn to_text(&self) -> String {
        let pct = |ns: u64| {
            if self.path_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / self.path_ns as f64
            }
        };
        let mut out = format!(
            "critical path: {} of {} wall ({} segments, {} message edges)\n  \
             compute {} ({:.0}%), comm {} ({:.0}%), wait {} ({:.0}%)\n  \
             dominant: rank {} holds {:.1}% of the path{}\n",
            crate::fmt_duration_ns(self.path_ns as f64),
            crate::fmt_duration_ns(self.wall_ns as f64),
            self.segments.len(),
            self.edges,
            crate::fmt_duration_ns(self.compute_ns as f64),
            pct(self.compute_ns),
            crate::fmt_duration_ns(self.comm_ns as f64),
            pct(self.comm_ns),
            crate::fmt_duration_ns(self.wait_ns as f64),
            pct(self.wait_ns),
            self.dominant_rank,
            self.dominant_share_permille as f64 / 10.0,
            if self.dominant_phase.is_empty() {
                String::new()
            } else {
                format!(" (mostly in `{}`)", self.dominant_phase)
            },
        );
        if !self.gating.is_empty() {
            let gated: Vec<String> = self
                .rank_path_ns
                .iter()
                .map(|&(r, _)| format!("r{r}:{}", self.rounds_gated_by(r)))
                .collect();
            out.push_str(&format!(
                "  rounds gated ({} total): {}\n",
                self.gating.len(),
                gated.join(" ")
            ));
        }
        for s in &self.segments {
            out.push_str(&format!(
                "    {:>10} .. {:>10}  rank {}  {:<7} {}\n",
                s.from_ns,
                s.to_ns,
                s.rank,
                s.kind.name(),
                crate::fmt_duration_ns(s.dur() as f64),
            ));
        }
        out
    }
}

/// A step span's classification, or `None` for spans that are neither
/// wait nor comm (the remainder defaults to compute).
fn step_kind(code: u64) -> Option<SegmentKind> {
    match Step::from_code(code)? {
        Step::Sync | Step::Recv => Some(SegmentKind::Wait),
        Step::Alltoallv | Step::Post | Step::Drain => Some(SegmentKind::Comm),
    }
}

/// Non-overlapping classified windows of one rank's lane, from its step
/// spans. Steps are sequential within a rank, so begin/end pairing by
/// step code is unambiguous.
fn classified_windows(lane: &[Event]) -> Vec<(u64, u64, SegmentKind)> {
    let mut open: HashMap<u64, u64> = HashMap::new();
    let mut windows = Vec::new();
    for e in lane {
        match e.kind {
            EventKind::StepBegin => {
                open.insert(e.a, e.t_ns);
            }
            EventKind::StepEnd => {
                if let (Some(from), Some(kind)) = (open.remove(&e.a), step_kind(e.a)) {
                    windows.push((from, e.t_ns, kind));
                }
            }
            _ => {}
        }
    }
    windows.sort_unstable_by_key(|&(from, _, _)| from);
    windows
}

/// Splits the on-path stretch `[from, to)` of one rank into classified
/// segments using the rank's step windows; uncovered time is compute.
fn classify_stretch(
    rank: u64,
    from: u64,
    to: u64,
    windows: &[(u64, u64, SegmentKind)],
    out: &mut Vec<Segment>,
) {
    let mut cursor = from;
    for &(w_from, w_to, kind) in windows {
        if w_to <= cursor || w_from >= to {
            continue;
        }
        let a = w_from.max(cursor);
        let b = w_to.min(to);
        if a > cursor {
            out.push(Segment {
                rank,
                from_ns: cursor,
                to_ns: a,
                kind: SegmentKind::Compute,
            });
        }
        if b > a {
            out.push(Segment {
                rank,
                from_ns: a,
                to_ns: b,
                kind,
            });
        }
        cursor = cursor.max(b);
        if cursor >= to {
            break;
        }
    }
    if to > cursor {
        out.push(Segment {
            rank,
            from_ns: cursor,
            to_ns: to,
            kind: SegmentKind::Compute,
        });
    }
}

/// Rebuilds the happens-before DAG from gathered per-rank reports and
/// extracts the critical path.
///
/// Returns `None` when the path cannot be *measured*: no rank retained
/// events, or a multi-rank run has no matched flow pair (flow tracing
/// off — local lanes alone say nothing about cross-rank causality).
/// Timestamps are assumed comparable across ranks (shared epoch), which
/// the trace session guarantees.
pub fn critical_path(reports: &[RankReport]) -> Option<CriticalPath> {
    // Per-rank lanes, time-sorted (rings are chronological; merged or
    // hand-built reports may not be).
    let mut lanes: HashMap<u64, Vec<Event>> = HashMap::new();
    for r in reports {
        if !r.events.is_empty() {
            let mut lane = r.events.clone();
            lane.sort_by_key(|e| e.t_ns);
            lanes.insert(r.rank, lane);
        }
    }
    if lanes.is_empty() {
        return None;
    }

    // Index the send half of every flow: id -> (rank, lane index).
    let mut sends: HashMap<u64, (u64, usize)> = HashMap::new();
    for (&rank, lane) in &lanes {
        for (i, e) in lane.iter().enumerate() {
            if e.kind == EventKind::FlowSend {
                sends.insert(e.a, (rank, i));
            }
        }
    }

    // Multi-rank lanes with no matched flow pair carry no cross-rank
    // causality: any "path" would be the straggler guess in disguise.
    let has_matched_pair = lanes
        .values()
        .flatten()
        .any(|e| e.kind == EventKind::FlowRecv && sends.contains_key(&e.a));
    if lanes.len() > 1 && !has_matched_pair {
        return None;
    }

    let t_start = lanes.values().map(|l| l[0].t_ns).min()?;
    let (&end_rank, end_lane) = lanes.iter().max_by_key(|(_, l)| l.last().unwrap().t_ns)?;
    let t_end = end_lane.last().unwrap().t_ns;

    // Backward walk. `stretches` collects the raw on-rank intervals and
    // the message edges in reverse order.
    let mut stretches: Vec<(u64, u64, u64)> = Vec::new(); // (rank, from, to)
    let mut edge_segs: Vec<Segment> = Vec::new();
    let mut cur_rank = end_rank;
    let mut cur_idx = end_lane.len() - 1;
    let mut cur_t = t_end;
    let total_events: usize = lanes.values().map(Vec::len).sum();
    let mut fuel = total_events + 8; // cycle guard; ties in t_ns could stall
    loop {
        fuel -= 1;
        let lane = &lanes[&cur_rank];
        let mut i = cur_idx;
        let mut jump: Option<(u64, usize, u64)> = None; // (rank, idx, recv_t)
        loop {
            let e = &lane[i];
            if e.kind == EventKind::FlowRecv && fuel > 0 {
                if let Some(&(s_rank, s_idx)) = sends.get(&e.a) {
                    let s_t = lanes[&s_rank][s_idx].t_ns;
                    // Gating test: the previous *local* event happened
                    // before the send, i.e. this rank had nothing to do
                    // but wait for the message.
                    let gated = i == 0 || s_t > lane[i - 1].t_ns;
                    if gated && s_rank != cur_rank && s_t <= e.t_ns {
                        jump = Some((s_rank, s_idx, e.t_ns));
                        break;
                    }
                }
            }
            if i == 0 {
                break;
            }
            i -= 1;
        }
        match jump {
            Some((s_rank, s_idx, recv_t)) => {
                stretches.push((cur_rank, recv_t, cur_t));
                let s_t = lanes[&s_rank][s_idx].t_ns;
                edge_segs.push(Segment {
                    rank: s_rank,
                    from_ns: s_t,
                    to_ns: recv_t,
                    kind: SegmentKind::Comm,
                });
                cur_rank = s_rank;
                cur_idx = s_idx;
                cur_t = s_t;
            }
            None => {
                stretches.push((cur_rank, lane[0].t_ns, cur_t));
                break;
            }
        }
    }

    // Classify the on-rank stretches and interleave the edges back in
    // chronological order.
    let windows: HashMap<u64, Vec<(u64, u64, SegmentKind)>> = lanes
        .iter()
        .map(|(&rank, lane)| (rank, classified_windows(lane)))
        .collect();
    let mut segments = Vec::new();
    for &(rank, from, to) in stretches.iter().rev() {
        classify_stretch(rank, from, to, &windows[&rank], &mut segments);
    }
    segments.extend(edge_segs.iter().copied());
    segments.sort_by_key(|s| (s.from_ns, s.to_ns));
    segments.retain(|s| s.dur() > 0);

    let edges = edge_segs.len() as u64;
    let (mut compute_ns, mut wait_ns) = (0u64, 0u64);
    let mut comm_ns: u64 = edge_segs.iter().map(Segment::dur).sum();
    let mut per_rank: HashMap<u64, u64> = HashMap::new();
    for &(rank, from, to) in &stretches {
        *per_rank.entry(rank).or_default() += to.saturating_sub(from);
    }
    for s in &segments {
        if edge_segs
            .iter()
            .any(|e| e.from_ns == s.from_ns && e.to_ns == s.to_ns && e.rank == s.rank)
        {
            continue; // already summed into comm_ns
        }
        match s.kind {
            SegmentKind::Compute => compute_ns += s.dur(),
            SegmentKind::Comm => comm_ns += s.dur(),
            SegmentKind::Wait => wait_ns += s.dur(),
        }
    }

    let on_rank_total: u64 = per_rank.values().sum();
    let mut rank_path_ns: Vec<(u64, u64)> = per_rank.into_iter().collect();
    rank_path_ns.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let (dominant_rank, dominant_ns) = rank_path_ns[0];
    let dominant_share_permille = (dominant_ns * 1000).checked_div(on_rank_total).unwrap_or(0);

    // Dominant phase: the phase span overlapping most of the dominant
    // rank's on-path time. The outermost `job` span would trivially win,
    // so it only counts when nothing finer overlaps.
    let dominant_phase = {
        let lane = &lanes[&dominant_rank];
        let mut open: HashMap<u64, u64> = HashMap::new();
        let mut phase_windows: Vec<(u64, u64, u64)> = Vec::new(); // (code, from, to)
        for e in lane {
            match e.kind {
                EventKind::PhaseBegin => {
                    open.insert(e.a, e.t_ns);
                }
                EventKind::PhaseEnd => {
                    if let Some(from) = open.remove(&e.a) {
                        phase_windows.push((e.a, from, e.t_ns));
                    }
                }
                _ => {}
            }
        }
        let mut overlap: HashMap<u64, u64> = HashMap::new();
        for &(rank, from, to) in &stretches {
            if rank != dominant_rank {
                continue;
            }
            for &(code, w_from, w_to) in &phase_windows {
                let a = from.max(w_from);
                let b = to.min(w_to);
                if b > a {
                    *overlap.entry(code).or_default() += b - a;
                }
            }
        }
        let pick = |skip_job: bool| {
            overlap
                .iter()
                .filter(|&(&code, _)| !skip_job || code != Phase::Job as u64)
                .max_by_key(|&(_, &ns)| ns)
                .map(|(&code, _)| code)
        };
        pick(true)
            .or_else(|| pick(false))
            .and_then(Phase::from_code)
            .map_or("", Phase::name)
    };

    // Round windows (union across ranks) and who the path ran through.
    let mut round_windows: HashMap<u64, (u64, u64)> = HashMap::new();
    for lane in lanes.values() {
        let mut begin: HashMap<u64, u64> = HashMap::new();
        for e in lane {
            match e.kind {
                EventKind::RoundBegin => {
                    begin.insert(e.a, e.t_ns);
                }
                EventKind::RoundEnd => {
                    if let Some(from) = begin.remove(&e.a) {
                        let w = round_windows.entry(e.a).or_insert((from, e.t_ns));
                        w.0 = w.0.min(from);
                        w.1 = w.1.max(e.t_ns);
                    }
                }
                _ => {}
            }
        }
    }
    let mut gating = Vec::new();
    for (&round, &(w_from, w_to)) in &round_windows {
        let mut best: Option<(u64, u64)> = None; // (ns, rank)
        for &(rank, from, to) in &stretches {
            let a = from.max(w_from);
            let b = to.min(w_to);
            if b > a {
                let ns = b - a;
                if best.is_none_or(|(n, _)| ns > n) {
                    best = Some((ns, rank));
                }
            }
        }
        if let Some((_, rank)) = best {
            gating.push((round, rank));
        }
    }
    gating.sort_unstable();

    let path_start = segments.first().map_or(t_start, |s| s.from_ns);
    Some(CriticalPath {
        wall_ns: t_end.saturating_sub(t_start),
        path_ns: t_end.saturating_sub(path_start),
        compute_ns,
        comm_ns,
        wait_ns,
        edges,
        rank_path_ns,
        dominant_rank,
        dominant_share_permille,
        dominant_phase,
        gating,
        segments,
    })
}

/// The sender rank a flow id encodes (its upper bits).
pub fn flow_sender(flow: u64) -> u64 {
    flow >> FLOW_SEQ_BITS
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimir_obs::pack_rank_bytes;

    fn ev(t_ns: u64, kind: EventKind, a: u64, b: u64) -> Event {
        Event { t_ns, kind, a, b }
    }

    fn flow(rank: u64, seq: u64) -> u64 {
        (rank << FLOW_SEQ_BITS) | seq
    }

    /// Two ranks; rank 1 computes for 90 of 100 ns, then messages rank 0,
    /// which had been idle since t=5. The measured path must run through
    /// rank 1's long stretch, not rank 0's wait.
    #[test]
    fn path_jumps_to_the_sender_that_gated_the_receive() {
        let f = flow(1, 1);
        let mut r0 = RankReport::new(0);
        r0.events = vec![
            ev(0, EventKind::PhaseBegin, Phase::Map as u64, 0),
            ev(5, EventKind::StepBegin, Step::Sync as u64, 0),
            ev(95, EventKind::FlowRecv, f, pack_rank_bytes(1, 8)),
            ev(96, EventKind::StepEnd, Step::Sync as u64, 0),
            ev(100, EventKind::PhaseEnd, Phase::Map as u64, 0),
        ];
        let mut r1 = RankReport::new(1);
        r1.events = vec![
            ev(0, EventKind::PhaseBegin, Phase::Map as u64, 0),
            ev(90, EventKind::FlowSend, f, pack_rank_bytes(0, 8)),
            ev(92, EventKind::PhaseEnd, Phase::Map as u64, 0),
        ];
        let p = critical_path(&[r0, r1]).expect("measured path");
        assert_eq!(p.wall_ns, 100);
        assert_eq!(p.edges, 1);
        assert_eq!(p.dominant_rank, 1, "the path ran through the sender");
        assert_eq!(p.dominant_phase, "map");
        let r1_ns = p
            .rank_path_ns
            .iter()
            .find(|&&(r, _)| r == 1)
            .map(|&(_, ns)| ns)
            .unwrap();
        assert_eq!(r1_ns, 90, "rank 1's whole compute stretch is on-path");
        // Rank 0's off-path wait (t=5..95) must NOT be on the path; only
        // its tail after the gating receive is.
        let r0_ns = p
            .rank_path_ns
            .iter()
            .find(|&&(r, _)| r == 0)
            .map(|&(_, ns)| ns)
            .unwrap();
        assert_eq!(r0_ns, 5, "only the post-receive tail is rank 0's");
        // Path is contiguous: 90 (r1) + 5 (edge) + 5 (r0 tail) = 100.
        assert_eq!(p.path_ns, 100);
        assert_eq!(p.comm_ns, 5, "the in-flight edge");
        assert_eq!(p.wait_ns, 1, "the sync tail after the gating receive");
        assert_eq!(p.compute_ns, 94, "rank 1's stretch + rank 0's wrap-up");
    }

    /// An early message (send long before the receiver's previous local
    /// event) is not gating: the walk stays on the receiver's lane.
    #[test]
    fn early_messages_do_not_divert_the_path() {
        let f = flow(1, 1);
        let mut r0 = RankReport::new(0);
        r0.events = vec![
            ev(0, EventKind::PhaseBegin, Phase::Reduce as u64, 0),
            ev(80, EventKind::MemSample, 0, 0), // busy until just before the recv
            ev(90, EventKind::FlowRecv, f, pack_rank_bytes(1, 8)),
            ev(100, EventKind::PhaseEnd, Phase::Reduce as u64, 0),
        ];
        let mut r1 = RankReport::new(1);
        r1.events = vec![
            ev(0, EventKind::PhaseBegin, Phase::Map as u64, 0),
            ev(10, EventKind::FlowSend, f, pack_rank_bytes(0, 8)),
            ev(12, EventKind::PhaseEnd, Phase::Map as u64, 0),
        ];
        let p = critical_path(&[r0, r1]).expect("measured path");
        assert_eq!(
            p.dominant_rank, 0,
            "receiver was busy, so its own lane is the path"
        );
        assert_eq!(p.dominant_phase, "reduce");
        assert_eq!(p.edges, 0, "no gating edge — the message arrived early");
    }

    /// Multi-rank lanes without any flow events cannot be measured.
    #[test]
    fn multi_rank_without_flows_is_not_measured() {
        let mut r0 = RankReport::new(0);
        r0.events = vec![ev(0, EventKind::MemSample, 0, 0)];
        let mut r1 = RankReport::new(1);
        r1.events = vec![ev(10, EventKind::MemSample, 0, 0)];
        assert!(critical_path(&[r0, r1]).is_none());
        // A single lane is trivially measurable.
        let mut solo = RankReport::new(0);
        solo.events = vec![
            ev(0, EventKind::PhaseBegin, Phase::Map as u64, 0),
            ev(50, EventKind::PhaseEnd, Phase::Map as u64, 0),
        ];
        let p = critical_path(&[solo]).expect("single lane");
        assert_eq!(p.dominant_rank, 0);
        assert_eq!(p.path_ns, 50);
        // Empty reports: nothing to measure.
        assert!(critical_path(&[RankReport::new(0)]).is_none());
    }

    /// Step spans classify on-path time; uncovered time is compute.
    #[test]
    fn segments_classify_against_step_spans() {
        let mut r = RankReport::new(0);
        r.events = vec![
            ev(0, EventKind::PhaseBegin, Phase::Map as u64, 0),
            ev(10, EventKind::StepBegin, Step::Sync as u64, 0),
            ev(30, EventKind::StepEnd, Step::Sync as u64, 0),
            ev(40, EventKind::StepBegin, Step::Alltoallv as u64, 0),
            ev(70, EventKind::StepEnd, Step::Alltoallv as u64, 0),
            ev(100, EventKind::PhaseEnd, Phase::Map as u64, 0),
        ];
        let p = critical_path(&[r]).expect("single lane");
        assert_eq!(p.wait_ns, 20, "the sync span");
        assert_eq!(p.comm_ns, 30, "the alltoallv span");
        assert_eq!(p.compute_ns, 50, "everything uncovered");
        assert_eq!(p.path_ns, 100);
        let kinds: Vec<SegmentKind> = p.segments.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SegmentKind::Compute,
                SegmentKind::Wait,
                SegmentKind::Compute,
                SegmentKind::Comm,
                SegmentKind::Compute,
            ]
        );
    }

    #[test]
    fn gating_names_the_rank_holding_each_round() {
        let f = flow(1, 1);
        let mut r0 = RankReport::new(0);
        r0.events = vec![
            ev(0, EventKind::RoundBegin, 0, 0),
            ev(5, EventKind::StepBegin, Step::Sync as u64, 0),
            ev(95, EventKind::FlowRecv, f, pack_rank_bytes(1, 8)),
            ev(98, EventKind::StepEnd, Step::Sync as u64, 0),
            ev(100, EventKind::RoundEnd, 0, 1),
        ];
        let mut r1 = RankReport::new(1);
        r1.events = vec![
            ev(0, EventKind::RoundBegin, 0, 0),
            ev(90, EventKind::FlowSend, f, pack_rank_bytes(0, 8)),
            ev(99, EventKind::RoundEnd, 0, 1),
        ];
        let p = critical_path(&[r0, r1]).expect("measured path");
        assert_eq!(p.gating, vec![(0, 1)], "rank 1 gated round 0");
        assert_eq!(p.rounds_gated_by(1), 1);
        assert_eq!(p.rounds_gated_by(0), 0);
        let json = p.to_json();
        assert_eq!(json.get("edges").unwrap().as_u64(), Some(1));
        let text = p.to_text();
        assert!(text.contains("critical path:"));
        assert!(text.contains("rank 1"));
    }
}
