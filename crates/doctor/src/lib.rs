//! `mimir-doctor`: post-mortem diagnosis over Mimir trace exports.
//!
//! The observability stack answers "what happened" (chrome timelines,
//! JSONL counters); this crate answers "what went *wrong*, and what does
//! the paper say to do about it". [`diagnose`] runs a fixed rule set
//! over a run's gathered [`RankReport`]s and produces a [`Diagnosis`]:
//! a ranked list of [`Finding`]s, each with a severity, the ranks
//! involved, numeric evidence, and a hint grounded in the Mimir paper's
//! design sections.
//!
//! Rules:
//!
//! | code | looks at | fires on |
//! |---|---|---|
//! | `critical-path` | flow-edge happens-before DAG | always reports the measured path; warns when one rank holds an outsized share |
//! | `straggler` | per-rank sync+barrier waits | peers waiting ≥50% longer than the critical rank — only when no path could be measured |
//! | `partition-skew` | per-destination byte histograms, cross-rank receive totals | imbalance ≥2× the fair share |
//! | `memory-headroom` | pool peak vs budget, OOM events | margin <10% or any budget violation |
//! | `spill-amplification` | spilled vs emitted shuffle bytes | spill exceeding the data itself |
//! | `dropped-events` | trace ring overwrites | any loss; >5% is critical |
//! | `job-lifecycle` | scheduler job records | non-`Done` outcomes, suspend-and-retry churn |
//! | `deadlock-suspect` | wait fraction vs wall time | ≥95% wall spent blocked with nothing received |
//! | `adaptation` | adaptive-controller counters, `RoundWait` stream | any adaptive decision (info) or mode-switch flapping (warn) |
//! | `cache-efficiency` | cross-job cache counters, evict/reload event stream | low hit rate while cached bytes crowd the pool, eviction thrash; reports elisions and per-name residency (info) |
//! | `transport` | per-backend wire counters (frames, bytes, handshake) | handshake stalls, tiny-message chatter; silent on the in-process backend |
//!
//! Two companion modes live in [`live`]: **live-attach** (`mimir-doctor
//! --watch <dir>` tails a run's telemetry directory and re-runs the
//! live-capable rules over a rolling window while the job is still in
//! flight) and **post-mortem triage** ([`diagnose_postmortem`] ingests
//! the flight-recorder dumps a crashed run leaves behind and names the
//! rank that died without dumping).
//!
//! The `mimir-doctor` binary wraps this over `.jsonl` / `.trace.json`
//! files; see `src/main.rs` or `README.md`.

#![warn(missing_docs)]

pub mod critical_path;
pub mod ingest;
pub mod live;
pub mod rules;

pub use critical_path::{critical_path, CriticalPath, Segment, SegmentKind};
pub use ingest::{ingest_chrome, ingest_jsonl, ingest_path_text};
pub use live::{diagnose_postmortem, LiveTailer, LiveWatcher, LiveWindow};

use mimir_obs::{Json, RankReport};

/// How bad a finding is. Ordered: `Info < Warn < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing, no action needed.
    Info,
    /// Degrades performance or trustworthiness; act when convenient.
    Warn,
    /// Wrong results, lost work, or a violated budget; act now.
    Critical,
}

impl Severity {
    /// Lower-case name, as printed and as accepted by `--fail-on`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }

    /// Parses a `--fail-on` argument.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// Formats a nanosecond quantity for human output: the largest of
/// ns/µs/ms/s that keeps the value ≥ 1, printed to 3 significant digits.
/// JSON output keeps raw nanoseconds; only [`Diagnosis::to_text`] and
/// the critical-path text rendering humanize.
pub fn fmt_duration_ns(ns: f64) -> String {
    let ns = ns.max(0.0);
    let (v, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    let prec = if v >= 100.0 {
        0
    } else if v >= 10.0 {
        1
    } else {
        2
    };
    format!("{v:.prec$} {unit}")
}

/// Formats a byte quantity for human output: the largest of
/// B/KiB/MiB/GiB/TiB that keeps the value ≥ 1, printed to 3 significant
/// digits (whole bytes stay exact). JSON output keeps raw bytes; only
/// [`Diagnosis::to_text`] humanizes.
pub fn fmt_bytes(bytes: f64) -> String {
    let bytes = bytes.max(0.0);
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        return format!("{} B", bytes as u64);
    }
    let prec = if v >= 100.0 {
        0
    } else if v >= 10.0 {
        1
    } else {
        2
    };
    format!("{v:.prec$} {}", UNITS[unit])
}

/// Whether an evidence key names a byte quantity (`max_dest_bytes`,
/// `bytes_recvd`, `wire_bytes_sent`, …): any `_`-separated component
/// equal to `bytes`.
fn is_bytes_key(k: &str) -> bool {
    k.split('_').any(|part| part == "bytes")
}

/// One diagnosed problem: what, where, how bad, and what to do.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable rule code (e.g. `partition-skew`).
    pub code: &'static str,
    /// One-line human statement of the problem.
    pub title: String,
    /// Pipeline phase the problem lives in, when attributable
    /// (e.g. `map/aggregate (shuffle)`), else empty.
    pub phase: &'static str,
    /// Ranks implicated (hotspot, critical rank, …); empty when global.
    pub ranks: Vec<u64>,
    /// Numeric evidence backing the title, as `(name, value)` pairs.
    pub evidence: Vec<(String, Json)>,
    /// Remedy, grounded in the paper where one applies.
    pub hint: &'static str,
}

impl Finding {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("severity", Json::Str(self.severity.as_str().into())),
            ("code", Json::Str(self.code.into())),
            ("title", Json::Str(self.title.clone())),
            ("phase", Json::Str(self.phase.into())),
            (
                "ranks",
                Json::Arr(self.ranks.iter().map(|&r| Json::Num(r as f64)).collect()),
            ),
            (
                "evidence",
                Json::Obj(
                    self.evidence
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ),
            ("hint", Json::Str(self.hint.into())),
        ])
    }
}

/// The full diagnosis of one run: findings sorted most severe first.
#[derive(Debug, Clone, Default)]
pub struct Diagnosis {
    /// All findings, sorted by descending severity then rule code.
    pub findings: Vec<Finding>,
}

impl Diagnosis {
    /// The most severe finding's severity, or `None` for a clean run.
    pub fn worst_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Structured rendering, for scripting and the CI artifact.
    pub fn to_json(&self) -> Json {
        let count = |s: Severity| self.findings.iter().filter(|f| f.severity == s).count() as f64;
        Json::obj(vec![
            (
                "worst",
                match self.worst_severity() {
                    Some(s) => Json::Str(s.as_str().into()),
                    None => Json::Null,
                },
            ),
            (
                "counts",
                Json::obj(vec![
                    ("critical", Json::Num(count(Severity::Critical))),
                    ("warn", Json::Num(count(Severity::Warn))),
                    ("info", Json::Num(count(Severity::Info))),
                ]),
            ),
            (
                "findings",
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            ),
        ])
    }

    /// Human rendering: one block per finding, worst first.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            out.push_str("mimir-doctor: no findings — the run looks healthy\n");
            return out;
        }
        let count = |s: Severity| self.findings.iter().filter(|f| f.severity == s).count();
        out.push_str(&format!(
            "mimir-doctor: {} finding(s) — {} critical, {} warn, {} info\n",
            self.findings.len(),
            count(Severity::Critical),
            count(Severity::Warn),
            count(Severity::Info),
        ));
        for f in &self.findings {
            out.push('\n');
            out.push_str(&format!(
                "[{}] {}: {}\n",
                f.severity.as_str().to_uppercase(),
                f.code,
                f.title
            ));
            if !f.phase.is_empty() {
                out.push_str(&format!("  phase: {}\n", f.phase));
            }
            if !f.ranks.is_empty() {
                let ranks: Vec<String> = f.ranks.iter().map(|r| r.to_string()).collect();
                out.push_str(&format!("  ranks: {}\n", ranks.join(", ")));
            }
            for (k, v) in &f.evidence {
                // Durations are stored as raw nanoseconds and sizes as
                // raw bytes (stable for scripting); the human rendering
                // converts both.
                match v {
                    Json::Num(ns) if k.ends_with("_ns") => {
                        out.push_str(&format!("  {k}: {}\n", fmt_duration_ns(*ns)));
                    }
                    Json::Num(b) if is_bytes_key(k) => {
                        out.push_str(&format!("  {k}: {}\n", fmt_bytes(*b)));
                    }
                    _ => out.push_str(&format!("  {k}: {v}\n")),
                }
            }
            out.push_str(&format!("  hint: {}\n", f.hint));
        }
        out
    }
}

/// Runs every rule over the gathered per-rank reports of one run.
///
/// Sorting is deterministic: descending severity, then rule code, then
/// title — so goldens and CI diffs are stable.
pub fn diagnose(reports: &[RankReport]) -> Diagnosis {
    let mut findings = Vec::new();
    // A measured critical path supersedes the straggler heuristic: the
    // heuristic infers the gating rank from aggregate wait counters, the
    // path walks the actual happens-before edges.
    match critical_path::critical_path(reports) {
        Some(path) => rules::critical_path_rule(&path, reports, &mut findings),
        None => rules::straggler(reports, &mut findings),
    }
    rules::partition_skew(reports, &mut findings);
    rules::memory_headroom(reports, &mut findings);
    rules::spill_amplification(reports, &mut findings);
    rules::dropped_events(reports, &mut findings);
    rules::job_lifecycle(reports, &mut findings);
    rules::deadlock_suspect(reports, &mut findings);
    rules::adaptation(reports, &mut findings);
    rules::cache_efficiency(reports, &mut findings);
    rules::transport(reports, &mut findings);
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.title.cmp(&b.title))
    });
    Diagnosis { findings }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_parses() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Critical);
        for s in [Severity::Info, Severity::Warn, Severity::Critical] {
            assert_eq!(Severity::parse(s.as_str()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn clean_reports_produce_no_findings() {
        let reports: Vec<RankReport> = (0..4).map(RankReport::new).collect();
        let d = diagnose(&reports);
        assert!(d.findings.is_empty(), "got: {}", d.to_text());
        assert_eq!(d.worst_severity(), None);
        assert!(d.to_text().contains("healthy"));
        assert_eq!(d.to_json().get("worst"), Some(&Json::Null));
    }

    #[test]
    fn durations_humanize_to_three_significant_digits() {
        assert_eq!(fmt_duration_ns(0.0), "0.00 ns");
        assert_eq!(fmt_duration_ns(412.0), "412 ns");
        assert_eq!(fmt_duration_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_duration_ns(12_345.0), "12.3 µs");
        assert_eq!(fmt_duration_ns(987_654.0), "988 µs");
        assert_eq!(fmt_duration_ns(50_000_000.0), "50.0 ms");
        assert_eq!(fmt_duration_ns(1_234_000_000.0), "1.23 s");
        assert_eq!(fmt_duration_ns(765_000_000_000.0), "765 s");
    }

    #[test]
    fn text_humanizes_ns_evidence_but_json_stays_raw() {
        let mut r = RankReport::new(0);
        r.ranks = 2;
        // Trip the deadlock rule: its evidence carries several *_ns keys.
        r.times.map_s = 0.2;
        r.waits.total_wait_ns = 198_000_000;
        let reports = vec![r, RankReport::new(1)];
        let d = diagnose(&reports);
        let text = d.to_text();
        assert!(
            text.contains("total_wait_ns: 198 ms"),
            "durations humanize in text:\n{text}"
        );
        assert!(!text.contains("198000000"), "no raw ns in text:\n{text}");
        let json = d.to_json().to_string();
        assert!(
            json.contains("198000000"),
            "JSON keeps raw nanoseconds:\n{json}"
        );
    }

    #[test]
    fn bytes_humanize_to_three_significant_digits() {
        assert_eq!(fmt_bytes(0.0), "0 B");
        assert_eq!(fmt_bytes(999.0), "999 B");
        assert_eq!(fmt_bytes(1024.0), "1.00 KiB");
        assert_eq!(fmt_bytes(1536.0), "1.50 KiB");
        assert_eq!(fmt_bytes(10.0 * 1024.0 * 1024.0), "10.0 MiB");
        assert_eq!(fmt_bytes(200.0 * 1024.0 * 1024.0 * 1024.0), "200 GiB");
        assert!(is_bytes_key("max_dest_bytes"));
        assert!(is_bytes_key("bytes_recvd"));
        assert!(is_bytes_key("wire_bytes_sent"));
        assert!(!is_bytes_key("imbalance_permille"));
        assert!(!is_bytes_key("total_wait_ns"));
    }

    #[test]
    fn text_humanizes_bytes_evidence_but_json_stays_raw() {
        let mut r = RankReport::new(0);
        r.ranks = 1;
        // Trip the headroom rule: its evidence carries *_bytes keys.
        r.mem.budget_bytes = 1 << 30;
        r.mem.peak_bytes = (1 << 30) - (1 << 20);
        let d = diagnose(&[r]);
        let text = d.to_text();
        assert!(
            text.contains("budget_bytes: 1.00 GiB"),
            "sizes humanize in text:\n{text}"
        );
        assert!(
            text.contains("peak_bytes: 1023 MiB"),
            "sizes humanize in text:\n{text}"
        );
        assert!(
            !text.contains("budget_bytes: 1073741824"),
            "no raw bytes in evidence lines:\n{text}"
        );
        let json = d.to_json().to_string();
        assert!(json.contains("1073741824"), "JSON keeps raw bytes:\n{json}");
    }

    #[test]
    fn diagnosis_renders_sorted_json_and_text() {
        let mut r = RankReport::new(0);
        r.ranks = 1;
        r.events_dropped = 5; // warn
        r.mem.budget_bytes = 1000;
        r.mem.peak_bytes = 900;
        r.mem.oom_events = 2; // critical
        let d = diagnose(&[r]);
        assert!(d.findings.len() >= 2);
        assert_eq!(d.findings[0].severity, Severity::Critical, "worst first");
        assert_eq!(d.worst_severity(), Some(Severity::Critical));
        let j = d.to_json();
        assert_eq!(j.get("worst").unwrap().as_str(), Some("critical"));
        let text = d.to_text();
        assert!(text.contains("[CRITICAL]"));
        assert!(text.contains("hint:"));
    }
}
