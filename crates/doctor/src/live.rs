//! The online doctor: live-attach to a telemetry directory while the
//! run is still in flight, and post-mortem triage of flight-recorder
//! corpses after a crash.
//!
//! The live telemetry plane (`mimir_obs::live`, armed via
//! `MIMIR_LIVE_DIR`) makes every rank append cumulative
//! `{"record":"live",...}` snapshots to `rank<r>.live.jsonl` on a fixed
//! interval. This module turns that stream back into diagnoses:
//!
//! - [`LiveTailer`] tails the per-rank files incrementally (byte
//!   offsets, partial-line carry), yielding parsed [`LiveSample`]s.
//! - [`LiveWindow`] keeps a rolling time window of samples per rank and
//!   produces *windowed deltas*: what each rank did over the last few
//!   seconds, as a synthetic [`RankReport`] the ordinary rules accept.
//! - [`LiveWatcher`] wires both to the rule engine: each step tails,
//!   windows, re-runs the live-capable rules ([`LIVE_RULES`]) over the
//!   deltas, dedupes findings (re-firing on severity escalation), and
//!   appends newly fired findings to `<dir>/findings.jsonl`. It also
//!   renders a refreshing per-rank status view for `mimir-doctor
//!   --watch`.
//! - [`diagnose_postmortem`] ingests a crash-scoped dump directory
//!   (`rank<r>.crash.jsonl` files written by the flight recorder),
//!   infers never-dumped (killed) ranks from the survivors' disconnect
//!   messages, and folds everything into one [`Diagnosis`].

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use mimir_obs::{live::PHASE_NONE, Json, Phase, RankReport};

use crate::{diagnose, Diagnosis, Finding, Severity};

/// Rule codes the online doctor re-runs over the rolling window. The
/// others need whole-run context (critical path, spill totals, cache
/// end-state) and stay post-mortem-only.
pub const LIVE_RULES: [&str; 6] = [
    "straggler",
    "critical-path",
    "partition-skew",
    "memory-headroom",
    "deadlock-suspect",
    "transport",
];

/// A rank goes *stale* when it has published nothing for this many
/// milliseconds while the plane is still being tailed — the live
/// analogue of a disconnect.
pub const STALE_MS: u64 = 2_000;

/// Default rolling-window width the deltas are computed over.
pub const WINDOW_MS: u64 = 5_000;

/// One parsed `live` record: a cumulative counter snapshot from a rank,
/// stamped with the publisher's sequence number and rank-relative time.
#[derive(Debug, Clone)]
pub struct LiveSample {
    /// Publishing rank.
    pub rank: u64,
    /// World size the rank was armed with.
    pub world: u64,
    /// Publisher sequence number (gaps mean lost writes).
    pub seq: u64,
    /// Milliseconds since the rank armed its plane.
    pub t_ms: u64,
    /// Latest phase mark (`Phase` discriminant, or
    /// [`mimir_obs::live::PHASE_NONE`]).
    pub phase: u64,
    /// The cumulative counters, as a full report.
    pub report: RankReport,
}

/// What one tail step observed in a rank's live file.
#[derive(Debug)]
pub enum TailEvent {
    /// A new cumulative snapshot (boxed: a full RankReport dwarfs the
    /// other variant).
    Sample(Box<LiveSample>),
    /// The rank disarmed cleanly (`live_end`).
    End {
        /// The finished rank.
        rank: u64,
    },
}

/// Incremental reader over a live directory's `rank<r>.live.jsonl`
/// files: remembers a byte offset per file and only parses complete
/// lines, so it is safe to poll while the publishers are mid-write.
#[derive(Debug)]
pub struct LiveTailer {
    dir: PathBuf,
    /// Per-file read offset and partial trailing line.
    state: HashMap<PathBuf, (u64, String)>,
}

impl LiveTailer {
    /// Tails `dir` (created or not yet populated is fine — polling just
    /// yields nothing until files appear).
    pub fn new(dir: impl Into<PathBuf>) -> LiveTailer {
        LiveTailer {
            dir: dir.into(),
            state: HashMap::new(),
        }
    }

    /// Reads every complete new line from every rank file, in file
    /// order. I/O errors on individual files are skipped (a publisher
    /// may be mid-rename); malformed lines are dropped silently — the
    /// stream must stay usable even if a rank's file is truncated.
    pub fn poll(&mut self) -> Vec<TailEvent> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return out;
        };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("rank") && n.ends_with(".live.jsonl"))
            })
            .collect();
        files.sort();
        for path in files {
            let (offset, partial) = self.state.entry(path.clone()).or_default();
            let Ok(mut f) = std::fs::File::open(&path) else {
                continue;
            };
            if f.seek(SeekFrom::Start(*offset)).is_err() {
                continue;
            }
            let mut buf = String::new();
            let Ok(n) = f.read_to_string(&mut buf) else {
                continue;
            };
            *offset += n as u64;
            let mut text = std::mem::take(partial);
            text.push_str(&buf);
            let complete_up_to = text.rfind('\n').map_or(0, |i| i + 1);
            *partial = text[complete_up_to..].to_string();
            for line in text[..complete_up_to].lines() {
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(doc) = Json::parse(line) else {
                    continue;
                };
                match doc.get("record").and_then(Json::as_str) {
                    Some("live") => {
                        if let Some(s) = parse_sample(&doc) {
                            out.push(TailEvent::Sample(Box::new(s)));
                        }
                    }
                    Some("live_end") => {
                        if let Some(rank) = doc.get("rank").and_then(Json::as_u64) {
                            out.push(TailEvent::End { rank });
                        }
                    }
                    _ => {}
                }
            }
        }
        out
    }
}

fn parse_sample(doc: &Json) -> Option<LiveSample> {
    let report = RankReport::from_json(doc).ok()?;
    let num = |k: &str| doc.get(k).and_then(Json::as_u64);
    Some(LiveSample {
        rank: report.rank,
        world: num("world")?,
        seq: num("seq")?,
        t_ms: num("t_ms")?,
        phase: num("phase").unwrap_or(PHASE_NONE),
        report,
    })
}

/// Per-rank bookkeeping inside the window.
#[derive(Debug)]
struct RankLane {
    samples: VecDeque<LiveSample>,
    last_arrival: Instant,
    ended: bool,
}

/// A rolling time-series window of live samples, keyed by rank, from
/// which per-rank *windowed deltas* are computed: synthetic
/// [`RankReport`]s describing only the last [`WINDOW_MS`] of activity,
/// in exactly the shape the post-mortem rules consume.
#[derive(Debug)]
pub struct LiveWindow {
    window_ms: u64,
    lanes: HashMap<u64, RankLane>,
    world: u64,
}

impl Default for LiveWindow {
    fn default() -> Self {
        LiveWindow::new(WINDOW_MS)
    }
}

impl LiveWindow {
    /// An empty window holding `window_ms` of history per rank.
    pub fn new(window_ms: u64) -> LiveWindow {
        LiveWindow {
            window_ms: window_ms.max(1),
            lanes: HashMap::new(),
            world: 0,
        }
    }

    /// Feeds one tail event in.
    pub fn push(&mut self, ev: TailEvent) {
        match ev {
            TailEvent::Sample(s) => {
                let s = *s;
                self.world = self.world.max(s.world);
                let lane = self.lanes.entry(s.rank).or_insert_with(|| RankLane {
                    samples: VecDeque::new(),
                    last_arrival: Instant::now(),
                    ended: false,
                });
                lane.last_arrival = Instant::now();
                let newest = s.t_ms;
                lane.samples.push_back(s);
                let horizon = newest.saturating_sub(self.window_ms);
                // Keep one sample at-or-before the horizon as the delta
                // base, so the window always spans ~window_ms.
                while lane.samples.len() > 2 && lane.samples[1].t_ms <= horizon {
                    lane.samples.pop_front();
                }
            }
            TailEvent::End { rank } => {
                if let Some(lane) = self.lanes.get_mut(&rank) {
                    lane.ended = true;
                }
            }
        }
    }

    /// World size observed so far (0 before the first sample).
    pub fn world(&self) -> u64 {
        self.world
    }

    /// Ranks that have disarmed cleanly.
    pub fn ended(&self) -> usize {
        self.lanes.values().filter(|l| l.ended).count()
    }

    /// Ranks currently contributing samples.
    pub fn ranks(&self) -> usize {
        self.lanes.len()
    }

    /// The newest sample per rank, ascending by rank.
    pub fn latest(&self) -> Vec<&LiveSample> {
        let mut v: Vec<&LiveSample> = self
            .lanes
            .values()
            .filter_map(|l| l.samples.back())
            .collect();
        v.sort_by_key(|s| s.rank);
        v
    }

    /// The windowed delta per rank: newest snapshot minus the oldest
    /// retained one, with rank/world identity restored. Empty until at
    /// least one rank has two samples; ranks with a single sample
    /// contribute their snapshot as-is (everything since arm *is* the
    /// window).
    pub fn deltas(&self) -> Vec<RankReport> {
        let mut out = Vec::new();
        for lane in self.lanes.values() {
            let (Some(first), Some(last)) = (lane.samples.front(), lane.samples.back()) else {
                continue;
            };
            let mut d = if lane.samples.len() >= 2 {
                last.report.delta_since(&first.report)
            } else {
                last.report.clone()
            };
            d.rank = last.rank;
            d.ranks = self.world.max(1);
            out.push(d);
        }
        out.sort_by_key(|r| r.rank);
        out
    }

    /// Ranks silent for longer than `stale_ms` while not yet ended.
    pub fn stale(&self, stale_ms: u64) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .lanes
            .iter()
            .filter(|(_, l)| !l.ended && l.last_arrival.elapsed().as_millis() as u64 > stale_ms)
            .map(|(&r, _)| r)
            .collect();
        v.sort_unstable();
        v
    }
}

/// The live-attach loop state behind `mimir-doctor --watch`: tails the
/// directory, re-runs the live rules over the rolling window, appends
/// newly fired findings to `<dir>/findings.jsonl`, and renders a
/// refreshing status view.
pub struct LiveWatcher {
    dir: PathBuf,
    tailer: LiveTailer,
    window: LiveWindow,
    /// Best severity already reported per dedup key; a finding re-fires
    /// only when it escalates.
    reported: HashMap<String, Severity>,
    /// Everything fired so far, newest last (for rendering).
    fired: Vec<Finding>,
    started: Instant,
}

impl LiveWatcher {
    /// Attaches to a live directory (existing or not-yet-created).
    pub fn new(dir: impl Into<PathBuf>) -> LiveWatcher {
        let dir = dir.into();
        LiveWatcher {
            tailer: LiveTailer::new(&dir),
            window: LiveWindow::default(),
            reported: HashMap::new(),
            fired: Vec::new(),
            started: Instant::now(),
            dir,
        }
    }

    /// One watch step: tail, window, evaluate, log. Returns the
    /// findings that fired *this* step (already appended to the
    /// findings log).
    pub fn step(&mut self) -> Vec<Finding> {
        for ev in self.tailer.poll() {
            self.window.push(ev);
        }
        let mut fresh = Vec::new();
        let deltas = self.window.deltas();
        if !deltas.is_empty() {
            for f in diagnose(&deltas).findings {
                if !LIVE_RULES.contains(&f.code) {
                    continue;
                }
                self.consider(f, &mut fresh);
            }
        }
        // Staleness: a rank that stopped publishing mid-run is either
        // dead or wedged — the live analogue of a disconnect.
        let stale = self.window.stale(STALE_MS);
        if !stale.is_empty() && self.window.ended() < self.window.ranks() {
            let list: Vec<String> = stale.iter().map(|r| format!("rank {r}")).collect();
            self.consider(
                Finding {
                    severity: Severity::Critical,
                    code: "live-stale",
                    title: format!(
                        "{} stopped publishing live telemetry >{}ms ago (dead or wedged)",
                        list.join(", "),
                        STALE_MS
                    ),
                    phase: "",
                    ranks: stale,
                    evidence: vec![("stale_after_ms".into(), Json::Num(STALE_MS as f64))],
                    hint: "check the flight-recorder dir for this rank's crash dump; \
                           survivors' dumps name the peer they lost",
                },
                &mut fresh,
            );
        }
        if !fresh.is_empty() {
            self.append_log(&fresh);
        }
        fresh
    }

    fn consider(&mut self, f: Finding, fresh: &mut Vec<Finding>) {
        let ranks: Vec<String> = f.ranks.iter().map(u64::to_string).collect();
        let key = format!("{}|{}", f.code, ranks.join(","));
        match self.reported.get(&key) {
            Some(&prev) if prev >= f.severity => {}
            _ => {
                self.reported.insert(key, f.severity);
                self.fired.push(f.clone());
                fresh.push(f);
            }
        }
    }

    /// Appends fired findings (with a watcher-relative `at_ms` stamp) to
    /// `<dir>/findings.jsonl`. Best-effort: the watcher must never take
    /// the run down.
    fn append_log(&self, findings: &[Finding]) {
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("findings.jsonl"))
        else {
            return;
        };
        let at = self.started.elapsed().as_millis() as f64;
        for finding in findings {
            let mut doc = finding.to_json();
            if let Json::Obj(fields) = &mut doc {
                fields.push(("at_ms".into(), Json::Num(at)));
            }
            let _ = writeln!(f, "{doc}");
        }
    }

    /// Everything fired since attach, in firing order.
    pub fn findings(&self) -> &[Finding] {
        &self.fired
    }

    /// Whether every observed rank has disarmed cleanly (never true
    /// before the first sample).
    pub fn finished(&self) -> bool {
        self.window.ranks() > 0 && self.window.ended() == self.window.ranks()
    }

    /// The per-rank status view: one line per rank (phase, rank-time,
    /// window wait share, received bytes, pool residency), then the
    /// fired findings, newest last.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "mimir-doctor --watch {}  ({} rank(s), {} finished)\n",
            self.dir.display(),
            self.window.ranks(),
            self.window.ended(),
        ));
        let deltas: HashMap<u64, RankReport> = self
            .window
            .deltas()
            .into_iter()
            .map(|d| (d.rank, d))
            .collect();
        out.push_str("rank  phase      t_ms      wait%  recv       mem\n");
        for s in self.window.latest() {
            let phase = Phase::from_code(s.phase).map_or("-", Phase::name);
            let (wait_pct, recv) = deltas
                .get(&s.rank)
                .map(|d| {
                    let wall_ns = (d.times.map_s + d.times.convert_s + d.times.reduce_s) * 1e9;
                    let pct = if wall_ns > 0.0 {
                        (d.waits.total_wait_ns as f64 / wall_ns * 100.0).min(100.0)
                    } else {
                        0.0
                    };
                    (pct, d.comm.bytes_recvd)
                })
                .unwrap_or((0.0, 0));
            out.push_str(&format!(
                "{:<5} {:<10} {:<9} {:>5.1}  {:<10} {}\n",
                s.rank,
                phase,
                s.t_ms,
                wait_pct,
                crate::fmt_bytes(recv as f64),
                crate::fmt_bytes(s.report.mem.bytes_in_use as f64),
            ));
        }
        if self.fired.is_empty() {
            out.push_str("\nno findings yet\n");
        } else {
            out.push_str(&format!("\n{} finding(s):\n", self.fired.len()));
            for f in &self.fired {
                out.push_str(&format!(
                    "  [{}] {}: {}\n",
                    f.severity.as_str().to_uppercase(),
                    f.code,
                    f.title
                ));
            }
        }
        out
    }
}

/// One flight-recorder corpse: the crash header plus the dumped report.
#[derive(Debug)]
struct Corpse {
    rank: u64,
    world: u64,
    cause: String,
    message: String,
    report: Option<RankReport>,
}

/// Post-mortem triage of a flight-recorder directory: parses every
/// `rank*.crash.jsonl` dump, runs the full rule set over the dumped
/// reports, names never-dumped (killed) ranks from the survivors'
/// disconnect messages, and summarizes the crash causes.
///
/// # Errors
/// An unreadable directory, or a directory containing no crash dumps.
pub fn diagnose_postmortem(dir: &Path) -> Result<Diagnosis, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("rank") && n.ends_with(".crash.jsonl"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!(
            "{}: no rank*.crash.jsonl flight-recorder dumps found",
            dir.display()
        ));
    }
    let mut corpses: Vec<Corpse> = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        // A rank killed outright (SIGKILL, bare exit) leaves its
        // pre-opened SIGTERM dump file *empty* — the handler never ran.
        // An empty or headerless file is "no dump", not a parse error.
        if text.trim().is_empty() {
            continue;
        }
        let docs = Json::parse_lines(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let Some(crash) = docs
            .iter()
            .find(|d| d.get("record").and_then(Json::as_str) == Some("crash"))
        else {
            continue;
        };
        let num = |k: &str| crash.get(k).and_then(Json::as_u64).unwrap_or(0);
        let s = |k: &str| {
            crash
                .get(k)
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        };
        // The report + event lines are the standard export format; a
        // SIGTERM dump pre-formats an empty report, so tolerate both.
        let report = crate::ingest::ingest_jsonl(&text)
            .ok()
            .and_then(|mut v| (!v.is_empty()).then(|| v.remove(0)));
        corpses.push(Corpse {
            rank: num("rank"),
            world: num("world"),
            cause: s("cause"),
            message: s("message"),
            report,
        });
    }
    if corpses.is_empty() {
        return Err(format!(
            "{}: every dump file is empty — no rank got far enough to record",
            dir.display()
        ));
    }
    // A rank that never dumped was killed outright (SIGKILL leaves no
    // corpse); survivors' disconnect messages name the peer they lost.
    let world = corpses.iter().map(|c| c.world).max().unwrap_or(0) as usize;
    let dumped: Vec<u64> = corpses.iter().map(|c| c.rank).collect();
    let mut findings = Vec::new();
    let mut silent: Vec<u64> = (0..world as u64).filter(|r| !dumped.contains(r)).collect();
    if !silent.is_empty() {
        // Rank the silent candidates by how often the survivors'
        // messages mention them, so the title leads with the likely
        // root cause.
        let mentions = |rank: u64| {
            corpses
                .iter()
                .filter(|c| mentions_rank(&c.message, rank))
                .count()
        };
        silent.sort_by_key(|&r| std::cmp::Reverse(mentions(r)));
        let named = silent[0];
        let observers = mentions(named);
        silent.sort_unstable();
        findings.push(Finding {
            severity: Severity::Critical,
            code: "transport",
            title: format!(
                "rank {named} died without a flight-recorder dump; \
                 {observers} surviving rank(s) observed the disconnect"
            ),
            phase: "",
            ranks: silent.clone(),
            evidence: vec![
                ("world".into(), Json::Num(world as f64)),
                ("dumps_found".into(), Json::Num(dumped.len() as f64)),
                ("disconnect_observers".into(), Json::Num(observers as f64)),
            ],
            hint: "a rank killed by SIGKILL (or the OOM killer) cannot dump; \
                   its peers' crash causes and messages identify it — check \
                   scheduler/OS logs for why it died",
        });
    }
    // Summarize what the corpses say happened, worst cause first.
    for c in &corpses {
        let severity = match c.cause.as_str() {
            "disconnect" => Severity::Warn, // cascade, not root cause
            _ => Severity::Critical,
        };
        findings.push(Finding {
            severity,
            code: "flight-recorder",
            title: format!("rank {} dumped on {}: {}", c.rank, c.cause, c.message),
            phase: "",
            ranks: vec![c.rank],
            evidence: vec![("events_retained".into(), {
                let n = c.report.as_ref().map_or(0, |r| r.events.len());
                Json::Num(n as f64)
            })],
            hint: "the dump is a full trace export: re-run mimir-doctor on the \
                   individual rank*.crash.jsonl file for counters and timeline",
        });
    }
    // The dumped reports still hold full counters: run the ordinary
    // rules over whatever half-finished state the ranks died with.
    let reports: Vec<RankReport> = corpses.iter().filter_map(|c| c.report.clone()).collect();
    let mut diagnosis = diagnose(&reports);
    diagnosis.findings.extend(findings);
    diagnosis.findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.title.cmp(&b.title))
    });
    Ok(diagnosis)
}

/// Whether `message` mentions `rank` as a standalone "rank N" token
/// (so "rank 1" does not match "rank 12").
fn mentions_rank(message: &str, rank: u64) -> bool {
    let needle = format!("rank {rank}");
    let mut start = 0;
    while let Some(i) = message[start..].find(&needle) {
        let end = start + i + needle.len();
        let boundary = message[end..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_ascii_digit());
        if boundary {
            return true;
        }
        start = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live_line(rank: u64, seq: u64, t_ms: u64, wait_ns: u64, wall_s: f64) -> String {
        let mut r = RankReport::new(rank as usize);
        r.ranks = 2;
        r.waits.total_wait_ns = wait_ns;
        r.waits.sync_wait_ns = wait_ns;
        r.times.map_s = wall_s;
        let mut line = Json::obj(vec![("record", Json::Str("live".into()))]);
        if let (Json::Obj(dst), Json::Obj(src)) = (&mut line, r.to_json()) {
            dst.extend(src);
        }
        if let Json::Obj(dst) = &mut line {
            dst.push(("world".into(), Json::Num(2.0)));
            dst.push(("seq".into(), Json::Num(seq as f64)));
            dst.push(("t_ms".into(), Json::Num(t_ms as f64)));
            dst.push(("phase".into(), Json::Num(0.0)));
        }
        format!("{line}\n")
    }

    #[test]
    fn tailer_reads_incrementally_and_carries_partial_lines() {
        let dir = std::env::temp_dir().join(format!("doctor-tail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rank0.live.jsonl");
        let full = live_line(0, 0, 100, 0, 0.1);
        let (head, tail) = full.split_at(full.len() / 2);
        std::fs::write(&path, head).unwrap();
        let mut t = LiveTailer::new(&dir);
        assert!(t.poll().is_empty(), "half a line yields nothing");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(tail.as_bytes()).unwrap();
        f.write_all(live_line(0, 1, 200, 5, 0.2).as_bytes())
            .unwrap();
        f.write_all(b"{\"record\":\"live_end\",\"rank\":0,\"t_ms\":201}\n")
            .unwrap();
        drop(f);
        let evs = t.poll();
        assert_eq!(evs.len(), 3);
        assert!(matches!(&evs[0], TailEvent::Sample(s) if s.seq == 0 && s.t_ms == 100));
        assert!(matches!(&evs[1], TailEvent::Sample(s) if s.seq == 1));
        assert!(matches!(&evs[2], TailEvent::End { rank: 0 }));
        assert!(t.poll().is_empty(), "nothing new on re-poll");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn window_deltas_subtract_and_prune() {
        let mut w = LiveWindow::new(1_000);
        for (seq, t, wait) in [
            (0u64, 0u64, 0u64),
            (1, 500, 10),
            (2, 900, 30),
            (3, 2_500, 70),
        ] {
            let line = live_line(0, seq, t, wait, t as f64 / 1e3);
            let doc = Json::parse(line.trim()).unwrap();
            w.push(TailEvent::Sample(Box::new(parse_sample(&doc).unwrap())));
        }
        let d = w.deltas();
        assert_eq!(d.len(), 1);
        // Window pruned to [900, 2500]: delta counts 70-30.
        assert_eq!(d[0].waits.total_wait_ns, 40);
        assert_eq!(d[0].ranks, 2);
    }

    #[test]
    fn watcher_fires_a_live_straggler_and_dedupes() {
        let dir = std::env::temp_dir().join(format!("doctor-watch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Rank 0 waits 180 of 200ms; rank 1 (the straggler) barely waits.
        let mut f0 = Vec::new();
        let mut f1 = Vec::new();
        for (seq, t) in [(0u64, 100u64), (1, 300)] {
            f0.extend_from_slice(live_line(0, seq, t, t * 900_000, t as f64 / 1e3).as_bytes());
            f1.extend_from_slice(live_line(1, seq, t, t * 1_000, t as f64 / 1e3).as_bytes());
        }
        std::fs::write(dir.join("rank0.live.jsonl"), f0).unwrap();
        std::fs::write(dir.join("rank1.live.jsonl"), f1).unwrap();
        let mut watcher = LiveWatcher::new(&dir);
        let fired = watcher.step();
        let straggler = fired
            .iter()
            .find(|f| f.code == "straggler")
            .unwrap_or_else(|| panic!("no straggler among: {fired:?}"));
        assert!(
            straggler.ranks.contains(&1),
            "names the victim: {straggler:?}"
        );
        assert!(watcher.step().is_empty(), "no re-fire without escalation");
        let log = std::fs::read_to_string(dir.join("findings.jsonl")).unwrap();
        assert!(log.contains("straggler"), "findings hit the log: {log}");
        assert!(log.contains("at_ms"));
        let rendered = watcher.render();
        assert!(rendered.contains("straggler"), "render: {rendered}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn postmortem_names_the_never_dumped_rank() {
        let dir = std::env::temp_dir().join(format!("doctor-pm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for rank in [0u64, 1, 3] {
            let mut r = RankReport::new(rank as usize);
            r.ranks = 4;
            let crash = Json::obj(vec![
                ("record", Json::Str("crash".into())),
                ("rank", Json::Num(rank as f64)),
                ("world", Json::Num(4.0)),
                ("cause", Json::Str("disconnect".into())),
                (
                    "message",
                    Json::Str(format!("rank {rank}: lost connection to rank 2 mid-recv")),
                ),
            ]);
            let body = format!("{crash}\n{}", mimir_obs::jsonl_string(&[r]));
            std::fs::write(dir.join(format!("rank{rank}.crash.jsonl")), body).unwrap();
        }
        let d = diagnose_postmortem(&dir).unwrap();
        let dead = d
            .findings
            .iter()
            .find(|f| f.code == "transport" && f.severity == Severity::Critical)
            .unwrap_or_else(|| panic!("no dead-rank finding: {}", d.to_text()));
        assert!(
            dead.title.contains("rank 2"),
            "names the dead rank: {}",
            dead.title
        );
        assert_eq!(dead.ranks, vec![2]);
        assert!(
            d.findings
                .iter()
                .filter(|f| f.code == "flight-recorder")
                .count()
                == 3,
            "one summary per corpse: {}",
            d.to_text()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mentions_rank_respects_token_boundaries() {
        assert!(mentions_rank("lost rank 1 mid-recv", 1));
        assert!(!mentions_rank("lost rank 12 mid-recv", 1));
        assert!(mentions_rank("rank 12", 12));
        assert!(!mentions_rank("no ranks here", 3));
    }
}
