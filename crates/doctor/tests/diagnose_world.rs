//! Acceptance: the doctor flags a genuinely skewed run with the right
//! phase and hotspot, and stays silent on the uniform control — the
//! same job, same data, different partitioner.

use mimir_core::{MimirConfig, MimirContext, Partitioner};
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mimir_obs::RankReport;

const RANKS: usize = 4;
const KEYS_PER_RANK: usize = 400;

/// Runs a map-shuffle over synthetic keys and assembles the per-rank
/// reports the way `mimir-bench`'s trace session does.
fn run_shuffle(partitioner: Partitioner) -> Vec<RankReport> {
    run_world(RANKS, move |comm| {
        let rank = comm.rank();
        let pool = MemPool::unlimited(format!("n{rank}"), 64 * 1024);
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
            .expect("context");
        let out = ctx
            .job()
            .partitioner(partitioner.clone())
            .map_shuffle(&mut |em| {
                for i in 0..KEYS_PER_RANK {
                    let key = format!("key-{:05}", i * RANKS + rank);
                    em.emit(key.as_bytes(), b"1")?;
                }
                Ok(())
            })
            .expect("map_shuffle");
        let s = &out.stats;
        let mut r = RankReport::new(rank);
        r.ranks = RANKS as u64;
        r.shuffle.kvs_emitted = s.shuffle.kvs_emitted;
        r.shuffle.kv_bytes_emitted = s.shuffle.kv_bytes_emitted;
        r.shuffle.kvs_received = s.shuffle.kvs_received;
        r.shuffle.bytes_received = s.shuffle.bytes_received;
        r.shuffle.max_dest_bytes = s.shuffle.max_dest_bytes;
        r.shuffle.imbalance_permille = s.shuffle.imbalance_permille;
        r.shuffle.gini_permille = s.shuffle.gini_permille;
        r.waits.sync_wait_ns = s.shuffle.sync_wait_ns;
        r.waits.data_wait_ns = s.shuffle.data_wait_ns;
        r.waits.barrier_wait_ns = s.barrier_wait_ns;
        r.times.map_s = s.map_time.as_secs_f64();
        r
    })
}

#[test]
fn skewed_run_yields_a_skew_finding_naming_the_shuffle_phase() {
    let reports = run_shuffle(Partitioner::custom("to-zero", |_key, _n| 0));
    let d = mimir_doctor::diagnose(&reports);
    let skew = d
        .findings
        .iter()
        .find(|f| f.code == "partition-skew")
        .unwrap_or_else(|| panic!("no skew finding in:\n{}", d.to_text()));
    assert_eq!(skew.phase, "map/aggregate (shuffle)");
    assert_eq!(skew.ranks, vec![0], "rank 0 is the hotspot");
    assert_eq!(
        skew.severity,
        mimir_doctor::Severity::Critical,
        "a point mass is 4x the fair share"
    );
    assert!(skew.hint.contains("III-C2"), "paper-grounded hint");
}

#[test]
fn uniform_run_yields_no_skew_finding() {
    let reports = run_shuffle(Partitioner::hash());
    let d = mimir_doctor::diagnose(&reports);
    assert!(
        d.findings.iter().all(|f| f.code != "partition-skew"),
        "hash partitioning flagged as skew:\n{}",
        d.to_text()
    );
}
