//! Acceptance: the doctor flags a genuinely skewed run with the right
//! phase and hotspot, and stays silent on the uniform control — the
//! same job, same data, different partitioner.

use std::time::{Duration, Instant};

use mimir_core::{MimirConfig, MimirContext, Partitioner};
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mimir_obs::{jsonl_string, RankReport, Recorder};

const RANKS: usize = 4;
const KEYS_PER_RANK: usize = 400;

/// Runs a map-shuffle over synthetic keys and assembles the per-rank
/// reports the way `mimir-bench`'s trace session does.
fn run_shuffle(partitioner: Partitioner) -> Vec<RankReport> {
    run_world(RANKS, move |comm| {
        let rank = comm.rank();
        let pool = MemPool::unlimited(format!("n{rank}"), 64 * 1024);
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
            .expect("context");
        let out = ctx
            .job()
            .partitioner(partitioner.clone())
            .map_shuffle(&mut |em| {
                for i in 0..KEYS_PER_RANK {
                    let key = format!("key-{:05}", i * RANKS + rank);
                    em.emit(key.as_bytes(), b"1")?;
                }
                Ok(())
            })
            .expect("map_shuffle");
        let s = &out.stats;
        let mut r = RankReport::new(rank);
        r.ranks = RANKS as u64;
        r.shuffle.kvs_emitted = s.shuffle.kvs_emitted;
        r.shuffle.kv_bytes_emitted = s.shuffle.kv_bytes_emitted;
        r.shuffle.kvs_received = s.shuffle.kvs_received;
        r.shuffle.bytes_received = s.shuffle.bytes_received;
        r.shuffle.max_dest_bytes = s.shuffle.max_dest_bytes;
        r.shuffle.imbalance_permille = s.shuffle.imbalance_permille;
        r.shuffle.gini_permille = s.shuffle.gini_permille;
        r.waits.sync_wait_ns = s.shuffle.sync_wait_ns;
        r.waits.data_wait_ns = s.shuffle.data_wait_ns;
        r.waits.barrier_wait_ns = s.barrier_wait_ns;
        r.times.map_s = s.map_time.as_secs_f64();
        r
    })
}

/// Deterministic per-key work, identical on every rank. Without it the
/// map is pure emit and each exchange round is so short that the vote
/// collective's fixed message order (a few µs of delivery skew) shows up
/// as a genuine — but uninteresting — path asymmetry.
fn churn(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..200 {
        x = x.wrapping_mul(0x0100_0000_01b3).rotate_left(13) ^ 0x9e37_79b9_7f4a_7c15;
    }
    x
}

/// Runs a flow-traced map-shuffle with shared-epoch recorders (the only
/// way cross-rank timestamps are comparable) and an optional injected
/// delay, and round-trips the gathered reports through the `.jsonl`
/// export so the critical path runs on exactly what `mimir-doctor`
/// would read from disk.
fn run_traced_shuffle(
    ranks: usize,
    keys_per_rank: usize,
    throttle: bool,
    delay: Option<(usize, Duration)>,
) -> Vec<RankReport> {
    let epoch = Instant::now();
    let reports = run_world(ranks, move |comm| {
        let rank = comm.rank();
        let mut rec = Recorder::with_epoch(rank, 256 * 1024, epoch);
        rec.set_flow_enabled(true);
        mimir_obs::install(rec);
        let pool = MemPool::unlimited(format!("n{rank}"), 64 * 1024);
        let config = MimirConfig {
            comm_buf_size: 1024,
            ..MimirConfig::default()
        };
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), config).expect("context");
        let out = ctx
            .job()
            .map_shuffle(&mut |em| {
                for i in 0..keys_per_rank {
                    if let Some((victim, dur)) = delay {
                        if rank == victim && i == keys_per_rank / 2 {
                            std::thread::sleep(dur);
                        }
                    }
                    // Sleeps overlap across ranks even when the rank
                    // threads time-slice one CPU, so a throttled map
                    // progresses in wall-clock lockstep — the only way a
                    // "symmetric" load is actually symmetric regardless
                    // of core count.
                    if throttle && i % 8 == 0 {
                        std::thread::sleep(Duration::from_micros(40));
                    }
                    let key = format!("key-{:05}", i * ranks + rank);
                    em.emit(key.as_bytes(), &churn(i as u64).to_le_bytes())?;
                }
                Ok(())
            })
            .expect("map_shuffle");
        let rec = mimir_obs::take().expect("recorder installed");
        let s = &out.stats;
        let mut r = RankReport::new(rank);
        r.ranks = ranks as u64;
        r.shuffle.kvs_emitted = s.shuffle.kvs_emitted;
        r.waits.sync_wait_ns = s.shuffle.sync_wait_ns;
        r.waits.data_wait_ns = s.shuffle.data_wait_ns;
        r.waits.barrier_wait_ns = s.barrier_wait_ns;
        r.times.map_s = s.map_time.as_secs_f64();
        r.events = rec.events();
        r.events_dropped = rec.dropped();
        r
    });
    // Through the on-disk format and back: event lines must reattach.
    mimir_doctor::ingest_jsonl(&jsonl_string(&reports)).expect("re-ingest")
}

#[test]
fn critical_path_attributes_an_injected_delay_to_its_rank() {
    const VICTIM: usize = 2;
    const DELAY: Duration = Duration::from_millis(120);
    let reports = run_traced_shuffle(RANKS, 400, false, Some((VICTIM, DELAY)));
    let path =
        mimir_doctor::critical_path(&reports).expect("flow-traced run must yield a measured path");
    assert_eq!(
        path.dominant_rank,
        VICTIM as u64,
        "the path must run through the delayed rank: {}",
        path.to_text()
    );
    assert_eq!(
        path.dominant_phase,
        "map",
        "the sleep was injected mid-map: {}",
        path.to_text()
    );
    let victim_ns = path
        .rank_path_ns
        .iter()
        .find(|&&(r, _)| r == VICTIM as u64)
        .map(|&(_, ns)| ns)
        .unwrap();
    assert!(
        victim_ns as f64 >= 0.9 * DELAY.as_nanos() as f64,
        "only {victim_ns} ns of the {} ns injected delay landed on \
         rank {VICTIM}'s path share:\n{}",
        DELAY.as_nanos(),
        path.to_text()
    );

    // The diagnosis reports it as a measured finding — and the
    // wait-counter heuristic stays out of the way.
    let d = mimir_doctor::diagnose(&reports);
    let f = d
        .findings
        .iter()
        .find(|f| f.code == "critical-path")
        .unwrap_or_else(|| panic!("no critical-path finding in:\n{}", d.to_text()));
    assert_eq!(f.ranks, vec![VICTIM as u64]);
    assert_eq!(
        f.severity,
        mimir_doctor::Severity::Critical,
        "120 ms of a short run is critical: {}",
        f.title
    );
    assert!(
        d.findings.iter().all(|f| f.code != "straggler"),
        "measured path must replace the straggler guess:\n{}",
        d.to_text()
    );
}

#[test]
fn symmetric_run_spreads_the_critical_path() {
    // Throttled so the load is symmetric in wall time even on a single
    // CPU (see `run_traced_shuffle`), and long enough that per-round
    // gating rotates with scheduler noise instead of being decided by a
    // handful of rounds.
    const P: usize = RANKS;
    let reports = run_traced_shuffle(P, 12_000, true, None);
    let path = mimir_doctor::critical_path(&reports).expect("measured path");
    let total: u64 = path.rank_path_ns.iter().map(|&(_, ns)| ns).sum();
    let cap = 1000 / P as u64 + mimir_doctor::rules::PATH_SHARE_SLACK_PERMILLE;
    for &(rank, ns) in &path.rank_path_ns {
        let share = (ns * 1000).checked_div(total).unwrap_or(0);
        assert!(
            share <= cap,
            "rank {rank} holds {share}‰ of a symmetric run's path \
             (cap {cap}‰):\n{}",
            path.to_text()
        );
    }
    let d = mimir_doctor::diagnose(&reports);
    let f = d
        .findings
        .iter()
        .find(|f| f.code == "critical-path")
        .expect("path finding present");
    assert_eq!(
        f.severity,
        mimir_doctor::Severity::Info,
        "a balanced path is informational: {}",
        f.title
    );
}

#[test]
fn skewed_run_yields_a_skew_finding_naming_the_shuffle_phase() {
    let reports = run_shuffle(Partitioner::custom("to-zero", |_key, _n| 0));
    let d = mimir_doctor::diagnose(&reports);
    let skew = d
        .findings
        .iter()
        .find(|f| f.code == "partition-skew")
        .unwrap_or_else(|| panic!("no skew finding in:\n{}", d.to_text()));
    assert_eq!(skew.phase, "map/aggregate (shuffle)");
    assert_eq!(skew.ranks, vec![0], "rank 0 is the hotspot");
    assert_eq!(
        skew.severity,
        mimir_doctor::Severity::Critical,
        "a point mass is 4x the fair share"
    );
    assert!(skew.hint.contains("III-C2"), "paper-grounded hint");
}

#[test]
fn uniform_run_yields_no_skew_finding() {
    let reports = run_shuffle(Partitioner::hash());
    let d = mimir_doctor::diagnose(&reports);
    assert!(
        d.findings.iter().all(|f| f.code != "partition-skew"),
        "hash partitioning flagged as skew:\n{}",
        d.to_text()
    );
}
