//! Chaos acceptance: a UDS (forked-process) rank killed mid-shuffle
//! leaves flight-recorder corpses behind, and post-mortem
//! `mimir-doctor` triage names the dead rank.
//!
//! The kill is a bare `exit(86)` mid-collective — no unwinding, no
//! cleanup — so the dead rank dumps nothing. Its surviving peers
//! observe the disconnect, panic, and dump `rank<r>.crash.jsonl` into
//! the flight dir on their way down; [`diagnose_postmortem`] must turn
//! those corpses into a Critical transport finding naming rank 2.

use std::time::Duration;

use mimir_doctor::{diagnose_postmortem, Severity};
use mimir_mpi::{run_world_uds_with, ReduceOp, UdsWorldOptions, WorldError};

#[test]
fn killed_uds_rank_leaves_ingestible_corpses_naming_it() {
    let dir = std::env::temp_dir().join(format!("mimir-flight-chaos-{}", std::process::id()));
    let flight = dir.join("postmortem");
    let _ = std::fs::remove_dir_all(&dir);
    // Children inherit the environment through fork; the live plane and
    // flight recorder arm themselves from it in each rank process.
    std::env::set_var("MIMIR_LIVE_DIR", &dir);
    std::env::set_var("MIMIR_LIVE_INTERVAL_MS", "20");

    let opts = UdsWorldOptions {
        connect_window: Duration::from_secs(5),
        world_timeout: Duration::from_secs(60),
        fault: None,
    };
    let result: Result<Vec<u64>, WorldError<String>> = run_world_uds_with(4, &opts, |comm| {
        let mut sum = 0u64;
        for round in 0..8u64 {
            if round == 2 && comm.rank() == 2 {
                // SIGKILL-equivalent: no unwinding, no result file, no
                // flight dump — the rank just vanishes mid-traffic.
                std::process::exit(86);
            }
            sum += comm.allreduce_u64(ReduceOp::Sum, comm.rank() as u64);
        }
        sum
    });
    std::env::remove_var("MIMIR_LIVE_DIR");
    std::env::remove_var("MIMIR_LIVE_INTERVAL_MS");

    // The world reports the death (not a hang, not a success).
    match result {
        Err(WorldError::RankPanicked { rank, .. }) => assert_eq!(rank, 2, "root cause is rank 2"),
        other => panic!("expected a rank-2 failure, got: {other:?}"),
    }

    // The dead rank left no corpse; every survivor did.
    assert!(
        !flight.join("rank2.crash.jsonl").exists(),
        "a killed process cannot dump"
    );
    let mut dumps = 0;
    for rank in [0usize, 1, 3] {
        let path = flight.join(format!("rank{rank}.crash.jsonl"));
        if path.exists() {
            dumps += 1;
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(
                text.contains("\"record\":\"crash\""),
                "rank {rank} dump has a crash header"
            );
            // The corpse is a doctor-ingestible export in its own right.
            mimir_doctor::ingest_jsonl(&text)
                .unwrap_or_else(|e| panic!("rank {rank} corpse does not ingest: {e}"));
        }
    }
    assert!(
        dumps >= 1,
        "at least one survivor dumped a flight recording into {}",
        flight.display()
    );

    // Post-mortem triage names the dead rank.
    let d = diagnose_postmortem(&flight).expect("postmortem ingest succeeds");
    let dead = d
        .findings
        .iter()
        .find(|f| f.code == "transport" && f.severity == Severity::Critical)
        .unwrap_or_else(|| panic!("no dead-rank transport finding:\n{}", d.to_text()));
    assert!(
        dead.title.contains("rank 2"),
        "names the dead rank: {}",
        dead.title
    );
    assert!(dead.ranks.contains(&2), "ranks field carries it too");

    // The survivors' live files captured telemetry up to the crash.
    let lived = (0..4)
        .filter(|r| dir.join(format!("rank{r}.live.jsonl")).exists())
        .count();
    assert!(lived >= 3, "survivors published live telemetry");
    let _ = std::fs::remove_dir_all(&dir);
}
