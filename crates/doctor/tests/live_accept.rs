//! Acceptance: the live telemetry plane + online doctor, end to end. A
//! 4-rank in-process world with a 120 ms injected mid-map sleep on rank
//! 1 must produce a *live* straggler finding naming the victim rank
//! while the job is still running — the world loop literally spins
//! until the concurrently attached [`LiveWatcher`] reports it, so the
//! assertion is "the finding fired before the job completed" by
//! construction.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mimir_doctor::LiveWatcher;
use mimir_mpi::{run_world, ReduceOp};
use mimir_obs::live::{set_force_config, LiveConfig};

/// Bounded so a broken plane fails the test instead of hanging it:
/// 100 rounds × ~120 ms ≈ 12 s worst case, far past the few publishes
/// the straggler rule needs.
const MAX_ROUNDS: u64 = 100;

#[test]
fn live_straggler_names_the_victim_before_the_job_completes() {
    let dir = std::env::temp_dir().join(format!("mimir-live-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = LiveConfig::new(&dir);
    cfg.interval = Duration::from_millis(20);
    set_force_config(Some(cfg));

    let found = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));

    let watcher = {
        let found = found.clone();
        let done = done.clone();
        let dir = dir.clone();
        std::thread::spawn(move || {
            let mut w = LiveWatcher::new(&dir);
            let mut fired = Vec::new();
            while !done.load(Ordering::SeqCst) {
                fired.extend(w.step());
                if fired
                    .iter()
                    .any(|f| f.code == "straggler" && f.ranks.contains(&1))
                {
                    found.store(true, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            fired
        })
    };

    let found_in_world = found.clone();
    let rounds: Vec<u64> = run_world(4, move |comm| {
        let _map = mimir_obs::phase_span(mimir_obs::Phase::Map);
        let mut rounds = 0u64;
        while !found_in_world.load(Ordering::SeqCst) && rounds < MAX_ROUNDS {
            if comm.rank() == 1 {
                // The injected straggler: rank 1 dawdles mid-map while
                // its peers block in the collective below.
                std::thread::sleep(Duration::from_millis(120));
            }
            comm.allreduce_u64(ReduceOp::Sum, 1);
            rounds += 1;
        }
        rounds
    });
    done.store(true, Ordering::SeqCst);
    let fired = watcher.join().unwrap();
    set_force_config(None);

    assert!(
        found.load(Ordering::SeqCst),
        "no live straggler finding named rank 1 within {MAX_ROUNDS} rounds; \
         fired: {fired:#?}"
    );
    assert!(
        rounds.iter().all(|&r| r < MAX_ROUNDS),
        "the world observed the finding while running (rounds: {rounds:?})"
    );

    // The finding also streamed to the on-disk findings log, the
    // artifact CI uploads.
    let log = std::fs::read_to_string(dir.join("findings.jsonl"))
        .expect("live watcher wrote findings.jsonl");
    assert!(log.contains("\"straggler\""), "log: {log}");
    assert!(log.contains("at_ms"), "findings are timestamped: {log}");

    // Every rank published live records and disarmed cleanly.
    for rank in 0..4 {
        let text = std::fs::read_to_string(dir.join(format!("rank{rank}.live.jsonl"))).unwrap();
        assert!(
            text.contains("\"record\":\"live\""),
            "rank {rank} published"
        );
        assert!(
            text.contains("\"record\":\"live_end\""),
            "rank {rank} disarmed cleanly"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
