//! Cross-job cache properties: a chained (cached, shuffle-elided) run
//! must be byte-identical per rank to the cold path that round-trips the
//! same data through a real shuffle — across every shuffle × grouping
//! mode — and the chain must degrade honestly: a mid-chain partitioner
//! change forces a real shuffle, and an evicted entry reloads from spill
//! transparently.

use mimir_core::{
    typed, GroupingMode, KvMeta, MimirConfig, MimirContext, Partitioner, ShuffleMode,
};
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::run_world;

const RANKS: usize = 4;
const KEYS: u64 = 64;
const KVS_PER_RANK: u64 = 400;

fn ctx_world<R: Send>(f: impl Fn(&mut MimirContext<'_>) -> R + Send + Sync) -> Vec<R> {
    run_world(RANKS, move |comm| {
        let pool = MemPool::unlimited("node", 16 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        f(&mut ctx)
    })
}

/// Canonical per-rank image of a job output: sorted (key, value) byte
/// pairs, so container page layout never affects the comparison.
fn canonical(out: mimir_core::KvContainer) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut kvs = Vec::new();
    out.drain(|k, v| {
        kvs.push((k.to_vec(), v.to_vec()));
        Ok(())
    })
    .unwrap();
    kvs.sort();
    kvs
}

/// Seeds the cache (or returns the raw output when `name` is `None`)
/// with a deterministic multi-key dataset partitioned by `part`.
fn seed(
    ctx: &mut MimirContext<'_>,
    part: &Partitioner,
    name: Option<&str>,
) -> mimir_core::KvContainer {
    let rank = ctx.rank() as u64;
    let mut job = ctx
        .job()
        .kv_meta(KvMeta::fixed(8, 8))
        .partitioner(part.clone());
    if let Some(n) = name {
        job = job.output_cached(n);
    }
    job.map_shuffle(&mut |em| {
        for i in 0..KVS_PER_RANK {
            let k = (rank * KVS_PER_RANK + i) % KEYS;
            em.emit(&typed::enc_u64(k), &typed::enc_u64(i))?;
        }
        Ok(())
    })
    .unwrap()
    .output
}

/// One chain step: key-preserving re-emit with a value transform, then a
/// sum-reduce — the shape every iterative update job takes.
fn chain_step(
    ctx: &mut MimirContext<'_>,
    part: &Partitioner,
    smode: ShuffleMode,
    gmode: GroupingMode,
    in_name: &str,
    elide: bool,
) -> mimir_core::KvContainer {
    ctx.job()
        .kv_meta(KvMeta::fixed(8, 8))
        .out_meta(KvMeta::fixed(8, 8))
        .partitioner(part.clone())
        .shuffle_mode(smode)
        .grouping_mode(gmode)
        .input_cached(in_name)
        .shuffle_elision(elide)
        .chain_reduce(
            &mut |k, v, em| em.emit(k, &typed::enc_u64(typed::dec_u64(v) * 2 + 1)),
            &mut |k, vals, em| {
                let s: u64 = vals.map(typed::dec_u64).sum();
                em.emit(k, &typed::enc_u64(s))
            },
        )
        .unwrap()
        .output
}

/// The cold reference for [`chain_step`]: the same transform fed through
/// a full map → shuffle → reduce from materialized input.
fn cold_step(
    ctx: &mut MimirContext<'_>,
    part: &Partitioner,
    smode: ShuffleMode,
    gmode: GroupingMode,
    input: &[(Vec<u8>, Vec<u8>)],
) -> mimir_core::KvContainer {
    ctx.job()
        .kv_meta(KvMeta::fixed(8, 8))
        .out_meta(KvMeta::fixed(8, 8))
        .partitioner(part.clone())
        .shuffle_mode(smode)
        .grouping_mode(gmode)
        .map_reduce(
            &mut |em| {
                for (k, v) in input {
                    em.emit(k, &typed::enc_u64(typed::dec_u64(v) * 2 + 1))?;
                }
                Ok(())
            },
            &mut |k, vals, em| {
                let s: u64 = vals.map(typed::dec_u64).sum();
                em.emit(k, &typed::enc_u64(s))
            },
        )
        .unwrap()
        .output
}

/// The headline property: for every shuffle mode × grouping mode, the
/// elided chain produces per-rank output byte-identical to the cold
/// path, and the shuffle really was elided (one elision per rank, zero
/// KVs through the exchange).
#[test]
fn elided_chain_matches_cold_path_across_modes() {
    for smode in [
        ShuffleMode::Legacy,
        ShuffleMode::ZeroCopy,
        ShuffleMode::Overlapped,
        ShuffleMode::Adaptive,
    ] {
        for gmode in [GroupingMode::Legacy, GroupingMode::Arena] {
            let results = ctx_world(move |ctx| {
                let part = Partitioner::hash();
                // Cold reference: materialize the seed, then run the
                // transform through a real shuffle.
                let cold_in = canonical(seed(ctx, &part, None));
                let cold = canonical(cold_step(ctx, &part, smode, gmode, &cold_in));
                // Chained: same seed cached, transform consumes it in
                // place with the shuffle elided.
                seed(ctx, &part, Some("props"));
                let chained = canonical(chain_step(ctx, &part, smode, gmode, "props", true));
                let stats = ctx.cache_stats();
                ctx.cache_clear();
                (cold, chained, stats)
            });
            for (rank, (cold, chained, stats)) in results.into_iter().enumerate() {
                assert_eq!(
                    chained, cold,
                    "rank {rank} diverged under {smode:?}/{gmode:?}"
                );
                assert!(!cold.is_empty(), "rank {rank} held no keys");
                assert_eq!(stats.elisions, 1, "rank {rank} {smode:?}/{gmode:?}");
                assert_eq!(stats.hits, 1, "rank {rank} checkout counts as a hit");
            }
        }
    }
}

/// A mid-chain partitioner change invalidates the fingerprint: the chain
/// still runs (fed through a real shuffle to the new placement) but
/// elides nothing, and the output matches the cold path under the *new*
/// partitioner.
#[test]
fn partitioner_change_forces_a_real_shuffle() {
    let results = ctx_world(|ctx| {
        let hash = Partitioner::hash();
        let block = Partitioner::u64_block(KEYS);
        let cold_in = canonical(seed(ctx, &hash, None));
        let cold = canonical(cold_step(
            ctx,
            &block,
            ShuffleMode::ZeroCopy,
            GroupingMode::Arena,
            &cold_in,
        ));
        seed(ctx, &hash, Some("reparted"));
        let chained = canonical(chain_step(
            ctx,
            &block,
            ShuffleMode::ZeroCopy,
            GroupingMode::Arena,
            "reparted",
            true, // requested, but the fingerprint mismatch must win
        ));
        let stats = ctx.cache_stats();
        ctx.cache_clear();
        (cold, chained, stats)
    });
    for (rank, (cold, chained, stats)) in results.into_iter().enumerate() {
        assert_eq!(chained, cold, "rank {rank} diverged after re-partition");
        assert_eq!(stats.elisions, 0, "rank {rank} must not elide");
        assert_eq!(stats.hits, 1, "the cached input was still consumed");
    }
}

/// Eviction under pressure is transparent: force the cached entry out to
/// spill, then chain over it — the checkout reloads it and the output is
/// identical to the never-evicted chain.
#[test]
fn evicted_entry_reloads_transparently() {
    let results = ctx_world(|ctx| {
        let part = Partitioner::hash();
        seed(ctx, &part, Some("hot"));
        let hot = canonical(chain_step(
            ctx,
            &part,
            ShuffleMode::ZeroCopy,
            GroupingMode::Arena,
            "hot",
            true,
        ));
        ctx.cache_clear();

        seed(ctx, &part, Some("pressured"));
        let freed = ctx.cache_evict("pressured").unwrap();
        assert!(freed.unwrap_or(0) > 0, "eviction freed nothing");
        let reloaded = canonical(chain_step(
            ctx,
            &part,
            ShuffleMode::ZeroCopy,
            GroupingMode::Arena,
            "pressured",
            true,
        ));
        let stats = ctx.cache_stats();
        ctx.cache_clear();
        (hot, reloaded, stats)
    });
    for (rank, (hot, reloaded, stats)) in results.into_iter().enumerate() {
        assert_eq!(reloaded, hot, "rank {rank} diverged after evict+reload");
        assert_eq!(stats.evictions, 1, "rank {rank}");
        assert_eq!(stats.reloads, 1, "rank {rank}");
        assert_eq!(stats.elisions, 2, "both chains elided on rank {rank}");
    }
}
