//! Context-level API tests: collectives helpers, binary input splits,
//! and configuration validation at construction.

use mimir_core::{MimirConfig, MimirContext, MimirError};
use mimir_datagen::{parse_points, write_points, PointGen};
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::run_world;

#[test]
fn collective_helpers() {
    let out = run_world(5, |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        let sum = ctx.allreduce_sum(ctx.rank() as u64 + 1);
        let max = ctx.allreduce_max(ctx.rank() as u64 * 10);
        ctx.barrier();
        (ctx.rank(), ctx.size(), sum, max)
    });
    for (i, &(rank, size, sum, max)) in out.iter().enumerate() {
        assert_eq!(rank, i);
        assert_eq!(size, 5);
        assert_eq!(sum, 1 + 2 + 3 + 4 + 5);
        assert_eq!(max, 40);
    }
}

#[test]
fn invalid_config_is_rejected_at_construction() {
    run_world(8, |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        // 64 B across 8 ranks → 8 B partitions, below the minimum.
        let res = MimirContext::new(
            comm,
            pool,
            IoModel::free(),
            MimirConfig {
                comm_buf_size: 64,
                ..MimirConfig::default()
            },
        );
        assert!(matches!(res, Err(MimirError::Config(_))));
    });
}

#[test]
fn binary_point_splits_cover_the_dataset() {
    let dir = std::env::temp_dir().join(format!("mimir-ctx-points-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("points.bin");
    let gen = PointGen::new(77);
    let total = 997; // deliberately not divisible by the rank count
    write_points(&path, &gen, total, 4).unwrap();

    let path2 = path.clone();
    let io = IoModel::new(mimir_io::IoModelConfig::lustre_scaled()).unwrap();
    let io2 = io.clone();
    let per_rank = run_world(3, move |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let ctx = MimirContext::new(comm, pool, io2.clone(), MimirConfig::default()).unwrap();
        let bytes = ctx.read_fixed_split(&path2, 12).unwrap();
        parse_points(&bytes)
    });
    let expected: Vec<[f32; 3]> = (0..4).flat_map(|r| gen.generate(r, 4, total)).collect();
    let got: Vec<[f32; 3]> = per_rank.into_iter().flatten().collect();
    assert_eq!(got.len(), total);
    assert_eq!(got, expected, "splits concatenate to the whole dataset");
    assert!(io.stats().bytes_read as usize >= total * 12);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn io_model_accessor_reports_the_shared_model() {
    let io = IoModel::free();
    let io2 = io.clone();
    run_world(2, move |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let ctx = MimirContext::new(comm, pool, io2.clone(), MimirConfig::default()).unwrap();
        ctx.io().charge_write(100);
    });
    assert_eq!(io.stats().bytes_written, 200);
}

#[test]
fn config_accessor_round_trips() {
    run_world(1, |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let cfg = MimirConfig {
            comm_buf_size: 32 * 1024,
            ..MimirConfig::default()
        };
        let ctx = MimirContext::new(comm, pool.clone(), IoModel::free(), cfg).unwrap();
        assert_eq!(ctx.config().comm_buf_size, 32 * 1024);
        assert_eq!(ctx.pool().page_size(), pool.page_size());
    });
}
