//! Proof that the elided chain path stops allocating: with a counting
//! global allocator installed, a steady-state iteration over a cached
//! input — checkout, per-KV map over the resident partition, local
//! re-emit into the output container — performs no per-KV heap
//! allocations. The cached pages are pool-backed and the elided path
//! never touches serialization, send buffers, or the exchange.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mimir_core::{typed, KvMeta, MimirConfig, MimirContext};
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::run_world;

/// Wraps the system allocator with a per-thread allocation counter.
/// Thread-local so rank threads in `run_world` count independently; the
/// `const` initializer keeps TLS access safe inside the allocator.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(l) }
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(p, l, n) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const KVS: u64 = 2000;
const WARMUP: u64 = 512;

/// The strict proof: past KV `WARMUP` (output page acquired, lazy state
/// initialized), the elided chain's per-KV path — cached-page iteration,
/// the partition-honesty check, and the container append — allocates
/// nothing through the end of the input.
#[test]
fn steady_state_elided_iteration_is_allocation_free() {
    run_world(1, |comm| {
        let pool = MemPool::unlimited("t", 256 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();

        // Seed the cached input: KVS fixed(8,8) pairs.
        ctx.job()
            .kv_meta(KvMeta::fixed(8, 8))
            .output_cached("steady")
            .map_shuffle(&mut |em| {
                for i in 0..KVS {
                    em.emit(&typed::enc_u64(i), &typed::enc_u64(i * 3))?;
                }
                Ok(())
            })
            .unwrap();

        // Chained elided iteration: key-preserving value transform. The
        // map snapshots the allocation counter after the warm-up KV and
        // measures through the final KV.
        let mut seen = 0u64;
        let mut at_warmup = 0u64;
        let mut at_last = 0u64;
        let out = ctx
            .job()
            .kv_meta(KvMeta::fixed(8, 8))
            .input_cached("steady")
            .chain_shuffle(&mut |k, v, em| {
                seen += 1;
                if seen == WARMUP {
                    at_warmup = allocs();
                }
                em.emit(k, &typed::enc_u64(typed::dec_u64(v) + 1))?;
                if seen == KVS {
                    at_last = allocs();
                }
                Ok(())
            })
            .unwrap();

        assert_eq!(seen, KVS, "the chain visited every cached KV");
        assert_eq!(out.stats.kvs_out, KVS);
        let during = at_last - at_warmup;
        assert_eq!(
            during,
            0,
            "elided steady state allocated {during} times over {} KVs",
            KVS - WARMUP
        );
        let stats = ctx.cache_stats();
        assert_eq!(stats.elisions, 1, "the shuffle was elided");
        ctx.cache_clear();
    });
}
