//! Randomized delivery properties of the shuffle engine: for arbitrary
//! KV multisets under every hint encoding, every [`ShuffleMode`] must
//! deliver exactly the emitted multiset, partitioned by key hash — and
//! the bulk [`KvSink::accept_run`] path must be observationally identical
//! to per-KV [`KvSink::accept`]. Seeded PRNG, so failures replay.

use std::collections::HashMap;

use mimir_core::{
    encode_push, partition_of, AdaptPolicy, Emitter, KvContainer, KvDecoder, KvMeta, KvSink,
    LenHint, Partitioner, ShuffleMode, Shuffler,
};
use mimir_datagen::{rank_rng, RankRng};
use mimir_mem::MemPool;
use mimir_mpi::run_world;

/// The hint matrix: every encoding class the wire format supports.
fn metas() -> [KvMeta; 4] {
    [
        KvMeta::var(),
        KvMeta::cstr_key_u64_val(),
        KvMeta::fixed(8, 8),
        KvMeta {
            key: LenHint::Var,
            val: LenHint::CStr,
        },
    ]
}

/// One random key or value respecting `hint` (CStr sides must be
/// NUL-free; Fixed sides must be exactly the declared length).
fn gen_side(rng: &mut RankRng, hint: LenHint) -> Vec<u8> {
    match hint {
        LenHint::Var => (0..rng.gen_range(0..16))
            .map(|_| rng.gen_range(0..256) as u8)
            .collect(),
        LenHint::Fixed(n) => (0..n).map(|_| rng.gen_range(0..256) as u8).collect(),
        LenHint::CStr => (0..rng.gen_range(0..12))
            .map(|_| 1 + rng.gen_range(0..255) as u8)
            .collect(),
    }
}

/// The deterministic KV stream rank `rank` emits for `(seed, meta)`.
fn rank_kvs(seed: u64, rank: usize, meta: KvMeta, n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut rng = rank_rng(seed, rank);
    (0..n)
        .map(|_| (gen_side(&mut rng, meta.key), gen_side(&mut rng, meta.val)))
        .collect()
}

type Multiset = HashMap<(Vec<u8>, Vec<u8>), usize>;

fn multiset(kvs: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>) -> Multiset {
    let mut m = Multiset::new();
    for kv in kvs {
        *m.entry(kv).or_insert(0) += 1;
    }
    m
}

/// Shuffles `n_kvs` random KVs per rank and returns each rank's received
/// multiset.
fn shuffle(
    seed: u64,
    meta: KvMeta,
    mode: ShuffleMode,
    ranks: usize,
    n_kvs: usize,
) -> Vec<Multiset> {
    run_world(ranks, move |comm| {
        let pool = MemPool::unlimited("t", 4096);
        let sink = KvContainer::new(&pool, meta);
        let mut sh =
            Shuffler::with_options(comm, &pool, meta, 2048, sink, Partitioner::hash(), mode)
                .unwrap();
        let me = sh.rank();
        for (k, v) in rank_kvs(seed, me, meta, n_kvs) {
            sh.emit(&k, &v).unwrap();
        }
        let (kvc, stats) = sh.finish().unwrap();
        // The III-B bound held on every round of every mode.
        assert!(stats.max_round_recv_bytes <= 2048, "{mode:?}");
        let mut got = Vec::new();
        kvc.drain(|k, v| {
            got.push((k.to_vec(), v.to_vec()));
            Ok(())
        })
        .unwrap();
        multiset(got)
    })
}

#[test]
fn every_mode_delivers_the_emitted_multiset_under_every_hint() {
    let ranks = 4;
    let n_kvs = 400;
    for (case, meta) in metas().into_iter().enumerate() {
        let seed = 0xC0FFEE + case as u64;
        // Reference partition: the same streams, routed by key hash.
        let mut expected: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); ranks];
        for rank in 0..ranks {
            for (k, v) in rank_kvs(seed, rank, meta, n_kvs) {
                expected[partition_of(&k, ranks)].push((k, v));
            }
        }
        let expected: Vec<Multiset> = expected.into_iter().map(multiset).collect();

        for mode in [
            ShuffleMode::Legacy,
            ShuffleMode::ZeroCopy,
            ShuffleMode::Overlapped,
            ShuffleMode::Adaptive,
        ] {
            let got = shuffle(seed, meta, mode, ranks, n_kvs);
            for (rank, (g, e)) in got.iter().zip(&expected).enumerate() {
                assert_eq!(g, e, "{meta:?} {mode:?} rank {rank}");
            }
        }
    }
}

/// An [`AdaptPolicy`] tuned to act on every signal: single-round
/// hysteresis, no signal floor, hot tripping from the first round — so
/// mid-job mode flips, round-size steps, and the salted hot path all
/// fire inside a small test workload.
fn twitchy_policy() -> AdaptPolicy {
    AdaptPolicy {
        hysteresis_rounds: 1,
        cooldown_rounds: 0,
        min_signal_ns: 0,
        hot_min_rounds: 1,
        ..AdaptPolicy::default()
    }
}

/// Like [`shuffle`], but every key routes to rank 0 (a point-mass
/// partitioner) under an explicit policy; returns each rank's received
/// multiset plus its adaptive counters.
fn hot_shuffle(
    seed: u64,
    meta: KvMeta,
    mode: ShuffleMode,
    ranks: usize,
    n_kvs: usize,
    dup_heavy: bool,
) -> Vec<(Multiset, mimir_core::AdaptStats)> {
    run_world(ranks, move |comm| {
        let pool = MemPool::unlimited("t", 4096);
        let sink = KvContainer::new(&pool, meta);
        let mut sh = Shuffler::with_policy(
            comm,
            &pool,
            meta,
            2048,
            sink,
            Partitioner::custom("to-zero", |_, _| 0),
            mode,
            twitchy_policy(),
        )
        .unwrap();
        let me = sh.rank();
        for (k, v) in hot_kvs(seed, me, meta, n_kvs, dup_heavy) {
            sh.emit(&k, &v).unwrap();
        }
        let (kvc, stats) = sh.finish().unwrap();
        assert!(stats.max_round_recv_bytes <= 2048, "{mode:?}");
        let mut got = Vec::new();
        kvc.drain(|k, v| {
            got.push((k.to_vec(), v.to_vec()));
            Ok(())
        })
        .unwrap();
        (multiset(got), stats.adapt)
    })
}

/// The stream each rank emits at the hot destination: either a 13-KV
/// vocabulary cycled (duplicate-heavy — the count-collapse staging path
/// wins) or fully random KVs (near-unique — staging degenerates to
/// forwarding and must still deliver exactly).
fn hot_kvs(
    seed: u64,
    rank: usize,
    meta: KvMeta,
    n: usize,
    dup_heavy: bool,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    if dup_heavy {
        let vocab = rank_kvs(seed ^ 0x9E37, 99, meta, 13);
        (0..n).map(|i| vocab[i % vocab.len()].clone()).collect()
    } else {
        rank_kvs(seed, rank, meta, n)
    }
}

#[test]
fn adaptive_hot_path_delivers_the_zero_copy_multiset() {
    let ranks = 4;
    let n_kvs = 400;
    for (case, meta) in metas().into_iter().enumerate() {
        for dup_heavy in [true, false] {
            let seed = 0xD17E_u64.wrapping_add(case as u64);
            let reference = hot_shuffle(seed, meta, ShuffleMode::ZeroCopy, ranks, n_kvs, dup_heavy);
            let adaptive = hot_shuffle(seed, meta, ShuffleMode::Adaptive, ranks, n_kvs, dup_heavy);
            for rank in 0..ranks {
                assert_eq!(
                    adaptive[rank].0, reference[rank].0,
                    "{meta:?} dup={dup_heavy} rank {rank}: adaptive multiset diverged"
                );
            }
            let trips: u64 = adaptive.iter().map(|(_, a)| a.hot_trips).sum();
            assert!(
                trips >= 1,
                "{meta:?} dup={dup_heavy}: point-mass load never tripped the hot path"
            );
            if dup_heavy {
                let staged: u64 = adaptive.iter().map(|(_, a)| a.hot_staged_kvs).sum();
                assert!(staged > 0, "{meta:?}: no KVs were staged for collapse");
            }
        }
    }
}

#[test]
fn accept_run_is_equivalent_to_per_kv_accept() {
    for (case, meta) in metas().into_iter().enumerate() {
        let mut rng = rank_rng(0xBEEF, case);
        // Random runs of encoded KVs, like one round's per-source slices.
        // A small page size forces push_run to split runs across pages.
        let pool = MemPool::unlimited("t", 256);
        let mut bulk = KvContainer::new(&pool, meta);
        let mut per_kv = KvContainer::new(&pool, meta);
        let mut runs = 0;
        while runs < 30 {
            let mut run = Vec::new();
            for _ in 0..rng.gen_range(0..20) {
                let k = gen_side(&mut rng, meta.key);
                let v = gen_side(&mut rng, meta.val);
                encode_push(meta, &k, &v, &mut run);
            }
            let n_bulk = bulk.accept_run(meta, &run).unwrap();
            let mut n_ref = 0;
            for (k, v) in KvDecoder::new(meta, &run) {
                per_kv.accept(k, v).unwrap();
                n_ref += 1;
            }
            assert_eq!(n_bulk, n_ref, "{meta:?}: consumed-KV count");
            runs += 1;
        }
        assert_eq!(bulk.len(), per_kv.len(), "{meta:?}: KV count");
        assert_eq!(bulk.bytes(), per_kv.bytes(), "{meta:?}: byte count");
        let flat = |kvc: KvContainer| {
            let mut out = Vec::new();
            kvc.drain(|k, v| {
                out.push((k.to_vec(), v.to_vec()));
                Ok(())
            })
            .unwrap();
            out
        };
        // Order matters too: a run must land in sequence, not just as a
        // multiset.
        assert_eq!(flat(bulk), flat(per_kv), "{meta:?}: drained KVs");
    }
}
