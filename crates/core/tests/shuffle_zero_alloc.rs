//! Proof that the zero-copy data path stops allocating: a counting
//! global allocator shows a steady-state exchange round performs no heap
//! allocation in the emit, send, or drain paths, and the transport's
//! `send_allocs` counter shows multi-rank exchanges reuse pooled buffers
//! instead of allocating per message.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mimir_core::{AdaptPolicy, Emitter, KvContainer, KvMeta, Partitioner, ShuffleMode, Shuffler};
use mimir_mem::MemPool;
use mimir_mpi::run_world;

/// Wraps the system allocator with a per-thread allocation counter.
/// Thread-local so rank threads in `run_world` count independently; the
/// `const` initializer keeps TLS access safe inside the allocator (no
/// lazy init, no destructor registration on first use).
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(l) }
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(p, l, n) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// The strict proof: after warm-up, an emit burst that crosses an
/// exchange round — partition fill, done-vote, alltoallv, drain into the
/// container — performs zero heap allocations.
///
/// Single-rank world: the in-process channel transport itself allocates
/// per message batch (std mpsc block allocation), which is outside the
/// data path under test; at `p = 1` every byte still traverses the full
/// emit → partition → post → complete → `accept_run` → page-memcpy
/// pipeline with the transport's unavoidable noise removed. Pages are
/// sized so the measured round's drain lands in the current page's tail
/// (page acquisition is amortized, not per-round).
#[test]
fn steady_state_round_is_allocation_free() {
    run_world(1, |comm| {
        let pool = MemPool::unlimited("t", 256 * 1024);
        let meta = KvMeta::fixed(8, 8);
        let sink = KvContainer::new(&pool, meta);
        let mut sh = Shuffler::with_options(
            comm,
            &pool,
            meta,
            1024,
            sink,
            Partitioner::hash(),
            ShuffleMode::ZeroCopy,
        )
        .unwrap();

        // Warm-up: several exchange rounds allocate the container's first
        // page, the reusable range vector, and any lazy TLS state.
        for i in 0..512u64 {
            sh.emit(&i.to_le_bytes(), &i.to_le_bytes()).unwrap();
        }

        // Measured burst: 16 B per KV, 64 KVs fill the 1024 B partition
        // and force one full exchange round mid-burst.
        let before = allocs();
        for i in 0..65u64 {
            sh.emit(&i.to_le_bytes(), &i.to_le_bytes()).unwrap();
        }
        let during = allocs() - before;
        assert_eq!(during, 0, "steady-state round allocated {during} times");

        let (_, stats) = sh.finish().unwrap();
        assert!(stats.rounds >= 9, "burst crossed an exchange round");
        // Wait-state attribution is always on (no recorder installed
        // here) and ran inside those allocation-free rounds; at one
        // rank nothing blocks, so the counters exist but stay zero.
        assert_eq!(stats.sync_wait_ns, 0, "no peers, no waiting");
    });
}

/// The strict proof with the adaptive controller live: every round now
/// carries a ballot vote (one packed allreduce word), the controller
/// folds the observed waits, and the effective-round-size threshold is
/// refreshed — and the measured burst must still allocate nothing.
#[test]
fn adaptive_steady_state_round_is_allocation_free() {
    run_world(1, |comm| {
        let pool = MemPool::unlimited("t", 256 * 1024);
        let meta = KvMeta::fixed(8, 8);
        let sink = KvContainer::new(&pool, meta);
        let mut sh = Shuffler::with_options(
            comm,
            &pool,
            meta,
            1024,
            sink,
            Partitioner::hash(),
            ShuffleMode::Adaptive,
        )
        .unwrap();

        for i in 0..512u64 {
            sh.emit(&i.to_le_bytes(), &i.to_le_bytes()).unwrap();
        }

        let before = allocs();
        for i in 0..65u64 {
            sh.emit(&i.to_le_bytes(), &i.to_le_bytes()).unwrap();
        }
        let during = allocs() - before;
        assert_eq!(
            during, 0,
            "adaptive steady-state round allocated {during} times"
        );

        let (_, stats) = sh.finish().unwrap();
        assert!(stats.rounds >= 9, "burst crossed an exchange round");
    });
}

/// The hot-key staging path in its steady state: once a destination has
/// tripped and the stage's [`mimir_core::GroupIndex`] has seen every
/// distinct KV of the working set, further diverted emits are a hash
/// probe plus a count bump — pool-backed, no heap allocation. (The trip
/// itself, the stage growth, and the final two-phase flush may allocate;
/// they happen outside the measured window.)
#[test]
fn hot_staging_steady_state_is_allocation_free() {
    run_world(1, |comm| {
        let pool = MemPool::unlimited("t", 256 * 1024);
        let meta = KvMeta::fixed(8, 8);
        let sink = KvContainer::new(&pool, meta);
        // At one rank every destination holds exactly its fair share, so
        // trip at 1.0x to force the divert; trip checks start after the
        // first round.
        let policy = AdaptPolicy {
            hot_trip_permille: 1000,
            hot_min_rounds: 1,
            ..AdaptPolicy::default()
        };
        let mut sh = Shuffler::with_policy(
            comm,
            &pool,
            meta,
            1024,
            sink,
            Partitioner::hash(),
            ShuffleMode::Adaptive,
            policy,
        )
        .unwrap();

        // A 32-KV vocabulary (512 B staged, under the 1 KiB stage cap):
        // the warm-up rounds trip the hot path and populate the stage
        // with every distinct KV.
        for i in 0..512u64 {
            let key = (i % 32).to_le_bytes();
            sh.emit(&key, &key).unwrap();
        }

        let before = allocs();
        for i in 0..65u64 {
            let key = (i % 32).to_le_bytes();
            sh.emit(&key, &key).unwrap();
        }
        let during = allocs() - before;
        assert_eq!(during, 0, "hot staging burst allocated {during} times");

        let (kvc, stats) = sh.finish().unwrap();
        assert_eq!(stats.adapt.hot_trips, 1, "the divert engaged");
        assert!(stats.adapt.hot_staged_kvs > 0, "emits were staged");
        assert_eq!(kvc.len(), 512 + 65, "the flush delivered every KV");
    });
}

/// The same strict proof with full-flow tracing live: a recorder with
/// flow stamping enabled is installed, so every send allocates a flow id
/// and every message records `FlowSend`/`FlowRecv` into the ring — and
/// the measured round must still perform zero heap allocations (the ring
/// is preallocated; a flow id is one counter bump).
#[test]
fn steady_state_round_is_allocation_free_with_flow_tracing() {
    run_world(1, |comm| {
        let pool = MemPool::unlimited("t", 256 * 1024);
        let meta = KvMeta::fixed(8, 8);
        let sink = KvContainer::new(&pool, meta);
        let mut recorder = mimir_obs::Recorder::new(comm.rank(), 64 * 1024);
        recorder.set_flow_enabled(true);
        mimir_obs::install(recorder);
        let mut sh = Shuffler::with_options(
            comm,
            &pool,
            meta,
            1024,
            sink,
            Partitioner::hash(),
            ShuffleMode::ZeroCopy,
        )
        .unwrap();

        for i in 0..512u64 {
            sh.emit(&i.to_le_bytes(), &i.to_le_bytes()).unwrap();
        }

        let before = allocs();
        for i in 0..65u64 {
            sh.emit(&i.to_le_bytes(), &i.to_le_bytes()).unwrap();
        }
        let during = allocs() - before;
        assert_eq!(
            during, 0,
            "flow-traced steady-state round allocated {during} times"
        );

        let (_, stats) = sh.finish().unwrap();
        assert!(stats.rounds >= 9, "burst crossed an exchange round");
        let rec = mimir_obs::take().expect("recorder still installed");
        assert!(rec.flow_enabled(), "the full-flow tier was active");
        // The ring really recorded through the measured burst (round
        // spans land on the same record() path flow events use). At one
        // rank no transport message ships, so the cross-rank flow pair
        // itself is proven in the multi-rank test below.
        assert!(
            rec.events()
                .iter()
                .any(|e| e.kind == mimir_obs::EventKind::RoundBegin),
            "recorder was live during the allocation-free rounds"
        );
    });
}

/// The multi-rank proof, via the transport's own counter: once the
/// per-`Comm` buffer pools are warm, further exchange rounds take every
/// send buffer from the pool (`send_allocs` stays flat), even across a
/// brand-new `Shuffler` on the same communicator — with full-flow
/// tracing live the whole time, so stamping flow ids on every message
/// demonstrably costs no steady-state send-buffer allocations either.
#[test]
fn warm_buffer_pools_serve_all_sends() {
    let deltas = run_world(4, |comm| {
        let mut recorder = mimir_obs::Recorder::new(comm.rank(), 256 * 1024);
        recorder.set_flow_enabled(true);
        mimir_obs::install(recorder);
        let pool = MemPool::unlimited("t", 64 * 1024);
        let meta = KvMeta::fixed(8, 8);

        let shuffle_pass = |comm: &mut mimir_mpi::Comm| -> u64 {
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::with_options(
                comm,
                &pool,
                meta,
                2048,
                sink,
                Partitioner::hash(),
                ShuffleMode::ZeroCopy,
            )
            .unwrap();
            let me = sh.rank() as u64;
            for i in 0..2000u64 {
                sh.emit(&(me * 10_000 + i).to_le_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            let (_, stats) = sh.finish().unwrap();
            assert!(stats.rounds > 10, "heavy enough to need many rounds");
            stats.sync_wait_ns + stats.data_wait_ns
        };

        shuffle_pass(comm); // warm-up: pools fill with circulating buffers
        let warm = comm.stats().send_allocs;
        let waited = shuffle_pass(comm); // steady state: pooled buffers only
        let rec = mimir_obs::take().expect("recorder installed");
        let flows = rec
            .events()
            .iter()
            .filter(|e| e.kind == mimir_obs::EventKind::FlowSend)
            .count();
        (comm.stats().send_allocs - warm, waited, flows)
    });
    let mut world_wait = 0;
    for (rank, (d, waited, flows)) in deltas.into_iter().enumerate() {
        assert_eq!(d, 0, "rank {rank} allocated {d} send buffers when warm");
        assert!(flows > 0, "rank {rank} stamped no flows despite tracing");
        world_wait += waited;
    }
    // Wait attribution is always on and ran through the allocation-free
    // steady state: with 4 ranks voting every round, somebody waited.
    assert!(world_wait > 0, "wait counters never advanced");
}
