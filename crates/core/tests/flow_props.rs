//! Flow-event integrity under a real multi-rank shuffle: every
//! `FlowRecv` pairs with exactly one `FlowSend` (same id, send before
//! receive on the shared clock), message metadata round-trips through
//! the packed event arguments, and ring overflow degrades to *detectable
//! drops* — a receive whose send half was overwritten matches nothing,
//! never the wrong send.

use std::time::Instant;

use mimir_core::{Emitter, KvContainer, KvMeta, Partitioner, ShuffleMode, Shuffler};
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mimir_obs::{unpack_rank_bytes, Event, EventKind, Recorder, FLOW_SEQ_BITS};

const RANKS: usize = 4;

/// Runs a heavy-ish shuffle with per-rank recorders of `ring_cap`
/// events and returns `(rank, events, dropped)` per rank — the gathered
/// view a doctor ingestion would see.
fn traced_shuffle(ring_cap: usize) -> Vec<(usize, Vec<Event>, u64)> {
    let epoch = Instant::now();
    run_world(RANKS, move |comm| {
        let mut rec = Recorder::with_epoch(comm.rank(), ring_cap, epoch);
        rec.set_flow_enabled(true);
        mimir_obs::install(rec);
        let pool = MemPool::unlimited("t", 64 * 1024);
        let meta = KvMeta::fixed(8, 8);
        let sink = KvContainer::new(&pool, meta);
        let mut sh = Shuffler::with_options(
            comm,
            &pool,
            meta,
            2048,
            sink,
            Partitioner::hash(),
            ShuffleMode::ZeroCopy,
        )
        .unwrap();
        let me = sh.rank() as u64;
        for i in 0..1500u64 {
            sh.emit(&(me * 100_000 + i).to_le_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        sh.finish().unwrap();
        let rec = mimir_obs::take().expect("recorder installed");
        (comm.rank(), rec.events(), rec.dropped())
    })
}

struct FlowHalf {
    rank: usize,
    t_ns: u64,
    peer: u64,
    bytes: u64,
}

type SendIndex = std::collections::HashMap<u64, Vec<FlowHalf>>;

fn split_flows(world: &[(usize, Vec<Event>, u64)]) -> (SendIndex, Vec<(u64, FlowHalf)>) {
    let mut sends: SendIndex = std::collections::HashMap::new();
    let mut recvs = Vec::new();
    for (rank, events, _) in world {
        for e in events {
            let (peer, bytes) = unpack_rank_bytes(e.b);
            let half = FlowHalf {
                rank: *rank,
                t_ns: e.t_ns,
                peer,
                bytes,
            };
            match e.kind {
                EventKind::FlowSend => sends.entry(e.a).or_default().push(half),
                EventKind::FlowRecv => recvs.push((e.a, half)),
                _ => {}
            }
        }
    }
    (sends, recvs)
}

#[test]
fn every_recv_pairs_with_exactly_one_send() {
    let world = traced_shuffle(512 * 1024);
    assert!(
        world.iter().all(|(_, _, dropped)| *dropped == 0),
        "ring sized to keep the full run"
    );
    let (sends, recvs) = split_flows(&world);
    assert!(!recvs.is_empty(), "the shuffle produced cross-rank flows");
    // Flow ids are globally unique: no id was allocated twice.
    for (id, halves) in &sends {
        assert_eq!(halves.len(), 1, "flow id {id:#x} allocated twice");
    }
    for (id, r) in &recvs {
        let s_list = sends
            .get(id)
            .unwrap_or_else(|| panic!("recv of flow {id:#x} without its send"));
        let s = &s_list[0];
        assert!(
            s.t_ns <= r.t_ns,
            "flow {id:#x}: send at {} after recv at {} on the shared clock",
            s.t_ns,
            r.t_ns
        );
        assert_eq!(s.peer as usize, r.rank, "send names its receiver");
        assert_eq!(r.peer as usize, s.rank, "recv names its sender");
        assert_eq!(
            (*id >> FLOW_SEQ_BITS) as usize,
            s.rank,
            "id high bits carry the sender's rank"
        );
        assert_eq!(s.bytes, r.bytes, "payload size agrees on both ends");
    }
    // Each message is matched at most once: distinct receive events
    // never share a flow id.
    let mut seen = std::collections::HashSet::new();
    for (id, _) in &recvs {
        assert!(seen.insert(*id), "flow {id:#x} was received twice");
    }
}

#[test]
fn ring_overflow_drops_are_detectable_not_mispaired() {
    // A 64-event ring is far too small for the run: most halves get
    // overwritten. Integrity must degrade to *missing* halves (flagged
    // by the dropped counter), never to a wrong pairing.
    let world = traced_shuffle(64);
    assert!(
        world.iter().any(|(_, _, dropped)| *dropped > 0),
        "the tiny ring must have overwritten events"
    );
    let (sends, recvs) = split_flows(&world);
    for halves in sends.values() {
        assert_eq!(halves.len(), 1, "drops must not duplicate an id");
    }
    for (id, r) in &recvs {
        // A surviving recv either finds its unique send, or the send was
        // dropped — identifiable because ids encode the sender, whose
        // dropped counter is nonzero.
        match sends.get(id) {
            Some(s_list) => {
                let s = &s_list[0];
                assert!(s.t_ns <= r.t_ns, "flow {id:#x} paired backwards");
                assert_eq!(s.peer as usize, r.rank);
            }
            None => {
                let sender = (*id >> FLOW_SEQ_BITS) as usize;
                let (_, _, sender_dropped) = world[sender];
                assert!(
                    sender_dropped > 0,
                    "flow {id:#x}: send half missing but rank {sender} \
                     reports no drops"
                );
            }
        }
    }
}
