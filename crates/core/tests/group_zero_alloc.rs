//! Proof that the grouping engine's hot path stops allocating: once a
//! [`GroupIndex`] (or a fold table built on it) has seen its working set,
//! further lookups of existing keys and in-place value merges perform
//! zero heap allocations — the property that lets skewed workloads (the
//! common MapReduce case) run the grouping loop at memory speed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mimir_core::{fxhash64, GroupIndex, GroupingMode, PartialReducer};
use mimir_mem::MemPool;

/// Wraps the system allocator with a per-thread allocation counter (the
/// same harness as the shuffle zero-alloc proof).
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(l) }
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(p, l, n) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Probing an existing key — hash, slot walk, tag compare, interned-key
/// compare — touches no allocator at all.
#[test]
fn existing_key_lookups_are_allocation_free() {
    let pool = MemPool::unlimited("t", 64 * 1024);
    let mut ix = GroupIndex::new(&pool).unwrap();
    let keys: Vec<Vec<u8>> = (0..1000u32)
        .map(|i| format!("word-{i:04}").into_bytes())
        .collect();
    for k in &keys {
        ix.insert(k).unwrap();
    }

    let before = allocs();
    for _ in 0..10 {
        for (want, k) in keys.iter().enumerate() {
            let (id, fresh) = ix.insert(k).unwrap();
            assert_eq!((id, fresh), (want as u32, false));
            assert_eq!(ix.get(k), Some(want as u32));
        }
    }
    let during = allocs() - before;
    assert_eq!(
        during, 0,
        "10,000 existing-key probes allocated {during} times"
    );

    // Precomputed-hash probes share the same path.
    let hashes: Vec<u64> = keys.iter().map(|k| fxhash64(k)).collect();
    let before = allocs();
    for (k, h) in keys.iter().zip(&hashes) {
        ix.insert_hashed(*h, k).unwrap();
    }
    assert_eq!(allocs() - before, 0);
}

/// The partial-reduction steady state — every arriving KV folds into an
/// existing group — is allocation-free once the working set is resident:
/// the probe hits, the combine callback writes into a reused scratch
/// buffer, and the accumulator is updated in place.
#[test]
fn steady_state_fold_is_allocation_free() {
    let pool = MemPool::unlimited("t", 64 * 1024);
    let meta = mimir_core::KvMeta::cstr_key_u64_val();
    let combine: mimir_core::CombineFn = Box::new(|_k, a, b, out| {
        let s =
            u64::from_le_bytes(a.try_into().unwrap()) + u64::from_le_bytes(b.try_into().unwrap());
        out.extend_from_slice(&s.to_le_bytes());
    });
    let mut pr = PartialReducer::with_mode(&pool, meta, combine, GroupingMode::Arena).unwrap();

    // Warm-up: materialize all 64 groups and their accumulators, and let
    // the slot table reach its final capacity.
    use mimir_core::KvSink;
    let keys: Vec<Vec<u8>> = (0..64u32)
        .map(|i| format!("k{i:02}").into_bytes())
        .collect();
    for _ in 0..4 {
        for k in &keys {
            pr.accept(k, &1u64.to_le_bytes()).unwrap();
        }
    }

    // Measured burst: 6,400 folds, all into existing groups.
    let before = allocs();
    for _ in 0..100 {
        for k in &keys {
            pr.accept(k, &1u64.to_le_bytes()).unwrap();
        }
    }
    let during = allocs() - before;
    assert_eq!(during, 0, "steady-state folds allocated {during} times");

    let stats = pr.group_stats();
    assert_eq!(stats.inserts, 104 * 64);
    assert_eq!(pr.unique_keys(), 64);
}
