//! Error-message stability: the strings users see in logs.

use mimir_core::{KvMeta, LenHint, MimirError};
use mimir_mem::MemPool;

#[test]
fn error_messages_are_informative() {
    let e = MimirError::KvTooLarge {
        size: 9000,
        limit: 4096,
        what: "container page",
    };
    assert_eq!(
        e.to_string(),
        "KV of 9000 B exceeds container page capacity 4096 B"
    );

    let e = MimirError::HintViolation("key of 3 B under Fixed(8) hint".into());
    assert!(e.to_string().contains("KV-hint violation"));

    let e = MimirError::Config("bad".into());
    assert_eq!(e.to_string(), "invalid configuration: bad");
}

#[test]
fn oom_errors_chain_to_their_source() {
    use std::error::Error;
    let pool = MemPool::new("node7", 64, 128).unwrap();
    let _a = pool.alloc_pages(2).unwrap();
    let mut kvc = mimir_core::KvContainer::new(
        &pool,
        KvMeta {
            key: LenHint::Fixed(8),
            val: LenHint::Fixed(8),
        },
    );
    let err = kvc.push(&[0u8; 8], &[0u8; 8]).unwrap_err();
    assert!(err.is_oom());
    let msg = err.to_string();
    assert!(msg.contains("node7"), "{msg}");
    assert!(msg.contains("128"), "{msg}");
    assert!(err.source().is_some(), "source chain preserved");
}
