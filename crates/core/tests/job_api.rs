//! Job-API surface tests: run-shape combinations, stats, error
//! propagation, and context reuse across jobs.

use mimir_core::{
    typed, Emitter, KvMeta, LenHint, MimirConfig, MimirContext, MimirError, ValueIter,
};
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::run_world;

fn ctx_world<R: Send>(
    ranks: usize,
    f: impl Fn(&mut MimirContext<'_>) -> R + Send + Sync,
) -> Vec<R> {
    run_world(ranks, move |comm| {
        let pool = MemPool::unlimited("node", 16 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        f(&mut ctx)
    })
}

#[test]
fn output_meta_can_differ_from_intermediate_meta() {
    let out = ctx_world(2, |ctx| {
        // Intermediate: var/var; output: fixed-key histogram.
        let res = ctx
            .job()
            .kv_meta(KvMeta::var())
            .out_meta(KvMeta::fixed(8, 8))
            .map_reduce(
                &mut |em| {
                    for i in 0..40u64 {
                        em.emit(format!("group-{}", i % 4).as_bytes(), &i.to_le_bytes())?;
                    }
                    Ok(())
                },
                &mut |k, vals: ValueIter<'_>, em| {
                    let n = vals.count() as u64;
                    // Re-key to a fixed 8-byte hash of the group name.
                    em.emit(&typed::enc_u64(mimir_core::fxhash64(k)), &typed::enc_u64(n))
                },
            )
            .unwrap();
        let mut total = 0u64;
        res.output
            .drain(|k, v| {
                assert_eq!(k.len(), 8);
                total += typed::dec_u64(v);
                Ok(())
            })
            .unwrap();
        total
    });
    assert_eq!(out.iter().sum::<u64>(), 2 * 40);
}

#[test]
fn reduce_may_emit_many_kvs_per_group() {
    let out = ctx_world(1, |ctx| {
        let res = ctx
            .job()
            .map_reduce(
                &mut |em| {
                    for i in 0..6u64 {
                        em.emit(b"k", &i.to_le_bytes())?;
                    }
                    Ok(())
                },
                &mut |_k, vals, em| {
                    // Echo every value back as its own KV.
                    for v in vals {
                        em.emit(b"echoed", v)?;
                    }
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(res.stats.unique_keys, 1);
        res.output.len()
    });
    assert_eq!(out[0], 6);
}

#[test]
fn map_error_propagates_without_hanging_single_rank() {
    let out = ctx_world(1, |ctx| {
        let res = ctx
            .job()
            .map_shuffle(&mut |_em| Err(MimirError::Config("synthetic map failure".into())));
        matches!(res, Err(MimirError::Config(_)))
    });
    assert!(out[0]);
}

#[test]
fn reduce_error_propagates_single_rank() {
    let out = ctx_world(1, |ctx| {
        let res = ctx
            .job()
            .map_reduce(&mut |em| em.emit(b"k", b"v"), &mut |_k, _vals, _em| {
                Err(MimirError::Config("synthetic reduce failure".into()))
            });
        matches!(res, Err(MimirError::Config(_)))
    });
    assert!(out[0]);
}

#[test]
fn stats_are_populated() {
    let out = ctx_world(2, |ctx| {
        let res = ctx
            .job()
            .kv_meta(KvMeta::cstr_key_u64_val())
            .out_meta(KvMeta::cstr_key_u64_val())
            .map_reduce(
                &mut |em| {
                    for i in 0..100u64 {
                        em.emit(format!("w{}", i % 10).as_bytes(), &typed::enc_u64(1))?;
                    }
                    Ok(())
                },
                &mut |k, vals, em| {
                    let n: u64 = vals.map(typed::dec_u64).sum();
                    em.emit(k, &typed::enc_u64(n))
                },
            )
            .unwrap();
        res.stats
    });
    let s = &out[0];
    assert_eq!(s.shuffle.kvs_emitted, 100);
    assert!(s.shuffle.kv_bytes_emitted > 0);
    assert!(s.shuffle.rounds >= 1);
    assert!(s.node_peak_bytes > 0);
    let total_unique: u64 = out.iter().map(|s| s.unique_keys).sum();
    assert_eq!(total_unique, 10);
    let total_out: u64 = out.iter().map(|s| s.kvs_out).sum();
    assert_eq!(total_out, 10);
}

#[test]
fn empty_map_produces_empty_everything() {
    let out = ctx_world(3, |ctx| {
        let res = ctx
            .job()
            .map_reduce(&mut |_em| Ok(()), &mut |_k, _v, _em| {
                panic!("reduce must not be called")
            })
            .unwrap();
        (res.output.len(), res.stats.unique_keys)
    });
    assert!(out.iter().all(|&(n, u)| n == 0 && u == 0));
}

#[test]
fn context_runs_many_jobs_back_to_back() {
    let out = ctx_world(2, |ctx| {
        let mut totals = Vec::new();
        for round in 1..=5u64 {
            let res = ctx
                .job()
                .kv_meta(KvMeta::fixed(8, 8))
                .out_meta(KvMeta::fixed(8, 8))
                .map_partial_reduce(
                    &mut |em| {
                        for i in 0..round * 10 {
                            em.emit(&typed::enc_u64(i % 3), &typed::enc_u64(1))?;
                        }
                        Ok(())
                    },
                    Box::new(|_k, a, b, o| {
                        o.extend_from_slice(&typed::enc_u64(typed::dec_u64(a) + typed::dec_u64(b)));
                    }),
                )
                .unwrap();
            let mut sum = 0;
            res.output
                .drain(|_k, v| {
                    sum += typed::dec_u64(v);
                    Ok(())
                })
                .unwrap();
            totals.push(sum);
        }
        totals
    });
    // Each round's totals across ranks: 2 ranks × round × 10 emissions.
    for round in 1..=5usize {
        let global: u64 = out.iter().map(|t| t[round - 1]).sum();
        assert_eq!(global, 2 * round as u64 * 10);
    }
}

#[test]
fn mixed_hint_combinations_roundtrip_through_jobs() {
    for (key, val) in [
        (LenHint::Var, LenHint::Var),
        (LenHint::Var, LenHint::Fixed(8)),
        (LenHint::CStr, LenHint::Var),
        (LenHint::CStr, LenHint::Fixed(8)),
        (LenHint::Fixed(4), LenHint::Fixed(8)),
        (LenHint::Fixed(4), LenHint::CStr),
    ] {
        let meta = KvMeta { key, val };
        let out = ctx_world(2, move |ctx| {
            let res = ctx
                .job()
                .kv_meta(meta)
                .out_meta(meta)
                .map_shuffle(&mut |em: &mut dyn Emitter| {
                    for i in 0..20u32 {
                        let k = match key {
                            LenHint::Fixed(4) => i.to_le_bytes().to_vec(),
                            _ => format!("key{i}").into_bytes(),
                        };
                        let v = match val {
                            LenHint::Fixed(8) => (i as u64).to_le_bytes().to_vec(),
                            _ => format!("val{i}").into_bytes(),
                        };
                        em.emit(&k, &v)?;
                    }
                    Ok(())
                })
                .unwrap();
            res.output.len()
        });
        assert_eq!(out.iter().sum::<u64>(), 2 * 20, "meta {meta:?}");
    }
}

#[test]
fn streaming_compression_bounds_memory_and_preserves_results() {
    use std::collections::HashMap;

    fn sum(_k: &[u8], a: &[u8], b: &[u8], o: &mut Vec<u8>) {
        o.extend_from_slice(&typed::enc_u64(typed::dec_u64(a) + typed::dec_u64(b)));
    }

    // Unique-heavy workload: the compression table grows with keys, the
    // paper's worst case for cps. A flush budget must bound the peak.
    let run = |flush: Option<usize>| {
        run_world(2, move |comm| {
            let pool = MemPool::new("node", 16 * 1024, 64 << 20).unwrap();
            let mut ctx =
                MimirContext::new(comm, pool.clone(), IoModel::free(), MimirConfig::default())
                    .unwrap();
            let mut job = ctx
                .job()
                .kv_meta(KvMeta::cstr_key_u64_val())
                .out_meta(KvMeta::cstr_key_u64_val());
            if let Some(b) = flush {
                job = job.compress_flush_bytes(b);
            }
            let res = job
                .map_partial_reduce_compress(
                    &mut |em| {
                        for i in 0..20_000u64 {
                            em.emit(format!("unique-key-{i}").as_bytes(), &typed::enc_u64(1))?;
                        }
                        Ok(())
                    },
                    Box::new(sum),
                    Box::new(sum),
                )
                .unwrap();
            let mut counts: HashMap<Vec<u8>, u64> = HashMap::new();
            res.output
                .drain(|k, v| {
                    counts.insert(k.to_vec(), typed::dec_u64(v));
                    Ok(())
                })
                .unwrap();
            (counts, pool.peak())
        })
    };

    let delayed = run(None);
    let streaming = run(Some(64 * 1024));

    // Same results either way.
    let merge = |rs: &[(HashMap<Vec<u8>, u64>, usize)]| {
        let mut m: HashMap<Vec<u8>, u64> = HashMap::new();
        for (c, _) in rs {
            for (k, v) in c {
                assert!(m.insert(k.clone(), *v).is_none());
            }
        }
        m
    };
    let a = merge(&delayed);
    let b = merge(&streaming);
    assert_eq!(a, b);
    // Both ranks emit the same 20k keys → every key counted twice.
    assert_eq!(a.len(), 20_000);
    assert!(a.values().all(|&v| v == 2));

    // The streaming variant's peak is meaningfully lower: the delayed
    // table holds 20k unique keys, the streaming one at most ~64 KiB.
    let peak_delayed = delayed.iter().map(|(_, p)| *p).max().unwrap();
    let peak_streaming = streaming.iter().map(|(_, p)| *p).max().unwrap();
    assert!(
        (peak_streaming as f64) < 0.7 * peak_delayed as f64,
        "streaming {peak_streaming} vs delayed {peak_delayed}"
    );
}
