//! Property tests over the container layer: KVC round-trips arbitrary
//! KV multisets under every hint, convert groups them exactly, and the
//! results are deterministic across runs.

use std::collections::HashMap;

use mimir_core::{convert, KvContainer, KvMeta, LenHint};
use mimir_mem::MemPool;
use proptest::prelude::*;

fn var_kvs() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    prop::collection::vec(
        (
            prop::collection::vec(1u8..=255, 0..10), // no NUL → CStr-safe
            prop::collection::vec(proptest::num::u8::ANY, 0..14),
        ),
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kvc_roundtrips_any_multiset(kvs in var_kvs(), page in prop_oneof![Just(64usize), Just(256), Just(4096)]) {
        let pool = MemPool::unlimited("prop", page);
        let mut kvc = KvContainer::new(&pool, KvMeta::var());
        let mut expected = Vec::new();
        for (k, v) in &kvs {
            // Skip KVs that legitimately exceed a page (checked error).
            match kvc.push(k, v) {
                Ok(()) => expected.push((k.clone(), v.clone())),
                Err(e) => prop_assert!(
                    matches!(e, mimir_core::MimirError::KvTooLarge { .. }),
                    "unexpected error {e}"
                ),
            }
        }
        let got: Vec<(Vec<u8>, Vec<u8>)> =
            kvc.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        prop_assert_eq!(&got, &expected, "iter preserves order and content");
        let mut drained = Vec::new();
        kvc.drain(|k, v| {
            drained.push((k.to_vec(), v.to_vec()));
            Ok(())
        })
        .unwrap();
        prop_assert_eq!(&drained, &expected);
        prop_assert_eq!(pool.used(), 0);
    }

    #[test]
    fn cstr_key_container_roundtrips(kvs in var_kvs()) {
        let meta = KvMeta {
            key: LenHint::CStr,
            val: LenHint::Var,
        };
        let pool = MemPool::unlimited("prop", 4096);
        let mut kvc = KvContainer::new(&pool, meta);
        for (k, v) in &kvs {
            kvc.push(k, v).unwrap();
        }
        let got: Vec<(Vec<u8>, Vec<u8>)> =
            kvc.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        prop_assert_eq!(got, kvs);
    }

    #[test]
    fn convert_is_exact_and_deterministic(kvs in var_kvs()) {
        let pool = MemPool::unlimited("prop", 512);
        let build = || {
            let mut kvc = KvContainer::new(&pool, KvMeta::var());
            for (k, v) in &kvs {
                kvc.push(k, v).unwrap();
            }
            kvc
        };
        // Reference grouping (order within groups = insertion order).
        let mut expected: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
        for (k, v) in &kvs {
            expected.entry(k.clone()).or_default().push(v.clone());
        }

        let snapshot = |kvc: KvContainer| {
            let kmvc = convert(kvc, &pool).unwrap();
            let mut order = Vec::new();
            let mut groups: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
            kmvc.for_each_group(|k, vals| {
                order.push(k.to_vec());
                groups.insert(k.to_vec(), vals.map(<[u8]>::to_vec).collect());
                Ok(())
            })
            .unwrap();
            (order, groups)
        };
        let (order_a, groups_a) = snapshot(build());
        let (order_b, groups_b) = snapshot(build());
        prop_assert_eq!(&groups_a, &expected);
        prop_assert_eq!(order_a, order_b, "group order is deterministic");
        prop_assert_eq!(groups_a, groups_b);
        prop_assert_eq!(pool.used(), 0, "everything released");
    }
}
