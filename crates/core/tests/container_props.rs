//! Randomized tests over the container layer: KVC round-trips arbitrary
//! KV multisets under every hint, convert groups them exactly, and the
//! results are deterministic across runs. Driven by a seeded PRNG so
//! failures replay deterministically.

use std::collections::HashMap;

use mimir_core::{convert, KvContainer, KvMeta, LenHint};
use mimir_datagen::rank_rng;
use mimir_mem::MemPool;

/// Random multiset of KVs: keys without NUL (CStr-safe), short values.
fn gen_kvs(seed: u64, case: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut rng = rank_rng(seed, case);
    (0..rng.gen_range(0..120))
        .map(|_| {
            let k: Vec<u8> = (0..rng.gen_range(0..10))
                .map(|_| 1 + rng.gen_range(0..255) as u8)
                .collect();
            let v: Vec<u8> = (0..rng.gen_range(0..14))
                .map(|_| rng.gen_range(0..256) as u8)
                .collect();
            (k, v)
        })
        .collect()
}

#[test]
fn kvc_roundtrips_any_multiset() {
    for case in 0..48usize {
        let kvs = gen_kvs(0xC0_47A1, case);
        let page = [64usize, 256, 4096][case % 3];
        let pool = MemPool::unlimited("prop", page);
        let mut kvc = KvContainer::new(&pool, KvMeta::var());
        let mut expected = Vec::new();
        for (k, v) in &kvs {
            // Skip KVs that legitimately exceed a page (checked error).
            match kvc.push(k, v) {
                Ok(()) => expected.push((k.clone(), v.clone())),
                Err(e) => assert!(
                    matches!(e, mimir_core::MimirError::KvTooLarge { .. }),
                    "case {case}: unexpected error {e}"
                ),
            }
        }
        let got: Vec<(Vec<u8>, Vec<u8>)> =
            kvc.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        assert_eq!(&got, &expected, "case {case}: iter preserves order/content");
        let mut drained = Vec::new();
        kvc.drain(|k, v| {
            drained.push((k.to_vec(), v.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(&drained, &expected, "case {case}");
        assert_eq!(pool.used(), 0, "case {case}");
    }
}

#[test]
fn cstr_key_container_roundtrips() {
    for case in 0..48usize {
        let kvs = gen_kvs(0xC5_7218, case);
        let meta = KvMeta {
            key: LenHint::CStr,
            val: LenHint::Var,
        };
        let pool = MemPool::unlimited("prop", 4096);
        let mut kvc = KvContainer::new(&pool, meta);
        for (k, v) in &kvs {
            kvc.push(k, v).unwrap();
        }
        let got: Vec<(Vec<u8>, Vec<u8>)> =
            kvc.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        assert_eq!(got, kvs, "case {case}");
    }
}

#[test]
fn convert_is_exact_and_deterministic() {
    for case in 0..48usize {
        let kvs = gen_kvs(0xC0_4BE2, case);
        let pool = MemPool::unlimited("prop", 512);
        let build = || {
            let mut kvc = KvContainer::new(&pool, KvMeta::var());
            for (k, v) in &kvs {
                kvc.push(k, v).unwrap();
            }
            kvc
        };
        // Reference grouping (order within groups = insertion order).
        let mut expected: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
        for (k, v) in &kvs {
            expected.entry(k.clone()).or_default().push(v.clone());
        }

        let snapshot = |kvc: KvContainer| {
            let kmvc = convert(kvc, &pool).unwrap();
            let mut order = Vec::new();
            let mut groups: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
            kmvc.for_each_group(|k, vals| {
                order.push(k.to_vec());
                groups.insert(k.to_vec(), vals.map(<[u8]>::to_vec).collect());
                Ok(())
            })
            .unwrap();
            (order, groups)
        };
        let (order_a, groups_a) = snapshot(build());
        let (order_b, groups_b) = snapshot(build());
        assert_eq!(&groups_a, &expected, "case {case}");
        assert_eq!(order_a, order_b, "case {case}: group order deterministic");
        assert_eq!(groups_a, groups_b, "case {case}");
        assert_eq!(pool.used(), 0, "case {case}: everything released");
    }
}
