//! Property tests for the grouping engine: [`GroupIndex`] must behave
//! exactly like a reference `HashMap<Vec<u8>, u32>` that assigns ids in
//! first-occurrence order, across adversarial key shapes — empty keys,
//! keys longer than a pool page, and pairs constructed to collide on the
//! full 64-bit hash.

use std::collections::HashMap;

use mimir_core::{
    convert_with, fxhash64, partition_of, GroupIndex, GroupingMode, KvContainer, KvMeta,
};
use mimir_mem::MemPool;

/// xorshift64* — deterministic stream per seed, no external PRNG crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random key whose length distribution covers the interesting cases:
/// empty, short, page-straddling, and (rarely) larger than a page.
fn random_key(rng: &mut Rng, page: usize) -> Vec<u8> {
    let len = match rng.below(100) {
        0..=4 => 0,                             // empty
        5..=69 => 1 + rng.below(16) as usize,   // short (common case)
        70..=94 => 1 + rng.below(200) as usize, // page-straddling
        _ => page + 1 + rng.below(64) as usize, // jumbo
    };
    // Draw from a small alphabet so duplicates actually occur.
    let tag = rng.below(50);
    (0..len)
        .map(|i| (tag as u8).wrapping_add(i as u8 % 7))
        .collect()
}

/// The reference model: first-occurrence id assignment via std's own
/// (SipHash) map, sharing nothing with the implementation under test.
#[derive(Default)]
struct Model {
    ids: HashMap<Vec<u8>, u32>,
}

impl Model {
    fn insert(&mut self, key: &[u8]) -> (u32, bool) {
        let next = self.ids.len() as u32;
        match self.ids.entry(key.to_vec()) {
            std::collections::hash_map::Entry::Occupied(e) => (*e.get(), false),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(next);
                (next, true)
            }
        }
    }
}

#[test]
fn index_matches_reference_model_on_random_streams() {
    for seed in [1u64, 0xDEAD_BEEF, 0x1234_5678_9ABC_DEF0] {
        let page = 128;
        let pool = MemPool::unlimited("t", page);
        let mut rng = Rng(seed);
        let mut ix = GroupIndex::new(&pool).unwrap();
        let mut model = Model::default();
        let mut keys_by_id: Vec<Vec<u8>> = Vec::new();

        for step in 0..20_000 {
            let key = random_key(&mut rng, page);
            let want = model.insert(&key);
            let got = ix.insert(&key).unwrap();
            assert_eq!(got, want, "seed {seed} step {step} key {key:?}");
            if want.1 {
                keys_by_id.push(key);
            }
            // Interleave read-only probes of a key seen (or not) so far.
            if step % 7 == 0 {
                let probe = random_key(&mut rng, page);
                assert_eq!(
                    ix.get(&probe),
                    model.ids.get(&probe).copied(),
                    "seed {seed} step {step} probe {probe:?}"
                );
            }
        }

        assert_eq!(ix.len(), model.ids.len(), "seed {seed}");
        for (id, key) in keys_by_id.iter().enumerate() {
            assert_eq!(ix.key(id as u32), &key[..], "seed {seed} id {id}");
            assert_eq!(ix.hash_of(id as u32), fxhash64(key));
        }
        let stats = ix.stats();
        assert_eq!(stats.groups, model.ids.len() as u64);
        assert_eq!(stats.probe_hist.iter().sum::<u64>(), stats.inserts);
    }
}

/// Builds `n` distinct 16-byte keys that all share one fxhash64 value.
///
/// fxhash64 folds 8-byte words as `h = (rot5(h) ^ w) * SEED` and then
/// applies a bijective finalizer, so two 2-word keys collide iff their
/// pre-finalizer states match:
///
/// ```text
/// (rot5(w1·S) ^ w2)·S == (rot5(w1'·S) ^ w2')·S
///   ⟺ w2' = rot5(w1·S) ^ rot5(w1'·S) ^ w2          (S is odd ⇒ ·S injective)
/// ```
///
/// Any choice of `w1'` therefore yields a colliding partner by solving
/// for `w2'`.
fn collision_family(n: usize) -> Vec<[u8; 16]> {
    const SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;
    let (w1, w2) = (0x0123_4567_89AB_CDEFu64, 0xFEDC_BA98_7654_3210u64);
    let base = w1.wrapping_mul(SEED).rotate_left(5);
    (0..n as u64)
        .map(|i| {
            let w1p = w1 ^ (i << 1);
            let w2p = base ^ w1p.wrapping_mul(SEED).rotate_left(5) ^ w2;
            let mut k = [0u8; 16];
            k[..8].copy_from_slice(&w1p.to_le_bytes());
            k[8..].copy_from_slice(&w2p.to_le_bytes());
            k
        })
        .collect()
}

#[test]
fn forced_full_hash_collisions_stay_distinct_groups() {
    let family = collision_family(64);
    let h0 = fxhash64(&family[0]);
    for k in &family {
        assert_eq!(fxhash64(k), h0, "family member must truly collide");
    }
    assert_eq!(
        family
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len(),
        family.len(),
        "members are distinct byte strings"
    );

    let pool = MemPool::unlimited("t", 4096);
    let mut ix = GroupIndex::new(&pool).unwrap();
    // Interleave colliding keys with ordinary ones so probes cross both.
    for (i, k) in family.iter().enumerate() {
        assert_eq!(ix.insert(k).unwrap(), (2 * i as u32, true));
        let filler = format!("filler-{i}");
        assert_eq!(
            ix.insert(filler.as_bytes()).unwrap(),
            (2 * i as u32 + 1, true)
        );
    }
    // Every member resolves to its own id — the tag matches for all of
    // them, so lookup must fall through to full key comparison.
    for (i, k) in family.iter().enumerate() {
        assert_eq!(ix.insert(k).unwrap(), (2 * i as u32, false), "member {i}");
        assert_eq!(ix.get(k), Some(2 * i as u32));
        assert_eq!(ix.key(2 * i as u32), &k[..]);
    }
    let stats = ix.stats();
    assert_eq!(stats.groups, 2 * family.len() as u64);
    assert!(
        stats.max_probe >= family.len() as u64 / 4,
        "a 64-way hash pileup must show up as long probes: {}",
        stats.max_probe
    );
}

/// Convert must produce identical KMV output — same groups, same
/// first-occurrence order, same per-group value sequences — under both
/// grouping engines, for every length-hint encoding.
#[test]
fn convert_modes_agree_across_hints() {
    let cases: Vec<(KvMeta, bool)> = vec![
        (KvMeta::var(), true),               // variable keys, empty allowed
        (KvMeta::fixed(8, 8), false),        // fixed-size keys
        (KvMeta::cstr_key_u64_val(), false), // NUL-terminated keys
    ];
    for (case, (meta, allow_empty)) in cases.into_iter().enumerate() {
        let pool = MemPool::unlimited("t", 256);
        // One shared workload per hint, fed identically to both modes.
        let mut rng = Rng(0xC0FF_EE00 + case as u64);
        let kvs: Vec<(Vec<u8>, Vec<u8>)> = (0..5000u64)
            .map(|i| case_kv(allow_empty, &mut rng, i))
            .collect();
        let build = |mode| {
            let mut kvc = KvContainer::new(&pool, meta);
            for (k, v) in &kvs {
                kvc.push(k, v).unwrap();
            }
            let (kmvc, _) = convert_with(kvc, &pool, mode).unwrap();
            let mut flat: Vec<(Vec<u8>, Vec<Vec<u8>>)> = Vec::new();
            kmvc.for_each_group(|k, vals| {
                flat.push((k.to_vec(), vals.map(<[u8]>::to_vec).collect()));
                Ok(())
            })
            .unwrap();
            flat
        };
        let arena = build(GroupingMode::Arena);
        let legacy = build(GroupingMode::Legacy);
        assert_eq!(arena, legacy, "hint case {case}");
        assert!(!arena.is_empty());
    }
}

/// Convert sees only keys the shuffle already routed to this rank, i.e.
/// keys whose hashes all fall in one `1/p`-wide band of the 64-bit hash
/// space (`partition_of` is a multiply-shift on the high bits). The slot
/// table must decorrelate its start slot from that band, or every key
/// piles into the same `1/p` slice of the table and probing degenerates
/// to a linear scan. This pins the remix: partition-filtered streams
/// probe like uniform ones.
#[test]
fn partition_filtered_keys_probe_like_uniform_keys() {
    const RANKS: usize = 8;
    let fill = |filter: bool| {
        let pool = MemPool::unlimited("t", 4096);
        let mut ix = GroupIndex::new(&pool).unwrap();
        let mut inserted = 0u64;
        let mut i = 0u64;
        while inserted < 4000 {
            let key = format!("word{i:08}");
            i += 1;
            if filter && partition_of(key.as_bytes(), RANKS) != 3 {
                continue; // the shuffle sent this key elsewhere
            }
            ix.insert(key.as_bytes()).unwrap();
            inserted += 1;
        }
        ix.stats()
    };
    let uniform = fill(false);
    let band = fill(true);
    assert_eq!(band.groups, 4000);
    // Pre-remix, the band stream probed ~140× worse than the uniform one
    // (avg ~300 vs ~2); with the remix they are within noise of each
    // other. 2× headroom keeps the assertion robust while still failing
    // catastrophically on any re-correlation.
    assert!(
        band.avg_probe() < 2.0 * uniform.avg_probe().max(1.0),
        "partition-band keys must probe like uniform ones: band avg {} vs uniform avg {}",
        band.avg_probe(),
        uniform.avg_probe()
    );
    assert!(
        band.max_probe < 128,
        "no catastrophic pileup: max {}",
        band.max_probe
    );
}

/// One random KV: 8-byte keys from a small vocabulary (valid under every
/// hint in the table above), occasionally empty where the hint allows.
fn case_kv(allow_empty: bool, rng: &mut Rng, i: u64) -> (Vec<u8>, Vec<u8>) {
    let kind = rng.below(if allow_empty { 12 } else { 10 });
    let key: Vec<u8> = match kind {
        10 | 11 => Vec::new(),
        _ => format!("key{:05}", rng.below(40)).into_bytes(),
    };
    let val = (i % 251).to_le_bytes().to_vec();
    (key, val)
}
