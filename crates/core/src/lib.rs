//! # mimir-core — Mimir: memory-efficient MapReduce over message passing
//!
//! This crate is the reproduction's primary contribution: the Mimir
//! framework of *"Mimir: Memory-Efficient and Scalable MapReduce for Large
//! Supercomputing Systems"* (Gao et al., IPDPS 2017), reimplemented in
//! Rust over the in-process substrates of `mimir-mpi` (communication),
//! `mimir-mem` (budgeted node memory), and `mimir-io` (parallel-file-system
//! cost model).
//!
//! ## Execution model (paper Section III)
//!
//! A job runs the classic map → aggregate → convert → reduce workflow, but
//! unlike MR-MPI the `aggregate` and `convert` phases are **implicit**:
//!
//! * The map callback emits KVs straight into a *partitioned send buffer*
//!   (one partition per rank, selected by key hash). There is no separate
//!   map output buffer and no staging copy — the two-buffer design of
//!   paper Figure 4.
//! * When a partition fills, the map is suspended and an *exchange round*
//!   runs: `allreduce` of done-flags, `alltoallv` of the partitions, and a
//!   drain of the received KVs into a [`KvContainer`] (KVC) — dynamically
//!   grown, page-granular storage that frees pages as data is consumed.
//!   Rounds interleave map and aggregate, so memory use does not grow with
//!   the input.
//! * After the map, `convert` groups the KVC into a [`KmvContainer`]
//!   (KMVC) with the paper's two-pass algorithm (pass 1 sizes each group
//!   in a hash bucket; pass 2 places values), and `reduce` runs the user
//!   callback over each `<key, [values]>` group.
//!
//! ## Optional optimizations (paper Section III-C)
//!
//! * **KV-hint** ([`LenHint`]): fixed-length or NUL-terminated keys/values
//!   drop the 8-byte per-KV length header.
//! * **Partial reduction** ([`MapReduceJob::map_partial_reduce`]): for
//!   commutative+associative reductions, incoming KVs fold into a hash
//!   bucket as they arrive — no KVC, no KMVC.
//! * **KV compression** (`compress` variants): a map-side combiner that
//!   merges duplicate keys before the exchange, trading a tracked hash
//!   table for less communication.

pub mod adapt;
mod buffer;
mod cache;
mod cancel;
mod combiner;
mod config;
mod context;
mod convert;
mod error;
mod group;
mod hash;
mod job;
mod kmvc;
mod kv;
mod kvc;
mod partial;
mod partitioner;
mod recovery;
mod shuffle;
mod sink;
mod staging;
mod stats;
pub mod typed;

pub use adapt::{AdaptController, AdaptStats, HotStore};
pub use cache::{
    lock_cache, shared_cache, CacheEntrySnapshot, CacheStats, CheckedOut, KvCache, SharedKvCache,
};
pub use cancel::CancelToken;
pub use combiner::{CombineFn, CombinerTable, StreamingCombiner};
pub use config::{AdaptPolicy, GroupingMode, KvMeta, LenHint, MimirConfig, ShuffleMode};
pub use context::MimirContext;
pub use convert::{convert, convert_with};
pub use error::MimirError;
pub use group::{GroupIndex, GroupStats};
pub use job::{ChainMapFn, JobOutput, MapFn, MapReduceJob, OutEmitter, ReduceFn};
pub use kmvc::{KmvContainer, ValueIter};
pub use kv::{decode_one, encode_push, encoded_len, KvDecoder};
pub use kvc::KvContainer;
pub use partial::PartialReducer;
pub use partitioner::{PartitionFingerprint, Partitioner};
pub use recovery::{run_iterative_with_recovery, CheckpointStore, RestartPoint};
pub use shuffle::{Emitter, ShuffleStats, Shuffler};
pub use sink::KvSink;
pub use staging::StagedKvs;
pub use stats::JobStats;

pub use hash::{fast_range, fxhash64, partition_of, partition_of_hashed};

pub use mimir_mpi::TransportKind;

/// Result alias for fallible Mimir operations.
pub type Result<T> = std::result::Result<T, MimirError>;
