//! The interleaved map/aggregate engine (paper Section III-A, Figure 4).
//!
//! Each rank owns a *send buffer* divided into `p` equal partitions and a
//! *receive buffer* of the same total size. The map callback emits KVs
//! straight into the partition chosen by the key hash — there is no map
//! output buffer and no staging copy. When a partition fills, the map is
//! suspended and an **exchange round** runs; received KVs drain into the
//! job's [`KvSink`] and the map resumes. Because every sender contributes
//! at most one partition (`comm_buf/p` bytes) to each receiver, the
//! received data can never exceed the receive buffer, "even when the KV
//! partitioning is highly unbalanced" — the paper's Section III-B
//! guarantee, which is why the receive buffer needs only one send-buffer's
//! worth of space where MR-MPI needed two pages. The bound is enforced at
//! runtime: every round's received bytes land in the static receive
//! buffer, and overflowing it panics.
//!
//! ## Exchange-round protocol
//!
//! A round is `allreduce(done flags)` + `alltoallv(partitions)` + drain.
//! A rank enters a round when a partition fills (`done = false`) or, once
//! its input is exhausted, repeatedly from [`Shuffler::finish`]
//! (`done = true`) until the allreduce reports everyone done. All ranks
//! thus execute identical collective sequences — the MPI matching rule —
//! and the final round still drains in-flight data, so the protocol is
//! deadlock-free and loses nothing.
//!
//! Under [`ShuffleMode::Overlapped`] the round is reordered to
//! `post(sends)` + `allreduce(done flags)` + `complete(receives)` +
//! drain: the sends leave before the done-vote, so the vote's
//! synchronization latency hides behind the data movement. Every rank
//! must run the same mode (it is part of the collective call sequence).
//!
//! ## Data path
//!
//! [`ShuffleMode::ZeroCopy`] (the default) sends each partition directly
//! from its send-buffer slice through pooled transport buffers, receives
//! into the static receive buffer, and hands each source rank's run to
//! the sink via [`KvSink::accept_run`] — for a [`crate::KvContainer`]
//! sink that is a page-wise memcpy, since wire format equals container
//! format. After a warm-up round the steady state performs no heap
//! allocation. [`ShuffleMode::Legacy`] keeps the original
//! allocate-per-round path as the ablation baseline.

use std::ops::Range;

use mimir_mem::MemPool;
use mimir_mpi::{Comm, ReduceOp};
use mimir_obs::{EventKind, Step};

use crate::buffer::TrackedBuf;
use crate::kv::{encode_into, encoded_len, validate, KvDecoder};
use crate::partitioner::Partitioner;
use crate::sink::KvSink;
use crate::{KvMeta, MimirError, Result, ShuffleMode};

/// Destination for KVs produced by a map callback.
///
/// Implemented by [`Shuffler`] (direct emission into the send buffer), by
/// [`crate::CombinerTable`] (KV compression), and by the reduce phase's
/// output container wrapper.
pub trait Emitter {
    /// Emits one KV.
    ///
    /// # Errors
    /// Hint violations, oversized KVs, or memory exhaustion.
    fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()>;

    /// Emits one KV whose `fxhash64` is already known (`key_hash` must be
    /// `fxhash64(key)`). Emitters that route by key hash — the
    /// [`Shuffler`] under the default partitioner — override this to skip
    /// re-hashing; the default discards the hash and forwards to
    /// [`Self::emit`].
    ///
    /// # Errors
    /// As [`Self::emit`].
    fn emit_hashed(&mut self, key: &[u8], val: &[u8], key_hash: u64) -> Result<()> {
        let _ = key_hash;
        self.emit(key, val)
    }
}

/// Counters describing one shuffle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// KVs emitted by this rank's map.
    pub kvs_emitted: u64,
    /// Encoded bytes emitted (the "KV size" of paper Figure 7).
    pub kv_bytes_emitted: u64,
    /// KVs received into this rank's sink.
    pub kvs_received: u64,
    /// Exchange rounds this rank participated in.
    pub rounds: u64,
    /// Encoded bytes landed in this rank's receive buffer (includes the
    /// rank's own partition).
    pub bytes_received: u64,
    /// Largest single-round receive total. The Section III-B invariant is
    /// `max_round_recv_bytes ≤ comm_buf_size`; the data path asserts it
    /// every round.
    pub max_round_recv_bytes: u64,
    /// Nanoseconds this rank spent blocked in the rounds' done-allreduce
    /// — straggler-bound wait: some peer was still mapping or draining
    /// when this rank entered the vote.
    pub sync_wait_ns: u64,
    /// Nanoseconds blocked receiving the rounds' partition payloads —
    /// byte-bound wait: peers were still pushing data.
    pub data_wait_ns: u64,
    /// Cumulative bytes this rank sent to its hottest destination.
    pub max_dest_bytes: u64,
    /// Send-side partition imbalance over the whole shuffle: max/mean of
    /// cumulative per-destination bytes in permille (1000 = perfectly
    /// balanced, 0 = nothing emitted).
    pub imbalance_permille: u64,
    /// Gini coefficient of cumulative per-destination bytes in permille
    /// (0 = uniform, →1000 = everything to one destination).
    pub gini_permille: u64,
}

impl ShuffleStats {
    /// Folds another rank's counters into this one (cluster totals, the
    /// same shape as `CommStats::merge`). Traffic counters sum; `rounds`
    /// takes the max because exchange rounds are collective — every rank
    /// participates in the same ones, so summing would overcount — and so
    /// does the per-round receive high-water mark.
    pub fn merge(&mut self, other: &ShuffleStats) {
        self.kvs_emitted += other.kvs_emitted;
        self.kv_bytes_emitted += other.kv_bytes_emitted;
        self.kvs_received += other.kvs_received;
        self.rounds = self.rounds.max(other.rounds);
        self.bytes_received += other.bytes_received;
        self.max_round_recv_bytes = self.max_round_recv_bytes.max(other.max_round_recv_bytes);
        self.sync_wait_ns += other.sync_wait_ns;
        self.data_wait_ns += other.data_wait_ns;
        self.max_dest_bytes = self.max_dest_bytes.max(other.max_dest_bytes);
        self.imbalance_permille = self.imbalance_permille.max(other.imbalance_permille);
        self.gini_permille = self.gini_permille.max(other.gini_permille);
    }
}

/// The partitioned-send-buffer shuffle engine.
pub struct Shuffler<'a, S: KvSink> {
    comm: &'a mut Comm,
    meta: KvMeta,
    mode: ShuffleMode,
    send: TrackedBuf,
    /// The static receive buffer of paper Section III-B. Every round's
    /// received partitions are copied here; the partition arithmetic
    /// guarantees one send-buffer's worth of space always suffices.
    recv: TrackedBuf,
    part_cap: usize,
    part_len: Vec<usize>,
    /// Receive-buffer sub-range per source rank, reused across rounds.
    ranges: Vec<Range<usize>>,
    /// Cumulative bytes emitted towards each destination rank — the
    /// per-destination histogram behind the skew metrics.
    dest_bytes: Vec<u64>,
    /// Cumulative KVs emitted towards each destination rank.
    dest_kvs: Vec<u64>,
    /// Preallocated sort buffer for the Gini computation, so per-round
    /// skew accounting stays allocation-free in steady state.
    skew_scratch: Vec<u64>,
    partitioner: Partitioner,
    sink: S,
    stats: ShuffleStats,
}

/// Imbalance ratio (max/mean) and Gini coefficient, both in permille, of
/// the distribution currently held in `values`. Sorts `values` in place
/// (callers pass a reused scratch buffer). Returns `None` for an empty or
/// all-zero distribution.
fn skew_permille(values: &mut [u64]) -> Option<(u64, u64)> {
    let n = values.len() as u64;
    let total: u64 = values.iter().sum();
    if n == 0 || total == 0 {
        return None;
    }
    let max = values.iter().copied().max().unwrap_or(0);
    let imbalance = (max as u128 * 1000 * n as u128 / total as u128) as u64;
    values.sort_unstable();
    // G = (2 Σ i·x₍ᵢ₎) / (n Σ x) − (n+1)/n, ascending order, i 1-based.
    let weighted: u128 = values
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as u128 + 1) * x as u128)
        .sum();
    let g = (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64;
    let gini = (g.clamp(0.0, 1.0) * 1000.0).round() as u64;
    Some((imbalance, gini))
}

impl<'a, S: KvSink> Shuffler<'a, S> {
    /// Creates a shuffler whose send and receive buffers (each
    /// `comm_buf_size` bytes) are charged to `pool`.
    ///
    /// # Errors
    /// Memory exhaustion allocating the two communication buffers, or a
    /// configuration leaving partitions absurdly small.
    pub fn new(
        comm: &'a mut Comm,
        pool: &MemPool,
        meta: KvMeta,
        comm_buf_size: usize,
        sink: S,
    ) -> Result<Self> {
        Self::with_partitioner(comm, pool, meta, comm_buf_size, sink, Partitioner::hash())
    }

    /// [`Self::new`] with a user partitioner (paper Section III-A:
    /// "Users can provide alternative hash functions").
    ///
    /// # Errors
    /// As [`Self::new`].
    pub fn with_partitioner(
        comm: &'a mut Comm,
        pool: &MemPool,
        meta: KvMeta,
        comm_buf_size: usize,
        sink: S,
        partitioner: Partitioner,
    ) -> Result<Self> {
        Self::with_options(
            comm,
            pool,
            meta,
            comm_buf_size,
            sink,
            partitioner,
            ShuffleMode::default(),
        )
    }

    /// Fully-parameterized constructor: partitioner plus data-path
    /// [`ShuffleMode`]. The mode is part of the collective call sequence,
    /// so every rank must pass the same one.
    ///
    /// # Errors
    /// As [`Self::new`].
    pub fn with_options(
        comm: &'a mut Comm,
        pool: &MemPool,
        meta: KvMeta,
        comm_buf_size: usize,
        sink: S,
        partitioner: Partitioner,
        mode: ShuffleMode,
    ) -> Result<Self> {
        let p = comm.size();
        let part_cap = comm_buf_size / p;
        if part_cap < 16 {
            return Err(MimirError::Config(format!(
                "send buffer of {comm_buf_size} B leaves {part_cap} B partitions across {p} ranks"
            )));
        }
        Ok(Self {
            comm,
            meta,
            mode,
            send: TrackedBuf::new(pool, part_cap * p)?,
            recv: TrackedBuf::new(pool, part_cap * p)?,
            part_cap,
            part_len: vec![0; p],
            ranges: Vec::with_capacity(p),
            dest_bytes: vec![0; p],
            dest_kvs: vec![0; p],
            skew_scratch: Vec::with_capacity(p),
            partitioner,
            sink,
            stats: ShuffleStats::default(),
        })
    }

    /// Completes the shuffle: participates in exchange rounds until every
    /// rank is done, then returns the sink and the shuffle counters.
    ///
    /// # Errors
    /// Sink failures while draining the final rounds.
    pub fn finish(mut self) -> Result<(S, ShuffleStats)> {
        while !self.exchange(true)? {}
        // Whole-shuffle skew over the cumulative per-destination
        // histogram (the per-round view goes out as RoundSkew events).
        self.stats.max_dest_bytes = self.dest_bytes.iter().copied().max().unwrap_or(0);
        self.skew_scratch.clear();
        self.skew_scratch.extend_from_slice(&self.dest_bytes);
        if let Some((imbalance, gini)) = skew_permille(&mut self.skew_scratch) {
            self.stats.imbalance_permille = imbalance;
            self.stats.gini_permille = gini;
        }
        Ok((self.sink, self.stats))
    }

    /// The cumulative per-destination histogram: `(bytes, kvs)` emitted
    /// towards each rank so far.
    pub fn dest_histogram(&self) -> (&[u64], &[u64]) {
        (&self.dest_bytes, &self.dest_kvs)
    }

    /// Read access to the sink mid-shuffle (mainly for tests and
    /// adaptive applications).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The active data-path mode.
    pub fn mode(&self) -> ShuffleMode {
        self.mode
    }

    /// One exchange round; returns whether every rank reported done.
    fn exchange(&mut self, my_done: bool) -> Result<bool> {
        let mut round = mimir_obs::span(
            EventKind::RoundBegin,
            EventKind::RoundEnd,
            self.stats.rounds,
            0,
        );
        // This round's send-side skew, while `part_len` still holds the
        // fill levels. Only computed when a recorder is listening — the
        // cumulative skew in `finish` covers the counters either way.
        if mimir_obs::active() {
            self.skew_scratch.clear();
            self.skew_scratch
                .extend(self.part_len.iter().map(|&l| l as u64));
            if let Some((imbalance, gini)) = skew_permille(&mut self.skew_scratch) {
                mimir_obs::emit(EventKind::RoundSkew, imbalance, gini);
            }
        }
        let (sync0, data0) = (self.stats.sync_wait_ns, self.stats.data_wait_ns);
        let all_done = match self.mode {
            ShuffleMode::Legacy => self.exchange_legacy(my_done)?,
            ShuffleMode::ZeroCopy => self.exchange_zero_copy(my_done, false)?,
            ShuffleMode::Overlapped => self.exchange_zero_copy(my_done, true)?,
        };
        mimir_obs::emit(
            EventKind::RoundWait,
            self.stats.sync_wait_ns - sync0,
            self.stats.data_wait_ns - data0,
        );
        self.stats.rounds += 1;
        round.set_b(u64::from(all_done));
        Ok(all_done)
    }

    /// The zero-copy round: partitions leave straight from their
    /// send-buffer slices, receives land in the static receive buffer,
    /// and each source's run drains in bulk. With `overlap`, sends are
    /// posted before the done-allreduce so the vote hides behind them.
    fn exchange_zero_copy(&mut self, my_done: bool, overlap: bool) -> Result<bool> {
        let send_bytes: u64 = self.part_len.iter().map(|&l| l as u64).sum();
        let p = self.comm.size();
        let part_cap = self.part_cap;

        let (pending, all_done) = if overlap {
            let pending = {
                let mut step = mimir_obs::step_span(Step::Post);
                step.set_b(send_bytes);
                let send = self.send.as_slice();
                let part_len = &self.part_len;
                self.comm.alltoallv_post(
                    (0..p).map(|d| &send[d * part_cap..d * part_cap + part_len[d]]),
                    self.recv.as_mut_slice(),
                )
            };
            let all_done = {
                let _sync = mimir_obs::step_span(Step::Sync);
                let w0 = self.comm.stats().wait_ns;
                let done = self.comm.allreduce_u64(ReduceOp::LAnd, u64::from(my_done)) == 1;
                self.stats.sync_wait_ns += self.comm.stats().wait_ns - w0;
                done
            };
            (pending, all_done)
        } else {
            let all_done = {
                let _sync = mimir_obs::step_span(Step::Sync);
                let w0 = self.comm.stats().wait_ns;
                let done = self.comm.allreduce_u64(ReduceOp::LAnd, u64::from(my_done)) == 1;
                self.stats.sync_wait_ns += self.comm.stats().wait_ns - w0;
                done
            };
            let pending = {
                let send = self.send.as_slice();
                let part_len = &self.part_len;
                self.comm.alltoallv_post(
                    (0..p).map(|d| &send[d * part_cap..d * part_cap + part_len[d]]),
                    self.recv.as_mut_slice(),
                )
            };
            (pending, all_done)
        };

        {
            let mut step = mimir_obs::step_span(if overlap { Step::Recv } else { Step::Alltoallv });
            if !overlap {
                step.set_b(send_bytes);
            }
            let w0 = self.comm.stats().wait_ns;
            self.comm
                .alltoallv_complete(pending, self.recv.as_mut_slice(), &mut self.ranges);
            self.stats.data_wait_ns += self.comm.stats().wait_ns - w0;
            if overlap {
                step.set_b(self.ranges.last().map_or(0, |r| r.end) as u64);
            }
        }
        self.part_len.fill(0);

        // The Section III-B bound, enforced: this round's receive total
        // fits the static receive buffer.
        let recv_bytes = self.ranges.last().map_or(0, |r| r.end) as u64;
        assert!(
            recv_bytes <= self.recv.as_slice().len() as u64,
            "round received {recv_bytes} B into a {} B receive buffer",
            self.recv.as_slice().len()
        );
        self.stats.bytes_received += recv_bytes;
        self.stats.max_round_recv_bytes = self.stats.max_round_recv_bytes.max(recv_bytes);

        {
            let mut drain = mimir_obs::step_span(Step::Drain);
            let recv = self.recv.as_slice();
            let meta = self.meta;
            let mut received = 0u64;
            for r in &self.ranges {
                received += self.sink.accept_run(meta, &recv[r.clone()])?;
            }
            self.stats.kvs_received += received;
            drain.set_b(recv_bytes);
        }
        Ok(all_done)
    }

    /// The original data path (ablation baseline): every partition is
    /// copied into a fresh `Vec`, the transport returns owned buffers,
    /// and received KVs re-insert one at a time.
    fn exchange_legacy(&mut self, my_done: bool) -> Result<bool> {
        let all_done = {
            let _sync = mimir_obs::step_span(Step::Sync);
            let w0 = self.comm.stats().wait_ns;
            let done = self.comm.allreduce_u64(ReduceOp::LAnd, u64::from(my_done)) == 1;
            self.stats.sync_wait_ns += self.comm.stats().wait_ns - w0;
            done
        };
        let p = self.comm.size();
        let send = self.send.as_slice();
        let parts: Vec<Vec<u8>> = (0..p)
            .map(|d| send[d * self.part_cap..d * self.part_cap + self.part_len[d]].to_vec())
            .collect();
        let received = {
            let mut step = mimir_obs::step_span(Step::Alltoallv);
            step.set_b(self.part_len.iter().map(|&l| l as u64).sum());
            let w0 = self.comm.stats().wait_ns;
            let bufs = self.comm.alltoallv(parts);
            self.stats.data_wait_ns += self.comm.stats().wait_ns - w0;
            bufs
        };
        self.part_len.fill(0);
        let recv_bytes: u64 = received.iter().map(|b| b.len() as u64).sum();
        assert!(
            recv_bytes <= self.recv.as_slice().len() as u64,
            "round received {recv_bytes} B into a {} B receive buffer",
            self.recv.as_slice().len()
        );
        self.stats.bytes_received += recv_bytes;
        self.stats.max_round_recv_bytes = self.stats.max_round_recv_bytes.max(recv_bytes);
        {
            let _drain = mimir_obs::step_span(Step::Drain);
            for buf in received {
                for (k, v) in KvDecoder::new(self.meta, &buf) {
                    self.sink.accept(k, v)?;
                    self.stats.kvs_received += 1;
                }
            }
        }
        Ok(all_done)
    }
}

impl<S: KvSink> Shuffler<'_, S> {
    /// The shared emit body once the destination rank is known.
    fn emit_to(&mut self, dst: usize, key: &[u8], val: &[u8]) -> Result<()> {
        validate(self.meta.key, key, "key")?;
        validate(self.meta.val, val, "value")?;
        let len = encoded_len(self.meta, key, val);
        if len > self.part_cap {
            return Err(MimirError::KvTooLarge {
                size: len,
                limit: self.part_cap,
                what: "send-buffer partition",
            });
        }
        if self.part_len[dst] + len > self.part_cap {
            // Partition full: suspend the map, run an aggregate round.
            self.exchange(false)?;
        }
        let off = dst * self.part_cap + self.part_len[dst];
        encode_into(
            self.meta,
            key,
            val,
            &mut self.send.as_mut_slice()[off..off + len],
        );
        self.part_len[dst] += len;
        self.dest_bytes[dst] += len as u64;
        self.dest_kvs[dst] += 1;
        self.stats.kvs_emitted += 1;
        self.stats.kv_bytes_emitted += len as u64;
        Ok(())
    }
}

impl<S: KvSink> Emitter for Shuffler<'_, S> {
    fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        let dst = self.partitioner.of(key, self.comm.size());
        self.emit_to(dst, key, val)
    }

    fn emit_hashed(&mut self, key: &[u8], val: &[u8], key_hash: u64) -> Result<()> {
        debug_assert_eq!(key_hash, crate::hash::fxhash64(key));
        let dst = if self.partitioner.is_hash() {
            crate::hash::partition_of_hashed(key_hash, self.comm.size())
        } else {
            self.partitioner.of(key, self.comm.size())
        };
        self.emit_to(dst, key, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::partition_of;
    use crate::KvContainer;
    use mimir_mem::MemPool;
    use mimir_mpi::run_world;
    use std::collections::HashMap;

    type WorldOutput = Vec<(HashMap<Vec<u8>, Vec<u64>>, ShuffleStats)>;

    fn shuffle_world_mode(
        n_ranks: usize,
        comm_buf: usize,
        kvs_per_rank: usize,
        mode: ShuffleMode,
    ) -> WorldOutput {
        run_world(n_ranks, move |comm| {
            let pool = MemPool::unlimited("t", 4096);
            let meta = KvMeta::cstr_key_u64_val();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::with_options(
                comm,
                &pool,
                meta,
                comm_buf,
                sink,
                Partitioner::hash(),
                mode,
            )
            .unwrap();
            let me = sh.rank() as u64;
            for i in 0..kvs_per_rank as u64 {
                let key = format!("key-{}", i % 13);
                sh.emit(key.as_bytes(), &(me * 10_000 + i).to_le_bytes())
                    .unwrap();
            }
            let (kvc, stats) = sh.finish().unwrap();
            let mut got: HashMap<Vec<u8>, Vec<u64>> = HashMap::new();
            kvc.drain(|k, v| {
                got.entry(k.to_vec())
                    .or_default()
                    .push(u64::from_le_bytes(v.try_into().unwrap()));
                Ok(())
            })
            .unwrap();
            (got, stats)
        })
    }

    fn shuffle_world(n_ranks: usize, comm_buf: usize, kvs_per_rank: usize) -> WorldOutput {
        shuffle_world_mode(n_ranks, comm_buf, kvs_per_rank, ShuffleMode::default())
    }

    #[test]
    fn all_kvs_arrive_exactly_once_partitioned_by_key() {
        let n = 4;
        let per_rank = 500;
        let results = shuffle_world(n, 4096, per_rank);
        let total: usize = results
            .iter()
            .map(|(m, _)| m.values().map(Vec::len).sum::<usize>())
            .sum();
        assert_eq!(total, n * per_rank);

        // Every key lives on exactly the rank its hash selects.
        for (rank, (m, _)) in results.iter().enumerate() {
            for k in m.keys() {
                assert_eq!(
                    partition_of(k, n),
                    rank,
                    "key {:?}",
                    String::from_utf8_lossy(k)
                );
            }
        }
        // Each key's values came from all ranks.
        let mut all: HashMap<Vec<u8>, usize> = HashMap::new();
        for (m, _) in &results {
            for (k, vs) in m {
                *all.entry(k.clone()).or_default() += vs.len();
            }
        }
        assert_eq!(all.len(), 13);
    }

    #[test]
    fn every_mode_delivers_the_same_multiset() {
        let n = 3;
        let per_rank = 300;
        let mut per_mode = Vec::new();
        for mode in [
            ShuffleMode::Legacy,
            ShuffleMode::ZeroCopy,
            ShuffleMode::Overlapped,
        ] {
            let results = shuffle_world_mode(n, 1536, per_rank, mode);
            let mut flat: Vec<(Vec<u8>, Vec<u64>)> = Vec::new();
            for (rank, (m, stats)) in results.into_iter().enumerate() {
                // The III-B bound held every round.
                assert!(stats.max_round_recv_bytes <= 1536, "{mode:?} rank {rank}");
                for (k, mut vs) in m {
                    vs.sort_unstable();
                    flat.push((k, vs));
                }
            }
            flat.sort();
            per_mode.push((mode, flat));
        }
        let (_, reference) = &per_mode[0];
        for (mode, flat) in &per_mode[1..] {
            assert_eq!(flat, reference, "{mode:?} differs from Legacy");
        }
    }

    #[test]
    fn small_buffer_forces_many_rounds_but_loses_nothing() {
        let n = 3;
        let per_rank = 400;
        let small = shuffle_world(n, 256 * n, per_rank); // tiny partitions
        let big = shuffle_world(n, 64 * 1024, per_rank);
        let count = |rs: &WorldOutput| -> usize {
            rs.iter()
                .map(|(m, _)| m.values().map(Vec::len).sum::<usize>())
                .sum()
        };
        assert_eq!(count(&small), count(&big));
        assert!(
            small[0].1.rounds > big[0].1.rounds,
            "small {} vs big {}",
            small[0].1.rounds,
            big[0].1.rounds
        );
        // Rounds are collective: every rank saw the same number.
        let r0 = small[0].1.rounds;
        assert!(small.iter().all(|(_, s)| s.rounds == r0));
    }

    #[test]
    fn kv_bytes_metric_reflects_hint() {
        let out = run_world(2, |comm| {
            let pool = MemPool::unlimited("t", 4096);
            for (meta, expected_per_kv) in [
                (KvMeta::var(), 8 + 4 + 8),
                (KvMeta::cstr_key_u64_val(), 4 + 1 + 8),
            ] {
                let sink = KvContainer::new(&pool, meta);
                let mut sh = Shuffler::new(comm, &pool, meta, 4096, sink).unwrap();
                for i in 0..10u64 {
                    sh.emit(b"word", &i.to_le_bytes()).unwrap();
                }
                let (_, stats) = sh.finish().unwrap();
                assert_eq!(stats.kv_bytes_emitted, 10 * expected_per_kv as u64);
            }
        });
        drop(out);
    }

    #[test]
    fn kv_bigger_than_partition_is_rejected() {
        run_world(4, |comm| {
            let pool = MemPool::unlimited("t", 65536);
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::new(comm, &pool, meta, 1024, sink).unwrap();
            // partition cap = 256; this KV is ~300 B.
            let big = vec![1u8; 300];
            let err = sh.emit(b"k", &big).unwrap_err();
            assert!(matches!(err, MimirError::KvTooLarge { .. }));
            let _ = sh.finish().unwrap();
        });
    }

    #[test]
    fn comm_buffers_are_charged_and_released() {
        run_world(2, |comm| {
            let pool = MemPool::new("t", 4096, 1 << 20).unwrap();
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let before = pool.used();
            let sh = Shuffler::new(comm, &pool, meta, 8192, sink).unwrap();
            assert_eq!(pool.used(), before + 2 * 8192, "send + recv buffers");
            let (kvc, _) = sh.finish().unwrap();
            drop(kvc);
            assert_eq!(pool.used(), 0);
        });
    }

    #[test]
    fn exchange_rounds_emit_trace_events() {
        let out = run_world(2, |comm| {
            mimir_obs::install(mimir_obs::Recorder::new(comm.rank(), 1024));
            let pool = MemPool::unlimited("t", 4096);
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::new(comm, &pool, meta, 4096, sink).unwrap();
            for i in 0..50u32 {
                sh.emit(format!("k{i}").as_bytes(), b"v").unwrap();
            }
            let (_, stats) = sh.finish().unwrap();
            let r = mimir_obs::take().unwrap();
            (stats, r.events())
        });
        for (stats, evs) in out {
            let count = |k: EventKind| evs.iter().filter(|e| e.kind == k).count() as u64;
            assert_eq!(count(EventKind::RoundBegin), stats.rounds);
            assert_eq!(count(EventKind::RoundEnd), stats.rounds);
            // Three sub-steps (sync, alltoallv, drain) per round.
            assert_eq!(count(EventKind::StepBegin), 3 * stats.rounds);
            // One wait-attribution event per round; skew only for rounds
            // that actually carried bytes.
            assert_eq!(count(EventKind::RoundWait), stats.rounds);
            let skews = count(EventKind::RoundSkew);
            assert!((1..=stats.rounds).contains(&skews), "skew events: {skews}");
            let last_end = evs
                .iter()
                .rev()
                .find(|e| e.kind == EventKind::RoundEnd)
                .unwrap();
            assert_eq!(last_end.b, 1, "final round reports all-done");
        }
    }

    #[test]
    fn overlapped_rounds_emit_post_and_recv_steps() {
        let out = run_world(2, |comm| {
            mimir_obs::install(mimir_obs::Recorder::new(comm.rank(), 1024));
            let pool = MemPool::unlimited("t", 4096);
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::with_options(
                comm,
                &pool,
                meta,
                4096,
                sink,
                Partitioner::hash(),
                ShuffleMode::Overlapped,
            )
            .unwrap();
            for i in 0..50u32 {
                sh.emit(format!("k{i}").as_bytes(), b"v").unwrap();
            }
            let (_, stats) = sh.finish().unwrap();
            let r = mimir_obs::take().unwrap();
            (stats, r.events())
        });
        for (stats, evs) in out {
            let steps = |s: Step| {
                evs.iter()
                    .filter(|e| e.kind == EventKind::StepBegin && e.a == s as u64)
                    .count() as u64
            };
            // Four sub-steps (post, sync, recv, drain) per round; the
            // blocking alltoallv step never appears.
            assert_eq!(steps(Step::Post), stats.rounds);
            assert_eq!(steps(Step::Sync), stats.rounds);
            assert_eq!(steps(Step::Recv), stats.rounds);
            assert_eq!(steps(Step::Drain), stats.rounds);
            assert_eq!(steps(Step::Alltoallv), 0);
        }
    }

    #[test]
    fn skew_permille_math() {
        assert_eq!(skew_permille(&mut []), None);
        assert_eq!(skew_permille(&mut [0, 0, 0]), None);
        let (imb, gini) = skew_permille(&mut [100, 100, 100, 100]).unwrap();
        assert_eq!(imb, 1000, "uniform: max equals mean");
        assert_eq!(gini, 0, "uniform: zero Gini");
        let (imb, gini) = skew_permille(&mut [400, 0, 0, 0]).unwrap();
        assert_eq!(imb, 4000, "one hot destination out of four");
        assert_eq!(gini, 750, "G = (n−1)/n for a point mass");
    }

    #[test]
    fn skewed_partitioner_is_visible_in_counters_and_uniform_is_not() {
        let n = 4;
        let shuffle_stats = |partitioner: Partitioner| -> Vec<ShuffleStats> {
            run_world(n, move |comm| {
                let pool = MemPool::unlimited("t", 4096);
                let meta = KvMeta::cstr_key_u64_val();
                let sink = KvContainer::new(&pool, meta);
                let mut sh =
                    Shuffler::with_partitioner(comm, &pool, meta, 4096, sink, partitioner.clone())
                        .unwrap();
                for i in 0..400u64 {
                    let key = format!("key-{i}");
                    sh.emit(key.as_bytes(), &i.to_le_bytes()).unwrap();
                }
                let (bytes, kvs) = sh.dest_histogram();
                assert_eq!(bytes.len(), 4);
                assert_eq!(kvs.iter().sum::<u64>(), 400);
                sh.finish().unwrap().1
            })
        };
        let hot = shuffle_stats(Partitioner::custom("to-zero", |_, _| 0));
        for s in &hot {
            assert_eq!(
                s.imbalance_permille, 4000,
                "every byte went to rank 0: max = 4 × mean"
            );
            assert_eq!(s.gini_permille, 750);
            assert_eq!(s.max_dest_bytes, s.kv_bytes_emitted);
        }
        let uniform = shuffle_stats(Partitioner::hash());
        for s in &uniform {
            assert!(
                s.imbalance_permille < 1500,
                "hashed keys spread evenly, got {} permille",
                s.imbalance_permille
            );
            assert!(s.gini_permille < 250, "got {} permille", s.gini_permille);
        }
    }

    #[test]
    fn delayed_rank_shows_up_in_peers_sync_wait() {
        use std::time::Duration;
        let delay = Duration::from_millis(50);
        let stats = run_world(3, move |comm| {
            let pool = MemPool::unlimited("t", 4096);
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::new(comm, &pool, meta, 4096, sink).unwrap();
            if sh.rank() == 2 {
                // Rank 2 is a slow mapper; its peers reach the shuffle's
                // final done-vote and block on it.
                std::thread::sleep(delay);
            }
            sh.emit(b"k", b"v").unwrap();
            sh.finish().unwrap().1
        });
        let floor = (delay.as_nanos() as u64 * 8) / 10;
        for (rank, s) in stats.iter().enumerate() {
            if rank == 2 {
                assert!(
                    s.sync_wait_ns < floor,
                    "the straggler itself should not wait: {} ns",
                    s.sync_wait_ns
                );
            } else {
                assert!(
                    s.sync_wait_ns >= floor,
                    "rank {rank} waited only {} ns on the straggler",
                    s.sync_wait_ns
                );
                assert!(
                    s.data_wait_ns < floor,
                    "the delay is sync-bound, not byte-bound: {} ns",
                    s.data_wait_ns
                );
            }
        }
    }

    #[test]
    fn single_rank_shuffle_is_local() {
        run_world(1, |comm| {
            let pool = MemPool::unlimited("t", 4096);
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::new(comm, &pool, meta, 1024, sink).unwrap();
            for i in 0..100u32 {
                sh.emit(format!("k{i}").as_bytes(), b"v").unwrap();
            }
            let (kvc, stats) = sh.finish().unwrap();
            assert_eq!(kvc.len(), 100);
            assert_eq!(stats.kvs_received, 100);
        });
    }
}
