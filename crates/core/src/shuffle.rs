//! The interleaved map/aggregate engine (paper Section III-A, Figure 4).
//!
//! Each rank owns a *send buffer* divided into `p` equal partitions and a
//! *receive buffer* of the same total size. The map callback emits KVs
//! straight into the partition chosen by the key hash — there is no map
//! output buffer and no staging copy. When a partition fills, the map is
//! suspended and an **exchange round** runs; received KVs drain into the
//! job's [`KvSink`] and the map resumes. Because every sender contributes
//! at most one partition (`comm_buf/p` bytes) to each receiver, the
//! received data can never exceed the receive buffer, "even when the KV
//! partitioning is highly unbalanced" — the paper's Section III-B
//! guarantee, which is why the receive buffer needs only one send-buffer's
//! worth of space where MR-MPI needed two pages. The bound is enforced at
//! runtime: every round's received bytes land in the static receive
//! buffer, and overflowing it panics.
//!
//! ## Exchange-round protocol
//!
//! A round is `allreduce(done flags)` + `alltoallv(partitions)` + drain.
//! A rank enters a round when a partition fills (`done = false`) or, once
//! its input is exhausted, repeatedly from [`Shuffler::finish`]
//! (`done = true`) until the allreduce reports everyone done. All ranks
//! thus execute identical collective sequences — the MPI matching rule —
//! and the final round still drains in-flight data, so the protocol is
//! deadlock-free and loses nothing.
//!
//! Under [`ShuffleMode::Overlapped`] the round is reordered to
//! `post(sends)` + `allreduce(done flags)` + `complete(receives)` +
//! drain: the sends leave before the done-vote, so the vote's
//! synchronization latency hides behind the data movement. Every rank
//! must run the same mode (it is part of the collective call sequence).
//!
//! ## Data path
//!
//! [`ShuffleMode::ZeroCopy`] (the default) sends each partition directly
//! from its send-buffer slice through pooled transport buffers, receives
//! into the static receive buffer, and hands each source rank's run to
//! the sink via [`KvSink::accept_run`] — for a [`crate::KvContainer`]
//! sink that is a page-wise memcpy, since wire format equals container
//! format. After a warm-up round the steady state performs no heap
//! allocation. [`ShuffleMode::Legacy`] keeps the original
//! allocate-per-round path as the ablation baseline.

use std::ops::Range;

use mimir_mem::MemPool;
use mimir_mpi::{Comm, ReduceOp, MAX_BALLOT_RANKS};
use mimir_obs::{EventKind, Step};

use crate::adapt::{
    decision, salted_dest, write_frame, AdaptController, AdaptStats, FrameDecoder, HotStore,
    FRAME_HDR,
};
use crate::buffer::TrackedBuf;
use crate::kv::{decode_one, encode_into, encoded_len, validate, KvDecoder};
use crate::partitioner::Partitioner;
use crate::sink::KvSink;
use crate::{AdaptPolicy, KvMeta, MimirError, Result, ShuffleMode};

/// Destination for KVs produced by a map callback.
///
/// Implemented by [`Shuffler`] (direct emission into the send buffer), by
/// [`crate::CombinerTable`] (KV compression), and by the reduce phase's
/// output container wrapper.
pub trait Emitter {
    /// Emits one KV.
    ///
    /// # Errors
    /// Hint violations, oversized KVs, or memory exhaustion.
    fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()>;

    /// Emits one KV whose `fxhash64` is already known (`key_hash` must be
    /// `fxhash64(key)`). Emitters that route by key hash — the
    /// [`Shuffler`] under the default partitioner — override this to skip
    /// re-hashing; the default discards the hash and forwards to
    /// [`Self::emit`].
    ///
    /// # Errors
    /// As [`Self::emit`].
    fn emit_hashed(&mut self, key: &[u8], val: &[u8], key_hash: u64) -> Result<()> {
        let _ = key_hash;
        self.emit(key, val)
    }
}

/// Counters describing one shuffle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// KVs emitted by this rank's map.
    pub kvs_emitted: u64,
    /// Encoded bytes emitted (the "KV size" of paper Figure 7).
    pub kv_bytes_emitted: u64,
    /// KVs received into this rank's sink.
    pub kvs_received: u64,
    /// Exchange rounds this rank participated in.
    pub rounds: u64,
    /// Encoded bytes landed in this rank's receive buffer (includes the
    /// rank's own partition).
    pub bytes_received: u64,
    /// Largest single-round receive total. The Section III-B invariant is
    /// `max_round_recv_bytes ≤ comm_buf_size`; the data path asserts it
    /// every round.
    pub max_round_recv_bytes: u64,
    /// Nanoseconds this rank spent blocked in the rounds' done-allreduce
    /// — straggler-bound wait: some peer was still mapping or draining
    /// when this rank entered the vote.
    pub sync_wait_ns: u64,
    /// Nanoseconds blocked receiving the rounds' partition payloads —
    /// byte-bound wait: peers were still pushing data.
    pub data_wait_ns: u64,
    /// Cumulative bytes this rank sent to its hottest destination.
    pub max_dest_bytes: u64,
    /// Send-side partition imbalance over the whole shuffle: max/mean of
    /// cumulative per-destination bytes in permille (1000 = perfectly
    /// balanced, 0 = nothing emitted).
    pub imbalance_permille: u64,
    /// Gini coefficient of cumulative per-destination bytes in permille
    /// (0 = uniform, →1000 = everything to one destination).
    pub gini_permille: u64,
    /// Adaptive-controller counters (all zero outside
    /// [`ShuffleMode::Adaptive`]).
    pub adapt: AdaptStats,
}

impl ShuffleStats {
    /// Folds another rank's counters into this one (cluster totals, the
    /// same shape as `CommStats::merge`). Traffic counters sum; `rounds`
    /// takes the max because exchange rounds are collective — every rank
    /// participates in the same ones, so summing would overcount — and so
    /// does the per-round receive high-water mark.
    pub fn merge(&mut self, other: &ShuffleStats) {
        self.kvs_emitted += other.kvs_emitted;
        self.kv_bytes_emitted += other.kv_bytes_emitted;
        self.kvs_received += other.kvs_received;
        self.rounds = self.rounds.max(other.rounds);
        self.bytes_received += other.bytes_received;
        self.max_round_recv_bytes = self.max_round_recv_bytes.max(other.max_round_recv_bytes);
        self.sync_wait_ns += other.sync_wait_ns;
        self.data_wait_ns += other.data_wait_ns;
        self.max_dest_bytes = self.max_dest_bytes.max(other.max_dest_bytes);
        self.imbalance_permille = self.imbalance_permille.max(other.imbalance_permille);
        self.gini_permille = self.gini_permille.max(other.gini_permille);
        self.adapt.merge(&other.adapt);
    }
}

/// The partitioned-send-buffer shuffle engine.
pub struct Shuffler<'a, S: KvSink> {
    comm: &'a mut Comm,
    meta: KvMeta,
    mode: ShuffleMode,
    send: TrackedBuf,
    /// The static receive buffer of paper Section III-B. Every round's
    /// received partitions are copied here; the partition arithmetic
    /// guarantees one send-buffer's worth of space always suffices.
    recv: TrackedBuf,
    part_cap: usize,
    part_len: Vec<usize>,
    /// Receive-buffer sub-range per source rank, reused across rounds.
    ranges: Vec<Range<usize>>,
    /// Cumulative bytes emitted towards each destination rank — the
    /// per-destination histogram behind the skew metrics.
    dest_bytes: Vec<u64>,
    /// Cumulative KVs emitted towards each destination rank.
    dest_kvs: Vec<u64>,
    /// Preallocated sort buffer for the Gini computation, so per-round
    /// skew accounting stays allocation-free in steady state.
    skew_scratch: Vec<u64>,
    partitioner: Partitioner,
    sink: S,
    stats: ShuffleStats,
    /// The pool that charged the comm buffers, kept for the hot stage's
    /// lazily-created arena.
    pool: MemPool,
    /// The live controller; present only under [`ShuffleMode::Adaptive`].
    adapt: Option<AdaptController>,
    /// Effective partition fill threshold triggering a round. Always
    /// `part_cap` outside adaptive mode; the controller moves it between
    /// the policy floor and `part_cap` (never below the largest KV seen).
    eff_cap: usize,
    /// Largest encoded KV seen so far — the jumbo floor for `eff_cap`.
    max_kv_len: usize,
    /// Whether the once-only oversized-KV warning has fired.
    warned_jumbo: bool,
    /// `hot_pending` count from the most recent ballot tally. Identical
    /// on every rank, so the flush participation decision at `finish` is
    /// collective without an extra allreduce.
    last_hot_pending: u64,
    /// The tripped hot destination and its count-collapsing stage.
    hot: Option<HotState>,
    /// Reused encode buffer for staging (sized `part_cap` at trip time).
    hot_scratch: Vec<u8>,
}

/// The hot-key divert state once a destination has tripped.
struct HotState {
    /// The destination rank whose traffic is being staged.
    dest: usize,
    /// Staged `(encoded kv, duplicate count)` entries.
    store: HotStore,
    /// First-eight-key-bytes fingerprints of `mru[0..4]`, kept as plain
    /// fields so the per-emit probe rejects a non-staged key with four
    /// register compares before touching the slots.
    heads: [u64; 4],
    /// The last four distinct staged KVs, raw bytes. A destination only
    /// trips hot because a handful of keys dominate it, so staged emits
    /// overwhelmingly repeat one of a few distinct KVs — matching on the
    /// raw `(key, val)` bytes turns those into a single count bump,
    /// skipping the encode, the hash, and the index probe a cold stage
    /// pays. Slots never move once filled (no LRU reordering: the swap
    /// churn costs more than an extra compare), and refills replace
    /// round-robin via `next_fill`.
    mru: [HotMru; 4],
    /// Next slot to replace on a cold stage (round-robin).
    next_fill: usize,
}

/// One raw-bytes MRU slot: `key ‖ val` in a buffer pre-sized to
/// `part_cap` at trip time, so steady-state hits and refills never
/// allocate. `len == usize::MAX` marks an empty slot. The slot also
/// remembers the encoded length, so a hit books emit stats without
/// re-deriving it — and because the partitioner is deterministic, a hit
/// needs no partition hash either: identical bytes route identically.
struct HotMru {
    raw: Vec<u8>,
    /// First eight key bytes (zero-padded). The probe compares the
    /// copy mirrored in [`HotState::heads`] so a non-matching key never
    /// dereferences the slot at all; this field keeps that mirror in
    /// sync across refills.
    head: u64,
    key_len: usize,
    len: usize,
    enc_len: usize,
    id: u32,
}

/// The first up-to-eight bytes of `key` as a little-endian word.
#[inline(always)]
fn head_of(key: &[u8]) -> u64 {
    // Keys of eight bytes or more — the common case — are one unaligned
    // load; the variable-length copy below would lower to an out-of-line
    // memcpy call on every emit.
    if let Some(first8) = key.first_chunk::<8>() {
        return u64::from_le_bytes(*first8);
    }
    let mut b = [0u8; 8];
    b[..key.len()].copy_from_slice(key);
    u64::from_le_bytes(b)
}

/// Word-at-a-time slice equality that the compiler keeps inline. The MRU
/// check runs on every emit of a hot-destination stream, where the
/// out-of-line `bcmp` the generic `==` lowers to costs more than the
/// whole direct emit path it is trying to beat.
#[inline(always)]
fn bytes_eq(a: &[u8], b: &[u8]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut i = 0;
    while i + 8 <= a.len() {
        let aw = u64::from_le_bytes(a[i..i + 8].try_into().expect("8-byte chunk"));
        let bw = u64::from_le_bytes(b[i..i + 8].try_into().expect("8-byte chunk"));
        if aw != bw {
            return false;
        }
        i += 8;
    }
    while i < a.len() {
        if a[i] != b[i] {
            return false;
        }
        i += 1;
    }
    true
}

impl HotMru {
    fn empty(part_cap: usize) -> Self {
        Self {
            raw: vec![0; part_cap],
            head: 0,
            key_len: 0,
            len: usize::MAX,
            enc_len: 0,
            id: 0,
        }
    }

    #[inline(always)]
    fn matches(&self, head: u64, key: &[u8], val: &[u8]) -> bool {
        self.head == head
            && self.len == key.len() + val.len()
            && self.key_len == key.len()
            && bytes_eq(&self.raw[..self.key_len], key)
            && bytes_eq(&self.raw[self.key_len..self.len], val)
    }

    fn fill(&mut self, key: &[u8], val: &[u8], enc_len: usize, id: u32) {
        self.raw[..key.len()].copy_from_slice(key);
        self.raw[key.len()..key.len() + val.len()].copy_from_slice(val);
        self.head = head_of(key);
        self.key_len = key.len();
        self.len = key.len() + val.len();
        self.enc_len = enc_len;
        self.id = id;
    }
}

/// Imbalance ratio (max/mean) and Gini coefficient, both in permille, of
/// the distribution currently held in `values`. Sorts `values` in place
/// (callers pass a reused scratch buffer). Returns `None` for an empty or
/// all-zero distribution.
fn skew_permille(values: &mut [u64]) -> Option<(u64, u64)> {
    let n = values.len() as u64;
    let total: u64 = values.iter().sum();
    if n == 0 || total == 0 {
        return None;
    }
    let max = values.iter().copied().max().unwrap_or(0);
    let imbalance = (max as u128 * 1000 * n as u128 / total as u128) as u64;
    values.sort_unstable();
    // G = (2 Σ i·x₍ᵢ₎) / (n Σ x) − (n+1)/n, ascending order, i 1-based.
    let weighted: u128 = values
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as u128 + 1) * x as u128)
        .sum();
    let g = (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64;
    let gini = (g.clamp(0.0, 1.0) * 1000.0).round() as u64;
    Some((imbalance, gini))
}

impl<'a, S: KvSink> Shuffler<'a, S> {
    /// Creates a shuffler whose send and receive buffers (each
    /// `comm_buf_size` bytes) are charged to `pool`.
    ///
    /// # Errors
    /// Memory exhaustion allocating the two communication buffers, or a
    /// configuration leaving partitions absurdly small.
    pub fn new(
        comm: &'a mut Comm,
        pool: &MemPool,
        meta: KvMeta,
        comm_buf_size: usize,
        sink: S,
    ) -> Result<Self> {
        Self::with_partitioner(comm, pool, meta, comm_buf_size, sink, Partitioner::hash())
    }

    /// [`Self::new`] with a user partitioner (paper Section III-A:
    /// "Users can provide alternative hash functions").
    ///
    /// # Errors
    /// As [`Self::new`].
    pub fn with_partitioner(
        comm: &'a mut Comm,
        pool: &MemPool,
        meta: KvMeta,
        comm_buf_size: usize,
        sink: S,
        partitioner: Partitioner,
    ) -> Result<Self> {
        Self::with_options(
            comm,
            pool,
            meta,
            comm_buf_size,
            sink,
            partitioner,
            ShuffleMode::default(),
        )
    }

    /// Fully-parameterized constructor: partitioner plus data-path
    /// [`ShuffleMode`]. The mode is part of the collective call sequence,
    /// so every rank must pass the same one.
    ///
    /// # Errors
    /// As [`Self::new`].
    pub fn with_options(
        comm: &'a mut Comm,
        pool: &MemPool,
        meta: KvMeta,
        comm_buf_size: usize,
        sink: S,
        partitioner: Partitioner,
        mode: ShuffleMode,
    ) -> Result<Self> {
        Self::with_policy(
            comm,
            pool,
            meta,
            comm_buf_size,
            sink,
            partitioner,
            mode,
            AdaptPolicy::default(),
        )
    }

    /// [`Self::with_options`] plus an explicit [`AdaptPolicy`], consulted
    /// only under [`ShuffleMode::Adaptive`].
    ///
    /// # Errors
    /// As [`Self::new`], plus worlds too large for the packed ballot
    /// under the adaptive mode.
    #[allow(clippy::too_many_arguments)]
    pub fn with_policy(
        comm: &'a mut Comm,
        pool: &MemPool,
        meta: KvMeta,
        comm_buf_size: usize,
        sink: S,
        partitioner: Partitioner,
        mode: ShuffleMode,
        policy: AdaptPolicy,
    ) -> Result<Self> {
        let p = comm.size();
        let part_cap = comm_buf_size / p;
        if part_cap < 16 {
            return Err(MimirError::Config(format!(
                "send buffer of {comm_buf_size} B leaves {part_cap} B partitions across {p} ranks"
            )));
        }
        if mode == ShuffleMode::Adaptive && p > MAX_BALLOT_RANKS {
            return Err(MimirError::Config(format!(
                "adaptive shuffle's packed ballot supports at most {MAX_BALLOT_RANKS} ranks, \
                 got {p}"
            )));
        }
        let adapt = (mode == ShuffleMode::Adaptive).then(|| AdaptController::new(policy));
        Ok(Self {
            comm,
            meta,
            mode,
            send: TrackedBuf::new(pool, part_cap * p)?,
            recv: TrackedBuf::new(pool, part_cap * p)?,
            part_cap,
            part_len: vec![0; p],
            ranges: Vec::with_capacity(p),
            dest_bytes: vec![0; p],
            dest_kvs: vec![0; p],
            skew_scratch: Vec::with_capacity(p),
            partitioner,
            sink,
            stats: ShuffleStats::default(),
            pool: pool.clone(),
            adapt,
            eff_cap: part_cap,
            max_kv_len: 0,
            warned_jumbo: false,
            last_hot_pending: 0,
            hot: None,
            hot_scratch: Vec::new(),
        })
    }

    /// Completes the shuffle: participates in exchange rounds until every
    /// rank is done, then returns the sink and the shuffle counters.
    ///
    /// # Errors
    /// Sink failures while draining the final rounds.
    pub fn finish(mut self) -> Result<(S, ShuffleStats)> {
        while !self.exchange(true)? {}
        // The final ballot's hot_pending tally is identical on every
        // rank, so this branch is collectively consistent: either all
        // ranks run the two flush phases or none do.
        if self.last_hot_pending > 0 {
            self.flush_hot()?;
        }
        if let Some(ctl) = &self.adapt {
            ctl.finalize(&mut self.stats.adapt);
        }
        // Whole-shuffle skew over the cumulative per-destination
        // histogram (the per-round view goes out as RoundSkew events).
        self.stats.max_dest_bytes = self.dest_bytes.iter().copied().max().unwrap_or(0);
        self.skew_scratch.clear();
        self.skew_scratch.extend_from_slice(&self.dest_bytes);
        if let Some((imbalance, gini)) = skew_permille(&mut self.skew_scratch) {
            self.stats.imbalance_permille = imbalance;
            self.stats.gini_permille = gini;
        }
        self.push_live();
        Ok((self.sink, self.stats))
    }

    /// The cumulative per-destination histogram: `(bytes, kvs)` emitted
    /// towards each rank so far.
    pub fn dest_histogram(&self) -> (&[u64], &[u64]) {
        (&self.dest_bytes, &self.dest_kvs)
    }

    /// Pushes the running shuffle counters — with skew computed over the
    /// cumulative per-destination histogram *so far* — into this rank's
    /// live telemetry accumulator, so the online partition-skew rule sees
    /// traffic while rounds are still in flight. No-op unless the live
    /// plane is armed on this thread.
    fn push_live(&self) {
        if mimir_obs::live::shared().is_none() {
            return;
        }
        let s = &self.stats;
        let mut counters = mimir_obs::ShuffleCounters {
            kvs_emitted: s.kvs_emitted,
            kv_bytes_emitted: s.kv_bytes_emitted,
            kvs_received: s.kvs_received,
            rounds: s.rounds,
            spilled_bytes: 0,
            bytes_received: s.bytes_received,
            max_round_recv_bytes: s.max_round_recv_bytes,
            max_dest_bytes: self.dest_bytes.iter().copied().max().unwrap_or(0),
            imbalance_permille: s.imbalance_permille,
            gini_permille: s.gini_permille,
        };
        let mut scratch = self.dest_bytes.clone();
        if let Some((imbalance, gini)) = skew_permille(&mut scratch) {
            counters.imbalance_permille = imbalance;
            counters.gini_permille = gini;
        }
        mimir_obs::live::note_shuffle(counters);
    }

    /// Read access to the sink mid-shuffle (mainly for tests and
    /// adaptive applications).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The active data-path mode.
    pub fn mode(&self) -> ShuffleMode {
        self.mode
    }

    /// One exchange round; returns whether every rank reported done.
    fn exchange(&mut self, my_done: bool) -> Result<bool> {
        let mut round = mimir_obs::span(
            EventKind::RoundBegin,
            EventKind::RoundEnd,
            self.stats.rounds,
            0,
        );
        // This round's send-side skew, while `part_len` still holds the
        // fill levels. Only computed when a recorder is listening — the
        // cumulative skew in `finish` covers the counters either way.
        if mimir_obs::active() {
            self.skew_scratch.clear();
            self.skew_scratch
                .extend(self.part_len.iter().map(|&l| l as u64));
            if let Some((imbalance, gini)) = skew_permille(&mut self.skew_scratch) {
                mimir_obs::emit(EventKind::RoundSkew, imbalance, gini);
            }
        }
        let (sync0, data0) = (self.stats.sync_wait_ns, self.stats.data_wait_ns);
        let all_done = match self.mode {
            ShuffleMode::Legacy => self.exchange_legacy(my_done)?,
            ShuffleMode::ZeroCopy => self.exchange_zero_copy(my_done, false)?,
            ShuffleMode::Overlapped => self.exchange_zero_copy(my_done, true)?,
            ShuffleMode::Adaptive => {
                // The posting order the controller converged on *before*
                // this round; mid-round ballot decisions apply from the
                // next round, uniformly on every rank.
                let overlap = self.adapt.as_ref().is_some_and(AdaptController::overlap);
                self.exchange_zero_copy(my_done, overlap)?
            }
        };
        let (sync_delta, data_delta) = (
            self.stats.sync_wait_ns - sync0,
            self.stats.data_wait_ns - data0,
        );
        mimir_obs::emit(EventKind::RoundWait, sync_delta, data_delta);
        self.stats.rounds += 1;
        self.push_live();
        if let Some(ctl) = &mut self.adapt {
            // This round's wait split becomes the next round's vote.
            ctl.observe_round(sync_delta, data_delta);
        }
        if !all_done {
            self.maybe_trip_hot();
        }
        self.refresh_eff_cap();
        round.set_b(u64::from(all_done));
        Ok(all_done)
    }

    /// The round's done-vote. Outside adaptive mode this is the classic
    /// `LAnd` allreduce; under it, the packed ballot — still exactly one
    /// collective — whose tally also steps the controller.
    fn round_vote(&mut self, my_done: bool) -> bool {
        let _sync = mimir_obs::step_span(Step::Sync);
        let w0 = self.comm.stats().wait_ns;
        let hot_pending = self.hot.as_ref().is_some_and(|h| !h.store.is_empty());
        let vote = self.adapt.as_ref().map(|c| c.vote(my_done, hot_pending));
        let all_done = if let Some(vote) = vote {
            let tally = self.comm.allreduce_ballot(vote);
            let world = self.comm.size() as u64;
            if let Some(ctl) = self.adapt.as_mut() {
                ctl.apply(&tally, world, self.stats.rounds, &mut self.stats.adapt);
            }
            self.last_hot_pending = tally.hot_pending;
            tally.done == world
        } else {
            self.comm.allreduce_u64(ReduceOp::LAnd, u64::from(my_done)) == 1
        };
        self.stats.sync_wait_ns += self.comm.stats().wait_ns - w0;
        all_done
    }

    /// Recomputes the effective round-size threshold from the
    /// controller's fill target, clamped below by the policy floor and
    /// by the largest KV seen (the jumbo floor — shrinking must never
    /// leave a partition unable to hold one KV, which would livelock the
    /// round loop on a KV that never fits).
    fn refresh_eff_cap(&mut self) {
        let Some(ctl) = &self.adapt else {
            self.eff_cap = self.part_cap;
            return;
        };
        let target = (self.part_cap as u64 * ctl.fill_permille() / 1000) as usize;
        let floor = (self.part_cap as u64 * ctl.policy().min_fill_permille / 1000) as usize;
        let mut cap = target.max(floor);
        if cap < self.max_kv_len {
            cap = self.max_kv_len;
            if cap != self.eff_cap {
                self.stats.adapt.jumbo_floor_hits += 1;
                mimir_obs::emit(
                    EventKind::AdaptDecision,
                    decision::JUMBO_FLOOR,
                    self.max_kv_len as u64,
                );
            }
        }
        self.eff_cap = cap.min(self.part_cap);
    }

    /// Trips the hot-key divert when the cumulative per-destination
    /// histogram shows one destination past the policy's share of fair.
    /// Purely sender-local: staging changes only what *this* rank sends;
    /// flush participation is negotiated through the ballot.
    fn maybe_trip_hot(&mut self) {
        let Some(ctl) = &self.adapt else { return };
        let policy = *ctl.policy();
        if !policy.hot_mitigation || self.hot.is_some() || self.stats.rounds < policy.hot_min_rounds
        {
            return;
        }
        let total: u64 = self.dest_bytes.iter().sum();
        if total == 0 {
            return;
        }
        let (dest, &max) = self
            .dest_bytes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &b)| b)
            .expect("non-empty histogram");
        let p = self.dest_bytes.len() as u64;
        let share_permille = (max as u128 * p as u128 * 1000 / total as u128) as u64;
        if share_permille < policy.hot_trip_permille {
            return;
        }
        let cap = if policy.hot_stage_bytes == 0 {
            self.part_cap * self.dest_bytes.len()
        } else {
            policy.hot_stage_bytes
        };
        // Pool exhaustion just means no mitigation: the direct path
        // keeps working.
        if let Ok(store) = HotStore::new(&self.pool, cap) {
            self.hot = Some(HotState {
                dest,
                store,
                // Sentinel heads; a collision with a real key is
                // harmless (the slot `matches` still rejects it).
                heads: [u64::MAX; 4],
                mru: std::array::from_fn(|_| HotMru::empty(self.part_cap)),
                next_fill: 0,
            });
            self.hot_scratch.resize(self.part_cap, 0);
            self.stats.adapt.hot_trips += 1;
            mimir_obs::emit(EventKind::AdaptDecision, decision::HOT_TRIP, dest as u64);
        }
    }

    /// The zero-copy round: partitions leave straight from their
    /// send-buffer slices, receives land in the static receive buffer,
    /// and each source's run drains in bulk. With `overlap`, sends are
    /// posted before the done-allreduce so the vote hides behind them.
    fn exchange_zero_copy(&mut self, my_done: bool, overlap: bool) -> Result<bool> {
        let send_bytes: u64 = self.part_len.iter().map(|&l| l as u64).sum();
        let p = self.comm.size();
        let part_cap = self.part_cap;

        let (pending, all_done) = if overlap {
            let pending = {
                let mut step = mimir_obs::step_span(Step::Post);
                step.set_b(send_bytes);
                let send = self.send.as_slice();
                let part_len = &self.part_len;
                self.comm.alltoallv_post(
                    (0..p).map(|d| &send[d * part_cap..d * part_cap + part_len[d]]),
                    self.recv.as_mut_slice(),
                )
            };
            let all_done = self.round_vote(my_done);
            (pending, all_done)
        } else {
            let all_done = self.round_vote(my_done);
            let pending = {
                let send = self.send.as_slice();
                let part_len = &self.part_len;
                self.comm.alltoallv_post(
                    (0..p).map(|d| &send[d * part_cap..d * part_cap + part_len[d]]),
                    self.recv.as_mut_slice(),
                )
            };
            (pending, all_done)
        };

        {
            let mut step = mimir_obs::step_span(if overlap { Step::Recv } else { Step::Alltoallv });
            if !overlap {
                step.set_b(send_bytes);
            }
            let w0 = self.comm.stats().wait_ns;
            self.comm
                .alltoallv_complete(pending, self.recv.as_mut_slice(), &mut self.ranges);
            self.stats.data_wait_ns += self.comm.stats().wait_ns - w0;
            if overlap {
                step.set_b(self.ranges.last().map_or(0, |r| r.end) as u64);
            }
        }
        self.part_len.fill(0);

        // The Section III-B bound, enforced: this round's receive total
        // fits the static receive buffer.
        let recv_bytes = self.ranges.last().map_or(0, |r| r.end) as u64;
        assert!(
            recv_bytes <= self.recv.as_slice().len() as u64,
            "round received {recv_bytes} B into a {} B receive buffer",
            self.recv.as_slice().len()
        );
        self.stats.bytes_received += recv_bytes;
        self.stats.max_round_recv_bytes = self.stats.max_round_recv_bytes.max(recv_bytes);

        {
            let mut drain = mimir_obs::step_span(Step::Drain);
            let recv = self.recv.as_slice();
            let meta = self.meta;
            let mut received = 0u64;
            for r in &self.ranges {
                received += self.sink.accept_run(meta, &recv[r.clone()])?;
            }
            self.stats.kvs_received += received;
            drain.set_b(recv_bytes);
        }
        Ok(all_done)
    }

    /// The original data path (ablation baseline): every partition is
    /// copied into a fresh `Vec`, the transport returns owned buffers,
    /// and received KVs re-insert one at a time.
    fn exchange_legacy(&mut self, my_done: bool) -> Result<bool> {
        let all_done = {
            let _sync = mimir_obs::step_span(Step::Sync);
            let w0 = self.comm.stats().wait_ns;
            let done = self.comm.allreduce_u64(ReduceOp::LAnd, u64::from(my_done)) == 1;
            self.stats.sync_wait_ns += self.comm.stats().wait_ns - w0;
            done
        };
        let p = self.comm.size();
        let send = self.send.as_slice();
        let parts: Vec<Vec<u8>> = (0..p)
            .map(|d| send[d * self.part_cap..d * self.part_cap + self.part_len[d]].to_vec())
            .collect();
        let received = {
            let mut step = mimir_obs::step_span(Step::Alltoallv);
            step.set_b(self.part_len.iter().map(|&l| l as u64).sum());
            let w0 = self.comm.stats().wait_ns;
            let bufs = self.comm.alltoallv(parts);
            self.stats.data_wait_ns += self.comm.stats().wait_ns - w0;
            bufs
        };
        self.part_len.fill(0);
        let recv_bytes: u64 = received.iter().map(|b| b.len() as u64).sum();
        assert!(
            recv_bytes <= self.recv.as_slice().len() as u64,
            "round received {recv_bytes} B into a {} B receive buffer",
            self.recv.as_slice().len()
        );
        self.stats.bytes_received += recv_bytes;
        self.stats.max_round_recv_bytes = self.stats.max_round_recv_bytes.max(recv_bytes);
        {
            let _drain = mimir_obs::step_span(Step::Drain);
            for buf in received {
                for (k, v) in KvDecoder::new(self.meta, &buf) {
                    self.sink.accept(k, v)?;
                    self.stats.kvs_received += 1;
                }
            }
        }
        Ok(all_done)
    }

    /// Flushes staged hot-key KVs at job end through two short exchange
    /// phases (Sanders-style multi-level aggregation with the count
    /// monoid):
    ///
    /// 1. **Salted spread** — every sender scatters its `(kv, count)`
    ///    frames across all ranks by [`salted_dest`]; each rank's relay
    ///    store merges counts of identical KVs arriving from different
    ///    senders.
    /// 2. **Owner merge** — each relay forwards its surviving frames to
    ///    the KV's true owner (the real partitioner on the decoded key),
    ///    which expands the count into the sink.
    ///
    /// Collective: every rank runs both phases (a rank with nothing
    /// staged still relays), which `finish` guarantees by gating on the
    /// final ballot's identical `hot_pending` tally.
    fn flush_hot(&mut self) -> Result<()> {
        let p = self.comm.size();
        let hot = self.hot.take();
        let mut relay = HotStore::new(&self.pool, 0)?;
        if let Some(h) = &hot {
            self.stats.adapt.hot_unique_kvs += h.store.len() as u64;
            // Deferred staging accounting: the per-emit divert paths only
            // bump counts, so fold the totals in here, once.
            let (skvs, sbytes) = h.store.staged_totals();
            self.stats.kvs_emitted += skvs;
            self.stats.kv_bytes_emitted += sbytes;
            self.stats.adapt.hot_staged_kvs += skvs;
            self.stats.adapt.hot_staged_bytes += sbytes;
            mimir_obs::emit(
                EventKind::AdaptDecision,
                decision::SALTED_FLUSH,
                h.store.len() as u64,
            );
        }
        // Per-sender routing choice, purely local (both phase loops are
        // collective regardless, so ranks may choose differently):
        //  * the owner expands its own staged counts straight into the
        //    sink — no wire trip at all;
        //  * a small stage (one partition's worth of frames) skips the
        //    salted spread and sends owner-routed frames in the merge
        //    phase — the relay indirection only pays for itself when
        //    per-sender stages are too large for one rank to absorb;
        //  * a large stage takes the full Sanders-style two-stage path.
        let mut direct = false;
        if let Some(h) = &hot {
            let own = self.comm.rank() == h.dest;
            direct = !own && h.store.staged_bytes() + FRAME_HDR * h.store.len() <= self.part_cap;
            for id in 0..h.store.len() as u32 {
                if own {
                    // This rank IS the hot owner: its own staged counts
                    // are already home, so expand them straight into the
                    // sink — no salted trip, no relay merge.
                    let kv = h.store.kv(id);
                    let ((k, v), _) = decode_one(self.meta, kv).expect("staged kv frame");
                    let count = h.store.count(id);
                    self.sink.accept_repeat(k, v, count)?;
                    self.stats.kvs_received += count;
                    continue;
                }
                if direct {
                    break;
                }
                let flen = FRAME_HDR + h.store.kv(id).len();
                let dst = salted_dest(h.store.hash_of(id), p);
                if self.part_len[dst] + flen > self.part_cap {
                    self.hot_exchange(false, Some(&mut relay))?;
                }
                let off = dst * self.part_cap + self.part_len[dst];
                write_frame(
                    &mut self.send.as_mut_slice()[off..off + flen],
                    h.store.kv(id),
                    h.store.count(id),
                );
                self.part_len[dst] += flen;
                self.dest_bytes[dst] += flen as u64;
                self.dest_kvs[dst] += 1;
            }
        }
        while !self.hot_exchange(true, Some(&mut relay))? {}

        mimir_obs::emit(
            EventKind::AdaptDecision,
            decision::MERGE_FLUSH,
            relay.len() as u64,
        );
        if direct {
            // Small-stage shortcut: this rank's frames go straight to
            // the true owner in the merge phase, no relay hop.
            let h = hot.as_ref().expect("direct implies a stage");
            for id in 0..h.store.len() as u32 {
                let kv = h.store.kv(id);
                let flen = FRAME_HDR + kv.len();
                let ((k, _), _) = decode_one(self.meta, kv).expect("staged kv frame");
                let dst = self.partitioner.of(k, p);
                if self.part_len[dst] + flen > self.part_cap {
                    self.hot_exchange(false, None)?;
                }
                let off = dst * self.part_cap + self.part_len[dst];
                write_frame(
                    &mut self.send.as_mut_slice()[off..off + flen],
                    kv,
                    h.store.count(id),
                );
                self.part_len[dst] += flen;
                self.dest_bytes[dst] += flen as u64;
                self.dest_kvs[dst] += 1;
            }
        }
        for id in 0..relay.len() as u32 {
            let (dst, flen) = {
                let kv = relay.kv(id);
                let ((k, _), _) = decode_one(self.meta, kv).expect("staged kv frame");
                (self.partitioner.of(k, p), FRAME_HDR + kv.len())
            };
            if self.part_len[dst] + flen > self.part_cap {
                self.hot_exchange(false, None)?;
            }
            let off = dst * self.part_cap + self.part_len[dst];
            write_frame(
                &mut self.send.as_mut_slice()[off..off + flen],
                relay.kv(id),
                relay.count(id),
            );
            self.part_len[dst] += flen;
            self.dest_bytes[dst] += flen as u64;
            self.dest_kvs[dst] += 1;
        }
        while !self.hot_exchange(true, None)? {}
        Ok(())
    }

    /// One flush round: the classic vote-first zero-copy exchange, but
    /// the payload is `(kv, count)` frames. With `relay` the received
    /// frames merge into it (the salted phase); without, they expand
    /// count-many KVs into the sink (the owner-merge phase). Wait
    /// attribution, the Section III-B assert, and round trace events all
    /// behave exactly like main-shuffle rounds.
    fn hot_exchange(&mut self, my_done: bool, mut relay: Option<&mut HotStore>) -> Result<bool> {
        let salted = relay.is_some();
        let mut round = mimir_obs::span(
            EventKind::RoundBegin,
            EventKind::RoundEnd,
            self.stats.rounds,
            0,
        );
        let (sync0, data0) = (self.stats.sync_wait_ns, self.stats.data_wait_ns);
        let all_done = {
            let _sync = mimir_obs::step_span(Step::Sync);
            let w0 = self.comm.stats().wait_ns;
            let done = self.comm.allreduce_u64(ReduceOp::LAnd, u64::from(my_done)) == 1;
            self.stats.sync_wait_ns += self.comm.stats().wait_ns - w0;
            done
        };
        let p = self.comm.size();
        let part_cap = self.part_cap;
        let pending = {
            let send = self.send.as_slice();
            let part_len = &self.part_len;
            self.comm.alltoallv_post(
                (0..p).map(|d| &send[d * part_cap..d * part_cap + part_len[d]]),
                self.recv.as_mut_slice(),
            )
        };
        {
            let mut step = mimir_obs::step_span(Step::Alltoallv);
            step.set_b(self.part_len.iter().map(|&l| l as u64).sum());
            let w0 = self.comm.stats().wait_ns;
            self.comm
                .alltoallv_complete(pending, self.recv.as_mut_slice(), &mut self.ranges);
            self.stats.data_wait_ns += self.comm.stats().wait_ns - w0;
        }
        self.part_len.fill(0);
        let recv_bytes = self.ranges.last().map_or(0, |r| r.end) as u64;
        assert!(
            recv_bytes <= self.recv.as_slice().len() as u64,
            "flush round received {recv_bytes} B into a {} B receive buffer",
            self.recv.as_slice().len()
        );
        self.stats.bytes_received += recv_bytes;
        self.stats.max_round_recv_bytes = self.stats.max_round_recv_bytes.max(recv_bytes);
        {
            let mut drain = mimir_obs::step_span(Step::Drain);
            let recv = self.recv.as_slice();
            let meta = self.meta;
            for r in &self.ranges {
                for (kv, count) in FrameDecoder::new(&recv[r.clone()]) {
                    match &mut relay {
                        Some(rel) => rel.absorb(kv, count)?,
                        None => {
                            let ((k, v), _) = decode_one(meta, kv).expect("framed kv");
                            self.sink.accept_repeat(k, v, count)?;
                            self.stats.kvs_received += count;
                        }
                    }
                }
            }
            drain.set_b(recv_bytes);
        }
        mimir_obs::emit(
            EventKind::RoundWait,
            self.stats.sync_wait_ns - sync0,
            self.stats.data_wait_ns - data0,
        );
        self.stats.rounds += 1;
        if salted {
            self.stats.adapt.salted_rounds += 1;
        } else {
            self.stats.adapt.merge_rounds += 1;
        }
        round.set_b(u64::from(all_done));
        Ok(all_done)
    }
}

impl<S: KvSink> Shuffler<'_, S> {
    /// The shared emit body once the destination rank is known.
    fn emit_to(&mut self, dst: usize, key: &[u8], val: &[u8]) -> Result<()> {
        validate(self.meta.key, key, "key")?;
        validate(self.meta.val, val, "value")?;
        let len = encoded_len(self.meta, key, val);
        if len > self.part_cap {
            if !self.warned_jumbo {
                self.warned_jumbo = true;
                eprintln!(
                    "mimir: comm buffer too small for a single KV: {len} B against {} B \
                     partitions — raise comm_buf_size (further oversized KVs will error \
                     without this warning)",
                    self.part_cap
                );
            }
            return Err(MimirError::KvTooLarge {
                size: len,
                limit: self.part_cap,
                what: "send-buffer partition",
            });
        }
        if len > self.max_kv_len {
            // A new jumbo raises the adaptive grower's floor so the
            // effective round size always holds at least one of it.
            self.max_kv_len = len;
            self.refresh_eff_cap();
        }
        if let Some(hot) = &mut self.hot {
            if dst == hot.dest {
                // Divert: collapse the KV into a local count instead of
                // sending. The raw-bytes MRU already missed (the
                // [`Self::hot_fast_path`] check runs before the
                // partitioner), so this is a cold stage.
                encode_into(self.meta, key, val, &mut self.hot_scratch[..len]);
                let kv = &self.hot_scratch[..len];
                match hot.store.stage(crate::hash::fxhash64(kv), kv)? {
                    Some(id) => {
                        let s = hot.next_fill;
                        hot.next_fill = (s + 1) % hot.mru.len();
                        hot.mru[s].fill(key, val, len, id);
                        hot.heads[s] = hot.mru[s].head;
                    }
                    None => {
                        // Stage full and the KV is new: ship it
                        // directly.
                        self.stats.adapt.hot_forward_bytes += len as u64;
                        return self.send_to(dst, key, val, len);
                    }
                }
                // Emit/staged totals are deferred to flush time
                // ([`HotStore::staged_totals`]) so bumps stay one add.
                return Ok(());
            }
        }
        self.send_to(dst, key, val, len)
    }

    /// The staged-repeat fast path, checked before the partitioner runs:
    /// a raw-bytes match against the last few distinct staged KVs is a
    /// pure count bump — no partition hash, no validation (identical
    /// bytes already validated), no encode, no index probe. Returns
    /// whether the KV was absorbed.
    #[inline(always)]
    fn hot_fast_path(&mut self, key: &[u8], val: &[u8]) -> bool {
        let Some(hot) = &mut self.hot else {
            return false;
        };
        // Four register compares reject almost every non-staged key
        // before any slot memory is touched; the slot `matches` check
        // still fully verifies the bytes afterwards.
        let head = head_of(key);
        for i in 0..hot.mru.len() {
            if head == hot.heads[i] && hot.mru[i].matches(head, key, val) {
                hot.store.bump(hot.mru[i].id);
                return true;
            }
        }
        false
    }

    /// The direct path: copy the encoded KV into its send-buffer
    /// partition, running an exchange round first if the partition is at
    /// its (possibly adapted) fill target.
    fn send_to(&mut self, dst: usize, key: &[u8], val: &[u8], len: usize) -> Result<()> {
        if self.part_len[dst] + len > self.eff_cap {
            // Partition reached the (possibly adapted) fill target:
            // suspend the map, run an aggregate round.
            self.exchange(false)?;
        }
        let off = dst * self.part_cap + self.part_len[dst];
        encode_into(
            self.meta,
            key,
            val,
            &mut self.send.as_mut_slice()[off..off + len],
        );
        self.part_len[dst] += len;
        self.dest_bytes[dst] += len as u64;
        self.dest_kvs[dst] += 1;
        self.stats.kvs_emitted += 1;
        self.stats.kv_bytes_emitted += len as u64;
        Ok(())
    }
}

impl<S: KvSink> Emitter for Shuffler<'_, S> {
    fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        if self.hot_fast_path(key, val) {
            return Ok(());
        }
        let dst = self.partitioner.of(key, self.comm.size());
        self.emit_to(dst, key, val)
    }

    fn emit_hashed(&mut self, key: &[u8], val: &[u8], key_hash: u64) -> Result<()> {
        debug_assert_eq!(key_hash, crate::hash::fxhash64(key));
        if self.hot_fast_path(key, val) {
            return Ok(());
        }
        let dst = if self.partitioner.is_hash() {
            crate::hash::partition_of_hashed(key_hash, self.comm.size())
        } else {
            self.partitioner.of(key, self.comm.size())
        };
        self.emit_to(dst, key, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::partition_of;
    use crate::KvContainer;
    use mimir_mem::MemPool;
    use mimir_mpi::run_world;
    use std::collections::HashMap;

    type WorldOutput = Vec<(HashMap<Vec<u8>, Vec<u64>>, ShuffleStats)>;

    fn shuffle_world_mode(
        n_ranks: usize,
        comm_buf: usize,
        kvs_per_rank: usize,
        mode: ShuffleMode,
    ) -> WorldOutput {
        run_world(n_ranks, move |comm| {
            let pool = MemPool::unlimited("t", 4096);
            let meta = KvMeta::cstr_key_u64_val();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::with_options(
                comm,
                &pool,
                meta,
                comm_buf,
                sink,
                Partitioner::hash(),
                mode,
            )
            .unwrap();
            let me = sh.rank() as u64;
            for i in 0..kvs_per_rank as u64 {
                let key = format!("key-{}", i % 13);
                sh.emit(key.as_bytes(), &(me * 10_000 + i).to_le_bytes())
                    .unwrap();
            }
            let (kvc, stats) = sh.finish().unwrap();
            let mut got: HashMap<Vec<u8>, Vec<u64>> = HashMap::new();
            kvc.drain(|k, v| {
                got.entry(k.to_vec())
                    .or_default()
                    .push(u64::from_le_bytes(v.try_into().unwrap()));
                Ok(())
            })
            .unwrap();
            (got, stats)
        })
    }

    fn shuffle_world(n_ranks: usize, comm_buf: usize, kvs_per_rank: usize) -> WorldOutput {
        shuffle_world_mode(n_ranks, comm_buf, kvs_per_rank, ShuffleMode::default())
    }

    #[test]
    fn all_kvs_arrive_exactly_once_partitioned_by_key() {
        let n = 4;
        let per_rank = 500;
        let results = shuffle_world(n, 4096, per_rank);
        let total: usize = results
            .iter()
            .map(|(m, _)| m.values().map(Vec::len).sum::<usize>())
            .sum();
        assert_eq!(total, n * per_rank);

        // Every key lives on exactly the rank its hash selects.
        for (rank, (m, _)) in results.iter().enumerate() {
            for k in m.keys() {
                assert_eq!(
                    partition_of(k, n),
                    rank,
                    "key {:?}",
                    String::from_utf8_lossy(k)
                );
            }
        }
        // Each key's values came from all ranks.
        let mut all: HashMap<Vec<u8>, usize> = HashMap::new();
        for (m, _) in &results {
            for (k, vs) in m {
                *all.entry(k.clone()).or_default() += vs.len();
            }
        }
        assert_eq!(all.len(), 13);
    }

    #[test]
    fn every_mode_delivers_the_same_multiset() {
        let n = 3;
        let per_rank = 300;
        let mut per_mode = Vec::new();
        for mode in [
            ShuffleMode::Legacy,
            ShuffleMode::ZeroCopy,
            ShuffleMode::Overlapped,
            ShuffleMode::Adaptive,
        ] {
            let results = shuffle_world_mode(n, 1536, per_rank, mode);
            let mut flat: Vec<(Vec<u8>, Vec<u64>)> = Vec::new();
            for (rank, (m, stats)) in results.into_iter().enumerate() {
                // The III-B bound held every round.
                assert!(stats.max_round_recv_bytes <= 1536, "{mode:?} rank {rank}");
                for (k, mut vs) in m {
                    vs.sort_unstable();
                    flat.push((k, vs));
                }
            }
            flat.sort();
            per_mode.push((mode, flat));
        }
        let (_, reference) = &per_mode[0];
        for (mode, flat) in &per_mode[1..] {
            assert_eq!(flat, reference, "{mode:?} differs from Legacy");
        }
    }

    #[test]
    fn small_buffer_forces_many_rounds_but_loses_nothing() {
        let n = 3;
        let per_rank = 400;
        let small = shuffle_world(n, 256 * n, per_rank); // tiny partitions
        let big = shuffle_world(n, 64 * 1024, per_rank);
        let count = |rs: &WorldOutput| -> usize {
            rs.iter()
                .map(|(m, _)| m.values().map(Vec::len).sum::<usize>())
                .sum()
        };
        assert_eq!(count(&small), count(&big));
        assert!(
            small[0].1.rounds > big[0].1.rounds,
            "small {} vs big {}",
            small[0].1.rounds,
            big[0].1.rounds
        );
        // Rounds are collective: every rank saw the same number.
        let r0 = small[0].1.rounds;
        assert!(small.iter().all(|(_, s)| s.rounds == r0));
    }

    #[test]
    fn kv_bytes_metric_reflects_hint() {
        let out = run_world(2, |comm| {
            let pool = MemPool::unlimited("t", 4096);
            for (meta, expected_per_kv) in [
                (KvMeta::var(), 8 + 4 + 8),
                (KvMeta::cstr_key_u64_val(), 4 + 1 + 8),
            ] {
                let sink = KvContainer::new(&pool, meta);
                let mut sh = Shuffler::new(comm, &pool, meta, 4096, sink).unwrap();
                for i in 0..10u64 {
                    sh.emit(b"word", &i.to_le_bytes()).unwrap();
                }
                let (_, stats) = sh.finish().unwrap();
                assert_eq!(stats.kv_bytes_emitted, 10 * expected_per_kv as u64);
            }
        });
        drop(out);
    }

    #[test]
    fn kv_bigger_than_partition_is_rejected() {
        run_world(4, |comm| {
            let pool = MemPool::unlimited("t", 65536);
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::new(comm, &pool, meta, 1024, sink).unwrap();
            // partition cap = 256; this KV is ~300 B.
            let big = vec![1u8; 300];
            let err = sh.emit(b"k", &big).unwrap_err();
            assert!(matches!(err, MimirError::KvTooLarge { .. }));
            let _ = sh.finish().unwrap();
        });
    }

    #[test]
    fn comm_buffers_are_charged_and_released() {
        run_world(2, |comm| {
            let pool = MemPool::new("t", 4096, 1 << 20).unwrap();
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let before = pool.used();
            let sh = Shuffler::new(comm, &pool, meta, 8192, sink).unwrap();
            assert_eq!(pool.used(), before + 2 * 8192, "send + recv buffers");
            let (kvc, _) = sh.finish().unwrap();
            drop(kvc);
            assert_eq!(pool.used(), 0);
        });
    }

    #[test]
    fn exchange_rounds_emit_trace_events() {
        let out = run_world(2, |comm| {
            mimir_obs::install(mimir_obs::Recorder::new(comm.rank(), 1024));
            let pool = MemPool::unlimited("t", 4096);
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::new(comm, &pool, meta, 4096, sink).unwrap();
            for i in 0..50u32 {
                sh.emit(format!("k{i}").as_bytes(), b"v").unwrap();
            }
            let (_, stats) = sh.finish().unwrap();
            let r = mimir_obs::take().unwrap();
            (stats, r.events())
        });
        for (stats, evs) in out {
            let count = |k: EventKind| evs.iter().filter(|e| e.kind == k).count() as u64;
            assert_eq!(count(EventKind::RoundBegin), stats.rounds);
            assert_eq!(count(EventKind::RoundEnd), stats.rounds);
            // Three sub-steps (sync, alltoallv, drain) per round.
            assert_eq!(count(EventKind::StepBegin), 3 * stats.rounds);
            // One wait-attribution event per round; skew only for rounds
            // that actually carried bytes.
            assert_eq!(count(EventKind::RoundWait), stats.rounds);
            let skews = count(EventKind::RoundSkew);
            assert!((1..=stats.rounds).contains(&skews), "skew events: {skews}");
            let last_end = evs
                .iter()
                .rev()
                .find(|e| e.kind == EventKind::RoundEnd)
                .unwrap();
            assert_eq!(last_end.b, 1, "final round reports all-done");
        }
    }

    #[test]
    fn overlapped_rounds_emit_post_and_recv_steps() {
        let out = run_world(2, |comm| {
            mimir_obs::install(mimir_obs::Recorder::new(comm.rank(), 1024));
            let pool = MemPool::unlimited("t", 4096);
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::with_options(
                comm,
                &pool,
                meta,
                4096,
                sink,
                Partitioner::hash(),
                ShuffleMode::Overlapped,
            )
            .unwrap();
            for i in 0..50u32 {
                sh.emit(format!("k{i}").as_bytes(), b"v").unwrap();
            }
            let (_, stats) = sh.finish().unwrap();
            let r = mimir_obs::take().unwrap();
            (stats, r.events())
        });
        for (stats, evs) in out {
            let steps = |s: Step| {
                evs.iter()
                    .filter(|e| e.kind == EventKind::StepBegin && e.a == s as u64)
                    .count() as u64
            };
            // Four sub-steps (post, sync, recv, drain) per round; the
            // blocking alltoallv step never appears.
            assert_eq!(steps(Step::Post), stats.rounds);
            assert_eq!(steps(Step::Sync), stats.rounds);
            assert_eq!(steps(Step::Recv), stats.rounds);
            assert_eq!(steps(Step::Drain), stats.rounds);
            assert_eq!(steps(Step::Alltoallv), 0);
        }
    }

    #[test]
    fn skew_permille_math() {
        assert_eq!(skew_permille(&mut []), None);
        assert_eq!(skew_permille(&mut [0, 0, 0]), None);
        let (imb, gini) = skew_permille(&mut [100, 100, 100, 100]).unwrap();
        assert_eq!(imb, 1000, "uniform: max equals mean");
        assert_eq!(gini, 0, "uniform: zero Gini");
        let (imb, gini) = skew_permille(&mut [400, 0, 0, 0]).unwrap();
        assert_eq!(imb, 4000, "one hot destination out of four");
        assert_eq!(gini, 750, "G = (n−1)/n for a point mass");
    }

    #[test]
    fn skewed_partitioner_is_visible_in_counters_and_uniform_is_not() {
        let n = 4;
        let shuffle_stats = |partitioner: Partitioner| -> Vec<ShuffleStats> {
            run_world(n, move |comm| {
                let pool = MemPool::unlimited("t", 4096);
                let meta = KvMeta::cstr_key_u64_val();
                let sink = KvContainer::new(&pool, meta);
                let mut sh =
                    Shuffler::with_partitioner(comm, &pool, meta, 4096, sink, partitioner.clone())
                        .unwrap();
                for i in 0..400u64 {
                    let key = format!("key-{i}");
                    sh.emit(key.as_bytes(), &i.to_le_bytes()).unwrap();
                }
                let (bytes, kvs) = sh.dest_histogram();
                assert_eq!(bytes.len(), 4);
                assert_eq!(kvs.iter().sum::<u64>(), 400);
                sh.finish().unwrap().1
            })
        };
        let hot = shuffle_stats(Partitioner::custom("to-zero", |_, _| 0));
        for s in &hot {
            assert_eq!(
                s.imbalance_permille, 4000,
                "every byte went to rank 0: max = 4 × mean"
            );
            assert_eq!(s.gini_permille, 750);
            assert_eq!(s.max_dest_bytes, s.kv_bytes_emitted);
        }
        let uniform = shuffle_stats(Partitioner::hash());
        for s in &uniform {
            assert!(
                s.imbalance_permille < 1500,
                "hashed keys spread evenly, got {} permille",
                s.imbalance_permille
            );
            assert!(s.gini_permille < 250, "got {} permille", s.gini_permille);
        }
    }

    #[test]
    fn delayed_rank_shows_up_in_peers_sync_wait() {
        use std::time::Duration;
        let delay = Duration::from_millis(50);
        let stats = run_world(3, move |comm| {
            let pool = MemPool::unlimited("t", 4096);
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::new(comm, &pool, meta, 4096, sink).unwrap();
            if sh.rank() == 2 {
                // Rank 2 is a slow mapper; its peers reach the shuffle's
                // final done-vote and block on it.
                std::thread::sleep(delay);
            }
            sh.emit(b"k", b"v").unwrap();
            sh.finish().unwrap().1
        });
        let floor = (delay.as_nanos() as u64 * 8) / 10;
        for (rank, s) in stats.iter().enumerate() {
            if rank == 2 {
                assert!(
                    s.sync_wait_ns < floor,
                    "the straggler itself should not wait: {} ns",
                    s.sync_wait_ns
                );
            } else {
                assert!(
                    s.sync_wait_ns >= floor,
                    "rank {rank} waited only {} ns on the straggler",
                    s.sync_wait_ns
                );
                assert!(
                    s.data_wait_ns < floor,
                    "the delay is sync-bound, not byte-bound: {} ns",
                    s.data_wait_ns
                );
            }
        }
    }

    #[test]
    fn adaptive_mode_is_a_drop_in_for_zero_copy() {
        let n = 4;
        let per_rank = 500;
        let results = shuffle_world_mode(n, 2048, per_rank, ShuffleMode::Adaptive);
        let total: usize = results
            .iter()
            .map(|(m, _)| m.values().map(Vec::len).sum::<usize>())
            .sum();
        assert_eq!(total, n * per_rank, "adaptive loses nothing");
        for (rank, (m, stats)) in results.iter().enumerate() {
            assert!(stats.max_round_recv_bytes <= 2048, "III-B holds");
            for k in m.keys() {
                assert_eq!(partition_of(k, n), rank);
            }
            // The controller converged to *some* fill target in range.
            assert!(stats.adapt.final_fill_permille >= 250);
            assert!(stats.adapt.final_fill_permille <= 1000);
        }
        // Decisions are collective: every rank saw the identical tally
        // stream, so the tuning counters agree everywhere.
        let first = results[0].1.adapt;
        for (_, s) in &results {
            assert_eq!(s.adapt.mode_switches, first.mode_switches);
            assert_eq!(s.adapt.grow_steps, first.grow_steps);
            assert_eq!(s.adapt.shrink_steps, first.shrink_steps);
            assert_eq!(s.adapt.final_fill_permille, first.final_fill_permille);
            assert_eq!(s.adapt.final_overlap, first.final_overlap);
        }
    }

    #[test]
    fn hot_destination_trips_and_the_flush_delivers_everything() {
        // A point-mass partitioner makes rank 0 hot on every sender;
        // an aggressive policy trips after the first round. Every rank
        // emits the same duplicate-heavy stream, so the trip fires
        // symmetrically and the staged counts collapse hard.
        let n = 4;
        let per_rank = 600u64;
        let policy = AdaptPolicy {
            hot_min_rounds: 1,
            ..AdaptPolicy::default()
        };
        let out = run_world(n, move |comm| {
            let pool = MemPool::unlimited("t", 4096);
            let meta = KvMeta::cstr_key_u64_val();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::with_policy(
                comm,
                &pool,
                meta,
                1024,
                sink,
                Partitioner::custom("to-zero", |_, _| 0),
                ShuffleMode::Adaptive,
                policy,
            )
            .unwrap();
            for i in 0..per_rank {
                // 13 distinct KVs repeated ~46× each: duplicate-heavy.
                let key = format!("key-{}", i % 13);
                sh.emit(key.as_bytes(), &(i % 13).to_le_bytes()).unwrap();
            }
            let (kvc, stats) = sh.finish().unwrap();
            let mut got: HashMap<Vec<u8>, Vec<u64>> = HashMap::new();
            kvc.drain(|k, v| {
                got.entry(k.to_vec())
                    .or_default()
                    .push(u64::from_le_bytes(v.try_into().unwrap()));
                Ok(())
            })
            .unwrap();
            (got, stats)
        });
        // Everything still lands on rank 0 (the true owner) exactly once.
        let total: usize = out
            .iter()
            .map(|(m, _)| m.values().map(Vec::len).sum::<usize>())
            .sum();
        assert_eq!(total, (n as u64 * per_rank) as usize);
        for (rank, (m, _)) in out.iter().enumerate() {
            if rank != 0 {
                assert!(m.is_empty(), "rank {rank} owns nothing under to-zero");
            }
        }
        for (_, stats) in &out {
            assert!(stats.adapt.hot_trips >= 1, "the divert tripped");
            assert!(stats.adapt.hot_staged_kvs > 0, "KVs were staged");
            assert!(
                stats.adapt.hot_unique_kvs <= 13,
                "duplicates collapsed to at most the distinct population, got {}",
                stats.adapt.hot_unique_kvs
            );
            assert!(stats.adapt.salted_rounds >= 1);
            assert!(stats.adapt.merge_rounds >= 1);
            assert!(
                stats.max_round_recv_bytes <= 1024,
                "III-B held during flush"
            );
        }
        // The salted spread counts towards real wire destinations, so
        // the post-run histogram is no longer a point mass — except on
        // the owner itself, whose staged counts expand locally and never
        // hit the wire.
        for (rank, (_, stats)) in out.iter().enumerate() {
            if rank == 0 {
                continue;
            }
            assert!(
                stats.imbalance_permille < 4000,
                "salting broke rank {rank}'s point mass, got {}‰",
                stats.imbalance_permille
            );
        }
    }

    #[test]
    fn oversized_kv_warns_once_and_keeps_erroring() {
        run_world(2, |comm| {
            let pool = MemPool::unlimited("t", 65536);
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::new(comm, &pool, meta, 1024, sink).unwrap();
            let big = vec![1u8; 600];
            for _ in 0..3 {
                let err = sh.emit(b"k", &big).unwrap_err();
                assert!(matches!(err, MimirError::KvTooLarge { .. }));
            }
            assert!(sh.warned_jumbo, "warned exactly once, flag latched");
            let _ = sh.finish().unwrap();
        });
    }

    #[test]
    fn single_rank_shuffle_is_local() {
        run_world(1, |comm| {
            let pool = MemPool::unlimited("t", 4096);
            let meta = KvMeta::var();
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::new(comm, &pool, meta, 1024, sink).unwrap();
            for i in 0..100u32 {
                sh.emit(format!("k{i}").as_bytes(), b"v").unwrap();
            }
            let (kvc, stats) = sh.finish().unwrap();
            assert_eq!(kvc.len(), 100);
            assert_eq!(stats.kvs_received, 100);
        });
    }
}
