//! Small codecs for the fixed-width keys and values the benchmarks use,
//! so application code does not hand-roll byte fiddling.

/// Encodes a `u64` little-endian (the WordCount value, BFS vertex id…).
#[inline]
pub fn enc_u64(v: u64) -> [u8; 8] {
    v.to_le_bytes()
}

/// Decodes a `u64` from an 8-byte slice.
///
/// # Panics
/// Panics if `b` is not exactly 8 bytes.
#[inline]
pub fn dec_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().expect("8-byte u64 value"))
}

/// Encodes a pair of `u64`s (the paper's 128-bit edge representation).
#[inline]
pub fn enc_u64_pair(a: u64, b: u64) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    out
}

/// Decodes a pair of `u64`s from a 16-byte slice.
///
/// # Panics
/// Panics if `b` is not exactly 16 bytes.
#[inline]
pub fn dec_u64_pair(b: &[u8]) -> (u64, u64) {
    (dec_u64(&b[..8]), dec_u64(&b[8..]))
}

/// Encodes a 3-D point (octree benchmark).
#[inline]
pub fn enc_point(p: [f32; 3]) -> [u8; 12] {
    let mut out = [0u8; 12];
    for (i, c) in p.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&c.to_le_bytes());
    }
    out
}

/// Decodes a 3-D point from a 12-byte slice.
///
/// # Panics
/// Panics if `b` is not exactly 12 bytes.
#[inline]
pub fn dec_point(b: &[u8]) -> [f32; 3] {
    let mut p = [0f32; 3];
    for (i, c) in p.iter_mut().enumerate() {
        *c = f32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().expect("12-byte point"));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for v in [0, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(dec_u64(&enc_u64(v)), v);
        }
    }

    #[test]
    fn pair_roundtrip() {
        assert_eq!(dec_u64_pair(&enc_u64_pair(3, u64::MAX)), (3, u64::MAX));
    }

    #[test]
    fn point_roundtrip() {
        let p = [0.25f32, -1.5, 3.75];
        assert_eq!(dec_point(&enc_point(p)), p);
    }
}
