//! Key hashing and partitioning.
//!
//! A hand-rolled Fx-style multiply-xor hash (the rustc hash): very fast on
//! short keys, good enough distribution for partitioning, and dependency-
//! free. HashDoS resistance is irrelevant here — keys come from the job's
//! own dataset.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;

/// Fx-style hash of a byte string.
#[inline]
pub fn fxhash64(bytes: &[u8]) -> u64 {
    let mut h = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        tail[7] = rem.len() as u8; // length-distinguish short tails
        let w = u64::from_le_bytes(tail);
        h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
    // Murmur3 finalizer: full avalanche so the low bits we partition by
    // (modulo) depend on every input bit.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 33)
}

/// The destination partition (rank) of `key` among `n_parts` — the
/// default hash-partitioner of both frameworks.
#[inline]
pub fn partition_of(key: &[u8], n_parts: usize) -> usize {
    (fxhash64(key) % n_parts as u64) as usize
}

/// A `std` hasher adapter so `HashMap`s in the combiner/convert paths use
/// the same fast function.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.state = self.state.rotate_left(5) ^ fxhash64(bytes);
        self.state = self.state.wrapping_mul(SEED);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuild = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_hash_differently() {
        let inputs: Vec<Vec<u8>> = (0..10_000u32)
            .map(|i| format!("key-{i}").into_bytes())
            .collect();
        let hashes: std::collections::HashSet<u64> = inputs.iter().map(|b| fxhash64(b)).collect();
        assert_eq!(hashes.len(), inputs.len());
    }

    #[test]
    fn short_keys_of_different_length_differ() {
        assert_ne!(fxhash64(b"a"), fxhash64(b"a\0"));
        assert_ne!(fxhash64(b""), fxhash64(b"\0"));
    }

    #[test]
    fn partitioning_is_roughly_balanced() {
        let n_parts = 16;
        let mut counts = vec![0usize; n_parts];
        for i in 0..16_000u32 {
            counts[partition_of(format!("word{i}").as_bytes(), n_parts)] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(max < min * 2, "partition imbalance: min {min}, max {max}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(fxhash64(b"mimir"), fxhash64(b"mimir"));
    }
}
