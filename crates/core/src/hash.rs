//! Key hashing and partitioning.
//!
//! A hand-rolled Fx-style multiply-xor hash (the rustc hash): very fast on
//! short keys, good enough distribution for partitioning, and dependency-
//! free. HashDoS resistance is irrelevant here — keys come from the job's
//! own dataset.
//!
//! Range reduction (hash → partition, hash → table slot) uses Lemire's
//! multiply-shift instead of `%`: `(hash * n) >> 64` maps a uniform 64-bit
//! hash onto `0..n` without a division, which costs ~20 cycles against the
//! multiply's ~3 on current cores. The map consumes the *high* hash bits,
//! which the Murmur3 finalizer fully avalanches.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;

/// Fx-style hash of a byte string.
#[inline]
pub fn fxhash64(bytes: &[u8]) -> u64 {
    let mut h = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        tail[7] = rem.len() as u8; // length-distinguish short tails
        let w = u64::from_le_bytes(tail);
        h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
    // Murmur3 finalizer: full avalanche so every bit of the hash — the
    // partitioner and the group table both consume the high bits via
    // multiply-shift — depends on every input bit.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 33)
}

/// Lemire multiply-shift fast range reduction: maps a uniform 64-bit
/// `hash` onto `0..n` without a division.
#[inline]
pub fn fast_range(hash: u64, n: usize) -> usize {
    ((u128::from(hash) * n as u128) >> 64) as usize
}

/// The destination partition (rank) of `key` among `n_parts` — the
/// default hash-partitioner of both frameworks.
#[inline]
pub fn partition_of(key: &[u8], n_parts: usize) -> usize {
    fast_range(fxhash64(key), n_parts)
}

/// [`partition_of`] for a key whose hash is already known (the shuffle
/// plumbs hashes computed by the combiner through
/// [`crate::Emitter::emit_hashed`] so they are not recomputed).
#[inline]
pub fn partition_of_hashed(hash: u64, n_parts: usize) -> usize {
    fast_range(hash, n_parts)
}

/// A `std` hasher adapter so `HashMap`s in the legacy combiner/convert
/// paths use the same fast function.
///
/// The first `write` takes `fxhash64` of the bytes directly — for the
/// byte-string keys these maps hold, a single-`write` hash is exactly
/// `fxhash64(key)`, one pass with no extra mixing. Later `write`s (e.g.
/// the length prefix `Hash for [u8]` adds) fold in with one
/// rotate-xor-multiply round.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
    written: bool,
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        if self.written {
            self.state = (self.state.rotate_left(5) ^ fxhash64(bytes)).wrapping_mul(SEED);
        } else {
            self.state = fxhash64(bytes);
            self.written = true;
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuild = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_hash_differently() {
        let inputs: Vec<Vec<u8>> = (0..10_000u32)
            .map(|i| format!("key-{i}").into_bytes())
            .collect();
        let hashes: std::collections::HashSet<u64> = inputs.iter().map(|b| fxhash64(b)).collect();
        assert_eq!(hashes.len(), inputs.len());
    }

    #[test]
    fn short_keys_of_different_length_differ() {
        assert_ne!(fxhash64(b"a"), fxhash64(b"a\0"));
        assert_ne!(fxhash64(b""), fxhash64(b"\0"));
    }

    #[test]
    fn partitioning_is_roughly_balanced() {
        let n_parts = 16;
        let mut counts = vec![0usize; n_parts];
        for i in 0..16_000u32 {
            counts[partition_of(format!("word{i}").as_bytes(), n_parts)] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(max < min * 2, "partition imbalance: min {min}, max {max}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(fxhash64(b"mimir"), fxhash64(b"mimir"));
    }

    #[test]
    fn fast_range_is_total_and_balanced() {
        for n in [1usize, 3, 7, 16, 1000] {
            let mut counts = vec![0usize; n];
            for i in 0..(n as u64 * 1000) {
                let d = fast_range(fxhash64(&i.to_le_bytes()), n);
                assert!(d < n);
                counts[d] += 1;
            }
            let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
            assert!(max < min * 2, "n={n}: min {min}, max {max}");
        }
    }

    #[test]
    fn fast_range_extremes() {
        assert_eq!(fast_range(0, 17), 0);
        assert_eq!(fast_range(u64::MAX, 17), 16);
        assert_eq!(fast_range(u64::MAX, 1), 0);
    }

    #[test]
    fn single_write_hasher_equals_fxhash64() {
        // The one-pass pin: hashing a byte string through the adapter in a
        // single `write` is exactly `fxhash64` — no double mixing.
        for key in [
            &b""[..],
            b"a",
            b"mimir",
            b"supercalifragilisticexpialidocious",
            &[0u8; 64],
        ] {
            let mut h = FxHasher::default();
            h.write(key);
            assert_eq!(h.finish(), fxhash64(key), "key {key:?}");
        }
    }

    #[test]
    fn multi_write_still_separates_boundaries() {
        // ("ab","c") vs ("a","bc") must differ: the fold step sees
        // per-write hashes, not raw concatenation.
        let h2 = |a: &[u8], b: &[u8]| {
            let mut h = FxHasher::default();
            h.write(a);
            h.write(b);
            h.finish()
        };
        assert_ne!(h2(b"ab", b"c"), h2(b"a", b"bc"));
        assert_ne!(h2(b"ab", b"c"), fxhash64(b"abc"));
    }

    #[test]
    fn partition_of_matches_hashed_variant() {
        for i in 0..1000u64 {
            let k = i.to_le_bytes();
            for n in [1usize, 2, 7, 64] {
                assert_eq!(partition_of(&k, n), partition_of_hashed(fxhash64(&k), n));
            }
        }
    }
}
