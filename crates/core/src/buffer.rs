use mimir_mem::{MemPool, Reservation};

use crate::Result;

/// A heap buffer whose bytes are charged to a node pool.
///
/// Used for allocations that are not page-shaped but must still count
/// against the node budget: the static send/receive communication buffers
/// and oversized ("jumbo") KMV entries.
pub(crate) struct TrackedBuf {
    _res: Reservation,
    data: Vec<u8>,
}

impl TrackedBuf {
    /// Allocates a zeroed buffer of `size` bytes charged to `pool`.
    pub fn new(pool: &MemPool, size: usize) -> Result<Self> {
        let res = pool.try_reserve(size)?;
        Ok(Self {
            _res: res,
            data: vec![0u8; size],
        })
    }

    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_buf_charges_pool() {
        let pool = MemPool::new("t", 64, 1024).unwrap();
        let b = TrackedBuf::new(&pool, 500).unwrap();
        assert_eq!(pool.used(), 500);
        assert_eq!(b.len(), 500);
        drop(b);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn tracked_buf_respects_budget() {
        let pool = MemPool::new("t", 64, 256).unwrap();
        assert!(TrackedBuf::new(&pool, 500).is_err());
    }
}
