use std::time::Duration;

use crate::group::GroupStats;
use crate::shuffle::ShuffleStats;

/// Per-rank metrics for one completed job — everything the paper's
/// figures plot.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobStats {
    /// Wall time of the interleaved map+aggregate phases.
    pub map_time: Duration,
    /// Wall time of the convert phase (zero under partial reduction).
    pub convert_time: Duration,
    /// Wall time of the reduce phase (or the fold finalization).
    pub reduce_time: Duration,
    /// Shuffle counters (emitted KVs/bytes, rounds).
    pub shuffle: ShuffleStats,
    /// Grouping-engine counters (convert index, combiner, or partial-
    /// reduction fold table; zero under [`crate::GroupingMode::Legacy`]).
    pub group: GroupStats,
    /// Unique keys after grouping (KMV groups or fold-table entries).
    pub unique_keys: u64,
    /// Node-pool peak observed at job end, in bytes. This is the
    /// "peak memory usage" metric of Figures 8/9/11/12/13 (max across the
    /// ranks sharing the node).
    pub node_peak_bytes: usize,
    /// Node-pool peak observed within the map+aggregate phases.
    pub map_peak_bytes: usize,
    /// Node-pool peak observed within the convert phase (zero under
    /// partial reduction, which has no convert).
    pub convert_peak_bytes: usize,
    /// Node-pool peak observed within the reduce phase (or the fold
    /// finalization).
    pub reduce_peak_bytes: usize,
    /// KVs produced into the job output.
    pub kvs_out: u64,
    /// Time this rank spent blocked in the explicit phase barriers (the
    /// map→reduce synchronization the paper retains, plus the reduce
    /// exit barrier). High values on most ranks point at one straggler;
    /// the rank with the *smallest* barrier wait is the critical rank.
    pub barrier_wait_ns: u64,
}

impl JobStats {
    /// Total wall time across phases.
    pub fn total_time(&self) -> Duration {
        self.map_time + self.convert_time + self.reduce_time
    }

    /// Folds another rank's stats into this one for cluster totals.
    ///
    /// Phase times take the max: phases end at barriers, so the slowest
    /// rank defines the wall time. Traffic counters, unique keys, and
    /// output KVs sum (keys are partitioned across ranks). Peaks take
    /// the max — ranks on one node share the pool, so summing would
    /// count the same bytes once per rank.
    pub fn merge(&mut self, other: &JobStats) {
        self.map_time = self.map_time.max(other.map_time);
        self.convert_time = self.convert_time.max(other.convert_time);
        self.reduce_time = self.reduce_time.max(other.reduce_time);
        self.shuffle.merge(&other.shuffle);
        self.group.merge(&other.group);
        self.unique_keys += other.unique_keys;
        self.node_peak_bytes = self.node_peak_bytes.max(other.node_peak_bytes);
        self.map_peak_bytes = self.map_peak_bytes.max(other.map_peak_bytes);
        self.convert_peak_bytes = self.convert_peak_bytes.max(other.convert_peak_bytes);
        self.reduce_peak_bytes = self.reduce_peak_bytes.max(other.reduce_peak_bytes);
        self.kvs_out += other.kvs_out;
        self.barrier_wait_ns += other.barrier_wait_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_traffic_and_maxes_times_and_peaks() {
        let mut a = JobStats {
            map_time: Duration::from_millis(10),
            reduce_time: Duration::from_millis(3),
            shuffle: ShuffleStats {
                kvs_emitted: 100,
                kv_bytes_emitted: 1000,
                kvs_received: 90,
                rounds: 4,
                bytes_received: 1000,
                max_round_recv_bytes: 300,
                sync_wait_ns: 50,
                data_wait_ns: 20,
                max_dest_bytes: 400,
                imbalance_permille: 1200,
                gini_permille: 100,
                ..ShuffleStats::default()
            },
            unique_keys: 7,
            node_peak_bytes: 5000,
            map_peak_bytes: 4000,
            convert_peak_bytes: 4500,
            reduce_peak_bytes: 1000,
            kvs_out: 7,
            ..JobStats::default()
        };
        let b = JobStats {
            map_time: Duration::from_millis(8),
            reduce_time: Duration::from_millis(5),
            shuffle: ShuffleStats {
                kvs_emitted: 50,
                kv_bytes_emitted: 500,
                kvs_received: 60,
                rounds: 4,
                bytes_received: 600,
                max_round_recv_bytes: 400,
                sync_wait_ns: 30,
                data_wait_ns: 25,
                max_dest_bytes: 350,
                imbalance_permille: 1900,
                gini_permille: 80,
                ..ShuffleStats::default()
            },
            unique_keys: 3,
            node_peak_bytes: 6000,
            map_peak_bytes: 6000,
            convert_peak_bytes: 100,
            reduce_peak_bytes: 2000,
            kvs_out: 3,
            ..JobStats::default()
        };
        a.merge(&b);
        assert_eq!(a.map_time, Duration::from_millis(10));
        assert_eq!(a.reduce_time, Duration::from_millis(5));
        assert_eq!(a.shuffle.kvs_emitted, 150);
        assert_eq!(a.shuffle.kvs_received, 150);
        assert_eq!(a.shuffle.rounds, 4, "rounds are collective: max, not sum");
        assert_eq!(a.shuffle.bytes_received, 1600);
        assert_eq!(
            a.shuffle.max_round_recv_bytes, 400,
            "per-round high-water: max"
        );
        assert_eq!(a.shuffle.sync_wait_ns, 80, "waits sum");
        assert_eq!(a.shuffle.data_wait_ns, 45);
        assert_eq!(a.shuffle.max_dest_bytes, 400, "skew high-water: max");
        assert_eq!(a.shuffle.imbalance_permille, 1900);
        assert_eq!(a.shuffle.gini_permille, 100);
        assert_eq!(a.unique_keys, 10);
        assert_eq!(a.node_peak_bytes, 6000);
        assert_eq!(a.map_peak_bytes, 6000);
        assert_eq!(a.convert_peak_bytes, 4500);
        assert_eq!(a.reduce_peak_bytes, 2000);
        assert_eq!(a.kvs_out, 10);
    }
}
