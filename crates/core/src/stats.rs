use std::time::Duration;

use crate::shuffle::ShuffleStats;

/// Per-rank metrics for one completed job — everything the paper's
/// figures plot.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobStats {
    /// Wall time of the interleaved map+aggregate phases.
    pub map_time: Duration,
    /// Wall time of the convert phase (zero under partial reduction).
    pub convert_time: Duration,
    /// Wall time of the reduce phase (or the fold finalization).
    pub reduce_time: Duration,
    /// Shuffle counters (emitted KVs/bytes, rounds).
    pub shuffle: ShuffleStats,
    /// Unique keys after grouping (KMV groups or fold-table entries).
    pub unique_keys: u64,
    /// Node-pool peak observed at job end, in bytes. This is the
    /// "peak memory usage" metric of Figures 8/9/11/12/13 (max across the
    /// ranks sharing the node).
    pub node_peak_bytes: usize,
    /// KVs produced into the job output.
    pub kvs_out: u64,
}

impl JobStats {
    /// Total wall time across phases.
    pub fn total_time(&self) -> Duration {
        self.map_time + self.convert_time + self.reduce_time
    }
}
