use mimir_mem::{MemPool, Page, Reservation};

use crate::buffer::TrackedBuf;
use crate::kv::decode_side;
use crate::{KvMeta, LenHint, Result};

/// Where a KMV entry lives.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Slot {
    /// Index into the page list.
    Page(u32),
    /// Index into the jumbo list (entries larger than one page).
    Jumbo(u32),
}

/// Location of one KMV entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupLoc {
    pub slot: Slot,
    pub offset: usize,
    pub entry_len: usize,
}

/// KMV container (KMVC): page-granular storage for grouped
/// `<key, [values]>` lists, built by the two-pass [`crate::convert`].
///
/// Entry layout: `[key (per key hint)] [n_values: u32] [values…]`, with
/// each value encoded per the value hint. Entries that cannot fit in one
/// page (a hot key's value list) get a dedicated pool-tracked "jumbo"
/// buffer — the in-memory analogue of what would otherwise force a
/// framework to spill.
pub struct KmvContainer {
    meta: KvMeta,
    pages: Vec<Page>,
    jumbos: Vec<TrackedBuf>,
    groups: Vec<GroupLoc>,
    /// Accounts the `groups` index itself against the node budget.
    _groups_res: Reservation,
    n_values: u64,
    bytes: u64,
}

impl KmvContainer {
    pub(crate) fn from_parts(
        meta: KvMeta,
        pages: Vec<Page>,
        jumbos: Vec<TrackedBuf>,
        groups: Vec<GroupLoc>,
        pool: &MemPool,
        n_values: u64,
        bytes: u64,
    ) -> Result<Self> {
        let groups_res = pool.try_reserve(groups.len() * std::mem::size_of::<GroupLoc>())?;
        Ok(Self {
            meta,
            pages,
            jumbos,
            groups,
            _groups_res: groups_res,
            n_values,
            bytes,
        })
    }

    /// Number of unique keys (groups).
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of values across all groups.
    pub fn n_values(&self) -> u64 {
        self.n_values
    }

    /// Encoded bytes held.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Pages held (excluding jumbo buffers).
    pub fn pages_held(&self) -> usize {
        self.pages.len()
    }

    /// Jumbo (larger-than-a-page) entries held.
    pub fn jumbos_held(&self) -> usize {
        self.jumbos.len()
    }

    /// The container's encoding.
    pub fn meta(&self) -> KvMeta {
        self.meta
    }

    fn entry_bytes(&self, loc: &GroupLoc) -> &[u8] {
        let base = match loc.slot {
            Slot::Page(i) => self.pages[i as usize].as_slice(),
            Slot::Jumbo(i) => self.jumbos[i as usize].as_slice(),
        };
        &base[loc.offset..loc.offset + loc.entry_len]
    }

    /// Visits every group in first-occurrence order with its key and an
    /// iterator over its values — the reduce phase's access path.
    ///
    /// # Errors
    /// Propagates the first error from `f`.
    pub fn for_each_group(
        &self,
        mut f: impl FnMut(&[u8], ValueIter<'_>) -> Result<()>,
    ) -> Result<()> {
        for loc in &self.groups {
            let entry = self.entry_bytes(loc);
            let (krange, koff) = decode_side(self.meta.key, entry, 0);
            let n = u32::from_le_bytes(entry[koff..koff + 4].try_into().expect("n_values field"));
            let vals = ValueIter {
                hint: self.meta.val,
                buf: &entry[koff + 4..],
                remaining: n,
                off: 0,
            };
            f(&entry[krange], vals)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for KmvContainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KmvContainer")
            .field("groups", &self.groups.len())
            .field("n_values", &self.n_values)
            .field("pages", &self.pages.len())
            .field("jumbos", &self.jumbos.len())
            .finish()
    }
}

/// Iterator over the values of one KMV group.
pub struct ValueIter<'a> {
    hint: LenHint,
    buf: &'a [u8],
    remaining: u32,
    off: usize,
}

impl<'a> Iterator for ValueIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (range, next) = decode_side(self.hint, self.buf, self.off);
        self.off = next;
        Some(&self.buf[range])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for ValueIter<'_> {}
