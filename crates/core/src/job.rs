//! Job driver: wires map callbacks, the shuffle, the optional
//! optimizations, and the convert/reduce phases into the four run shapes
//! the paper's benchmarks need.
//!
//! | method | aggregate sink | grouping | used by |
//! |---|---|---|---|
//! | [`MapReduceJob::map_reduce`] | KVC | convert + reduce | WC/OC baseline |
//! | [`MapReduceJob::map_partial_reduce`] | fold bucket | (none) | WC/OC `pr` |
//! | [`MapReduceJob::map_shuffle`] | KVC | none (map-only) | BFS |
//!
//! Each shape has a `*_compress` variant that interposes the KV
//! compression table between the map and the shuffle, and a `chain_*`
//! variant (`chain_reduce`, `chain_partial_reduce`, `chain_shuffle`) that
//! replaces the map's input with a cross-job cached container (see
//! [`crate::KvCache`]) — eliding the shuffle entirely when the cached
//! placement fingerprint matches the job's partitioner.
//!
//! Per the paper, the global synchronization between map and reduce is
//! retained (a barrier after the shuffle completes); everything else is
//! implicit and interleaved.

use std::time::Instant;

use mimir_obs::{EventKind, Phase};

use crate::cache::{lock_cache, CheckedOut, SharedKvCache};
use crate::combiner::{CombineFn, CombinerTable, StreamingCombiner};
use crate::context::MimirContext;
use crate::convert::convert_with;
use crate::group::GroupStats;
use crate::kmvc::ValueIter;
use crate::partial::PartialReducer;
use crate::partitioner::{PartitionFingerprint, Partitioner};
use crate::shuffle::{Emitter, ShuffleStats, Shuffler};
use crate::sink::KvSink;
use crate::{
    AdaptPolicy, GroupingMode, JobStats, KvContainer, KvMeta, MimirError, Result, ShuffleMode,
};

/// Pushes the pool's current occupancy into this rank's live telemetry
/// accumulator (a no-op unless the plane is armed on this thread), so
/// the online memory-headroom rule sees gauges that move at phase
/// boundaries instead of only in the end-of-job report.
fn note_live_mem(pool: &mimir_mem::MemPool) {
    if mimir_obs::live::shared().is_none() {
        return;
    }
    let ps = pool.stats();
    mimir_obs::live::note_mem(mimir_obs::MemCounters {
        pages_allocated: ps.page_allocs,
        pages_recycled: ps.page_frees,
        bytes_in_use: ps.used as u64,
        peak_bytes: ps.peak as u64,
        // `usize::MAX` means "unlimited": store 0 so the headroom rule
        // skips unmetered pools (same convention as the final report).
        budget_bytes: if ps.budget == usize::MAX {
            0
        } else {
            ps.budget as u64
        },
        oom_events: ps.oom_events,
    });
}

/// A configured-but-not-yet-run MapReduce job.
pub struct MapReduceJob<'c, 'w> {
    ctx: &'c mut MimirContext<'w>,
    kv_meta: KvMeta,
    out_meta: KvMeta,
    partitioner: Partitioner,
    compress_flush_bytes: Option<usize>,
    shuffle_mode: Option<ShuffleMode>,
    grouping_mode: Option<GroupingMode>,
    adapt_policy: Option<AdaptPolicy>,
    input_cached: Option<String>,
    output_cached: Option<String>,
    elide: bool,
}

/// A finished job: the output KVs this rank owns, plus metrics.
pub struct JobOutput {
    /// Output KVs (hash-partitioned across ranks by key for shuffled
    /// shapes; reduce output stays on the reducing rank).
    pub output: KvContainer,
    /// Per-rank metrics.
    pub stats: JobStats,
}

/// Emitter wrapper for reduce callbacks writing job output.
pub struct OutEmitter<'a> {
    kvc: &'a mut KvContainer,
    count: u64,
}

impl Emitter for OutEmitter<'_> {
    fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        self.count += 1;
        self.kvc.push(key, val)
    }
}

/// Map callback: drives this rank's share of the input, emitting
/// intermediate KVs.
pub type MapFn<'f> = &'f mut dyn FnMut(&mut dyn Emitter) -> Result<()>;

/// Chained map callback: invoked once per KV of the locally-resident
/// cached input partition (see [`MapReduceJob::input_cached`]), emitting
/// intermediate KVs for this job.
pub type ChainMapFn<'f> = &'f mut dyn FnMut(&[u8], &[u8], &mut dyn Emitter) -> Result<()>;

/// The elided-shuffle emitter: feeds the chained map's output straight
/// into the aggregate sink, skipping the exchange entirely. Every emitted
/// key is checked against the declared partitioner so a map that is *not*
/// partition-preserving fails loudly instead of silently misplacing data.
struct LocalEmitter<'a, S: KvSink> {
    sink: &'a mut S,
    partitioner: &'a Partitioner,
    rank: usize,
    n_ranks: usize,
    kvs: u64,
    bytes: u64,
}

impl<S: KvSink> Emitter for LocalEmitter<'_, S> {
    fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        let owner = self.partitioner.of(key, self.n_ranks);
        if owner != self.rank {
            return Err(MimirError::Cache(format!(
                "elided shuffle on rank {}: map emitted a key owned by rank {owner}; \
                 the chained map is not partition-preserving — declare it with \
                 shuffle_elision(false)",
                self.rank
            )));
        }
        self.kvs += 1;
        self.bytes += (key.len() + val.len()) as u64;
        self.sink.accept(key, val)
    }
}

/// Reduce callback: one key with all its values; emits output KVs.
pub type ReduceFn<'f> = &'f mut dyn FnMut(&[u8], ValueIter<'_>, &mut dyn Emitter) -> Result<()>;

impl<'c, 'w> MapReduceJob<'c, 'w> {
    pub(crate) fn new(ctx: &'c mut MimirContext<'w>) -> Self {
        Self {
            ctx,
            kv_meta: KvMeta::var(),
            out_meta: KvMeta::var(),
            partitioner: Partitioner::hash(),
            compress_flush_bytes: None,
            shuffle_mode: None,
            grouping_mode: None,
            adapt_policy: None,
            input_cached: None,
            output_cached: None,
            elide: true,
        }
    }

    /// Sets the intermediate KV encoding (the KV-hint optimization).
    #[must_use]
    pub fn kv_meta(mut self, meta: KvMeta) -> Self {
        self.kv_meta = meta;
        self
    }

    /// Sets the output KV encoding (defaults to un-hinted).
    #[must_use]
    pub fn out_meta(mut self, meta: KvMeta) -> Self {
        self.out_meta = meta;
        self
    }

    /// Installs a user key partitioner (default: hash). Must be
    /// deterministic and identical on every rank.
    #[must_use]
    pub fn partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Bounds the KV-compression table: when its footprint exceeds
    /// `bytes`, it flushes into the shuffle mid-map instead of delaying
    /// the whole aggregate until the map completes.
    ///
    /// This implements the improvement the paper defers to "a future
    /// version of Mimir" (Section III-C2 lists the delayed aggregate as
    /// an implementation shortcoming of KV compression): the compression
    /// memory becomes a tunable budget rather than scaling with the
    /// number of unique keys. Flushing early trades some compression
    /// ratio for bounded memory — duplicates arriving after a flush are
    /// re-sent rather than merged.
    #[must_use]
    pub fn compress_flush_bytes(mut self, bytes: usize) -> Self {
        self.compress_flush_bytes = Some(bytes);
        self
    }

    /// Overrides the context's [`ShuffleMode`] for this job. Collective:
    /// every rank must choose the same mode.
    #[must_use]
    pub fn shuffle_mode(mut self, mode: ShuffleMode) -> Self {
        self.shuffle_mode = Some(mode);
        self
    }

    /// Overrides the context's [`GroupingMode`] for this job (convert,
    /// combiner, and partial-reduction grouping engine). Local to the
    /// rank's data structures — not collective.
    #[must_use]
    pub fn grouping_mode(mut self, mode: GroupingMode) -> Self {
        self.grouping_mode = Some(mode);
        self
    }

    /// Overrides the context's [`AdaptPolicy`] for this job (only
    /// consulted when the effective shuffle mode is
    /// [`ShuffleMode::Adaptive`]). Collective: every rank must choose the
    /// same policy — the adaptive controller's ballots assume identical
    /// thresholds on all ranks.
    #[must_use]
    pub fn adapt_policy(mut self, policy: AdaptPolicy) -> Self {
        self.adapt_policy = Some(policy);
        self
    }

    /// Opt-in communication/compute overlap: shorthand for
    /// [`Self::shuffle_mode`] with [`ShuffleMode::Overlapped`] (or the
    /// default zero-copy blocking path when `false`).
    #[must_use]
    pub fn comm_overlap(self, on: bool) -> Self {
        self.shuffle_mode(if on {
            ShuffleMode::Overlapped
        } else {
            ShuffleMode::ZeroCopy
        })
    }

    /// Chains this job onto the named cached container from a previous
    /// job on this context (see [`Self::output_cached`]): the `chain_*`
    /// run shapes feed the locally-resident partition straight into the
    /// chained map with zero serialize/spill round-trip. When the cached
    /// placement fingerprint matches this job's partitioner (and elision
    /// is not disabled via [`Self::shuffle_elision`]), the shuffle is
    /// elided entirely. Only valid with the `chain_*` shapes.
    #[must_use]
    pub fn input_cached(mut self, name: impl Into<String>) -> Self {
        self.input_cached = Some(name.into());
        self
    }

    /// Retains this job's output in the cross-job cache under `name`
    /// instead of returning it: the returned [`JobOutput`] carries an
    /// *empty* container (stats still describe the real output), and the
    /// KVs stay resident — charged against the pool — for a later job's
    /// [`Self::input_cached`] or [`MimirContext::with_cached`]. The entry
    /// is tagged with this job's partitioner fingerprint; an existing
    /// entry of the same name is replaced (the iterative update-in-place
    /// pattern).
    #[must_use]
    pub fn output_cached(mut self, name: impl Into<String>) -> Self {
        self.output_cached = Some(name.into());
        self
    }

    /// Controls shuffle elision for the `chain_*` shapes (default `true`).
    /// Elision requires a *partition-preserving* map: every emitted key
    /// must land on this rank under the job's partitioner (checked per
    /// emit; violations fail with [`MimirError::Cache`]). Key-changing
    /// maps — BFS traversal, PageRank scatter — must pass `false` to get
    /// a real exchange. Collective: every rank must choose the same value.
    #[must_use]
    pub fn shuffle_elision(mut self, on: bool) -> Self {
        self.elide = on;
        self
    }

    /// The baseline workflow: map → (implicit aggregate) → convert →
    /// reduce.
    ///
    /// # Errors
    /// Memory exhaustion, hint violations, oversized KVs, or errors from
    /// the callbacks.
    pub fn map_reduce(self, map: MapFn<'_>, reduce: ReduceFn<'_>) -> Result<JobOutput> {
        self.run_grouped(map, None, reduce)
    }

    /// [`Self::map_reduce`] with map-side KV compression.
    pub fn map_reduce_compress(
        self,
        map: MapFn<'_>,
        compress: CombineFn<'_>,
        reduce: ReduceFn<'_>,
    ) -> Result<JobOutput> {
        self.run_grouped(map, Some(compress), reduce)
    }

    /// Partial reduction: map → (implicit aggregate) → fold. Replaces
    /// convert+reduce; requires `combine` to be commutative and
    /// associative.
    pub fn map_partial_reduce(self, map: MapFn<'_>, combine: CombineFn<'_>) -> Result<JobOutput> {
        self.run_partial(map, None, combine)
    }

    /// [`Self::map_partial_reduce`] with map-side KV compression too.
    pub fn map_partial_reduce_compress(
        self,
        map: MapFn<'_>,
        compress: CombineFn<'_>,
        combine: CombineFn<'_>,
    ) -> Result<JobOutput> {
        self.run_partial(map, Some(compress), combine)
    }

    /// Map-only with shuffle: emitted KVs are hash-partitioned to their
    /// owner ranks and returned ungrouped (the BFS traversal shape).
    pub fn map_shuffle(self, map: MapFn<'_>) -> Result<JobOutput> {
        ensure_not_chained(&self.input_cached)?;
        let MimirContext {
            comm,
            pool,
            cfg,
            cancel,
            cache,
            ..
        } = &mut *self.ctx;
        cancel_checkpoint(comm, cancel)?;
        let t0 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let map_span = mimir_obs::phase_span(Phase::Map);
        let sink = KvContainer::new(pool, self.kv_meta);
        let mut shuffler = Shuffler::with_policy(
            comm,
            pool,
            self.kv_meta,
            cfg.comm_buf_size,
            sink,
            self.partitioner.clone(),
            self.shuffle_mode.unwrap_or(cfg.shuffle_mode),
            self.adapt_policy.unwrap_or(cfg.adapt),
        )?;
        map(&mut shuffler)?;
        drop(map_span);
        let agg_span = mimir_obs::phase_span(Phase::Aggregate);
        let (kvc, shuffle) = shuffler.finish()?;
        let barrier_wait_ns = timed_barrier(comm);
        drop(agg_span);
        let kvs_out = kvc.len();
        let fingerprint = self.partitioner.fingerprint(comm.size());
        let output = stash_or_return(cache, pool, &self.output_cached, fingerprint, kvc);
        Ok(JobOutput {
            output,
            stats: JobStats {
                map_time: t0.elapsed(),
                shuffle,
                kvs_out,
                node_peak_bytes: pool.peak(),
                map_peak_bytes: pool.phase_peak(),
                barrier_wait_ns,
                ..JobStats::default()
            },
        })
    }

    /// [`Self::map_shuffle`] with map-side KV compression.
    pub fn map_shuffle_compress(
        self,
        map: MapFn<'_>,
        compress: CombineFn<'_>,
    ) -> Result<JobOutput> {
        ensure_not_chained(&self.input_cached)?;
        let MimirContext {
            comm,
            pool,
            cfg,
            cancel,
            cache,
            ..
        } = &mut *self.ctx;
        cancel_checkpoint(comm, cancel)?;
        let t0 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let map_span = mimir_obs::phase_span(Phase::Map);
        let sink = KvContainer::new(pool, self.kv_meta);
        let mut shuffler = Shuffler::with_policy(
            comm,
            pool,
            self.kv_meta,
            cfg.comm_buf_size,
            sink,
            self.partitioner.clone(),
            self.shuffle_mode.unwrap_or(cfg.shuffle_mode),
            self.adapt_policy.unwrap_or(cfg.adapt),
        )?;
        let group = drive_compressed_map(
            map,
            compress,
            pool,
            self.kv_meta,
            self.compress_flush_bytes,
            self.grouping_mode.unwrap_or(cfg.grouping_mode),
            &mut shuffler,
        )?;
        drop(map_span);
        let agg_span = mimir_obs::phase_span(Phase::Aggregate);
        let (kvc, shuffle) = shuffler.finish()?;
        let barrier_wait_ns = timed_barrier(comm);
        drop(agg_span);
        let kvs_out = kvc.len();
        let fingerprint = self.partitioner.fingerprint(comm.size());
        let output = stash_or_return(cache, pool, &self.output_cached, fingerprint, kvc);
        Ok(JobOutput {
            output,
            stats: JobStats {
                map_time: t0.elapsed(),
                shuffle,
                group,
                kvs_out,
                node_peak_bytes: pool.peak(),
                map_peak_bytes: pool.phase_peak(),
                barrier_wait_ns,
                ..JobStats::default()
            },
        })
    }

    /// Chained map-only: runs `map` once per KV of the cached input named
    /// by [`Self::input_cached`], partitioning its output by this job's
    /// partitioner. When the input's placement fingerprint matches and
    /// elision is enabled, the exchange is skipped entirely (a
    /// `shuffle_elided` trace event marks it); otherwise the output goes
    /// through a real shuffle. The iterative BFS traversal shape.
    ///
    /// # Errors
    /// [`MimirError::Cache`] when no input name was declared, the name is
    /// not cached, or an elided map emits a key this rank does not own;
    /// otherwise as [`Self::map_shuffle`].
    pub fn chain_shuffle(self, map: ChainMapFn<'_>) -> Result<JobOutput> {
        let in_name = require_chain_input(&self.input_cached)?;
        let MimirContext {
            comm,
            pool,
            cfg,
            cancel,
            cache,
            ..
        } = &mut *self.ctx;
        cancel_checkpoint(comm, cancel)?;
        let t0 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let map_span = mimir_obs::phase_span(Phase::Map);
        let fingerprint = self.partitioner.fingerprint(comm.size());
        let input = lock_cache(cache).checkout(&in_name, pool)?;
        let elide = self.elide && input.fingerprint == fingerprint;
        let sink = KvContainer::new(pool, self.kv_meta);
        let fed = feed_chain(
            comm,
            pool,
            cfg.comm_buf_size,
            self.kv_meta,
            &self.partitioner,
            self.shuffle_mode.unwrap_or(cfg.shuffle_mode),
            self.adapt_policy.unwrap_or(cfg.adapt),
            &input.kvc,
            map,
            sink,
            elide,
        );
        finish_chain_input(cache, &in_name, input, elide && fed.is_ok());
        let (kvc, shuffle) = fed?;
        drop(map_span);
        let agg_span = mimir_obs::phase_span(Phase::Aggregate);
        let barrier_wait_ns = timed_barrier(comm);
        drop(agg_span);
        let kvs_out = kvc.len();
        let output = stash_or_return(cache, pool, &self.output_cached, fingerprint, kvc);
        Ok(JobOutput {
            output,
            stats: JobStats {
                map_time: t0.elapsed(),
                shuffle,
                kvs_out,
                node_peak_bytes: pool.peak(),
                map_peak_bytes: pool.phase_peak(),
                barrier_wait_ns,
                ..JobStats::default()
            },
        })
    }

    /// Chained full workflow: per-KV map over the cached input, then
    /// convert + reduce — [`Self::map_reduce`] with the front half
    /// replaced by the cache (and the shuffle elided when the placement
    /// fingerprint matches).
    ///
    /// # Errors
    /// As [`Self::chain_shuffle`] and [`Self::map_reduce`].
    pub fn chain_reduce(self, map: ChainMapFn<'_>, reduce: ReduceFn<'_>) -> Result<JobOutput> {
        let in_name = require_chain_input(&self.input_cached)?;
        let out_meta = self.out_meta;
        let kv_meta = self.kv_meta;
        let MimirContext {
            comm,
            pool,
            cfg,
            cancel,
            cache,
            ..
        } = &mut *self.ctx;
        let gmode = self.grouping_mode.unwrap_or(cfg.grouping_mode);
        cancel_checkpoint(comm, cancel)?;

        // --- chained map + (elided) aggregate -------------------------
        let t0 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let map_span = mimir_obs::phase_span(Phase::Map);
        let fingerprint = self.partitioner.fingerprint(comm.size());
        let input = lock_cache(cache).checkout(&in_name, pool)?;
        let elide = self.elide && input.fingerprint == fingerprint;
        let sink = KvContainer::new(pool, kv_meta);
        let fed = feed_chain(
            comm,
            pool,
            cfg.comm_buf_size,
            kv_meta,
            &self.partitioner,
            self.shuffle_mode.unwrap_or(cfg.shuffle_mode),
            self.adapt_policy.unwrap_or(cfg.adapt),
            &input.kvc,
            map,
            sink,
            elide,
        );
        finish_chain_input(cache, &in_name, input, elide && fed.is_ok());
        let (kvc, shuffle) = fed?;
        drop(map_span);
        let agg_span = mimir_obs::phase_span(Phase::Aggregate);
        let mut barrier_wait_ns = timed_barrier(comm);
        drop(agg_span);
        let map_time = t0.elapsed();
        let map_peak_bytes = pool.phase_peak();
        cancel_checkpoint(comm, cancel)?;

        // --- convert ---------------------------------------------------
        let t1 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let convert_span = mimir_obs::phase_span(Phase::Convert);
        let (kmvc, group) = convert_with(kvc, pool, gmode)?;
        drop(convert_span);
        let convert_time = t1.elapsed();
        let convert_peak_bytes = pool.phase_peak();
        cancel_checkpoint(comm, cancel)?;

        // --- reduce ----------------------------------------------------
        let t2 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let reduce_span = mimir_obs::phase_span(Phase::Reduce);
        let mut out = KvContainer::new(pool, out_meta);
        let unique_keys = kmvc.n_groups() as u64;
        {
            let mut emitter = OutEmitter {
                kvc: &mut out,
                count: 0,
            };
            kmvc.for_each_group(|k, vals| reduce(k, vals, &mut emitter))?;
        }
        drop(kmvc);
        barrier_wait_ns += timed_barrier(comm);
        drop(reduce_span);
        let reduce_time = t2.elapsed();
        let reduce_peak_bytes = pool.phase_peak();

        let kvs_out = out.len();
        let output = stash_or_return(cache, pool, &self.output_cached, fingerprint, out);
        Ok(JobOutput {
            output,
            stats: JobStats {
                map_time,
                convert_time,
                reduce_time,
                shuffle,
                group,
                unique_keys,
                node_peak_bytes: pool.peak(),
                map_peak_bytes,
                convert_peak_bytes,
                reduce_peak_bytes,
                kvs_out,
                barrier_wait_ns,
            },
        })
    }

    /// Chained partial reduction: per-KV map over the cached input folding
    /// straight into the combine bucket — [`Self::map_partial_reduce`]
    /// with the front half replaced by the cache (and the shuffle elided
    /// when the placement fingerprint matches). The iterative PageRank
    /// shape.
    ///
    /// # Errors
    /// As [`Self::chain_shuffle`] and [`Self::map_partial_reduce`].
    pub fn chain_partial_reduce(
        self,
        map: ChainMapFn<'_>,
        combine: CombineFn<'_>,
    ) -> Result<JobOutput> {
        let in_name = require_chain_input(&self.input_cached)?;
        let out_meta = self.out_meta;
        let kv_meta = self.kv_meta;
        let MimirContext {
            comm,
            pool,
            cfg,
            cancel,
            cache,
            ..
        } = &mut *self.ctx;
        let gmode = self.grouping_mode.unwrap_or(cfg.grouping_mode);
        cancel_checkpoint(comm, cancel)?;

        let t0 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let map_span = mimir_obs::phase_span(Phase::Map);
        let fingerprint = self.partitioner.fingerprint(comm.size());
        let input = lock_cache(cache).checkout(&in_name, pool)?;
        let elide = self.elide && input.fingerprint == fingerprint;
        let sink = PartialReducer::with_mode(pool, kv_meta, combine, gmode)?;
        let fed = feed_chain(
            comm,
            pool,
            cfg.comm_buf_size,
            kv_meta,
            &self.partitioner,
            self.shuffle_mode.unwrap_or(cfg.shuffle_mode),
            self.adapt_policy.unwrap_or(cfg.adapt),
            &input.kvc,
            map,
            sink,
            elide,
        );
        finish_chain_input(cache, &in_name, input, elide && fed.is_ok());
        let (reducer, shuffle) = fed?;
        drop(map_span);
        let agg_span = mimir_obs::phase_span(Phase::Aggregate);
        let mut barrier_wait_ns = timed_barrier(comm);
        drop(agg_span);
        let map_time = t0.elapsed();
        let map_peak_bytes = pool.phase_peak();
        cancel_checkpoint(comm, cancel)?;

        let t2 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let reduce_span = mimir_obs::phase_span(Phase::Reduce);
        let unique_keys = reducer.unique_keys() as u64;
        let group = reducer.group_stats();
        let out = reducer.into_output(pool, out_meta)?;
        barrier_wait_ns += timed_barrier(comm);
        drop(reduce_span);
        let reduce_time = t2.elapsed();
        let reduce_peak_bytes = pool.phase_peak();

        let kvs_out = out.len();
        let output = stash_or_return(cache, pool, &self.output_cached, fingerprint, out);
        Ok(JobOutput {
            output,
            stats: JobStats {
                map_time,
                convert_time: std::time::Duration::ZERO,
                reduce_time,
                shuffle,
                group,
                unique_keys,
                kvs_out,
                node_peak_bytes: pool.peak(),
                map_peak_bytes,
                reduce_peak_bytes,
                barrier_wait_ns,
                ..JobStats::default()
            },
        })
    }

    fn run_grouped(
        self,
        map: MapFn<'_>,
        compress: Option<CombineFn<'_>>,
        reduce: ReduceFn<'_>,
    ) -> Result<JobOutput> {
        ensure_not_chained(&self.input_cached)?;
        let out_meta = self.out_meta;
        let kv_meta = self.kv_meta;
        let MimirContext {
            comm,
            pool,
            cfg,
            cancel,
            cache,
            ..
        } = &mut *self.ctx;
        let gmode = self.grouping_mode.unwrap_or(cfg.grouping_mode);
        cancel_checkpoint(comm, cancel)?;

        // --- map + implicit aggregate --------------------------------
        let t0 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let map_span = mimir_obs::phase_span(Phase::Map);
        let sink = KvContainer::new(pool, kv_meta);
        let mut shuffler = Shuffler::with_policy(
            comm,
            pool,
            kv_meta,
            cfg.comm_buf_size,
            sink,
            self.partitioner.clone(),
            self.shuffle_mode.unwrap_or(cfg.shuffle_mode),
            self.adapt_policy.unwrap_or(cfg.adapt),
        )?;
        let mut group = GroupStats::default();
        match compress {
            None => map(&mut shuffler)?,
            Some(cf) => {
                group = drive_compressed_map(
                    map,
                    cf,
                    pool,
                    kv_meta,
                    self.compress_flush_bytes,
                    gmode,
                    &mut shuffler,
                )?;
            }
        }
        drop(map_span);
        let agg_span = mimir_obs::phase_span(Phase::Aggregate);
        let (kvc, shuffle) = shuffler.finish()?;
        // The paper retains the global synchronization between the map
        // and reduce phases.
        let mut barrier_wait_ns = timed_barrier(comm);
        drop(agg_span);
        let map_time = t0.elapsed();
        let map_peak_bytes = pool.phase_peak();
        cancel_checkpoint(comm, cancel)?;

        // --- convert ---------------------------------------------------
        let t1 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let convert_span = mimir_obs::phase_span(Phase::Convert);
        let (kmvc, convert_group) = convert_with(kvc, pool, gmode)?;
        group.merge(&convert_group);
        drop(convert_span);
        let convert_time = t1.elapsed();
        let convert_peak_bytes = pool.phase_peak();
        cancel_checkpoint(comm, cancel)?;

        // --- reduce ----------------------------------------------------
        let t2 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let reduce_span = mimir_obs::phase_span(Phase::Reduce);
        let mut out = KvContainer::new(pool, out_meta);
        let unique_keys = kmvc.n_groups() as u64;
        {
            let mut emitter = OutEmitter {
                kvc: &mut out,
                count: 0,
            };
            kmvc.for_each_group(|k, vals| reduce(k, vals, &mut emitter))?;
        }
        drop(kmvc);
        barrier_wait_ns += timed_barrier(comm);
        drop(reduce_span);
        let reduce_time = t2.elapsed();
        let reduce_peak_bytes = pool.phase_peak();

        let kvs_out = out.len();
        let fingerprint = self.partitioner.fingerprint(comm.size());
        let output = stash_or_return(cache, pool, &self.output_cached, fingerprint, out);
        Ok(JobOutput {
            output,
            stats: JobStats {
                map_time,
                convert_time,
                reduce_time,
                shuffle,
                group,
                unique_keys,
                node_peak_bytes: pool.peak(),
                map_peak_bytes,
                convert_peak_bytes,
                reduce_peak_bytes,
                kvs_out,
                barrier_wait_ns,
            },
        })
    }

    fn run_partial(
        self,
        map: MapFn<'_>,
        compress: Option<CombineFn<'_>>,
        combine: CombineFn<'_>,
    ) -> Result<JobOutput> {
        ensure_not_chained(&self.input_cached)?;
        let out_meta = self.out_meta;
        let kv_meta = self.kv_meta;
        let MimirContext {
            comm,
            pool,
            cfg,
            cancel,
            cache,
            ..
        } = &mut *self.ctx;
        let gmode = self.grouping_mode.unwrap_or(cfg.grouping_mode);
        cancel_checkpoint(comm, cancel)?;

        let t0 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let map_span = mimir_obs::phase_span(Phase::Map);
        let sink = PartialReducer::with_mode(pool, kv_meta, combine, gmode)?;
        let mut shuffler = Shuffler::with_policy(
            comm,
            pool,
            kv_meta,
            cfg.comm_buf_size,
            sink,
            self.partitioner.clone(),
            self.shuffle_mode.unwrap_or(cfg.shuffle_mode),
            self.adapt_policy.unwrap_or(cfg.adapt),
        )?;
        let mut group = GroupStats::default();
        match compress {
            None => map(&mut shuffler)?,
            Some(cf) => {
                group = drive_compressed_map(
                    map,
                    cf,
                    pool,
                    kv_meta,
                    self.compress_flush_bytes,
                    gmode,
                    &mut shuffler,
                )?;
            }
        }
        drop(map_span);
        let agg_span = mimir_obs::phase_span(Phase::Aggregate);
        let (reducer, shuffle) = shuffler.finish()?;
        let mut barrier_wait_ns = timed_barrier(comm);
        drop(agg_span);
        let map_time = t0.elapsed();
        let map_peak_bytes = pool.phase_peak();
        cancel_checkpoint(comm, cancel)?;

        let t2 = Instant::now();
        pool.reset_phase_peak();
        note_live_mem(pool);
        let reduce_span = mimir_obs::phase_span(Phase::Reduce);
        let unique_keys = reducer.unique_keys() as u64;
        group.merge(&reducer.group_stats());
        let out = reducer.into_output(pool, out_meta)?;
        barrier_wait_ns += timed_barrier(comm);
        drop(reduce_span);
        let reduce_time = t2.elapsed();
        let reduce_peak_bytes = pool.phase_peak();

        let kvs_out = out.len();
        let fingerprint = self.partitioner.fingerprint(comm.size());
        let output = stash_or_return(cache, pool, &self.output_cached, fingerprint, out);
        Ok(JobOutput {
            output,
            stats: JobStats {
                map_time,
                convert_time: std::time::Duration::ZERO,
                reduce_time,
                shuffle,
                group,
                unique_keys,
                kvs_out,
                node_peak_bytes: pool.peak(),
                map_peak_bytes,
                reduce_peak_bytes,
                barrier_wait_ns,
                ..JobStats::default()
            },
        })
    }
}

/// Rejects [`MapReduceJob::input_cached`] on a non-chain run shape: the
/// classic shapes drive their own input and would silently ignore it.
fn ensure_not_chained(input: &Option<String>) -> Result<()> {
    match input {
        Some(name) => Err(MimirError::Cache(format!(
            "input_cached({name:?}) requires a chain_* run shape"
        ))),
        None => Ok(()),
    }
}

/// Requires the chain shapes' input name.
fn require_chain_input(input: &Option<String>) -> Result<String> {
    input.clone().ok_or_else(|| {
        MimirError::Cache("chain_* run shapes require input_cached(name)".to_string())
    })
}

/// Drives the chained map over the cached input and into `sink`: either
/// through the elided local path (per-emit ownership check, no exchange,
/// a `shuffle_elided` trace event) or through a real [`Shuffler`].
#[allow(clippy::too_many_arguments)]
fn feed_chain<S: KvSink>(
    comm: &mut mimir_mpi::Comm,
    pool: &mimir_mem::MemPool,
    comm_buf_size: usize,
    kv_meta: KvMeta,
    partitioner: &Partitioner,
    mode: ShuffleMode,
    policy: AdaptPolicy,
    input: &KvContainer,
    map: ChainMapFn<'_>,
    mut sink: S,
    elide: bool,
) -> Result<(S, ShuffleStats)> {
    if elide {
        let mut em = LocalEmitter {
            sink: &mut sink,
            partitioner,
            rank: comm.rank(),
            n_ranks: comm.size(),
            kvs: 0,
            bytes: 0,
        };
        for (k, v) in input.iter() {
            map(k, v, &mut em)?;
        }
        let (kvs, bytes) = (em.kvs, em.bytes);
        mimir_obs::emit(EventKind::ShuffleElided, kvs, bytes);
        Ok((sink, ShuffleStats::default()))
    } else {
        let mut shuffler = Shuffler::with_policy(
            comm,
            pool,
            kv_meta,
            comm_buf_size,
            sink,
            partitioner.clone(),
            mode,
            policy,
        )?;
        for (k, v) in input.iter() {
            map(k, v, &mut shuffler)?;
        }
        shuffler.finish()
    }
}

/// Returns a chained input to the cache — even when the map failed, so an
/// errored job does not lose the cached dataset — and credits an elision
/// on success.
fn finish_chain_input(cache: &SharedKvCache, name: &str, input: CheckedOut, elided: bool) {
    let mut c = lock_cache(cache);
    c.checkin(name, input);
    if elided {
        c.note_elision(name);
    }
}

/// Applies [`MapReduceJob::output_cached`]: moves the finished output
/// into the cache under the job's placement fingerprint and hands the
/// caller an empty container of the same encoding; without a name the
/// output passes through untouched.
fn stash_or_return(
    cache: &SharedKvCache,
    pool: &mimir_mem::MemPool,
    name: &Option<String>,
    fingerprint: PartitionFingerprint,
    out: KvContainer,
) -> KvContainer {
    match name {
        Some(n) => {
            let meta = out.meta();
            lock_cache(cache).insert(n, out, fingerprint);
            KvContainer::new(pool, meta)
        }
        None => out,
    }
}

/// Runs a barrier and returns the time this rank spent blocked in it, by
/// differencing the communicator's cumulative wait counter. Feeds
/// [`JobStats::barrier_wait_ns`]: the rank that waits *least* at a phase
/// barrier is the straggler everyone else waited for.
fn timed_barrier(comm: &mut mimir_mpi::Comm) -> u64 {
    let w0 = comm.stats().wait_ns;
    comm.barrier();
    comm.stats().wait_ns.saturating_sub(w0)
}

/// Collective cancellation checkpoint at a phase boundary: free when no
/// [`crate::CancelToken`] is installed; otherwise an `allreduce Max` vote
/// of the local flag on the job's communicator, so all ranks abandon the
/// job at the same boundary (see the `cancel` module docs).
fn cancel_checkpoint(
    comm: &mut mimir_mpi::Comm,
    cancel: &Option<crate::CancelToken>,
) -> Result<()> {
    if let Some(token) = cancel {
        let raised = comm.allreduce_u64(mimir_mpi::ReduceOp::Max, u64::from(token.is_cancelled()));
        if raised != 0 {
            return Err(crate::MimirError::Cancelled);
        }
    }
    Ok(())
}

/// Runs `map` through a compression table, flushing into `shuffler`
/// either once at the end (the paper's delayed aggregate) or whenever the
/// table exceeds `flush_bytes`. Returns the grouping engine's counters.
fn drive_compressed_map(
    map: MapFn<'_>,
    cf: CombineFn<'_>,
    pool: &mimir_mem::MemPool,
    meta: KvMeta,
    flush_bytes: Option<usize>,
    gmode: GroupingMode,
    shuffler: &mut dyn Emitter,
) -> Result<GroupStats> {
    let mut table = CombinerTable::with_mode(pool, meta, cf, gmode)?;
    match flush_bytes {
        None => {
            map(&mut table)?;
            table.flush_into(shuffler)?;
            Ok(table.group_stats())
        }
        Some(limit) => {
            let mut streaming = StreamingCombiner::new(table, shuffler, limit);
            map(&mut streaming)?;
            streaming.finish().map(|(_, stats)| stats)
        }
    }
}
