//! Job driver: wires map callbacks, the shuffle, the optional
//! optimizations, and the convert/reduce phases into the four run shapes
//! the paper's benchmarks need.
//!
//! | method | aggregate sink | grouping | used by |
//! |---|---|---|---|
//! | [`MapReduceJob::map_reduce`] | KVC | convert + reduce | WC/OC baseline |
//! | [`MapReduceJob::map_partial_reduce`] | fold bucket | (none) | WC/OC `pr` |
//! | [`MapReduceJob::map_shuffle`] | KVC | none (map-only) | BFS |
//!
//! Each shape has a `*_compress` variant that interposes the KV
//! compression table between the map and the shuffle.
//!
//! Per the paper, the global synchronization between map and reduce is
//! retained (a barrier after the shuffle completes); everything else is
//! implicit and interleaved.

use std::time::Instant;

use mimir_obs::Phase;

use crate::combiner::{CombineFn, CombinerTable, StreamingCombiner};
use crate::context::MimirContext;
use crate::convert::convert_with;
use crate::group::GroupStats;
use crate::kmvc::ValueIter;
use crate::partial::PartialReducer;
use crate::partitioner::Partitioner;
use crate::shuffle::{Emitter, Shuffler};
use crate::{AdaptPolicy, GroupingMode, JobStats, KvContainer, KvMeta, Result, ShuffleMode};

/// A configured-but-not-yet-run MapReduce job.
pub struct MapReduceJob<'c, 'w> {
    ctx: &'c mut MimirContext<'w>,
    kv_meta: KvMeta,
    out_meta: KvMeta,
    partitioner: Partitioner,
    compress_flush_bytes: Option<usize>,
    shuffle_mode: Option<ShuffleMode>,
    grouping_mode: Option<GroupingMode>,
    adapt_policy: Option<AdaptPolicy>,
}

/// A finished job: the output KVs this rank owns, plus metrics.
pub struct JobOutput {
    /// Output KVs (hash-partitioned across ranks by key for shuffled
    /// shapes; reduce output stays on the reducing rank).
    pub output: KvContainer,
    /// Per-rank metrics.
    pub stats: JobStats,
}

/// Emitter wrapper for reduce callbacks writing job output.
pub struct OutEmitter<'a> {
    kvc: &'a mut KvContainer,
    count: u64,
}

impl Emitter for OutEmitter<'_> {
    fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        self.count += 1;
        self.kvc.push(key, val)
    }
}

/// Map callback: drives this rank's share of the input, emitting
/// intermediate KVs.
pub type MapFn<'f> = &'f mut dyn FnMut(&mut dyn Emitter) -> Result<()>;

/// Reduce callback: one key with all its values; emits output KVs.
pub type ReduceFn<'f> = &'f mut dyn FnMut(&[u8], ValueIter<'_>, &mut dyn Emitter) -> Result<()>;

impl<'c, 'w> MapReduceJob<'c, 'w> {
    pub(crate) fn new(ctx: &'c mut MimirContext<'w>) -> Self {
        Self {
            ctx,
            kv_meta: KvMeta::var(),
            out_meta: KvMeta::var(),
            partitioner: Partitioner::hash(),
            compress_flush_bytes: None,
            shuffle_mode: None,
            grouping_mode: None,
            adapt_policy: None,
        }
    }

    /// Sets the intermediate KV encoding (the KV-hint optimization).
    #[must_use]
    pub fn kv_meta(mut self, meta: KvMeta) -> Self {
        self.kv_meta = meta;
        self
    }

    /// Sets the output KV encoding (defaults to un-hinted).
    #[must_use]
    pub fn out_meta(mut self, meta: KvMeta) -> Self {
        self.out_meta = meta;
        self
    }

    /// Installs a user key partitioner (default: hash). Must be
    /// deterministic and identical on every rank.
    #[must_use]
    pub fn partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Bounds the KV-compression table: when its footprint exceeds
    /// `bytes`, it flushes into the shuffle mid-map instead of delaying
    /// the whole aggregate until the map completes.
    ///
    /// This implements the improvement the paper defers to "a future
    /// version of Mimir" (Section III-C2 lists the delayed aggregate as
    /// an implementation shortcoming of KV compression): the compression
    /// memory becomes a tunable budget rather than scaling with the
    /// number of unique keys. Flushing early trades some compression
    /// ratio for bounded memory — duplicates arriving after a flush are
    /// re-sent rather than merged.
    #[must_use]
    pub fn compress_flush_bytes(mut self, bytes: usize) -> Self {
        self.compress_flush_bytes = Some(bytes);
        self
    }

    /// Overrides the context's [`ShuffleMode`] for this job. Collective:
    /// every rank must choose the same mode.
    #[must_use]
    pub fn shuffle_mode(mut self, mode: ShuffleMode) -> Self {
        self.shuffle_mode = Some(mode);
        self
    }

    /// Overrides the context's [`GroupingMode`] for this job (convert,
    /// combiner, and partial-reduction grouping engine). Local to the
    /// rank's data structures — not collective.
    #[must_use]
    pub fn grouping_mode(mut self, mode: GroupingMode) -> Self {
        self.grouping_mode = Some(mode);
        self
    }

    /// Overrides the context's [`AdaptPolicy`] for this job (only
    /// consulted when the effective shuffle mode is
    /// [`ShuffleMode::Adaptive`]). Collective: every rank must choose the
    /// same policy — the adaptive controller's ballots assume identical
    /// thresholds on all ranks.
    #[must_use]
    pub fn adapt_policy(mut self, policy: AdaptPolicy) -> Self {
        self.adapt_policy = Some(policy);
        self
    }

    /// Opt-in communication/compute overlap: shorthand for
    /// [`Self::shuffle_mode`] with [`ShuffleMode::Overlapped`] (or the
    /// default zero-copy blocking path when `false`).
    #[must_use]
    pub fn comm_overlap(self, on: bool) -> Self {
        self.shuffle_mode(if on {
            ShuffleMode::Overlapped
        } else {
            ShuffleMode::ZeroCopy
        })
    }

    /// The baseline workflow: map → (implicit aggregate) → convert →
    /// reduce.
    ///
    /// # Errors
    /// Memory exhaustion, hint violations, oversized KVs, or errors from
    /// the callbacks.
    pub fn map_reduce(self, map: MapFn<'_>, reduce: ReduceFn<'_>) -> Result<JobOutput> {
        self.run_grouped(map, None, reduce)
    }

    /// [`Self::map_reduce`] with map-side KV compression.
    pub fn map_reduce_compress(
        self,
        map: MapFn<'_>,
        compress: CombineFn<'_>,
        reduce: ReduceFn<'_>,
    ) -> Result<JobOutput> {
        self.run_grouped(map, Some(compress), reduce)
    }

    /// Partial reduction: map → (implicit aggregate) → fold. Replaces
    /// convert+reduce; requires `combine` to be commutative and
    /// associative.
    pub fn map_partial_reduce(self, map: MapFn<'_>, combine: CombineFn<'_>) -> Result<JobOutput> {
        self.run_partial(map, None, combine)
    }

    /// [`Self::map_partial_reduce`] with map-side KV compression too.
    pub fn map_partial_reduce_compress(
        self,
        map: MapFn<'_>,
        compress: CombineFn<'_>,
        combine: CombineFn<'_>,
    ) -> Result<JobOutput> {
        self.run_partial(map, Some(compress), combine)
    }

    /// Map-only with shuffle: emitted KVs are hash-partitioned to their
    /// owner ranks and returned ungrouped (the BFS traversal shape).
    pub fn map_shuffle(self, map: MapFn<'_>) -> Result<JobOutput> {
        let MimirContext {
            comm,
            pool,
            cfg,
            cancel,
            ..
        } = &mut *self.ctx;
        cancel_checkpoint(comm, cancel)?;
        let t0 = Instant::now();
        pool.reset_phase_peak();
        let map_span = mimir_obs::phase_span(Phase::Map);
        let sink = KvContainer::new(pool, self.kv_meta);
        let mut shuffler = Shuffler::with_policy(
            comm,
            pool,
            self.kv_meta,
            cfg.comm_buf_size,
            sink,
            self.partitioner.clone(),
            self.shuffle_mode.unwrap_or(cfg.shuffle_mode),
            self.adapt_policy.unwrap_or(cfg.adapt),
        )?;
        map(&mut shuffler)?;
        drop(map_span);
        let agg_span = mimir_obs::phase_span(Phase::Aggregate);
        let (kvc, shuffle) = shuffler.finish()?;
        let barrier_wait_ns = timed_barrier(comm);
        drop(agg_span);
        let kvs_out = kvc.len();
        Ok(JobOutput {
            output: kvc,
            stats: JobStats {
                map_time: t0.elapsed(),
                shuffle,
                kvs_out,
                node_peak_bytes: pool.peak(),
                map_peak_bytes: pool.phase_peak(),
                barrier_wait_ns,
                ..JobStats::default()
            },
        })
    }

    /// [`Self::map_shuffle`] with map-side KV compression.
    pub fn map_shuffle_compress(
        self,
        map: MapFn<'_>,
        compress: CombineFn<'_>,
    ) -> Result<JobOutput> {
        let MimirContext {
            comm,
            pool,
            cfg,
            cancel,
            ..
        } = &mut *self.ctx;
        cancel_checkpoint(comm, cancel)?;
        let t0 = Instant::now();
        pool.reset_phase_peak();
        let map_span = mimir_obs::phase_span(Phase::Map);
        let sink = KvContainer::new(pool, self.kv_meta);
        let mut shuffler = Shuffler::with_policy(
            comm,
            pool,
            self.kv_meta,
            cfg.comm_buf_size,
            sink,
            self.partitioner.clone(),
            self.shuffle_mode.unwrap_or(cfg.shuffle_mode),
            self.adapt_policy.unwrap_or(cfg.adapt),
        )?;
        let group = drive_compressed_map(
            map,
            compress,
            pool,
            self.kv_meta,
            self.compress_flush_bytes,
            self.grouping_mode.unwrap_or(cfg.grouping_mode),
            &mut shuffler,
        )?;
        drop(map_span);
        let agg_span = mimir_obs::phase_span(Phase::Aggregate);
        let (kvc, shuffle) = shuffler.finish()?;
        let barrier_wait_ns = timed_barrier(comm);
        drop(agg_span);
        let kvs_out = kvc.len();
        Ok(JobOutput {
            output: kvc,
            stats: JobStats {
                map_time: t0.elapsed(),
                shuffle,
                group,
                kvs_out,
                node_peak_bytes: pool.peak(),
                map_peak_bytes: pool.phase_peak(),
                barrier_wait_ns,
                ..JobStats::default()
            },
        })
    }

    fn run_grouped(
        self,
        map: MapFn<'_>,
        compress: Option<CombineFn<'_>>,
        reduce: ReduceFn<'_>,
    ) -> Result<JobOutput> {
        let out_meta = self.out_meta;
        let kv_meta = self.kv_meta;
        let MimirContext {
            comm,
            pool,
            cfg,
            cancel,
            ..
        } = &mut *self.ctx;
        let gmode = self.grouping_mode.unwrap_or(cfg.grouping_mode);
        cancel_checkpoint(comm, cancel)?;

        // --- map + implicit aggregate --------------------------------
        let t0 = Instant::now();
        pool.reset_phase_peak();
        let map_span = mimir_obs::phase_span(Phase::Map);
        let sink = KvContainer::new(pool, kv_meta);
        let mut shuffler = Shuffler::with_policy(
            comm,
            pool,
            kv_meta,
            cfg.comm_buf_size,
            sink,
            self.partitioner.clone(),
            self.shuffle_mode.unwrap_or(cfg.shuffle_mode),
            self.adapt_policy.unwrap_or(cfg.adapt),
        )?;
        let mut group = GroupStats::default();
        match compress {
            None => map(&mut shuffler)?,
            Some(cf) => {
                group = drive_compressed_map(
                    map,
                    cf,
                    pool,
                    kv_meta,
                    self.compress_flush_bytes,
                    gmode,
                    &mut shuffler,
                )?;
            }
        }
        drop(map_span);
        let agg_span = mimir_obs::phase_span(Phase::Aggregate);
        let (kvc, shuffle) = shuffler.finish()?;
        // The paper retains the global synchronization between the map
        // and reduce phases.
        let mut barrier_wait_ns = timed_barrier(comm);
        drop(agg_span);
        let map_time = t0.elapsed();
        let map_peak_bytes = pool.phase_peak();
        cancel_checkpoint(comm, cancel)?;

        // --- convert ---------------------------------------------------
        let t1 = Instant::now();
        pool.reset_phase_peak();
        let convert_span = mimir_obs::phase_span(Phase::Convert);
        let (kmvc, convert_group) = convert_with(kvc, pool, gmode)?;
        group.merge(&convert_group);
        drop(convert_span);
        let convert_time = t1.elapsed();
        let convert_peak_bytes = pool.phase_peak();
        cancel_checkpoint(comm, cancel)?;

        // --- reduce ----------------------------------------------------
        let t2 = Instant::now();
        pool.reset_phase_peak();
        let reduce_span = mimir_obs::phase_span(Phase::Reduce);
        let mut out = KvContainer::new(pool, out_meta);
        let unique_keys = kmvc.n_groups() as u64;
        {
            let mut emitter = OutEmitter {
                kvc: &mut out,
                count: 0,
            };
            kmvc.for_each_group(|k, vals| reduce(k, vals, &mut emitter))?;
        }
        drop(kmvc);
        barrier_wait_ns += timed_barrier(comm);
        drop(reduce_span);
        let reduce_time = t2.elapsed();
        let reduce_peak_bytes = pool.phase_peak();

        let kvs_out = out.len();
        Ok(JobOutput {
            output: out,
            stats: JobStats {
                map_time,
                convert_time,
                reduce_time,
                shuffle,
                group,
                unique_keys,
                node_peak_bytes: pool.peak(),
                map_peak_bytes,
                convert_peak_bytes,
                reduce_peak_bytes,
                kvs_out,
                barrier_wait_ns,
            },
        })
    }

    fn run_partial(
        self,
        map: MapFn<'_>,
        compress: Option<CombineFn<'_>>,
        combine: CombineFn<'_>,
    ) -> Result<JobOutput> {
        let out_meta = self.out_meta;
        let kv_meta = self.kv_meta;
        let MimirContext {
            comm,
            pool,
            cfg,
            cancel,
            ..
        } = &mut *self.ctx;
        let gmode = self.grouping_mode.unwrap_or(cfg.grouping_mode);
        cancel_checkpoint(comm, cancel)?;

        let t0 = Instant::now();
        pool.reset_phase_peak();
        let map_span = mimir_obs::phase_span(Phase::Map);
        let sink = PartialReducer::with_mode(pool, kv_meta, combine, gmode)?;
        let mut shuffler = Shuffler::with_policy(
            comm,
            pool,
            kv_meta,
            cfg.comm_buf_size,
            sink,
            self.partitioner.clone(),
            self.shuffle_mode.unwrap_or(cfg.shuffle_mode),
            self.adapt_policy.unwrap_or(cfg.adapt),
        )?;
        let mut group = GroupStats::default();
        match compress {
            None => map(&mut shuffler)?,
            Some(cf) => {
                group = drive_compressed_map(
                    map,
                    cf,
                    pool,
                    kv_meta,
                    self.compress_flush_bytes,
                    gmode,
                    &mut shuffler,
                )?;
            }
        }
        drop(map_span);
        let agg_span = mimir_obs::phase_span(Phase::Aggregate);
        let (reducer, shuffle) = shuffler.finish()?;
        let mut barrier_wait_ns = timed_barrier(comm);
        drop(agg_span);
        let map_time = t0.elapsed();
        let map_peak_bytes = pool.phase_peak();
        cancel_checkpoint(comm, cancel)?;

        let t2 = Instant::now();
        pool.reset_phase_peak();
        let reduce_span = mimir_obs::phase_span(Phase::Reduce);
        let unique_keys = reducer.unique_keys() as u64;
        group.merge(&reducer.group_stats());
        let out = reducer.into_output(pool, out_meta)?;
        barrier_wait_ns += timed_barrier(comm);
        drop(reduce_span);
        let reduce_time = t2.elapsed();
        let reduce_peak_bytes = pool.phase_peak();

        let kvs_out = out.len();
        Ok(JobOutput {
            output: out,
            stats: JobStats {
                map_time,
                convert_time: std::time::Duration::ZERO,
                reduce_time,
                shuffle,
                group,
                unique_keys,
                kvs_out,
                node_peak_bytes: pool.peak(),
                map_peak_bytes,
                reduce_peak_bytes,
                barrier_wait_ns,
                ..JobStats::default()
            },
        })
    }
}

/// Runs a barrier and returns the time this rank spent blocked in it, by
/// differencing the communicator's cumulative wait counter. Feeds
/// [`JobStats::barrier_wait_ns`]: the rank that waits *least* at a phase
/// barrier is the straggler everyone else waited for.
fn timed_barrier(comm: &mut mimir_mpi::Comm) -> u64 {
    let w0 = comm.stats().wait_ns;
    comm.barrier();
    comm.stats().wait_ns.saturating_sub(w0)
}

/// Collective cancellation checkpoint at a phase boundary: free when no
/// [`crate::CancelToken`] is installed; otherwise an `allreduce Max` vote
/// of the local flag on the job's communicator, so all ranks abandon the
/// job at the same boundary (see the `cancel` module docs).
fn cancel_checkpoint(
    comm: &mut mimir_mpi::Comm,
    cancel: &Option<crate::CancelToken>,
) -> Result<()> {
    if let Some(token) = cancel {
        let raised = comm.allreduce_u64(mimir_mpi::ReduceOp::Max, u64::from(token.is_cancelled()));
        if raised != 0 {
            return Err(crate::MimirError::Cancelled);
        }
    }
    Ok(())
}

/// Runs `map` through a compression table, flushing into `shuffler`
/// either once at the end (the paper's delayed aggregate) or whenever the
/// table exceeds `flush_bytes`. Returns the grouping engine's counters.
fn drive_compressed_map(
    map: MapFn<'_>,
    cf: CombineFn<'_>,
    pool: &mimir_mem::MemPool,
    meta: KvMeta,
    flush_bytes: Option<usize>,
    gmode: GroupingMode,
    shuffler: &mut dyn Emitter,
) -> Result<GroupStats> {
    let mut table = CombinerTable::with_mode(pool, meta, cf, gmode)?;
    match flush_bytes {
        None => {
            map(&mut table)?;
            table.flush_into(shuffler)?;
            Ok(table.group_stats())
        }
        Some(limit) => {
            let mut streaming = StreamingCombiner::new(table, shuffler, limit);
            map(&mut streaming)?;
            streaming.finish().map(|(_, stats)| stats)
        }
    }
}
