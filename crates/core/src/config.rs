use mimir_mpi::TransportKind;

use crate::{MimirError, Result};

/// Length encoding of one side (key or value) of a KV — the paper's
/// **KV-hint** optimization (Section III-C3).
///
/// By default keys and values are variable-length byte strings and every
/// KV carries an 8-byte header of two `u32` lengths. A hint tells Mimir
/// the length is implied, and the header (or half of it) is dropped both
/// in the containers and on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LenHint {
    /// Variable length, stored as a `u32` prefix (the default).
    Var,
    /// Every instance has exactly this many bytes; nothing stored.
    Fixed(usize),
    /// NUL-terminated string: one terminator byte stored, no length (the
    /// paper's reserved `-1` hint; the length is recomputed with
    /// `strlen`). Only meaningful for keys and values that contain no
    /// interior NUL.
    CStr,
}

impl LenHint {
    /// Bytes of per-item overhead this encoding adds.
    pub(crate) fn overhead(self) -> usize {
        match self {
            LenHint::Var => 4,
            LenHint::Fixed(_) => 0,
            LenHint::CStr => 1,
        }
    }
}

/// The KV encoding of a dataset: one hint for the key, one for the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvMeta {
    /// Key encoding.
    pub key: LenHint,
    /// Value encoding.
    pub val: LenHint,
}

impl KvMeta {
    /// The un-hinted default: `u32` length prefixes on both sides — the
    /// paper's "eight-byte header (two integers)".
    pub fn var() -> Self {
        Self {
            key: LenHint::Var,
            val: LenHint::Var,
        }
    }

    /// Convenience: NUL-terminated string key with a fixed 8-byte value —
    /// the WordCount hint from the paper ("the key … is usually a string
    /// with variable length, but the value is always a 64-bit integer").
    pub fn cstr_key_u64_val() -> Self {
        Self {
            key: LenHint::CStr,
            val: LenHint::Fixed(8),
        }
    }

    /// Convenience: fixed-size key and value (graph workloads: "vertices
    /// and edges are always 64-bit and 128-bit integers").
    pub fn fixed(key: usize, val: usize) -> Self {
        Self {
            key: LenHint::Fixed(key),
            val: LenHint::Fixed(val),
        }
    }
}

impl Default for KvMeta {
    fn default() -> Self {
        Self::var()
    }
}

/// How the shuffle moves partitions through the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShuffleMode {
    /// The original data path: each partition is copied into a fresh
    /// `Vec` per round and received KVs are re-inserted one at a time.
    /// Kept as the ablation baseline.
    Legacy,
    /// Sends straight from send-buffer partition slices through pooled
    /// transport buffers, receives into the static receive buffer, and
    /// drains received runs with page-wise memcpy. Steady-state rounds
    /// are allocation-free.
    #[default]
    ZeroCopy,
    /// [`ShuffleMode::ZeroCopy`] plus communication/compute overlap: the
    /// round's sends are posted nonblocking *before* the done-allreduce,
    /// hiding the synchronization latency behind the copy-out.
    Overlapped,
    /// Live self-tuning: each round's done-vote is replaced by a packed
    /// ballot (one `Sum`-allreduce, zero extra collectives) carrying the
    /// ranks' wait-ratio votes. The controller picks ZeroCopy vs
    /// Overlapped posting and grows/shrinks the effective round size
    /// with hysteresis ([`AdaptPolicy`]), and diverts hot destinations
    /// through a two-stage combine/salted-spread/merge path when a
    /// per-destination histogram trips 2× fair share mid-job.
    Adaptive,
}

/// Trip points and hysteresis constants for [`ShuffleMode::Adaptive`].
///
/// The controller classifies each round from the split the shuffler
/// already measures: `r = data_wait / (sync_wait + data_wait)`.
/// `r < sync_bound_permille/1000` means the round was dominated by the
/// done-vote (straggler-bound) — overlapped posting and bigger rounds
/// amortize it; `r > data_bound_permille/1000` means the round was
/// dominated by byte movement — vote-first zero-copy lets peers drain
/// other senders while a straggler copies out, and smaller rounds smooth
/// the pipeline. Decisions apply only after `hysteresis_rounds`
/// consecutive agreeing ballots and are followed by `cooldown_rounds` of
/// no changes, so the controller converges within ~8 rounds and never
/// flaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptPolicy {
    /// Wait ratio (permille of data wait in total wait) below which a
    /// round votes "sync-bound": prefer overlapped posting + grow.
    pub sync_bound_permille: u64,
    /// Wait ratio above which a round votes "data-bound": prefer
    /// vote-first zero-copy + shrink.
    pub data_bound_permille: u64,
    /// Consecutive agreeing ballots required before a decision applies.
    pub hysteresis_rounds: u32,
    /// Rounds after a decision during which no further decision applies.
    pub cooldown_rounds: u32,
    /// Rounds whose total measured wait is below this carry no mode/size
    /// vote: there is no signal to act on.
    pub min_signal_ns: u64,
    /// Effective round size floor, as permille of the partition
    /// capacity. The grower also never drops the effective capacity
    /// below the largest KV seen (the jumbo floor), so shrinking can
    /// never livelock the round loop.
    pub min_fill_permille: u64,
    /// Grow/shrink step, in permille of the partition capacity.
    pub fill_step_permille: u64,
    /// Cumulative per-destination share (permille of fair share) at
    /// which a destination is declared hot and its traffic diverted
    /// through the two-stage path. 2000 = 2× fair share, matching the
    /// doctor's skew warning trip point.
    pub hot_trip_permille: u64,
    /// Rounds of histogram evidence required before the hot trip may
    /// fire (early rounds are noise).
    pub hot_min_rounds: u64,
    /// Cap on bytes interned in the local hot stage; 0 means "use the
    /// comm buffer size". Once full, already-staged KVs still collapse
    /// (a count bump costs no memory) but new distinct KVs ship
    /// directly.
    pub hot_stage_bytes: usize,
    /// Master switch for mode/round-size tuning.
    pub mode_tuning: bool,
    /// Master switch for hot-key mitigation.
    pub hot_mitigation: bool,
}

impl Default for AdaptPolicy {
    fn default() -> Self {
        Self {
            sync_bound_permille: 250,
            data_bound_permille: 750,
            hysteresis_rounds: 3,
            cooldown_rounds: 4,
            min_signal_ns: 10_000,
            min_fill_permille: 250,
            fill_step_permille: 250,
            hot_trip_permille: 2000,
            hot_min_rounds: 1,
            hot_stage_bytes: 0,
            mode_tuning: true,
            hot_mitigation: true,
        }
    }
}

/// How convert, the combiner, and partial reduction group keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupingMode {
    /// The original `HashMap<Vec<u8>, …>` path: one heap allocation and
    /// a key copy per unique key, re-hash + re-lookup per KV in convert
    /// pass 2. Kept as the ablation baseline.
    Legacy,
    /// The [`crate::GroupIndex`] engine: open-addressing slot table,
    /// keys interned into pool-page arenas, each key hashed exactly once
    /// per KV, convert pass 2 streams by recorded group id.
    #[default]
    Arena,
}

/// Framework configuration shared by every job on a context.
#[derive(Debug, Clone, Copy)]
pub struct MimirConfig {
    /// Size in bytes of the communication send buffer (the receive buffer
    /// is the same size, per paper Section III-B). The send buffer is
    /// split into `size()` equal partitions.
    pub comm_buf_size: usize,
    /// Shuffle data-path variant (default [`ShuffleMode::ZeroCopy`]).
    pub shuffle_mode: ShuffleMode,
    /// Grouping-engine variant (default [`GroupingMode::Arena`]).
    pub grouping_mode: GroupingMode,
    /// Adaptive-shuffle policy, consulted only under
    /// [`ShuffleMode::Adaptive`].
    pub adapt: AdaptPolicy,
    /// Which transport backs the ranks: in-process channel threads (the
    /// default) or forked processes over Unix-domain sockets. Consulted
    /// by harnesses that build the world from a config; everything above
    /// the `Comm` API is backend-agnostic. Defaults to
    /// [`TransportKind::from_env`] (`MIMIR_TRANSPORT={inproc,uds}`).
    pub transport: TransportKind,
}

impl Default for MimirConfig {
    /// 64 KiB, the scaled equivalent of the paper's 64 MB default.
    fn default() -> Self {
        Self {
            comm_buf_size: 64 * 1024,
            shuffle_mode: ShuffleMode::default(),
            grouping_mode: GroupingMode::default(),
            adapt: AdaptPolicy::default(),
            transport: TransportKind::from_env(),
        }
    }
}

impl MimirConfig {
    pub(crate) fn validate(&self, n_ranks: usize) -> Result<()> {
        if self.comm_buf_size / n_ranks.max(1) < 16 {
            return Err(MimirError::Config(format!(
                "comm buffer of {} B split across {n_ranks} ranks leaves partitions under 16 B",
                self.comm_buf_size
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_overheads_match_paper() {
        // Default: 8-byte header.
        let m = KvMeta::var();
        assert_eq!(m.key.overhead() + m.val.overhead(), 8);
        // WordCount hint: 1-byte NUL, no value header.
        let m = KvMeta::cstr_key_u64_val();
        assert_eq!(m.key.overhead() + m.val.overhead(), 1);
        // Graph hint: nothing at all.
        let m = KvMeta::fixed(8, 16);
        assert_eq!(m.key.overhead() + m.val.overhead(), 0);
    }

    #[test]
    fn tiny_partitions_rejected() {
        let cfg = MimirConfig {
            comm_buf_size: 64,
            ..MimirConfig::default()
        };
        assert!(cfg.validate(8).is_err());
        assert!(cfg.validate(4).is_ok());
    }
}
