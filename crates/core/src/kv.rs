//! Byte-level KV encoding.
//!
//! The default layout is the paper's: an 8-byte header of two `u32`
//! lengths followed by the key and value bytes. The KV-hint optimization
//! drops header halves: a `Fixed(n)` side stores just the payload, a
//! `CStr` side stores the payload plus one NUL terminator. Every buffer in
//! the framework — container pages, send-buffer partitions, the wire —
//! carries this encoding, so a hint shrinks storage *and* communication,
//! as the paper observes.

use crate::{KvMeta, LenHint, MimirError, Result};

/// Checks `bytes` against a hint.
///
/// # Errors
/// [`MimirError::HintViolation`] if a `Fixed` length mismatches or a
/// `CStr` payload contains an interior NUL.
#[inline]
pub(crate) fn validate(hint: LenHint, bytes: &[u8], what: &str) -> Result<()> {
    match hint {
        LenHint::Var => Ok(()),
        LenHint::Fixed(n) if bytes.len() == n => Ok(()),
        LenHint::Fixed(n) => Err(MimirError::HintViolation(format!(
            "{what} of {} B under Fixed({n}) hint",
            bytes.len()
        ))),
        LenHint::CStr if !bytes.contains(&0) => Ok(()),
        LenHint::CStr => Err(MimirError::HintViolation(format!(
            "{what} contains an interior NUL under the CStr hint"
        ))),
    }
}

#[inline]
fn side_len(hint: LenHint, bytes: &[u8]) -> usize {
    hint.overhead() + bytes.len()
}

/// Encoded size of one KV under `meta` (assumes hints validated).
#[inline]
pub fn encoded_len(meta: KvMeta, key: &[u8], val: &[u8]) -> usize {
    side_len(meta.key, key) + side_len(meta.val, val)
}

#[inline]
fn push_side(hint: LenHint, bytes: &[u8], out: &mut Vec<u8>) {
    match hint {
        LenHint::Var => {
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        LenHint::Fixed(_) => out.extend_from_slice(bytes),
        LenHint::CStr => {
            out.extend_from_slice(bytes);
            out.push(0);
        }
    }
}

/// Appends the encoding of `(key, val)` to `out` (assumes hints were
/// already validated at the emit boundary).
#[inline]
pub fn encode_push(meta: KvMeta, key: &[u8], val: &[u8], out: &mut Vec<u8>) {
    push_side(meta.key, key, out);
    push_side(meta.val, val, out);
}

#[inline]
pub(crate) fn write_side(hint: LenHint, bytes: &[u8], out: &mut [u8], off: usize) -> usize {
    match hint {
        LenHint::Var => {
            out[off..off + 4].copy_from_slice(&(bytes.len() as u32).to_le_bytes());
            out[off + 4..off + 4 + bytes.len()].copy_from_slice(bytes);
            off + 4 + bytes.len()
        }
        LenHint::Fixed(_) => {
            out[off..off + bytes.len()].copy_from_slice(bytes);
            off + bytes.len()
        }
        LenHint::CStr => {
            out[off..off + bytes.len()].copy_from_slice(bytes);
            out[off + bytes.len()] = 0;
            off + bytes.len() + 1
        }
    }
}

/// Encodes `(key, val)` into the front of `out` (which must be at least
/// [`encoded_len`] bytes), returning the bytes written. Allocation-free
/// counterpart of [`encode_push`] for writing straight into pages.
#[inline]
pub(crate) fn encode_into(meta: KvMeta, key: &[u8], val: &[u8], out: &mut [u8]) -> usize {
    let off = write_side(meta.key, key, out, 0);
    write_side(meta.val, val, out, off)
}

#[inline]
pub(crate) fn decode_side(
    hint: LenHint,
    buf: &[u8],
    off: usize,
) -> (std::ops::Range<usize>, usize) {
    match hint {
        LenHint::Var => {
            let len = u32::from_le_bytes(buf[off..off + 4].try_into().expect("u32 length prefix"))
                as usize;
            (off + 4..off + 4 + len, off + 4 + len)
        }
        LenHint::Fixed(n) => (off..off + n, off + n),
        LenHint::CStr => {
            let nul = buf[off..]
                .iter()
                .position(|&b| b == 0)
                .expect("NUL terminator in CStr-encoded buffer");
            (off..off + nul, off + nul + 1)
        }
    }
}

/// A decoded `(key, value)` pair borrowed from an encoded buffer.
pub type KvRef<'a> = (&'a [u8], &'a [u8]);

/// Decodes the KV starting at the beginning of `buf`, returning
/// `((key, val), bytes_consumed)`, or `None` if `buf` is empty.
///
/// # Panics
/// Panics on a truncated or malformed buffer — encoded buffers are
/// framework-internal, so that is a bug, not an input error.
#[inline]
pub fn decode_one(meta: KvMeta, buf: &[u8]) -> Option<(KvRef<'_>, usize)> {
    if buf.is_empty() {
        return None;
    }
    let (krange, koff) = decode_side(meta.key, buf, 0);
    let (vrange, voff) = decode_side(meta.val, buf, koff);
    Some(((&buf[krange], &buf[vrange]), voff))
}

/// Iterator over the KVs of an encoded buffer.
pub struct KvDecoder<'a> {
    meta: KvMeta,
    buf: &'a [u8],
}

impl<'a> KvDecoder<'a> {
    /// Decodes `buf`, which must hold zero or more whole KVs under `meta`.
    pub fn new(meta: KvMeta, buf: &'a [u8]) -> Self {
        Self { meta, buf }
    }
}

impl<'a> Iterator for KvDecoder<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        let ((k, v), used) = decode_one(self.meta, self.buf)?;
        self.buf = &self.buf[used..];
        Some((k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(meta: KvMeta, kvs: &[(&[u8], &[u8])]) {
        let mut buf = Vec::new();
        for (k, v) in kvs {
            validate(meta.key, k, "key").unwrap();
            validate(meta.val, v, "value").unwrap();
            encode_push(meta, k, v, &mut buf);
        }
        let decoded: Vec<(Vec<u8>, Vec<u8>)> = KvDecoder::new(meta, &buf)
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            kvs.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        assert_eq!(decoded, expected, "meta {meta:?}");
        assert_eq!(
            buf.len(),
            kvs.iter()
                .map(|(k, v)| encoded_len(meta, k, v))
                .sum::<usize>()
        );
    }

    #[test]
    fn var_var_roundtrip() {
        roundtrip(
            KvMeta::var(),
            &[(b"hello", b"world"), (b"", b""), (b"k", b"vvvvvvvvvv")],
        );
    }

    #[test]
    fn wordcount_hint_roundtrip() {
        roundtrip(
            KvMeta::cstr_key_u64_val(),
            &[
                (b"the", &7u64.to_le_bytes()),
                (b"supercalifragilistic", &1u64.to_le_bytes()),
            ],
        );
    }

    #[test]
    fn fixed_fixed_roundtrip() {
        roundtrip(
            KvMeta::fixed(8, 16),
            &[(&[1u8; 8], &[2u8; 16]), (&[3u8; 8], &[4u8; 16])],
        );
    }

    #[test]
    fn mixed_hints_roundtrip() {
        let meta = KvMeta {
            key: LenHint::Var,
            val: LenHint::CStr,
        };
        roundtrip(meta, &[(b"anything\0here", b"no nuls")]);
    }

    #[test]
    fn hint_savings_match_paper_arithmetic() {
        // The paper's Figure 7 case: variable word key, u64 value.
        let word = b"wikipedia";
        let val = 42u64.to_le_bytes();
        let plain = encoded_len(KvMeta::var(), word, &val);
        let hinted = encoded_len(KvMeta::cstr_key_u64_val(), word, &val);
        assert_eq!(plain, 8 + 9 + 8);
        assert_eq!(hinted, 9 + 1 + 8);
        assert_eq!(plain - hinted, 7); // 8-byte header → 1-byte NUL
    }

    #[test]
    fn fixed_hint_violations_are_rejected() {
        assert!(validate(LenHint::Fixed(8), b"short", "key").is_err());
        assert!(validate(LenHint::Fixed(5), b"exact", "key").is_ok());
    }

    #[test]
    fn cstr_hint_rejects_interior_nul() {
        assert!(validate(LenHint::CStr, b"a\0b", "key").is_err());
        assert!(validate(LenHint::CStr, b"ab", "key").is_ok());
        assert!(validate(LenHint::CStr, b"", "key").is_ok());
    }

    #[test]
    fn decoder_on_empty_buffer_yields_nothing() {
        assert_eq!(KvDecoder::new(KvMeta::var(), b"").count(), 0);
    }
}
