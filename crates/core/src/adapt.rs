//! The adaptive shuffle runtime behind [`crate::ShuffleMode::Adaptive`]:
//! a per-job controller that folds the shuffler's existing round
//! counters into two live decisions.
//!
//! **Self-tuning exchange.** Every round the shuffler already splits its
//! blocked time into `sync_wait_ns` (the done-vote: straggler-bound) and
//! `data_wait_ns` (partition receives: byte-bound). The controller turns
//! the previous round's split into a vote — sync-bound rounds prefer
//! overlapped posting and bigger rounds, byte-bound rounds prefer
//! vote-first zero-copy and smaller rounds — and piggybacks it on the
//! round's done-allreduce as a packed ballot
//! ([`mimir_mpi::BallotVote`], one `Sum`-allreduce, zero extra
//! collectives). Every rank unpacks the identical tally and runs the
//! same deterministic [`AdaptController::apply`], so the world flips
//! mode or round size in lockstep. Hysteresis (a decision needs
//! [`crate::AdaptPolicy::hysteresis_rounds`] consecutive majority
//! ballots and is followed by `cooldown_rounds` of quiet) makes the
//! controller converge in a handful of rounds and never flap.
//!
//! **Hot-key mitigation.** When the cumulative per-destination byte
//! histogram shows one destination holding more than
//! `hot_trip_permille` of its fair share, further traffic towards it is
//! *staged* instead of sent: the encoded KV bytes intern into a
//! [`HotStore`] (a [`GroupIndex`] keyed on the full encoding) and exact
//! duplicates collapse into a count. At job end the stage flushes in
//! two short exchanges: a *salted spread* scatters `(kv, count)` frames
//! across all ranks by a salted hash (independent of the real
//! partitioner, so even a point-mass partitioner spreads), relays merge
//! counts of identical KVs arriving from different senders, and a
//! *merge exchange* forwards each surviving frame to its true owner,
//! which expands the count into the sink. Counts form a commutative
//! monoid, so the delivered multiset is exactly what direct sending
//! would have produced — the path is a pure optimization for
//! duplicate-heavy skew and degenerates to forwarding on unique values.

use mimir_mem::MemPool;
use mimir_mpi::{BallotTally, BallotVote};
use mimir_obs::EventKind;

use crate::config::AdaptPolicy;
use crate::group::GroupIndex;
use crate::hash::fast_range;
use crate::Result;

/// Decision codes carried in [`EventKind::AdaptDecision`] events
/// (`a` = code, `b` = operand).
pub mod decision {
    /// Switched to overlapped posting; operand = round index.
    pub const MODE_OVERLAPPED: u64 = 1;
    /// Switched to vote-first zero-copy posting; operand = round index.
    pub const MODE_ZEROCOPY: u64 = 2;
    /// Grew the effective round size; operand = new fill permille.
    pub const GROW: u64 = 3;
    /// Shrank the effective round size; operand = new fill permille.
    pub const SHRINK: u64 = 4;
    /// Declared a destination hot; operand = destination rank.
    pub const HOT_TRIP: u64 = 5;
    /// Started the salted spread; operand = staged unique KVs.
    pub const SALTED_FLUSH: u64 = 6;
    /// Started the owner merge; operand = relayed unique KVs.
    pub const MERGE_FLUSH: u64 = 7;
    /// The jumbo floor overrode a shrunken round size; operand = the
    /// largest KV seen.
    pub const JUMBO_FLOOR: u64 = 8;
}

/// Counters describing what the adaptive controller did during one
/// shuffle. All zero outside [`crate::ShuffleMode::Adaptive`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptStats {
    /// Exchange-mode switches applied (zero-copy ↔ overlapped posting).
    pub mode_switches: u64,
    /// Effective round-size grow steps applied.
    pub grow_steps: u64,
    /// Effective round-size shrink steps applied.
    pub shrink_steps: u64,
    /// Effective fill target at job end, permille of partition capacity.
    pub final_fill_permille: u64,
    /// 1 when the job finished with overlapped posting.
    pub final_overlap: u64,
    /// Round index of the last applied tuning change (0 = never tuned).
    pub converged_round: u64,
    /// Destinations declared hot and diverted through the staged path.
    pub hot_trips: u64,
    /// KVs absorbed into the hot stage (count bumps included).
    pub hot_staged_kvs: u64,
    /// Encoded bytes those staged KVs would have sent directly.
    pub hot_staged_bytes: u64,
    /// Distinct KVs the hot stage ended up holding.
    pub hot_unique_kvs: u64,
    /// Encoded bytes that bypassed a full stage and shipped directly.
    pub hot_forward_bytes: u64,
    /// Exchange rounds spent in the salted spread phase.
    pub salted_rounds: u64,
    /// Exchange rounds spent in the owner-merge phase.
    pub merge_rounds: u64,
    /// Times the jumbo floor overrode a shrunken fill target.
    pub jumbo_floor_hits: u64,
}

impl AdaptStats {
    /// Folds another rank's counters in: decisions and traffic sum; the
    /// convergence descriptors take the max (ranks decide from identical
    /// tallies, so max is the identity across participating ranks).
    pub fn merge(&mut self, other: &AdaptStats) {
        self.mode_switches += other.mode_switches;
        self.grow_steps += other.grow_steps;
        self.shrink_steps += other.shrink_steps;
        self.final_fill_permille = self.final_fill_permille.max(other.final_fill_permille);
        self.final_overlap = self.final_overlap.max(other.final_overlap);
        self.converged_round = self.converged_round.max(other.converged_round);
        self.hot_trips += other.hot_trips;
        self.hot_staged_kvs += other.hot_staged_kvs;
        self.hot_staged_bytes += other.hot_staged_bytes;
        self.hot_unique_kvs += other.hot_unique_kvs;
        self.hot_forward_bytes += other.hot_forward_bytes;
        self.salted_rounds += other.salted_rounds;
        self.merge_rounds += other.merge_rounds;
        self.jumbo_floor_hits += other.jumbo_floor_hits;
    }
}

/// The per-job tuning state machine. Deterministic: fed identical
/// tallies (which the ballot allreduce guarantees), every rank's
/// controller steps through identical states.
pub struct AdaptController {
    policy: AdaptPolicy,
    /// Current posting order: true = post-before-vote (overlapped).
    overlap: bool,
    /// Current effective round-size target, permille of partition
    /// capacity.
    fill_permille: u64,
    /// The tuning vote computed from the previous round's wait split.
    vote: BallotVote,
    overlap_streak: u32,
    zerocopy_streak: u32,
    grow_streak: u32,
    shrink_streak: u32,
    cooldown: u32,
    /// Mode switches so far. Each switch doubles the streak the next
    /// one needs (capped at 8× the base hysteresis): a workload whose
    /// wait ratio hovers at a threshold otherwise flaps between modes
    /// all job long, paying the losing mode for half the rounds.
    mode_flips: u32,
}

impl AdaptController {
    /// A controller starting from the static defaults: vote-first
    /// zero-copy posting at full round size.
    pub fn new(policy: AdaptPolicy) -> Self {
        Self {
            policy,
            overlap: false,
            fill_permille: 1000,
            vote: BallotVote::default(),
            overlap_streak: 0,
            zerocopy_streak: 0,
            grow_streak: 0,
            shrink_streak: 0,
            cooldown: 0,
            mode_flips: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &AdaptPolicy {
        &self.policy
    }

    /// Whether rounds currently post sends before the done-vote.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// The current effective round-size target, permille of partition
    /// capacity.
    pub fn fill_permille(&self) -> u64 {
        self.fill_permille
    }

    /// Digests the round that just finished into the next round's vote.
    /// Rounds whose total wait is under the signal floor vote neutral.
    pub fn observe_round(&mut self, sync_wait_ns: u64, data_wait_ns: u64) {
        self.vote.prefer_overlap = false;
        self.vote.prefer_zerocopy = false;
        self.vote.grow = false;
        self.vote.shrink = false;
        let total = sync_wait_ns + data_wait_ns;
        if !self.policy.mode_tuning || total < self.policy.min_signal_ns {
            return;
        }
        let data_share = data_wait_ns.saturating_mul(1000) / total;
        if data_share < self.policy.sync_bound_permille {
            // The vote dominated the round: hide it behind the copy-out
            // and amortize it over bigger rounds.
            self.vote.prefer_overlap = true;
            self.vote.grow = true;
        } else if data_share > self.policy.data_bound_permille {
            // Byte movement dominated: vote first so a straggler's
            // copy-out pipelines against peers' receives, and smooth the
            // pipeline with smaller rounds.
            self.vote.prefer_zerocopy = true;
            self.vote.shrink = true;
        }
    }

    /// This rank's ballot for the upcoming round.
    pub fn vote(&self, done: bool, hot_pending: bool) -> BallotVote {
        BallotVote {
            done,
            hot_pending,
            ..self.vote
        }
    }

    /// Steps the state machine on the world tally. At most one decision
    /// per round, gated by hysteresis and cooldown; applied decisions
    /// are recorded in `stats` and emitted as
    /// [`EventKind::AdaptDecision`] events.
    pub fn apply(&mut self, tally: &BallotTally, world: u64, round: u64, stats: &mut AdaptStats) {
        if !self.policy.mode_tuning {
            return;
        }
        let majority = |n: u64| 2 * n > world;
        fn streak(s: &mut u32, agree: bool) {
            *s = if agree { *s + 1 } else { 0 };
        }
        streak(&mut self.overlap_streak, majority(tally.prefer_overlap));
        streak(&mut self.zerocopy_streak, majority(tally.prefer_zerocopy));
        streak(&mut self.grow_streak, majority(tally.grow));
        streak(&mut self.shrink_streak, majority(tally.shrink));
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return;
        }
        let h = self.policy.hysteresis_rounds;
        // Anti-flap backoff: the first switch applies after the base
        // hysteresis (fast convergence), but every switch doubles the
        // evidence the next one needs, so a wait ratio hovering at a
        // threshold settles instead of toggling all job long.
        let mode_h = h.saturating_mul(1 << self.mode_flips.min(3));
        if !self.overlap && self.overlap_streak >= mode_h {
            self.overlap = true;
            stats.mode_switches += 1;
            self.mode_flips += 1;
            mimir_obs::emit(EventKind::AdaptDecision, decision::MODE_OVERLAPPED, round);
            self.decided(round, stats);
        } else if self.overlap && self.zerocopy_streak >= mode_h {
            self.overlap = false;
            stats.mode_switches += 1;
            self.mode_flips += 1;
            mimir_obs::emit(EventKind::AdaptDecision, decision::MODE_ZEROCOPY, round);
            self.decided(round, stats);
        } else if self.grow_streak >= h && self.fill_permille < 1000 {
            self.fill_permille = (self.fill_permille + self.policy.fill_step_permille).min(1000);
            stats.grow_steps += 1;
            mimir_obs::emit(EventKind::AdaptDecision, decision::GROW, self.fill_permille);
            self.decided_size(round, stats);
        } else if self.shrink_streak >= h && self.fill_permille > self.policy.min_fill_permille {
            self.fill_permille = self
                .fill_permille
                .saturating_sub(self.policy.fill_step_permille)
                .max(self.policy.min_fill_permille);
            stats.shrink_steps += 1;
            mimir_obs::emit(
                EventKind::AdaptDecision,
                decision::SHRINK,
                self.fill_permille,
            );
            self.decided_size(round, stats);
        }
    }

    /// A mode switch changes the posting regime entirely, so every
    /// streak restarts from the new regime's evidence.
    fn decided(&mut self, round: u64, stats: &mut AdaptStats) {
        self.decided_size(round, stats);
        self.overlap_streak = 0;
        self.zerocopy_streak = 0;
    }

    /// A size step keeps the mode streaks alive: under switch backoff a
    /// mode flip needs more consecutive ballots than a size step, and
    /// resetting its streak here would let size steps starve the flip
    /// forever.
    fn decided_size(&mut self, round: u64, stats: &mut AdaptStats) {
        stats.converged_round = round;
        self.cooldown = self.policy.cooldown_rounds;
        self.grow_streak = 0;
        self.shrink_streak = 0;
    }

    /// Records the converged state into the stats at job end.
    pub fn finalize(&self, stats: &mut AdaptStats) {
        stats.final_fill_permille = self.fill_permille;
        stats.final_overlap = u64::from(self.overlap);
    }
}

/// Bytes of frame header on the hot-flush wire: a `u32` KV length plus a
/// `u64` duplicate count.
pub const FRAME_HDR: usize = 12;

/// Writes one `(kv, count)` frame into the front of `out` (which must
/// hold at least `FRAME_HDR + kv.len()` bytes); returns bytes written.
pub fn write_frame(out: &mut [u8], kv: &[u8], count: u64) -> usize {
    out[0..4].copy_from_slice(&(kv.len() as u32).to_le_bytes());
    out[4..12].copy_from_slice(&count.to_le_bytes());
    out[FRAME_HDR..FRAME_HDR + kv.len()].copy_from_slice(kv);
    FRAME_HDR + kv.len()
}

/// Iterator over the `(kv, count)` frames of a hot-flush buffer.
pub struct FrameDecoder<'a> {
    buf: &'a [u8],
}

impl<'a> FrameDecoder<'a> {
    /// Decodes `buf`, which must hold zero or more whole frames.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }
}

impl<'a> Iterator for FrameDecoder<'a> {
    type Item = (&'a [u8], u64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.buf.is_empty() {
            return None;
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("frame length")) as usize;
        let count = u64::from_le_bytes(self.buf[4..12].try_into().expect("frame count"));
        let kv = &self.buf[FRAME_HDR..FRAME_HDR + len];
        self.buf = &self.buf[FRAME_HDR + len..];
        Some((kv, count))
    }
}

const HOT_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// The salted spread destination of a staged KV: a splitmix-finalized
/// salted hash mapped by [`fast_range`]. A pure function of the KV
/// bytes, so identical KVs from different senders meet at one relay (and
/// their counts merge there), yet decorrelated from the real
/// partitioner, so even a point-mass partitioner spreads over all ranks.
pub fn salted_dest(kv_hash: u64, n_ranks: usize) -> usize {
    let mut x = kv_hash ^ HOT_SALT;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    fast_range(x, n_ranks)
}

/// A count-collapsing store of encoded KVs: the hot-key stage on the
/// sender side and the merge relay on the receiver side. Keys are the
/// *full encoded KV bytes* interned through a [`GroupIndex`] (so the
/// pool is charged page by page), values are duplicate counts.
pub struct HotStore {
    index: GroupIndex,
    counts: Vec<u64>,
    bytes: usize,
    /// Intern cap in bytes; 0 = uncapped (the relay role).
    cap: usize,
    /// Last staged `(hash, id)`: a destination only trips hot because a
    /// few keys dominate it, so consecutive staged emits overwhelmingly
    /// repeat one KV — this one-entry MRU turns the common bump into a
    /// 16-byte compare on L1-hot lines instead of an index probe.
    last: Option<(u64, u32)>,
}

impl HotStore {
    /// An empty store charging its arena to `pool`. `cap` bounds the
    /// interned bytes (0 = unbounded).
    ///
    /// # Errors
    /// Pool exhaustion.
    pub fn new(pool: &MemPool, cap: usize) -> Result<Self> {
        Ok(Self {
            index: GroupIndex::new(pool)?,
            counts: Vec::new(),
            bytes: 0,
            cap,
            last: None,
        })
    }

    /// Stages one encoded KV whose `fxhash64` is `kv_hash`. Returns the
    /// interned id when the KV was absorbed — an already-present KV
    /// always count-bumps (no memory), a new KV interns only while under
    /// the cap — or `None` when full, so the caller ships it directly.
    /// The id stays valid for the store's lifetime; [`Self::bump`] with
    /// it collapses later duplicates without re-hashing.
    ///
    /// # Errors
    /// Pool exhaustion while interning.
    pub fn stage(&mut self, kv_hash: u64, kv: &[u8]) -> Result<Option<u32>> {
        if let Some((h, id)) = self.last {
            if h == kv_hash && self.index.key(id) == kv {
                self.counts[id as usize] += 1;
                return Ok(Some(id));
            }
        }
        if self.cap != 0 && self.bytes + kv.len() > self.cap {
            // Full: only existing KVs may still collapse.
            match self.index.get(kv) {
                Some(id) => {
                    self.counts[id as usize] += 1;
                    self.last = Some((kv_hash, id));
                    Ok(Some(id))
                }
                None => Ok(None),
            }
        } else {
            let (id, is_new) = self.index.insert_hashed(kv_hash, kv)?;
            if is_new {
                self.counts.push(1);
                self.bytes += kv.len();
            } else {
                self.counts[id as usize] += 1;
            }
            self.last = Some((kv_hash, id));
            Ok(Some(id))
        }
    }

    /// Count-bumps a previously staged KV by id — the fast path for a
    /// caller-side MRU that recognized an exact repeat from the raw
    /// bytes, skipping the encode, the hash, and the index probe.
    pub fn bump(&mut self, id: u32) {
        self.counts[id as usize] += 1;
    }

    /// Merges one relayed `(kv, count)` frame in; counts of identical
    /// KVs arriving from different senders add.
    ///
    /// # Errors
    /// Pool exhaustion while interning.
    pub fn absorb(&mut self, kv: &[u8], count: u64) -> Result<()> {
        let (id, is_new) = self.index.insert(kv)?;
        if is_new {
            self.counts.push(count);
            self.bytes += kv.len();
        } else {
            self.counts[id as usize] += count;
        }
        Ok(())
    }

    /// Distinct KVs held.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The `id`-th distinct KV's encoded bytes (ids are dense,
    /// first-occurrence ordered).
    pub fn kv(&self, id: u32) -> &[u8] {
        self.index.key(id)
    }

    /// The `id`-th distinct KV's `fxhash64` (stored at intern time, so
    /// salted routing needs no re-hash).
    pub fn hash_of(&self, id: u32) -> u64 {
        self.index.hash_of(id)
    }

    /// The `id`-th distinct KV's duplicate count.
    pub fn count(&self, id: u32) -> u64 {
        self.counts[id as usize]
    }

    /// Interned KV bytes held.
    pub fn staged_bytes(&self) -> usize {
        self.bytes
    }

    /// Total staged emits and the encoded bytes they stand for —
    /// `Σ count(id)` and `Σ count(id) · kv(id).len()`. The per-emit
    /// staging paths defer this accounting to flush time so a count bump
    /// stays a single add.
    pub fn staged_totals(&self) -> (u64, u64) {
        let mut kvs = 0u64;
        let mut bytes = 0u64;
        for id in 0..self.len() as u32 {
            let c = self.count(id);
            kvs += c;
            bytes += c * self.kv(id).len() as u64;
        }
        (kvs, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fxhash64;

    fn sync_bound_tally(world: u64) -> BallotTally {
        BallotTally {
            done: 0,
            prefer_overlap: world,
            prefer_zerocopy: 0,
            grow: world,
            shrink: 0,
            hot_pending: 0,
        }
    }

    fn data_bound_tally(world: u64) -> BallotTally {
        BallotTally {
            done: 0,
            prefer_overlap: 0,
            prefer_zerocopy: world,
            grow: 0,
            shrink: world,
            hot_pending: 0,
        }
    }

    #[test]
    fn sync_bound_rounds_vote_overlap_and_grow() {
        let mut c = AdaptController::new(AdaptPolicy::default());
        c.observe_round(1_000_000, 0);
        let v = c.vote(false, false);
        assert!(v.prefer_overlap && v.grow);
        assert!(!v.prefer_zerocopy && !v.shrink);
        c.observe_round(0, 1_000_000);
        let v = c.vote(true, true);
        assert!(v.prefer_zerocopy && v.shrink && v.done && v.hot_pending);
        assert!(!v.prefer_overlap && !v.grow);
    }

    #[test]
    fn below_signal_floor_votes_neutral() {
        let mut c = AdaptController::new(AdaptPolicy::default());
        c.observe_round(100, 50); // 150 ns total, under min_signal_ns
        let v = c.vote(false, false);
        assert!(!v.prefer_overlap && !v.prefer_zerocopy && !v.grow && !v.shrink);
    }

    #[test]
    fn hysteresis_converges_and_cooldown_prevents_flapping() {
        let policy = AdaptPolicy::default();
        let mut c = AdaptController::new(policy);
        let mut stats = AdaptStats::default();
        // Two agreeing ballots are not enough at hysteresis 3.
        for round in 0..2 {
            c.apply(&sync_bound_tally(4), 4, round, &mut stats);
        }
        assert!(!c.overlap());
        // The third converges.
        c.apply(&sync_bound_tally(4), 4, 2, &mut stats);
        assert!(c.overlap(), "three agreeing ballots switch the mode");
        assert_eq!(stats.mode_switches, 1);
        assert_eq!(stats.converged_round, 2);
        // An immediate reversal cannot apply during the cooldown even
        // with a full streak.
        for round in 3..3 + policy.cooldown_rounds as u64 {
            c.apply(&data_bound_tally(4), 4, round, &mut stats);
        }
        assert!(c.overlap(), "cooldown holds the decision");
        // One switch already happened, so flipping back needs a doubled
        // streak (anti-flap backoff). At streak 5 the mode holds; the
        // data-bound ballots' shrink vote (plain hysteresis) applies
        // instead — and must not reset the building mode streak.
        c.apply(&data_bound_tally(4), 4, 7, &mut stats);
        assert!(c.overlap(), "backoff doubles the reversal hysteresis");
        assert_eq!(stats.shrink_steps, 1);
        // The shrink's cooldown holds rounds 8-11 while the zero-copy
        // streak keeps building; once it clears, the accumulated streak
        // (≥6) flips the mode back.
        for round in 8..12 {
            c.apply(&data_bound_tally(4), 4, round, &mut stats);
            assert!(c.overlap(), "cooldown holds during round {round}");
        }
        c.apply(&data_bound_tally(4), 4, 12, &mut stats);
        assert!(!c.overlap(), "doubled streak satisfied after cooldown");
        assert_eq!(stats.mode_switches, 2);
    }

    #[test]
    fn alternating_ballots_never_decide() {
        let mut c = AdaptController::new(AdaptPolicy::default());
        let mut stats = AdaptStats::default();
        for round in 0..40 {
            let t = if round % 2 == 0 {
                sync_bound_tally(4)
            } else {
                data_bound_tally(4)
            };
            c.apply(&t, 4, round, &mut stats);
        }
        assert_eq!(stats.mode_switches, 0, "streaks reset on disagreement");
        assert_eq!(stats.grow_steps + stats.shrink_steps, 0);
        assert_eq!(c.fill_permille(), 1000);
    }

    #[test]
    fn shrink_respects_the_policy_floor() {
        let policy = AdaptPolicy {
            hysteresis_rounds: 1,
            cooldown_rounds: 0,
            ..AdaptPolicy::default()
        };
        let mut c = AdaptController::new(policy);
        let mut stats = AdaptStats::default();
        // Force shrink decisions only: already in zero-copy, so the mode
        // arm never fires and every ballot shrinks one step.
        for round in 0..20 {
            c.apply(&data_bound_tally(4), 4, round, &mut stats);
        }
        assert_eq!(c.fill_permille(), policy.min_fill_permille);
        assert_eq!(stats.shrink_steps, 3, "1000 → 750 → 500 → 250");
        c.finalize(&mut stats);
        assert_eq!(stats.final_fill_permille, policy.min_fill_permille);
        assert_eq!(stats.final_overlap, 0);
    }

    #[test]
    fn minority_votes_do_not_move_the_controller() {
        let mut c = AdaptController::new(AdaptPolicy {
            hysteresis_rounds: 1,
            cooldown_rounds: 0,
            ..AdaptPolicy::default()
        });
        let mut stats = AdaptStats::default();
        let half = BallotTally {
            prefer_overlap: 2, // exactly half of 4: not a majority
            grow: 2,
            ..BallotTally::default()
        };
        for round in 0..10 {
            c.apply(&half, 4, round, &mut stats);
        }
        assert!(!c.overlap());
        assert_eq!(stats.mode_switches + stats.grow_steps, 0);
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = vec![0u8; 64];
        let n1 = write_frame(&mut buf, b"alpha", 7);
        let n2 = write_frame(&mut buf[n1..], b"", 1);
        let n3 = write_frame(&mut buf[n1 + n2..], b"key-value-bytes", u64::MAX);
        let frames: Vec<(Vec<u8>, u64)> = FrameDecoder::new(&buf[..n1 + n2 + n3])
            .map(|(kv, c)| (kv.to_vec(), c))
            .collect();
        assert_eq!(
            frames,
            vec![
                (b"alpha".to_vec(), 7),
                (Vec::new(), 1),
                (b"key-value-bytes".to_vec(), u64::MAX),
            ]
        );
    }

    #[test]
    fn hot_store_collapses_duplicates_and_caps_new_keys() {
        let pool = MemPool::unlimited("t", 4096);
        let mut s = HotStore::new(&pool, 8).unwrap();
        let kv = b"dup-kv";
        assert_eq!(s.stage(fxhash64(kv), kv).unwrap(), Some(0));
        for _ in 0..99 {
            assert!(
                s.stage(fxhash64(kv), kv).unwrap().is_some(),
                "duplicates collapse"
            );
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.count(0), 100);
        assert_eq!(s.staged_bytes(), kv.len());
        // 6 + 7 > 8: a new distinct KV no longer fits …
        let other = b"other!!";
        assert!(s.stage(fxhash64(other), other).unwrap().is_none());
        // … but the existing one still collapses, by probe or by id.
        assert!(s.stage(fxhash64(kv), kv).unwrap().is_some());
        s.bump(0);
        assert_eq!(s.count(0), 102);
    }

    #[test]
    fn relay_merges_counts_from_many_senders() {
        let pool = MemPool::unlimited("t", 4096);
        let mut relay = HotStore::new(&pool, 0).unwrap();
        relay.absorb(b"shared", 10).unwrap();
        relay.absorb(b"mine", 1).unwrap();
        relay.absorb(b"shared", 32).unwrap();
        assert_eq!(relay.len(), 2);
        assert_eq!(relay.count(0), 42, "counts add associatively");
        assert_eq!(relay.kv(1), b"mine");
    }

    #[test]
    fn salted_dest_spreads_and_stays_deterministic() {
        let p = 8;
        let mut hit = vec![false; p];
        for i in 0..256u64 {
            let h = fxhash64(&i.to_le_bytes());
            let d = salted_dest(h, p);
            assert!(d < p);
            assert_eq!(d, salted_dest(h, p), "pure function of the hash");
            hit[d] = true;
        }
        assert!(hit.iter().all(|&h| h), "256 keys cover all 8 ranks");
    }
}
