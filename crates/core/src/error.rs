use std::fmt;

use mimir_io::IoError;
use mimir_mem::MemError;

/// Errors surfaced by Mimir jobs.
#[derive(Debug)]
pub enum MimirError {
    /// A node memory budget was exceeded. Mimir is an in-memory framework:
    /// unlike MR-MPI it does not spill, so this fails the job (these are
    /// the missing data points in the paper's figures).
    Mem(MemError),
    /// The I/O subsystem failed (input reading).
    Io(IoError),
    /// A single KV is larger than the unit it must fit in (a container
    /// page, or one send-buffer partition).
    KvTooLarge {
        /// Encoded size of the offending KV.
        size: usize,
        /// The capacity it had to fit in.
        limit: usize,
        /// Which buffer refused it.
        what: &'static str,
    },
    /// A key or value violated the job's [`crate::LenHint`] contract
    /// (wrong fixed length, or an interior NUL in a C-string key).
    HintViolation(String),
    /// Invalid job configuration.
    Config(String),
    /// The job was cooperatively cancelled at a phase boundary (its
    /// [`crate::CancelToken`] was raised on some rank). All ranks of the
    /// job observe this error at the same boundary, so partially-built
    /// containers drop — and credit their pool — on every rank.
    Cancelled,
    /// A cross-job cache misuse: a chained input name was never cached,
    /// or a shuffle-elided map emitted a key that does not belong to this
    /// rank under the declared partitioner (the map was not
    /// partition-preserving — disable elision with
    /// `shuffle_elision(false)` for key-changing maps).
    Cache(String),
    /// A peer rank disconnected mid-job: its process died or its
    /// transport endpoint closed while this rank was blocked on it. The
    /// message names the lost peer. Unlike [`MimirError::Cancelled`]
    /// this is involuntary — the job cannot be resumed on this world.
    Disconnected(String),
}

impl fmt::Display for MimirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MimirError::Mem(e) => write!(f, "memory: {e}"),
            MimirError::Io(e) => write!(f, "io: {e}"),
            MimirError::KvTooLarge { size, limit, what } => {
                write!(f, "KV of {size} B exceeds {what} capacity {limit} B")
            }
            MimirError::HintViolation(msg) => write!(f, "KV-hint violation: {msg}"),
            MimirError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            MimirError::Cancelled => write!(f, "job cancelled at a phase boundary"),
            MimirError::Cache(msg) => write!(f, "cross-job cache: {msg}"),
            MimirError::Disconnected(msg) => write!(f, "peer disconnected: {msg}"),
        }
    }
}

impl std::error::Error for MimirError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MimirError::Mem(e) => Some(e),
            MimirError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for MimirError {
    fn from(e: MemError) -> Self {
        MimirError::Mem(e)
    }
}

impl From<IoError> for MimirError {
    fn from(e: IoError) -> Self {
        MimirError::Io(e)
    }
}

impl MimirError {
    /// True when the failure is the node running out of memory — the
    /// condition the bench harness turns into a "missing data point".
    pub fn is_oom(&self) -> bool {
        matches!(self, MimirError::Mem(MemError::OutOfMemory { .. }))
    }

    /// True when the job stopped because its cancel token was raised.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, MimirError::Cancelled)
    }

    /// True when the job died because a peer rank's transport went away.
    pub fn is_disconnected(&self) -> bool {
        matches!(self, MimirError::Disconnected(_))
    }
}
