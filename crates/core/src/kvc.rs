use std::collections::VecDeque;

use mimir_mem::{MemPool, Page};

use crate::kv::{decode_one, encode_into, encoded_len, validate, KvDecoder};
use crate::sink::KvSink;
use crate::{KvMeta, MimirError, Result};

/// KV container (KVC): dynamically grown, page-granular storage for
/// intermediate KVs — the paper's central memory-management object.
///
/// > "The KVC is an opaque object that internally manages a collection of
/// > KVs in one or more buffer pages based on the number and sizes of the
/// > KVs inserted. … When KVs are inserted into the KVC, it gradually
/// > allocates more memory to store the data. When the data is read
/// > (consumed), the KVC frees buffers that are no longer needed."
///
/// Pages come from the node's [`MemPool`] in fixed-size units (avoiding
/// the fragmentation the BG/Q lightweight kernel cannot handle);
/// [`Self::drain`] releases each page the moment its KVs have been
/// consumed. This is the difference from MR-MPI's statically allocated
/// page sets that the whole paper turns on.
///
/// ```
/// use mimir_core::{KvContainer, KvMeta};
/// use mimir_mem::MemPool;
///
/// let pool = MemPool::new("node", 4096, 1 << 20).unwrap();
/// let mut kvc = KvContainer::new(&pool, KvMeta::cstr_key_u64_val());
/// kvc.push(b"word", &7u64.to_le_bytes()).unwrap();
/// assert_eq!(kvc.len(), 1);
/// kvc.drain(|k, v| {
///     assert_eq!(k, b"word");
///     assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 7);
///     Ok(())
/// }).unwrap();
/// assert_eq!(pool.used(), 0); // pages released as consumed
/// ```
pub struct KvContainer {
    meta: KvMeta,
    pool: MemPool,
    pages: VecDeque<Page>,
    n_kvs: u64,
    bytes: u64,
}

impl KvContainer {
    /// An empty container drawing pages from `pool` with encoding `meta`.
    /// No memory is allocated until the first insertion.
    pub fn new(pool: &MemPool, meta: KvMeta) -> Self {
        Self {
            meta,
            pool: pool.clone(),
            pages: VecDeque::new(),
            n_kvs: 0,
            bytes: 0,
        }
    }

    /// Inserts one KV, growing by a page when the current one is full.
    ///
    /// # Errors
    /// [`MimirError::HintViolation`] if the KV does not match the
    /// container's hints, [`MimirError::KvTooLarge`] if its encoding
    /// exceeds one page, [`MimirError::Mem`] if the node budget is
    /// exhausted.
    pub fn push(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        validate(self.meta.key, key, "key")?;
        validate(self.meta.val, val, "value")?;
        let len = encoded_len(self.meta, key, val);
        if len > self.pool.page_size() {
            return Err(MimirError::KvTooLarge {
                size: len,
                limit: self.pool.page_size(),
                what: "container page",
            });
        }
        let need_new = self.pages.back().is_none_or(|p| p.remaining() < len);
        if need_new {
            self.pages.push_back(self.pool.alloc_page()?);
        }
        let page = self.pages.back_mut().expect("page just ensured");
        let start = page.len();
        page.set_len(start + len);
        encode_into(self.meta, key, val, &mut page.as_mut_slice()[start..]);
        self.n_kvs += 1;
        self.bytes += len as u64;
        Ok(())
    }

    /// Inserts `n` copies of one KV: the first copy goes through
    /// [`Self::push`] (validating and landing the encoded template at the
    /// page tail), then the template replicates across the rest of the
    /// page with doubling `copy_within` — so a collapsed hot-key count
    /// expands at memcpy bandwidth rather than `n` encode calls.
    ///
    /// # Errors
    /// As [`Self::push`].
    pub fn push_repeat(&mut self, key: &[u8], val: &[u8], mut n: u64) -> Result<()> {
        let len = encoded_len(self.meta, key, val);
        while n > 0 {
            self.push(key, val)?;
            n -= 1;
            let page = self.pages.back_mut().expect("push ensured a page");
            let copies = ((page.remaining() / len.max(1)) as u64).min(n) as usize;
            if copies == 0 {
                continue;
            }
            let template_start = page.len() - len;
            let start = page.len();
            page.set_len(start + copies * len);
            let buf = page.as_mut_slice();
            let total = (copies + 1) * len; // template + the new copies
            let mut filled = len;
            while filled < total {
                let take = filled.min(total - filled);
                buf.copy_within(
                    template_start..template_start + take,
                    template_start + filled,
                );
                filled += take;
            }
            self.n_kvs += copies as u64;
            self.bytes += (copies * len) as u64;
            n -= copies as u64;
        }
        Ok(())
    }

    /// Inserts a contiguous run of encoded KVs (already in this
    /// container's encoding) by page-wise memcpy, returning the number of
    /// KVs inserted.
    ///
    /// Pages hold only whole KVs, so the run is chunked at KV boundaries
    /// with a cheap length scan — no per-KV validation or re-encoding.
    /// Hints were validated when the KVs entered the framework at the
    /// emit boundary, so the run is trusted (malformed bytes panic, as in
    /// [`KvDecoder`]).
    ///
    /// # Errors
    /// [`MimirError::KvTooLarge`] if a single KV exceeds one page,
    /// [`MimirError::Mem`] if the node budget is exhausted.
    pub fn push_run(&mut self, run: &[u8]) -> Result<u64> {
        let mut total = 0u64;
        let mut rest = run;
        while !rest.is_empty() {
            let remaining = self.pages.back().map_or(0, |p| p.remaining());
            let (chunk, n) = whole_kv_prefix(self.meta, rest, remaining);
            if chunk == 0 {
                // Nothing fits the current page. If a fresh page wouldn't
                // hold the next KV either, it is oversized.
                let (_, first) = decode_one(self.meta, rest).expect("rest is non-empty");
                if first > self.pool.page_size() {
                    return Err(MimirError::KvTooLarge {
                        size: first,
                        limit: self.pool.page_size(),
                        what: "container page",
                    });
                }
                self.pages.push_back(self.pool.alloc_page()?);
                continue;
            }
            let page = self.pages.back_mut().expect("chunk > 0 implies a page");
            let start = page.len();
            page.set_len(start + chunk);
            page.as_mut_slice()[start..start + chunk].copy_from_slice(&rest[..chunk]);
            self.n_kvs += n;
            self.bytes += chunk as u64;
            total += n;
            rest = &rest[chunk..];
        }
        Ok(total)
    }

    /// Iterates the KVs without consuming them (used by the first pass of
    /// the two-pass convert).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.pages
            .iter()
            .flat_map(move |p| KvDecoder::new(self.meta, p.as_slice()))
    }

    /// Consumes the container, invoking `f` on every KV and **freeing each
    /// page as soon as its KVs have been read** — the "frees buffers that
    /// are no longer needed" behaviour of the paper.
    ///
    /// # Errors
    /// Propagates the first error from `f`; remaining pages are still
    /// released on drop.
    pub fn drain(mut self, f: impl FnMut(&[u8], &[u8]) -> Result<()>) -> Result<()> {
        self.drain_all(f)
    }

    /// [`Self::drain`] through a mutable reference, for callers that hold
    /// the container inside a closure environment (multi-stage pipelines
    /// feeding one job's output into the next job's map). The container is
    /// left empty.
    ///
    /// # Errors
    /// Propagates the first error from `f`.
    pub fn drain_all(&mut self, mut f: impl FnMut(&[u8], &[u8]) -> Result<()>) -> Result<()> {
        self.n_kvs = 0;
        self.bytes = 0;
        while let Some(page) = self.pages.pop_front() {
            for (k, v) in KvDecoder::new(self.meta, page.as_slice()) {
                f(k, v)?;
            }
        }
        Ok(())
    }

    /// Visits each page's encoded bytes in order without consuming the
    /// container. Pages end at KV boundaries ([`Self::push`] never splits
    /// a KV across pages), so every visited slice is a self-contained run
    /// acceptable to [`Self::push_run`] — the serialization path the
    /// cross-job cache uses to spill a container wholesale.
    ///
    /// # Errors
    /// Propagates the first error from `f`.
    pub fn for_each_page(&self, mut f: impl FnMut(&[u8]) -> Result<()>) -> Result<()> {
        for page in &self.pages {
            f(page.as_slice())?;
        }
        Ok(())
    }

    /// Number of KVs stored.
    pub fn len(&self) -> u64 {
        self.n_kvs
    }

    /// True if no KVs are stored.
    pub fn is_empty(&self) -> bool {
        self.n_kvs == 0
    }

    /// Encoded payload bytes stored (the "KV size" metric of paper
    /// Figure 7).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Pages currently held.
    pub fn pages_held(&self) -> usize {
        self.pages.len()
    }

    /// The container's KV encoding.
    pub fn meta(&self) -> KvMeta {
        self.meta
    }
}

/// Largest prefix of `buf` holding whole KVs whose total size fits in
/// `cap` bytes; returns `(prefix_len, kv_count)`.
fn whole_kv_prefix(meta: KvMeta, buf: &[u8], cap: usize) -> (usize, u64) {
    let mut off = 0;
    let mut n = 0u64;
    while off < buf.len() {
        let (_, used) = decode_one(meta, &buf[off..]).expect("offset < len");
        if off + used > cap {
            break;
        }
        off += used;
        n += 1;
    }
    (off, n)
}

impl KvSink for KvContainer {
    fn accept(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        self.push(key, val)
    }

    /// Bulk path: received runs are already in the container encoding
    /// (wire format == container format), so they land by page-wise
    /// memcpy.
    fn accept_run(&mut self, meta: KvMeta, run: &[u8]) -> Result<u64> {
        debug_assert_eq!(meta, self.meta, "run encoding must match the container");
        self.push_run(run)
    }

    /// Bulk path: encode once, replicate by page memcpy.
    fn accept_repeat(&mut self, key: &[u8], val: &[u8], n: u64) -> Result<()> {
        self.push_repeat(key, val, n)
    }
}

impl std::fmt::Debug for KvContainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvContainer")
            .field("n_kvs", &self.n_kvs)
            .field("bytes", &self.bytes)
            .field("pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LenHint;

    fn pool(page: usize, budget: usize) -> MemPool {
        MemPool::new("t", page, budget).unwrap()
    }

    #[test]
    fn push_and_iter_roundtrip() {
        let p = pool(64, 1024);
        let mut kvc = KvContainer::new(&p, KvMeta::var());
        for i in 0..20u32 {
            kvc.push(format!("key{i}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        assert_eq!(kvc.len(), 20);
        let got: Vec<(Vec<u8>, Vec<u8>)> =
            kvc.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        assert_eq!(got.len(), 20);
        assert_eq!(got[7].0, b"key7");
        assert_eq!(got[7].1, 7u32.to_le_bytes());
    }

    #[test]
    fn grows_page_by_page() {
        let p = pool(64, 64 * 100);
        let mut kvc = KvContainer::new(&p, KvMeta::fixed(8, 8));
        assert_eq!(p.used(), 0, "no allocation before first push");
        for i in 0..20u64 {
            kvc.push(&i.to_le_bytes(), &i.to_le_bytes()).unwrap();
        }
        // 16 B per KV, 4 per 64 B page → 5 pages.
        assert_eq!(kvc.pages_held(), 5);
        assert_eq!(p.used(), 5 * 64);
    }

    #[test]
    fn drain_frees_pages_incrementally() {
        let p = pool(64, 64 * 100);
        let mut kvc = KvContainer::new(&p, KvMeta::fixed(8, 8));
        for i in 0..16u64 {
            kvc.push(&i.to_le_bytes(), &i.to_le_bytes()).unwrap();
        }
        let total_pages = kvc.pages_held();
        assert_eq!(total_pages, 4);
        let mut seen = 0u64;
        let mut used_at_kv = Vec::new();
        kvc.drain(|k, _v| {
            seen += 1;
            used_at_kv.push(p.used());
            assert_eq!(k.len(), 8);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 16);
        assert_eq!(p.used(), 0);
        // Pages are released progressively: usage never increases, starts
        // at all four pages, and is down to one page for the last KVs.
        assert!(used_at_kv.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(used_at_kv[0], 4 * 64);
        assert_eq!(*used_at_kv.last().unwrap(), 64);
    }

    #[test]
    fn oversized_kv_is_rejected() {
        let p = pool(64, 1024);
        let mut kvc = KvContainer::new(&p, KvMeta::var());
        let big = vec![7u8; 100];
        let err = kvc.push(b"k", &big).unwrap_err();
        assert!(matches!(err, MimirError::KvTooLarge { .. }));
    }

    #[test]
    fn budget_exhaustion_surfaces_as_mem_error() {
        let p = pool(64, 128);
        let mut kvc = KvContainer::new(&p, KvMeta::fixed(8, 8));
        let mut pushed = 0;
        let err = loop {
            match kvc.push(&[0u8; 8], &[0u8; 8]) {
                Ok(()) => pushed += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(pushed, 8); // 2 pages × 4 KVs
        assert!(err.is_oom());
    }

    #[test]
    fn hint_violation_detected_at_push() {
        let p = pool(64, 1024);
        let mut kvc = KvContainer::new(&p, KvMeta::fixed(4, 4));
        assert!(matches!(
            kvc.push(b"toolong", b"vvvv").unwrap_err(),
            MimirError::HintViolation(_)
        ));
    }

    #[test]
    fn cstr_encoding_through_container() {
        let p = pool(64, 1024);
        let meta = KvMeta {
            key: LenHint::CStr,
            val: LenHint::Fixed(8),
        };
        let mut kvc = KvContainer::new(&p, meta);
        kvc.push(b"word", &9u64.to_le_bytes()).unwrap();
        // 4 key + 1 NUL + 8 val = 13 bytes, vs 8+4+8=20 un-hinted.
        assert_eq!(kvc.bytes(), 13);
        let (k, v) = kvc.iter().next().unwrap();
        assert_eq!(k, b"word");
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 9);
    }

    #[test]
    fn drain_error_short_circuits_but_releases_memory() {
        let p = pool(64, 1024);
        let mut kvc = KvContainer::new(&p, KvMeta::fixed(8, 8));
        for i in 0..12u64 {
            kvc.push(&i.to_le_bytes(), &i.to_le_bytes()).unwrap();
        }
        let mut n = 0;
        let res = kvc.drain(|_, _| {
            n += 1;
            if n == 3 {
                Err(MimirError::Config("stop".into()))
            } else {
                Ok(())
            }
        });
        assert!(res.is_err());
        assert_eq!(n, 3);
        assert_eq!(p.used(), 0, "container dropped with remaining pages");
    }
}
