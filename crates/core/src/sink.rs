use crate::Result;

/// A consumer of shuffled KVs.
///
/// The exchange machinery is generic over where received KVs land, which
/// is exactly the paper's architectural split:
///
/// * baseline workflow — the receive buffer drains into a
///   [`KvContainer`](crate::KvContainer) that feeds convert+reduce;
/// * partial reduction — the receive buffer drains into a
///   [`PartialReducer`](crate::PartialReducer) hash bucket, so the full KV
///   set is never materialized.
pub trait KvSink {
    /// Accepts one KV.
    ///
    /// # Errors
    /// Typically [`crate::MimirError::Mem`] when the node budget is
    /// exhausted.
    fn accept(&mut self, key: &[u8], val: &[u8]) -> Result<()>;
}
