use crate::kv::KvDecoder;
use crate::{KvMeta, Result};

/// A consumer of shuffled KVs.
///
/// The exchange machinery is generic over where received KVs land, which
/// is exactly the paper's architectural split:
///
/// * baseline workflow — the receive buffer drains into a
///   [`KvContainer`](crate::KvContainer) that feeds convert+reduce;
/// * partial reduction — the receive buffer drains into a
///   [`PartialReducer`](crate::PartialReducer) hash bucket, so the full KV
///   set is never materialized.
pub trait KvSink {
    /// Accepts one KV.
    ///
    /// # Errors
    /// Typically [`crate::MimirError::Mem`] when the node budget is
    /// exhausted.
    fn accept(&mut self, key: &[u8], val: &[u8]) -> Result<()>;

    /// Accepts a contiguous run of encoded KVs — one source rank's
    /// contribution to an exchange round, in the wire encoding given by
    /// `meta`. Returns the number of KVs consumed.
    ///
    /// The default decodes and [`Self::accept`]s each KV. Sinks whose
    /// storage format equals the wire format (the container) override
    /// this with a bulk memcpy; sinks that must look at every KV anyway
    /// (partial reduction, combining) keep the per-KV path.
    ///
    /// # Errors
    /// As [`Self::accept`].
    fn accept_run(&mut self, meta: KvMeta, run: &[u8]) -> Result<u64> {
        let mut n = 0;
        for (k, v) in KvDecoder::new(meta, run) {
            self.accept(k, v)?;
            n += 1;
        }
        Ok(n)
    }

    /// Accepts `n` copies of one KV — the expansion half of the hot-key
    /// count-collapse path, where a `(kv, count)` frame stands for
    /// `count` identical KVs that were merged before travelling.
    ///
    /// The default loops [`Self::accept`]; the container overrides it
    /// with an encode-once, replicate-by-memcpy fill so expanding a
    /// collapsed hot key costs page-bandwidth, not per-KV bookkeeping.
    ///
    /// # Errors
    /// As [`Self::accept`].
    fn accept_repeat(&mut self, key: &[u8], val: &[u8], n: u64) -> Result<()> {
        for _ in 0..n {
            self.accept(key, val)?;
        }
        Ok(())
    }
}
