//! Partial reduction (paper Section III-C1, Figure 6).
//!
//! For reductions with "partial-reduce invariance" (commutative +
//! associative), the convert and reduce phases are replaced entirely:
//! every KV arriving from an exchange round is folded into a hash bucket
//! immediately — "the reduce can start as soon as some of the intermediate
//! KVs are available, without waiting for the KVs to be converted to
//! KMVs". The full KV set is never materialized in a container, and no
//! KMVC exists at all, which is where the large memory win in the paper's
//! Figure 13 comes from.

use mimir_mem::MemPool;

use crate::combiner::{CombineFn, FoldTable};
use crate::group::GroupStats;
use crate::kv::validate;
use crate::sink::KvSink;
use crate::{GroupingMode, KvContainer, KvMeta, Result};

/// The partial-reduction sink: shuffled KVs fold straight into a bucket.
pub struct PartialReducer<'f> {
    table: FoldTable<'f>,
    meta: KvMeta,
    kvs_in: u64,
}

impl<'f> PartialReducer<'f> {
    /// Creates a partial-reduction bucket charging `pool`.
    ///
    /// # Errors
    /// Memory exhaustion.
    pub fn new(pool: &MemPool, meta: KvMeta, combine: CombineFn<'f>) -> Result<Self> {
        Self::with_mode(pool, meta, combine, GroupingMode::default())
    }

    /// [`Self::new`] with an explicit grouping engine.
    ///
    /// # Errors
    /// Memory exhaustion.
    pub fn with_mode(
        pool: &MemPool,
        meta: KvMeta,
        combine: CombineFn<'f>,
        mode: GroupingMode,
    ) -> Result<Self> {
        Ok(Self {
            table: FoldTable::new(pool, combine, mode)?,
            meta,
            kvs_in: 0,
        })
    }

    /// Unique keys currently held.
    pub fn unique_keys(&self) -> usize {
        self.table.len()
    }

    /// KVs folded so far.
    pub fn kvs_in(&self) -> u64 {
        self.kvs_in
    }

    /// The grouping engine's counters.
    pub fn group_stats(&self) -> GroupStats {
        self.table.group_stats()
    }

    /// Finalizes the reduction: moves the bucket contents into a
    /// [`KvContainer`] with encoding `out_meta` (the job's output), and
    /// releases the bucket.
    ///
    /// # Errors
    /// Memory exhaustion, or output-hint violations.
    pub fn into_output(mut self, pool: &MemPool, out_meta: KvMeta) -> Result<KvContainer> {
        let mut out = KvContainer::new(pool, out_meta);
        struct Adapter<'a>(&'a mut KvContainer);
        impl crate::shuffle::Emitter for Adapter<'_> {
            fn emit(&mut self, k: &[u8], v: &[u8]) -> Result<()> {
                self.0.push(k, v)
            }
        }
        self.table.drain_into(&mut Adapter(&mut out), false)?;
        Ok(out)
    }
}

impl KvSink for PartialReducer<'_> {
    fn accept(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        validate(self.meta.key, key, "key")?;
        validate(self.meta.val, val, "value")?;
        self.kvs_in += 1;
        self.table.fold(key, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimir_mem::MemPool;
    use std::collections::HashMap;

    fn sum_combine<'f>() -> CombineFn<'f> {
        Box::new(|_k, a, b, out| {
            let s = u64::from_le_bytes(a.try_into().unwrap())
                + u64::from_le_bytes(b.try_into().unwrap());
            out.extend_from_slice(&s.to_le_bytes());
        })
    }

    #[test]
    fn folds_as_kvs_arrive_and_outputs_totals() {
        let pool = MemPool::new("t", 4096, 1 << 20).unwrap();
        let meta = KvMeta::cstr_key_u64_val();
        let mut pr = PartialReducer::new(&pool, meta, sum_combine()).unwrap();
        for i in 0..999u64 {
            pr.accept(format!("w{}", i % 3).as_bytes(), &1u64.to_le_bytes())
                .unwrap();
        }
        assert_eq!(pr.unique_keys(), 3);
        assert_eq!(pr.kvs_in(), 999);

        let out = pr.into_output(&pool, meta).unwrap();
        let mut got: HashMap<Vec<u8>, u64> = HashMap::new();
        out.drain(|k, v| {
            got.insert(k.to_vec(), u64::from_le_bytes(v.try_into().unwrap()));
            Ok(())
        })
        .unwrap();
        assert_eq!(got[&b"w0".to_vec()], 333);
        assert_eq!(got[&b"w1".to_vec()], 333);
        assert_eq!(got[&b"w2".to_vec()], 333);
        assert_eq!(pool.used(), 0, "all structures released");
    }

    #[test]
    fn equivalent_to_convert_plus_reduce() {
        // The invariance property the paper requires: partial reduction
        // must produce the same totals as a full convert+reduce.
        let pool = MemPool::unlimited("t", 4096);
        let meta = KvMeta::var();
        let kvs: Vec<(Vec<u8>, u64)> = (0..500u64)
            .map(|i| (format!("k{}", i % 17).into_bytes(), i))
            .collect();

        // Path A: partial reduction.
        let mut pr = PartialReducer::new(&pool, meta, sum_combine()).unwrap();
        for (k, v) in &kvs {
            pr.accept(k, &v.to_le_bytes()).unwrap();
        }
        let out_a = pr.into_output(&pool, meta).unwrap();
        let mut a: HashMap<Vec<u8>, u64> = HashMap::new();
        out_a
            .drain(|k, v| {
                a.insert(k.to_vec(), u64::from_le_bytes(v.try_into().unwrap()));
                Ok(())
            })
            .unwrap();

        // Path B: KVC → convert → sum each group.
        let mut kvc = KvContainer::new(&pool, meta);
        for (k, v) in &kvs {
            kvc.push(k, &v.to_le_bytes()).unwrap();
        }
        let kmvc = crate::convert(kvc, &pool).unwrap();
        let mut b: HashMap<Vec<u8>, u64> = HashMap::new();
        kmvc.for_each_group(|k, vals| {
            let sum = vals
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .sum();
            b.insert(k.to_vec(), sum);
            Ok(())
        })
        .unwrap();

        assert_eq!(a, b);
    }
}
