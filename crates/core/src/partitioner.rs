//! Key → rank partitioning.
//!
//! "The new KVs are inserted into one of the send buffer partitions by
//! using a hash function based on the key. … Users can provide
//! alternative hash functions that suit their needs, but the workflow
//! stays the same." (paper Section III-A)
//!
//! The default is the Fx-hash modulo partitioner; applications with
//! structural knowledge (e.g. contiguous vertex ranges, locality-aware
//! placement) install their own through
//! [`MapReduceJob::partitioner`](crate::MapReduceJob::partitioner).

use std::sync::Arc;

use crate::hash::partition_of;

/// A key partitioner: maps a key to a destination rank in `0..n_ranks`.
///
/// Cheap to clone (shared function pointer); must be deterministic —
/// every rank computing the partition of the same key must get the same
/// answer, or reductions silently split across ranks (the job layer
/// cannot detect this).
/// The partition function's shape: `(key, n_ranks) -> rank`.
type PartitionFn = dyn Fn(&[u8], usize) -> usize + Send + Sync;

#[derive(Clone)]
pub struct Partitioner {
    f: Arc<PartitionFn>,
    name: &'static str,
    /// True only for [`Partitioner::hash`]: the destination is a pure
    /// function of `fxhash64(key)`, so emitters holding a precomputed
    /// hash may route via [`crate::hash::partition_of_hashed`] without
    /// calling `f`.
    is_hash: bool,
}

impl Partitioner {
    /// The default hash partitioner.
    pub fn hash() -> Self {
        Self {
            f: Arc::new(partition_of),
            name: "hash",
            is_hash: true,
        }
    }

    /// A custom partitioner. The function's result is clamped to
    /// `0..n_ranks` by a debug assertion in debug builds and by a modulo
    /// in release builds, so an out-of-range partitioner cannot write
    /// outside the send buffer.
    pub fn custom(
        name: &'static str,
        f: impl Fn(&[u8], usize) -> usize + Send + Sync + 'static,
    ) -> Self {
        Self {
            f: Arc::new(f),
            name,
            is_hash: false,
        }
    }

    /// Range partitioner over fixed-width big-endian-comparable keys:
    /// splits the key space of `u64` little-endian keys evenly by value.
    /// Useful for graph vertex ids when ids are dense (owner = linear
    /// block), producing contiguous per-rank ranges instead of hash
    /// scatter.
    pub fn u64_block(n_keys: u64) -> Self {
        Self {
            f: Arc::new(move |key: &[u8], p: usize| {
                let v = u64::from_le_bytes(key[..8].try_into().expect("u64 key"));
                let per = n_keys.div_ceil(p as u64).max(1);
                ((v / per) as usize).min(p - 1)
            }),
            name: "u64-block",
            is_hash: false,
        }
    }

    /// Whether this is the default hash partitioner (see `is_hash` field
    /// docs).
    #[inline]
    pub(crate) fn is_hash(&self) -> bool {
        self.is_hash
    }

    /// Destination rank of `key` among `n_ranks`.
    #[inline]
    pub fn of(&self, key: &[u8], n_ranks: usize) -> usize {
        let d = (self.f)(key, n_ranks);
        debug_assert!(
            d < n_ranks,
            "partitioner `{}` returned {d} of {n_ranks}",
            self.name
        );
        if d < n_ranks {
            d
        } else {
            d % n_ranks
        }
    }

    /// The partitioner's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Default for Partitioner {
    fn default() -> Self {
        Self::hash()
    }
}

impl std::fmt::Debug for Partitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partitioner")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_matches_partition_of() {
        let p = Partitioner::hash();
        for i in 0..100u32 {
            let k = i.to_le_bytes();
            assert_eq!(p.of(&k, 7), partition_of(&k, 7));
        }
    }

    #[test]
    fn u64_block_is_contiguous_and_total() {
        let p = Partitioner::u64_block(100);
        let mut prev = 0;
        for v in 0..100u64 {
            let d = p.of(&v.to_le_bytes(), 4);
            assert!(d >= prev, "monotone blocks");
            assert!(d < 4);
            prev = d;
        }
        assert_eq!(p.of(&0u64.to_le_bytes(), 4), 0);
        assert_eq!(p.of(&99u64.to_le_bytes(), 4), 3);
    }

    #[test]
    fn custom_out_of_range_is_clamped_in_release() {
        let p = Partitioner::custom("bad", |_k, n| n + 5);
        // In debug builds this would assert; emulate release behaviour by
        // checking the modulo fallback path logic directly.
        if !cfg!(debug_assertions) {
            assert!(p.of(b"k", 4) < 4);
        }
    }
}
