//! Key → rank partitioning.
//!
//! "The new KVs are inserted into one of the send buffer partitions by
//! using a hash function based on the key. … Users can provide
//! alternative hash functions that suit their needs, but the workflow
//! stays the same." (paper Section III-A)
//!
//! The default is the Fx-hash modulo partitioner; applications with
//! structural knowledge (e.g. contiguous vertex ranges, locality-aware
//! placement) install their own through
//! [`MapReduceJob::partitioner`](crate::MapReduceJob::partitioner).

use std::sync::Arc;

use crate::hash::{fxhash64, partition_of};

/// Identity of a partition layout: two containers whose fingerprints are
/// equal were placed by the same key→rank function over the same world,
/// so a chained job declaring the same fingerprint may consume a cached
/// container in place without re-shuffling (see [`crate::KvCache`]).
///
/// The fingerprint covers the partitioner's diagnostic name, its salt
/// (structural parameters like [`Partitioner::u64_block`]'s key count),
/// and the rank count. The hash seed is a compile-time constant of the
/// framework's Fx hash, so it needs no per-run component.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PartitionFingerprint {
    /// Hash of the partitioner's name and salt.
    pub partitioner: u64,
    /// World size the placement was computed for.
    pub n_ranks: u32,
}

/// A key partitioner: maps a key to a destination rank in `0..n_ranks`.
///
/// Cheap to clone (shared function pointer); must be deterministic —
/// every rank computing the partition of the same key must get the same
/// answer, or reductions silently split across ranks (the job layer
/// cannot detect this).
/// The partition function's shape: `(key, n_ranks) -> rank`.
type PartitionFn = dyn Fn(&[u8], usize) -> usize + Send + Sync;

#[derive(Clone)]
pub struct Partitioner {
    f: Arc<PartitionFn>,
    name: &'static str,
    /// Structural parameter folded into the fingerprint, so two
    /// `u64_block` partitioners over different key counts never compare
    /// equal even though they share a name.
    salt: u64,
    /// True only for [`Partitioner::hash`]: the destination is a pure
    /// function of `fxhash64(key)`, so emitters holding a precomputed
    /// hash may route via [`crate::hash::partition_of_hashed`] without
    /// calling `f`.
    is_hash: bool,
}

impl Partitioner {
    /// The default hash partitioner.
    pub fn hash() -> Self {
        Self {
            f: Arc::new(partition_of),
            name: "hash",
            salt: 0,
            is_hash: true,
        }
    }

    /// A custom partitioner. The function's result is clamped to
    /// `0..n_ranks` by a debug assertion in debug builds and by a modulo
    /// in release builds, so an out-of-range partitioner cannot write
    /// outside the send buffer.
    ///
    /// The name is the partitioner's cache identity: two custom
    /// partitioners with the same name (and salt, see [`Self::salted`])
    /// fingerprint as interchangeable. Pick distinct names for distinct
    /// placement functions.
    pub fn custom(
        name: &'static str,
        f: impl Fn(&[u8], usize) -> usize + Send + Sync + 'static,
    ) -> Self {
        Self {
            f: Arc::new(f),
            name,
            salt: 0,
            is_hash: false,
        }
    }

    /// Range partitioner over fixed-width big-endian-comparable keys:
    /// splits the key space of `u64` little-endian keys evenly by value.
    /// Useful for graph vertex ids when ids are dense (owner = linear
    /// block), producing contiguous per-rank ranges instead of hash
    /// scatter.
    pub fn u64_block(n_keys: u64) -> Self {
        Self {
            f: Arc::new(move |key: &[u8], p: usize| {
                let v = u64::from_le_bytes(key[..8].try_into().expect("u64 key"));
                let per = n_keys.div_ceil(p as u64).max(1);
                ((v / per) as usize).min(p - 1)
            }),
            name: "u64-block",
            salt: n_keys,
            is_hash: false,
        }
    }

    /// Folds a structural parameter into this partitioner's fingerprint
    /// (custom partitioners parameterized beyond their name).
    #[must_use]
    pub fn salted(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// The placement identity of this partitioner over `n_ranks` ranks.
    pub fn fingerprint(&self, n_ranks: usize) -> PartitionFingerprint {
        let id = fxhash64(self.name.as_bytes())
            ^ self
                .salt
                .rotate_left(17)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        PartitionFingerprint {
            partitioner: id,
            n_ranks: n_ranks as u32,
        }
    }

    /// Whether this is the default hash partitioner (see `is_hash` field
    /// docs).
    #[inline]
    pub(crate) fn is_hash(&self) -> bool {
        self.is_hash
    }

    /// Destination rank of `key` among `n_ranks`.
    #[inline]
    pub fn of(&self, key: &[u8], n_ranks: usize) -> usize {
        let d = (self.f)(key, n_ranks);
        debug_assert!(
            d < n_ranks,
            "partitioner `{}` returned {d} of {n_ranks}",
            self.name
        );
        if d < n_ranks {
            d
        } else {
            d % n_ranks
        }
    }

    /// The partitioner's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Default for Partitioner {
    fn default() -> Self {
        Self::hash()
    }
}

impl std::fmt::Debug for Partitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partitioner")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_matches_partition_of() {
        let p = Partitioner::hash();
        for i in 0..100u32 {
            let k = i.to_le_bytes();
            assert_eq!(p.of(&k, 7), partition_of(&k, 7));
        }
    }

    #[test]
    fn u64_block_is_contiguous_and_total() {
        let p = Partitioner::u64_block(100);
        let mut prev = 0;
        for v in 0..100u64 {
            let d = p.of(&v.to_le_bytes(), 4);
            assert!(d >= prev, "monotone blocks");
            assert!(d < 4);
            prev = d;
        }
        assert_eq!(p.of(&0u64.to_le_bytes(), 4), 0);
        assert_eq!(p.of(&99u64.to_le_bytes(), 4), 3);
    }

    #[test]
    fn fingerprints_separate_layouts() {
        let h = Partitioner::hash();
        assert_eq!(h.fingerprint(4), Partitioner::hash().fingerprint(4));
        assert_ne!(h.fingerprint(4), h.fingerprint(8), "rank count counts");
        assert_ne!(
            h.fingerprint(4),
            Partitioner::u64_block(100).fingerprint(4),
            "different functions differ"
        );
        assert_ne!(
            Partitioner::u64_block(100).fingerprint(4),
            Partitioner::u64_block(200).fingerprint(4),
            "the block size is part of the identity"
        );
        assert_eq!(
            Partitioner::u64_block(100).fingerprint(4),
            Partitioner::u64_block(100).fingerprint(4)
        );
        assert_ne!(
            Partitioner::custom("a", |_, _| 0).fingerprint(2),
            Partitioner::custom("b", |_, _| 0).fingerprint(2)
        );
        assert_ne!(
            Partitioner::custom("a", |_, _| 0).salted(7).fingerprint(2),
            Partitioner::custom("a", |_, _| 0).fingerprint(2)
        );
    }

    #[test]
    fn custom_out_of_range_is_clamped_in_release() {
        let p = Partitioner::custom("bad", |_k, n| n + 5);
        // In debug builds this would assert; emulate release behaviour by
        // checking the modulo fallback path logic directly.
        if !cfg!(debug_assertions) {
            assert!(p.of(b"k", 4) < 4);
        }
    }
}
