//! The two-pass KV→KMV conversion (paper Section III-A):
//!
//! > "In the first pass, the size of the KVs for each unique key is
//! > gathered in a hash bucket and used to calculate the position of each
//! > KMV in the KMVC. In the second pass, the KVs are converted into KMVs
//! > by inserting them into the corresponding position in the KMVC."
//!
//! Grouping runs on the shared [`GroupIndex`] engine
//! ([`GroupingMode::Arena`], the default): pass 1 hashes each key exactly
//! once and records the resulting group id in a per-KV `u32` side array,
//! so pass 2 streams values into position **by index** — zero re-hashing
//! and zero map lookups on the second traversal. The original
//! `HashMap<Vec<u8>, u32>` path is kept behind [`GroupingMode::Legacy`]
//! as the ablation baseline.
//!
//! Every structure the phase holds — the group index, the group-info and
//! group-id side arrays, the placement tables — is charged to the node
//! pool, so the convert phase's real footprint (KVC + KMVC + grouping
//! state coexisting) is what the peak-memory figures measure.

use std::collections::HashMap;

use mimir_mem::MemPool;

use crate::buffer::TrackedBuf;
use crate::group::{DeltaCharge, GroupIndex, GroupStats};
use crate::hash::{fxhash64, FxBuild};
use crate::kmvc::{GroupLoc, Slot};
use crate::kv::write_side;
use crate::{GroupingMode, KmvContainer, KvContainer, KvMeta, LenHint, Result};

/// Per-unique-key info gathered in pass 1.
#[derive(Default, Clone, Copy)]
struct GroupInfo {
    count: u32,
    val_bytes: usize,
}

/// Estimated heap cost of one legacy hash-bucket entry beyond the key
/// bytes (HashMap slot, key `Vec` header, cursor).
const BUCKET_ENTRY_OVERHEAD: usize = 64;

/// Stored size of one value under `hint`.
#[inline]
fn val_stored_len(hint: LenHint, val: &[u8]) -> usize {
    hint.overhead() + val.len()
}

/// Converts a KV container into a KMV container, grouping values by key,
/// with the default [`GroupingMode`].
///
/// Keys appear in the output in first-occurrence order, making reduce
/// output deterministic for a given KVC content.
///
/// # Errors
/// Out-of-memory if the grouping state, the KMVC, or a jumbo entry
/// exceeds the node budget.
pub fn convert(kvc: KvContainer, pool: &MemPool) -> Result<KmvContainer> {
    convert_with(kvc, pool, GroupingMode::default()).map(|(kmvc, _)| kmvc)
}

/// [`convert`] with an explicit grouping engine, also returning the
/// engine's counters (empty under [`GroupingMode::Legacy`], which has no
/// instrumented table).
///
/// # Errors
/// As [`convert`].
pub fn convert_with(
    kvc: KvContainer,
    pool: &MemPool,
    mode: GroupingMode,
) -> Result<(KmvContainer, GroupStats)> {
    match mode {
        GroupingMode::Arena => convert_arena(kvc, pool),
        GroupingMode::Legacy => convert_legacy(kvc, pool),
    }
}

/// Everything the layout step produces: placed entry headers plus the
/// per-group write cursors pass 2 advances.
struct Layout {
    pages: Vec<mimir_mem::Page>,
    jumbos: Vec<TrackedBuf>,
    locs: Vec<GroupLoc>,
    cursors: Vec<usize>,
    page_used: usize,
    total_bytes: u64,
    n_values: u64,
}

/// Places every group's entry (`[key][count u32][values…]`) in pages or
/// jumbo buffers and writes the headers; values stream in during pass 2.
/// The `locs`/`cursors` side arrays are charged to `side`.
fn layout_groups<'k>(
    pool: &MemPool,
    meta: KvMeta,
    groups: &[GroupInfo],
    key_of: impl Fn(usize) -> &'k [u8],
    side: &mut DeltaCharge,
) -> Result<Layout> {
    let page_size = pool.page_size();
    side.add(groups.len() * (std::mem::size_of::<GroupLoc>() + std::mem::size_of::<usize>()))?;
    let mut pages = Vec::new();
    let mut jumbos: Vec<TrackedBuf> = Vec::new();
    let mut locs: Vec<GroupLoc> = Vec::with_capacity(groups.len());
    // Write cursor within each group's values section (absolute offset in
    // the entry's slot buffer).
    let mut cursors: Vec<usize> = Vec::with_capacity(groups.len());
    let mut page_used = 0usize;
    let mut total_bytes = 0u64;
    let mut n_values = 0u64;

    for (idx, g) in groups.iter().enumerate() {
        let key = key_of(idx);
        let key_len = meta.key.overhead() + key.len();
        let entry_len = key_len + 4 + g.val_bytes;
        total_bytes += entry_len as u64;
        n_values += u64::from(g.count);

        let (slot, offset) = if entry_len <= page_size {
            let fits = pages
                .last()
                .map(|p: &mimir_mem::Page| p.capacity() - page_used >= entry_len)
                .unwrap_or(false);
            if !fits {
                let mut p = pool.alloc_page()?;
                let cap = p.capacity();
                p.set_len(cap); // written random-access below
                pages.push(p);
                page_used = 0;
            }
            let off = page_used;
            page_used += entry_len;
            (Slot::Page(pages.len() as u32 - 1), off)
        } else {
            jumbos.push(TrackedBuf::new(pool, entry_len)?);
            (Slot::Jumbo(jumbos.len() as u32 - 1), 0)
        };

        // Write the entry header (key + value count) now; values stream in
        // during pass 2.
        let buf = match slot {
            Slot::Page(i) => pages[i as usize].as_mut_slice(),
            Slot::Jumbo(i) => jumbos[i as usize].as_mut_slice(),
        };
        let koff = write_side(meta.key, key, buf, offset);
        buf[koff..koff + 4].copy_from_slice(&g.count.to_le_bytes());

        locs.push(GroupLoc {
            slot,
            offset,
            entry_len,
        });
        cursors.push(koff + 4);
    }
    // Trim the final page's logical length to what is used.
    if let Some(p) = pages.last_mut() {
        p.set_len(page_used);
    }
    Ok(Layout {
        pages,
        jumbos,
        locs,
        cursors,
        page_used,
        total_bytes,
        n_values,
    })
}

/// Resolves a group's destination buffer during pass 2.
#[inline]
fn entry_buf<'b>(
    layout_pages: &'b mut [mimir_mem::Page],
    jumbos: &'b mut [TrackedBuf],
    loc: GroupLoc,
) -> &'b mut [u8] {
    match loc.slot {
        Slot::Page(i) => {
            let p = &mut layout_pages[i as usize];
            let cap = p.capacity();
            if p.len() < cap {
                // Re-expose full capacity for random-access writes on
                // the trimmed last page.
                p.set_len(cap);
            }
            p.as_mut_slice()
        }
        Slot::Jumbo(i) => jumbos[i as usize].as_mut_slice(),
    }
}

/// The arena path: pass 1 interns keys into a [`GroupIndex`] (one hash
/// per KV) while recording each KV's group id; pass 2 replays the id
/// array — no hashing, no lookups.
fn convert_arena(kvc: KvContainer, pool: &MemPool) -> Result<(KmvContainer, GroupStats)> {
    let meta = kvc.meta();

    // --- Pass 1: size every group, remember each KV's group. ----------
    let mut side = DeltaCharge::new(pool)?;
    let mut index = GroupIndex::new(pool)?;
    let mut groups: Vec<GroupInfo> = Vec::new();
    // The per-KV group-id side array that eliminates pass-2 lookups:
    // 4 bytes per KV, charged up front (the KV count is known).
    side.add(kvc.len() as usize * std::mem::size_of::<u32>())?;
    let mut kv_group: Vec<u32> = Vec::with_capacity(kvc.len() as usize);
    for (k, v) in kvc.iter() {
        let (idx, fresh) = index.insert_hashed(fxhash64(k), k)?;
        if fresh {
            side.add(std::mem::size_of::<GroupInfo>())?;
            groups.push(GroupInfo::default());
        }
        let g = &mut groups[idx as usize];
        g.count += 1;
        g.val_bytes += val_stored_len(meta.val, v);
        kv_group.push(idx);
    }
    side.settle()?;

    // --- Layout: place every entry in pages or jumbo buffers. ---------
    let mut layout = layout_groups(pool, meta, &groups, |i| index.key(i as u32), &mut side)?;

    // --- Pass 2: stream values into position by recorded group id,
    // freeing KVC pages as they are consumed. ---------------------------
    let mut kv_i = 0usize;
    kvc.drain(|k, v| {
        let idx = kv_group[kv_i] as usize;
        kv_i += 1;
        debug_assert_eq!(index.key(idx as u32), k, "drain order matches iter order");
        let _ = k;
        let loc = layout.locs[idx];
        let buf = entry_buf(&mut layout.pages, &mut layout.jumbos, loc);
        layout.cursors[idx] = write_side(meta.val, v, buf, layout.cursors[idx]);
        Ok(())
    })?;
    if let Some(p) = layout.pages.last_mut() {
        p.set_len(layout.page_used);
    }

    let stats = index.stats();
    drop(index);
    drop(side);

    let kmvc = KmvContainer::from_parts(
        meta,
        layout.pages,
        layout.jumbos,
        layout.locs,
        pool,
        layout.n_values,
        layout.total_bytes,
    )?;
    Ok((kmvc, stats))
}

/// The original path (ablation baseline): `HashMap<Vec<u8>, u32>` bucket
/// in pass 1, a map lookup per KV in pass 2.
fn convert_legacy(kvc: KvContainer, pool: &MemPool) -> Result<(KmvContainer, GroupStats)> {
    let meta = kvc.meta();

    // --- Pass 1: size every group in a hash bucket. -------------------
    let mut side = DeltaCharge::new(pool)?;
    let mut index: HashMap<Vec<u8>, u32, FxBuild> = HashMap::default();
    let mut groups: Vec<GroupInfo> = Vec::new();
    for (k, v) in kvc.iter() {
        let idx = match index.get(k) {
            Some(&i) => i,
            None => {
                let i = groups.len() as u32;
                index.insert(k.to_vec(), i);
                groups.push(GroupInfo::default());
                side.add(k.len() + BUCKET_ENTRY_OVERHEAD + std::mem::size_of::<GroupInfo>())?;
                i
            }
        };
        let g = &mut groups[idx as usize];
        g.count += 1;
        g.val_bytes += val_stored_len(meta.val, v);
    }
    side.settle()?;

    // --- Layout: place every entry in pages or jumbo buffers. ---------
    side.add(groups.len() * std::mem::size_of::<&[u8]>())?;
    let mut keys_by_idx: Vec<&[u8]> = vec![&[]; groups.len()];
    for (k, &i) in &index {
        keys_by_idx[i as usize] = k;
    }
    let mut layout = layout_groups(pool, meta, &groups, |i| keys_by_idx[i], &mut side)?;

    // --- Pass 2: stream values into position, re-looking each key up,
    // freeing KVC pages as they are consumed. ---------------------------
    kvc.drain(|k, v| {
        let idx = *index.get(k).expect("key indexed in pass 1") as usize;
        let loc = layout.locs[idx];
        let buf = entry_buf(&mut layout.pages, &mut layout.jumbos, loc);
        layout.cursors[idx] = write_side(meta.val, v, buf, layout.cursors[idx]);
        Ok(())
    })?;
    if let Some(p) = layout.pages.last_mut() {
        p.set_len(layout.page_used);
    }

    let n_groups = groups.len() as u64;
    drop(keys_by_idx);
    drop(index);
    drop(side);

    let kmvc = KmvContainer::from_parts(
        meta,
        layout.pages,
        layout.jumbos,
        layout.locs,
        pool,
        layout.n_values,
        layout.total_bytes,
    )?;
    Ok((
        kmvc,
        GroupStats {
            groups: n_groups,
            ..GroupStats::default()
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KvMeta, MimirError};
    use mimir_mem::MemPool;
    use std::collections::HashMap as StdMap;

    fn groups_of(kmvc: &KmvContainer) -> StdMap<Vec<u8>, Vec<Vec<u8>>> {
        let mut out = StdMap::new();
        kmvc.for_each_group(|k, vals| {
            out.insert(k.to_vec(), vals.map(<[u8]>::to_vec).collect());
            Ok(())
        })
        .unwrap();
        out
    }

    const BOTH_MODES: [GroupingMode; 2] = [GroupingMode::Arena, GroupingMode::Legacy];

    #[test]
    fn groups_values_by_key_in_first_occurrence_order() {
        for mode in BOTH_MODES {
            let pool = MemPool::new("t", 256, 64 * 1024).unwrap();
            let mut kvc = KvContainer::new(&pool, KvMeta::var());
            for (k, v) in [
                ("apple", "1"),
                ("banana", "2"),
                ("apple", "3"),
                ("cherry", "4"),
                ("banana", "5"),
                ("apple", "6"),
            ] {
                kvc.push(k.as_bytes(), v.as_bytes()).unwrap();
            }
            let (kmvc, _) = convert_with(kvc, &pool, mode).unwrap();
            assert_eq!(kmvc.n_groups(), 3);
            assert_eq!(kmvc.n_values(), 6);

            let mut order = Vec::new();
            kmvc.for_each_group(|k, _| {
                order.push(k.to_vec());
                Ok(())
            })
            .unwrap();
            assert_eq!(
                order,
                vec![b"apple".to_vec(), b"banana".to_vec(), b"cherry".to_vec()],
                "{mode:?}"
            );

            let g = groups_of(&kmvc);
            assert_eq!(
                g[&b"apple"[..].to_vec()],
                vec![b"1".to_vec(), b"3".to_vec(), b"6".to_vec()]
            );
            assert_eq!(g[&b"cherry"[..].to_vec()], vec![b"4".to_vec()]);
        }
    }

    #[test]
    fn convert_with_hints() {
        for mode in BOTH_MODES {
            let pool = MemPool::new("t", 256, 64 * 1024).unwrap();
            let meta = KvMeta::cstr_key_u64_val();
            let mut kvc = KvContainer::new(&pool, meta);
            for i in 0..50u64 {
                let key = format!("w{}", i % 5);
                kvc.push(key.as_bytes(), &i.to_le_bytes()).unwrap();
            }
            let (kmvc, _) = convert_with(kvc, &pool, mode).unwrap();
            assert_eq!(kmvc.n_groups(), 5);
            let g = groups_of(&kmvc);
            assert_eq!(g[&b"w0".to_vec()].len(), 10);
            let vals: Vec<u64> = g[&b"w3".to_vec()]
                .iter()
                .map(|v| u64::from_le_bytes(v.as_slice().try_into().unwrap()))
                .collect();
            assert_eq!(vals, vec![3, 8, 13, 18, 23, 28, 33, 38, 43, 48], "{mode:?}");
        }
    }

    #[test]
    fn arena_mode_reports_group_stats() {
        let pool = MemPool::new("t", 256, 64 * 1024).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::cstr_key_u64_val());
        for i in 0..300u64 {
            kvc.push(format!("w{}", i % 40).as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let (_, stats) = convert_with(kvc, &pool, GroupingMode::Arena).unwrap();
        assert_eq!(stats.groups, 40);
        assert_eq!(stats.inserts, 300, "every KV probes exactly once");
        assert_eq!(
            stats.interned_bytes,
            (0..40).map(|i| format!("w{i}").len() as u64).sum()
        );
        assert!(stats.capacity >= 64);
        assert_eq!(stats.probe_hist.iter().sum::<u64>(), 300);
    }

    #[test]
    fn hot_key_gets_a_jumbo_entry() {
        for mode in BOTH_MODES {
            let pool = MemPool::new("t", 128, 256 * 1024).unwrap();
            let mut kvc = KvContainer::new(&pool, KvMeta::fixed(4, 8));
            // 100 values × 8 B = 800 B ≫ 128 B page.
            for i in 0..100u64 {
                kvc.push(b"hotk", &i.to_le_bytes()).unwrap();
            }
            kvc.push(b"cold", &0u64.to_le_bytes()).unwrap();
            let (kmvc, _) = convert_with(kvc, &pool, mode).unwrap();
            assert_eq!(kmvc.jumbos_held(), 1, "{mode:?}");
            let g = groups_of(&kmvc);
            assert_eq!(g[&b"hotk".to_vec()].len(), 100);
            assert_eq!(g[&b"cold".to_vec()].len(), 1);
        }
    }

    #[test]
    fn empty_container_converts_to_empty() {
        for mode in BOTH_MODES {
            let pool = MemPool::new("t", 128, 4096).unwrap();
            let kvc = KvContainer::new(&pool, KvMeta::var());
            let (kmvc, _) = convert_with(kvc, &pool, mode).unwrap();
            assert_eq!(kmvc.n_groups(), 0);
            assert_eq!(kmvc.n_values(), 0);
        }
    }

    #[test]
    fn kvc_pages_are_freed_during_pass_two() {
        for mode in BOTH_MODES {
            let page = 256;
            let pool = MemPool::new("t", page, 1024 * 1024).unwrap();
            let mut kvc = KvContainer::new(&pool, KvMeta::fixed(8, 8));
            for i in 0..1000u64 {
                kvc.push(&(i % 7).to_le_bytes(), &i.to_le_bytes()).unwrap();
            }
            let kvc_pages = kvc.pages_held();
            let before = pool.used();
            let (kmvc, _) = convert_with(kvc, &pool, mode).unwrap();
            // After convert the KVC is gone; only KMVC memory remains.
            let after = pool.used();
            assert!(after < before, "{mode:?}: KVC freed: {before} -> {after}");
            assert!(kvc_pages > 10);
            assert_eq!(kmvc.n_values(), 1000);
        }
    }

    #[test]
    fn convert_oom_is_reported() {
        for mode in BOTH_MODES {
            // Budget fits the KVC but not KVC + grouping state + KMVC.
            let pool = MemPool::new("t", 256, 2048).unwrap();
            let mut kvc = KvContainer::new(&pool, KvMeta::fixed(8, 8));
            for i in 0..120u64 {
                kvc.push(&i.to_le_bytes(), &i.to_le_bytes()).unwrap();
            }
            let err = convert_with(kvc, &pool, mode).unwrap_err();
            assert!(matches!(err, MimirError::Mem(_)), "{mode:?}: {err}");
        }
    }

    #[test]
    fn value_iter_is_exact_size() {
        let pool = MemPool::new("t", 256, 64 * 1024).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::var());
        for i in 0..12u32 {
            kvc.push(b"k", &i.to_le_bytes()).unwrap();
        }
        let kmvc = convert(kvc, &pool).unwrap();
        kmvc.for_each_group(|_k, vals| {
            assert_eq!(vals.len(), 12);
            let mut vals = vals;
            vals.next();
            assert_eq!(vals.len(), 11);
            assert_eq!(vals.count(), 11);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn jumbo_entry_exceeding_budget_is_oom_not_panic() {
        for mode in BOTH_MODES {
            // Budget fits the KVC but not KVC + the jumbo KMV entry.
            let pool = MemPool::new("t", 128, 2 * 1024).unwrap();
            let mut kvc = KvContainer::new(&pool, KvMeta::fixed(4, 8));
            for i in 0..120u64 {
                kvc.push(b"hotk", &i.to_le_bytes()).unwrap();
            }
            let err = convert_with(kvc, &pool, mode).unwrap_err();
            assert!(matches!(err, MimirError::Mem(_)), "{mode:?}: {err}");
            assert_eq!(pool.used(), 0, "partial convert fully unwinds");
        }
    }

    #[test]
    fn side_arrays_are_charged_to_the_pool() {
        // 4000 KVs over 16 keys: the per-KV group-id array alone is
        // 16 KB, which must appear in the pool accounting during the
        // phase (this was untracked before the arena engine).
        let pool = MemPool::new("t", 4096, 1 << 20).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::fixed(8, 8));
        for i in 0..4000u64 {
            kvc.push(&(i % 16).to_le_bytes(), &i.to_le_bytes()).unwrap();
        }
        let kvc_bytes = pool.used();
        let peak_before = pool.peak();
        let (kmvc, _) = convert_with(kvc, &pool, GroupingMode::Arena).unwrap();
        let peak = pool.peak();
        assert!(
            peak >= peak_before.max(kvc_bytes) + 4000 * 4,
            "peak {peak} must include the 16 KB kv_group side array (kvc was {kvc_bytes})"
        );
        drop(kmvc);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn modes_agree_on_random_workloads() {
        let pool = MemPool::unlimited("t", 512);
        for salt in 0..3u64 {
            let build = || {
                let mut kvc = KvContainer::new(&pool, KvMeta::var());
                let mut x = 0x9E3779B97F4A7C15u64 ^ salt;
                for _ in 0..700 {
                    // xorshift-ish deterministic stream
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = format!("k{}", x % 97);
                    kvc.push(key.as_bytes(), &x.to_le_bytes()).unwrap();
                }
                kvc
            };
            let (a, _) = convert_with(build(), &pool, GroupingMode::Arena).unwrap();
            let (b, _) = convert_with(build(), &pool, GroupingMode::Legacy).unwrap();
            assert_eq!(groups_of(&a), groups_of(&b));
            // Identical first-occurrence order, not just identical sets.
            let order = |kmvc: &KmvContainer| {
                let mut ks = Vec::new();
                kmvc.for_each_group(|k, _| {
                    ks.push(k.to_vec());
                    Ok(())
                })
                .unwrap();
                ks
            };
            assert_eq!(order(&a), order(&b));
        }
    }

    #[test]
    fn single_kv_single_group() {
        let pool = MemPool::new("t", 256, 64 * 1024).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::var());
        kvc.push(b"only", b"value").unwrap();
        let kmvc = convert(kvc, &pool).unwrap();
        assert_eq!(kmvc.n_groups(), 1);
        assert_eq!(kmvc.n_values(), 1);
        assert_eq!(kmvc.jumbos_held(), 0);
    }
}
