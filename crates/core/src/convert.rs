//! The two-pass KV→KMV conversion (paper Section III-A):
//!
//! > "In the first pass, the size of the KVs for each unique key is
//! > gathered in a hash bucket and used to calculate the position of each
//! > KMV in the KMVC. In the second pass, the KVs are converted into KMVs
//! > by inserting them into the corresponding position in the KMVC."
//!
//! The hash bucket is charged to the node pool through a reservation, so
//! the convert phase's real footprint (KVC + KMVC + bucket coexisting) is
//! what the peak-memory figures measure.

use std::collections::HashMap;

use mimir_mem::MemPool;

use crate::buffer::TrackedBuf;
use crate::hash::FxBuild;
use crate::kmvc::{GroupLoc, Slot};
use crate::kv::write_side;
use crate::{KmvContainer, KvContainer, LenHint, Result};

/// Per-unique-key info gathered in pass 1.
struct GroupInfo {
    count: u32,
    val_bytes: usize,
}

/// Estimated heap cost of one hash-bucket entry beyond the key bytes
/// (HashMap slot, `GroupInfo`, cursor).
const BUCKET_ENTRY_OVERHEAD: usize = 64;

/// Maximum bytes the pass-1 bucket may consume beyond its reservation.
///
/// The bucket grows key by key; re-reserving on every insert would
/// round-trip the pool's atomics per unique key, so growth is batched.
/// Batching by *bytes* (not by key count, which with long keys could
/// leave hundreds of KiB untracked) bounds the accounting error to this
/// constant regardless of key length.
const BUCKET_RESIZE_DELTA: usize = 4096;

/// Incremental pool charge for the pass-1 hash bucket: accumulates byte
/// deltas and settles them into the [`mimir_mem::Reservation`] whenever
/// the untracked amount reaches [`BUCKET_RESIZE_DELTA`].
struct BucketCharge {
    res: mimir_mem::Reservation,
    /// Bytes the reservation currently covers.
    charged: usize,
    /// Bytes the bucket actually holds.
    pending: usize,
}

impl BucketCharge {
    fn new(pool: &MemPool) -> Result<Self> {
        Ok(Self {
            res: pool.try_reserve(0)?,
            charged: 0,
            pending: 0,
        })
    }

    /// Records `bytes` of bucket growth, charging the pool once the
    /// untracked delta reaches the threshold. A single growth larger than
    /// the threshold is charged immediately.
    fn add(&mut self, bytes: usize) -> Result<()> {
        self.pending += bytes;
        if self.pending - self.charged >= BUCKET_RESIZE_DELTA {
            self.res.resize(self.pending)?;
            self.charged = self.pending;
        }
        debug_assert!(self.untracked() < BUCKET_RESIZE_DELTA);
        Ok(())
    }

    /// Charges any remaining untracked bytes (end of pass 1).
    fn settle(&mut self) -> Result<()> {
        if self.charged != self.pending {
            self.res.resize(self.pending)?;
            self.charged = self.pending;
        }
        Ok(())
    }

    /// Bytes held but not yet charged to the pool.
    fn untracked(&self) -> usize {
        self.pending - self.charged
    }
}

/// Stored size of one value under `hint`.
#[inline]
fn val_stored_len(hint: LenHint, val: &[u8]) -> usize {
    hint.overhead() + val.len()
}

/// Converts a KV container into a KMV container, grouping values by key.
///
/// Keys appear in the output in first-occurrence order, making reduce
/// output deterministic for a given KVC content.
///
/// # Errors
/// Out-of-memory if the bucket, the KMVC, or a jumbo entry exceeds the
/// node budget.
pub fn convert(kvc: KvContainer, pool: &MemPool) -> Result<KmvContainer> {
    let meta = kvc.meta();
    let page_size = pool.page_size();

    // --- Pass 1: size every group in a hash bucket. -------------------
    let mut bucket = BucketCharge::new(pool)?;
    let mut index: HashMap<Vec<u8>, u32, FxBuild> = HashMap::default();
    let mut groups: Vec<GroupInfo> = Vec::new();
    for (k, v) in kvc.iter() {
        let idx = match index.get(k) {
            Some(&i) => i,
            None => {
                let i = groups.len() as u32;
                index.insert(k.to_vec(), i);
                groups.push(GroupInfo {
                    count: 0,
                    val_bytes: 0,
                });
                bucket.add(k.len() + BUCKET_ENTRY_OVERHEAD)?;
                i
            }
        };
        let g = &mut groups[idx as usize];
        g.count += 1;
        g.val_bytes += val_stored_len(meta.val, v);
    }
    bucket.settle()?;

    // --- Layout: place every entry in pages or jumbo buffers. ---------
    let mut keys_by_idx: Vec<&[u8]> = vec![&[]; groups.len()];
    for (k, &i) in &index {
        keys_by_idx[i as usize] = k;
    }

    let mut pages = Vec::new();
    let mut jumbos: Vec<TrackedBuf> = Vec::new();
    let mut locs: Vec<GroupLoc> = Vec::with_capacity(groups.len());
    // Write cursor within each group's values section (absolute offset in
    // the entry's slot buffer).
    let mut cursors: Vec<usize> = Vec::with_capacity(groups.len());
    let mut page_used = 0usize;
    let mut total_bytes = 0u64;
    let mut n_values = 0u64;

    for (idx, g) in groups.iter().enumerate() {
        let key = keys_by_idx[idx];
        let key_len = meta.key.overhead() + key.len();
        let entry_len = key_len + 4 + g.val_bytes;
        total_bytes += entry_len as u64;
        n_values += u64::from(g.count);

        let (slot, offset) = if entry_len <= page_size {
            let fits = pages
                .last()
                .map(|p: &mimir_mem::Page| p.capacity() - page_used >= entry_len)
                .unwrap_or(false);
            if !fits {
                let mut p = pool.alloc_page()?;
                let cap = p.capacity();
                p.set_len(cap); // written random-access below
                pages.push(p);
                page_used = 0;
            }
            let off = page_used;
            page_used += entry_len;
            (Slot::Page(pages.len() as u32 - 1), off)
        } else {
            jumbos.push(TrackedBuf::new(pool, entry_len)?);
            (Slot::Jumbo(jumbos.len() as u32 - 1), 0)
        };

        // Write the entry header (key + value count) now; values stream in
        // during pass 2.
        let buf = match slot {
            Slot::Page(i) => pages[i as usize].as_mut_slice(),
            Slot::Jumbo(i) => jumbos[i as usize].as_mut_slice(),
        };
        let koff = write_side(meta.key, key, buf, offset);
        buf[koff..koff + 4].copy_from_slice(&g.count.to_le_bytes());

        locs.push(GroupLoc {
            slot,
            offset,
            entry_len,
        });
        cursors.push(koff + 4);
    }
    // Trim the final page's logical length to what is used.
    if let Some(p) = pages.last_mut() {
        p.set_len(page_used);
    }

    // --- Pass 2: stream values into position, freeing KVC pages as they
    // are consumed. -----------------------------------------------------
    kvc.drain(|k, v| {
        let idx = *index.get(k).expect("key indexed in pass 1") as usize;
        let loc = locs[idx];
        let buf = match loc.slot {
            Slot::Page(i) => {
                let p = &mut pages[i as usize];
                let cap = p.capacity();
                if p.len() < cap {
                    // Re-expose full capacity for random-access writes on
                    // the trimmed last page.
                    p.set_len(cap);
                }
                p.as_mut_slice()
            }
            Slot::Jumbo(i) => jumbos[i as usize].as_mut_slice(),
        };
        cursors[idx] = write_side(meta.val, v, buf, cursors[idx]);
        Ok(())
    })?;
    if let Some(p) = pages.last_mut() {
        p.set_len(page_used);
    }

    drop(index);
    drop(bucket);

    KmvContainer::from_parts(meta, pages, jumbos, locs, pool, n_values, total_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KvMeta, MimirError};
    use mimir_mem::MemPool;
    use std::collections::HashMap as StdMap;

    fn groups_of(kmvc: &KmvContainer) -> StdMap<Vec<u8>, Vec<Vec<u8>>> {
        let mut out = StdMap::new();
        kmvc.for_each_group(|k, vals| {
            out.insert(k.to_vec(), vals.map(<[u8]>::to_vec).collect());
            Ok(())
        })
        .unwrap();
        out
    }

    #[test]
    fn groups_values_by_key_in_first_occurrence_order() {
        let pool = MemPool::new("t", 256, 64 * 1024).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::var());
        for (k, v) in [
            ("apple", "1"),
            ("banana", "2"),
            ("apple", "3"),
            ("cherry", "4"),
            ("banana", "5"),
            ("apple", "6"),
        ] {
            kvc.push(k.as_bytes(), v.as_bytes()).unwrap();
        }
        let kmvc = convert(kvc, &pool).unwrap();
        assert_eq!(kmvc.n_groups(), 3);
        assert_eq!(kmvc.n_values(), 6);

        let mut order = Vec::new();
        kmvc.for_each_group(|k, _| {
            order.push(k.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(
            order,
            vec![b"apple".to_vec(), b"banana".to_vec(), b"cherry".to_vec()]
        );

        let g = groups_of(&kmvc);
        assert_eq!(
            g[&b"apple"[..].to_vec()],
            vec![b"1".to_vec(), b"3".to_vec(), b"6".to_vec()]
        );
        assert_eq!(g[&b"cherry"[..].to_vec()], vec![b"4".to_vec()]);
    }

    #[test]
    fn convert_with_hints() {
        let pool = MemPool::new("t", 256, 64 * 1024).unwrap();
        let meta = KvMeta::cstr_key_u64_val();
        let mut kvc = KvContainer::new(&pool, meta);
        for i in 0..50u64 {
            let key = format!("w{}", i % 5);
            kvc.push(key.as_bytes(), &i.to_le_bytes()).unwrap();
        }
        let kmvc = convert(kvc, &pool).unwrap();
        assert_eq!(kmvc.n_groups(), 5);
        let g = groups_of(&kmvc);
        assert_eq!(g[&b"w0".to_vec()].len(), 10);
        let vals: Vec<u64> = g[&b"w3".to_vec()]
            .iter()
            .map(|v| u64::from_le_bytes(v.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![3, 8, 13, 18, 23, 28, 33, 38, 43, 48]);
    }

    #[test]
    fn hot_key_gets_a_jumbo_entry() {
        let pool = MemPool::new("t", 128, 256 * 1024).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::fixed(4, 8));
        // 100 values × 8 B = 800 B ≫ 128 B page.
        for i in 0..100u64 {
            kvc.push(b"hotk", &i.to_le_bytes()).unwrap();
        }
        kvc.push(b"cold", &0u64.to_le_bytes()).unwrap();
        let kmvc = convert(kvc, &pool).unwrap();
        assert_eq!(kmvc.jumbos_held(), 1);
        let g = groups_of(&kmvc);
        assert_eq!(g[&b"hotk".to_vec()].len(), 100);
        assert_eq!(g[&b"cold".to_vec()].len(), 1);
    }

    #[test]
    fn empty_container_converts_to_empty() {
        let pool = MemPool::new("t", 128, 4096).unwrap();
        let kvc = KvContainer::new(&pool, KvMeta::var());
        let kmvc = convert(kvc, &pool).unwrap();
        assert_eq!(kmvc.n_groups(), 0);
        assert_eq!(kmvc.n_values(), 0);
    }

    #[test]
    fn kvc_pages_are_freed_during_pass_two() {
        let page = 256;
        let pool = MemPool::new("t", page, 1024 * 1024).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::fixed(8, 8));
        for i in 0..1000u64 {
            kvc.push(&(i % 7).to_le_bytes(), &i.to_le_bytes()).unwrap();
        }
        let kvc_pages = kvc.pages_held();
        let before = pool.used();
        let kmvc = convert(kvc, &pool).unwrap();
        // After convert the KVC is gone; only KMVC memory remains.
        let after = pool.used();
        assert!(after < before, "KVC freed: {before} -> {after}");
        assert!(kvc_pages > 10);
        assert_eq!(kmvc.n_values(), 1000);
    }

    #[test]
    fn convert_oom_is_reported() {
        // Budget fits the KVC but not KVC + bucket + KMVC.
        let pool = MemPool::new("t", 256, 2048).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::fixed(8, 8));
        for i in 0..120u64 {
            kvc.push(&i.to_le_bytes(), &i.to_le_bytes()).unwrap();
        }
        let err = convert(kvc, &pool).unwrap_err();
        assert!(matches!(err, MimirError::Mem(_)), "{err}");
    }

    #[test]
    fn value_iter_is_exact_size() {
        let pool = MemPool::new("t", 256, 64 * 1024).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::var());
        for i in 0..12u32 {
            kvc.push(b"k", &i.to_le_bytes()).unwrap();
        }
        let kmvc = convert(kvc, &pool).unwrap();
        kmvc.for_each_group(|_k, vals| {
            assert_eq!(vals.len(), 12);
            let mut vals = vals;
            vals.next();
            assert_eq!(vals.len(), 11);
            assert_eq!(vals.count(), 11);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn jumbo_entry_exceeding_budget_is_oom_not_panic() {
        // Budget fits the KVC but not KVC + the jumbo KMV entry.
        let pool = MemPool::new("t", 128, 2 * 1024).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::fixed(4, 8));
        for i in 0..120u64 {
            kvc.push(b"hotk", &i.to_le_bytes()).unwrap();
        }
        let err = convert(kvc, &pool).unwrap_err();
        assert!(matches!(err, MimirError::Mem(_)), "{err}");
        assert_eq!(pool.used(), 0, "partial convert fully unwinds");
    }

    #[test]
    fn bucket_charge_error_stays_under_the_delta() {
        let pool = MemPool::new("t", 256, 1 << 20).unwrap();
        let mut bucket = BucketCharge::new(&pool).unwrap();
        // Long keys: the old every-1024-keys policy would leave up to
        // 1023 × entry_bytes untracked; the byte-delta policy keeps the
        // gap below BUCKET_RESIZE_DELTA at every step.
        let entry = 200 + BUCKET_ENTRY_OVERHEAD;
        for i in 1..=500usize {
            bucket.add(entry).unwrap();
            assert!(
                bucket.untracked() < BUCKET_RESIZE_DELTA,
                "after {i} adds: {} untracked",
                bucket.untracked()
            );
            assert!(pool.used() >= (i * entry).saturating_sub(BUCKET_RESIZE_DELTA - 1));
        }
        bucket.settle().unwrap();
        assert_eq!(bucket.untracked(), 0);
        assert_eq!(pool.used(), 500 * entry, "settle charges exactly");
        drop(bucket);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn bucket_charge_takes_big_single_adds_immediately() {
        let pool = MemPool::new("t", 256, 1 << 20).unwrap();
        let mut bucket = BucketCharge::new(&pool).unwrap();
        bucket.add(10 * BUCKET_RESIZE_DELTA).unwrap();
        assert_eq!(bucket.untracked(), 0, "oversize add charges at once");
        assert_eq!(pool.used(), 10 * BUCKET_RESIZE_DELTA);
    }

    #[test]
    fn bucket_charge_growth_respects_the_budget() {
        // Budget smaller than the bucket: add() must fail, not overrun.
        let pool = MemPool::new("t", 256, 8 * 1024).unwrap();
        let mut bucket = BucketCharge::new(&pool).unwrap();
        let mut failed = false;
        for _ in 0..200 {
            if bucket.add(100).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "20 KB of adds into an 8 KB budget must fail");
        assert!(pool.used() <= 8 * 1024);
    }

    #[test]
    fn single_kv_single_group() {
        let pool = MemPool::new("t", 256, 64 * 1024).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::var());
        kvc.push(b"only", b"value").unwrap();
        let kmvc = convert(kvc, &pool).unwrap();
        assert_eq!(kmvc.n_groups(), 1);
        assert_eq!(kmvc.n_values(), 1);
        assert_eq!(kmvc.jumbos_held(), 0);
    }
}
