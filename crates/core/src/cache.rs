//! Cross-job KV cache with partition-stable placement.
//!
//! Iterative workloads (BFS levels, PageRank sweeps) traditionally pay a
//! full serialize → spill → reload → re-shuffle round trip between every
//! pair of chained jobs. Following M3R's in-memory MapReduce design
//! (arXiv 1208.4168), the [`KvCache`] keeps a job's output
//! [`KvContainer`]s resident under user-chosen names, together with the
//! [`PartitionFingerprint`] they were placed by. A chained job consumes a
//! cached input with zero serialization, and — when it declares the same
//! fingerprint and a partition-preserving map — with the shuffle elided
//! entirely (see `MapReduceJob::chain_*`).
//!
//! Memory accounting is the pool's, not a private ledger: a resident
//! container's pages stay charged to the node [`mimir_mem::MemPool`], so
//! the sched service's admission probes see cached bytes exactly like any
//! running job's footprint. When admission cannot place a job, the
//! service asks the cache to [`KvCache::evict_to_spill`] — least recently
//! used first, serialized page-wise into a [`SpillStore`] — so holding a
//! cache can never deadlock admission. An evicted entry transparently
//! reloads on its next use.
//!
//! The cache is per rank (placement *is* the point: partition `r` of a
//! cached dataset lives on rank `r`), shared across the jobs of that rank
//! via [`SharedKvCache`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mimir_io::{IoModel, SpillFile, SpillStore};
use mimir_mem::MemPool;
use mimir_obs::EventKind;

use crate::hash::fxhash64;
use crate::partitioner::PartitionFingerprint;
use crate::{KvContainer, KvMeta, MimirError, Result};

/// Cache-wide counters, mirrored into `RankReport`'s `cache` section.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Chained inputs found resident.
    pub hits: u64,
    /// Lookups of names the cache did not hold (cold starts and errors).
    pub misses: u64,
    /// Shuffles skipped because the input's fingerprint matched the job's.
    pub elisions: u64,
    /// Resident containers spilled to disk under memory pressure.
    pub evictions: u64,
    /// Evicted entries transparently reloaded from their spill files.
    pub reloads: u64,
    /// Payload bytes currently resident (charged against the pool).
    pub cached_bytes: u64,
}

/// Per-name diagnostic snapshot: `(name, resident payload bytes,
/// cumulative elisions)`. Names survive overwrites, so iterative chains
/// reusing one name accumulate their elision count.
pub type CacheEntrySnapshot = (String, u64, u64);

struct CacheEntry {
    /// In-memory pages, absent while evicted.
    resident: Option<KvContainer>,
    /// Spill file holding the serialized pages while evicted.
    spilled: Option<SpillFile>,
    meta: KvMeta,
    fingerprint: PartitionFingerprint,
    /// Payload bytes (resident or spilled).
    bytes: u64,
    /// LRU clock value at last touch.
    last_used: u64,
}

/// A checked-out cache entry: the container leaves the cache for the
/// duration of a chained job (so the cache lock is never held across user
/// callbacks) and is checked back in afterwards.
pub struct CheckedOut {
    /// The resident container, reloaded from spill if necessary.
    pub kvc: KvContainer,
    /// The placement identity recorded when the entry was cached.
    pub fingerprint: PartitionFingerprint,
}

/// The cross-job cache of one rank. See the module docs.
#[derive(Default)]
pub struct KvCache {
    entries: HashMap<String, CacheEntry>,
    /// Cumulative elisions per name; survives entry overwrites/removals.
    elisions_by_name: HashMap<String, u64>,
    stats: CacheStats,
    tick: u64,
    spill: Option<SpillStore>,
}

/// The shareable handle installed on `MimirContext` and held by the sched
/// service: one cache per rank, shared by every job that rank runs.
pub type SharedKvCache = Arc<Mutex<KvCache>>;

/// Creates a fresh shared cache handle.
pub fn shared_cache() -> SharedKvCache {
    Arc::new(Mutex::new(KvCache::default()))
}

impl KvCache {
    /// Retains `kvc` under `name`, replacing (and freeing) any previous
    /// entry of that name. The container's pages remain charged to its
    /// pool — that is what makes the cache admission-visible.
    pub fn insert(&mut self, name: &str, kvc: KvContainer, fingerprint: PartitionFingerprint) {
        self.tick += 1;
        let entry = CacheEntry {
            bytes: kvc.bytes(),
            meta: kvc.meta(),
            resident: Some(kvc),
            spilled: None,
            fingerprint,
            last_used: self.tick,
        };
        self.entries.insert(name.to_string(), entry);
        self.elisions_by_name.entry(name.to_string()).or_insert(0);
        self.refresh_cached_bytes();
    }

    /// Removes and returns the named entry, reloading it from spill if it
    /// was evicted. Counts a hit (resident) or a reload (spilled); a
    /// missing name counts a miss and errors.
    ///
    /// # Errors
    /// [`MimirError::Cache`] when the name was never cached; memory or
    /// I/O failures during a reload.
    pub fn checkout(&mut self, name: &str, pool: &MemPool) -> Result<CheckedOut> {
        let Some(mut entry) = self.entries.remove(name) else {
            self.stats.misses += 1;
            return Err(MimirError::Cache(format!(
                "chained input `{name}` is not cached on this rank"
            )));
        };
        let kvc = match entry.resident.take() {
            Some(kvc) => {
                self.stats.hits += 1;
                kvc
            }
            None => {
                let kvc = reload(&entry, name, pool)?;
                entry.spilled = None; // dropping the SpillFile deletes it
                self.stats.reloads += 1;
                kvc
            }
        };
        self.refresh_cached_bytes();
        Ok(CheckedOut {
            kvc,
            fingerprint: entry.fingerprint,
        })
    }

    /// Returns a checked-out container to the cache (chained jobs call
    /// this after their map finished reading it).
    pub fn checkin(&mut self, name: &str, out: CheckedOut) {
        self.insert(name, out.kvc, out.fingerprint);
    }

    /// Records one elided shuffle against `name`.
    pub fn note_elision(&mut self, name: &str) {
        self.stats.elisions += 1;
        *self.elisions_by_name.entry(name.to_string()).or_insert(0) += 1;
    }

    /// Records one lookup of a name the cache did not hold (cold-start
    /// probes by iterative drivers).
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Whether `name` is cached (resident or spilled). Does not count
    /// toward hit/miss statistics.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Runs `f` over the named container, reloading it from spill first
    /// if it was evicted (counts a hit or a reload accordingly).
    ///
    /// # Errors
    /// [`MimirError::Cache`] for an unknown name; reload failures.
    pub fn with_resident<R>(
        &mut self,
        name: &str,
        pool: &MemPool,
        f: impl FnOnce(&KvContainer) -> Result<R>,
    ) -> Result<R> {
        let out = self.checkout(name, pool)?;
        let result = f(&out.kvc);
        self.checkin(name, out);
        result
    }

    /// Spills the named entry's pages to disk and frees them from the
    /// pool. Returns the payload bytes released, or `None` when the entry
    /// is unknown or already evicted.
    ///
    /// # Errors
    /// Spill-file I/O failures.
    pub fn evict(&mut self, name: &str, io: &IoModel) -> Result<Option<u64>> {
        let evictable = self.entries.get(name).is_some_and(|e| e.resident.is_some());
        if !evictable {
            return Ok(None);
        }
        if self.spill.is_none() {
            self.spill = Some(SpillStore::new_temp_scoped("cache", "kv", io.clone())?);
        }
        let store = self.spill.as_ref().expect("spill store just ensured");
        let entry = self.entries.get_mut(name).expect("presence checked");
        let kvc = entry.resident.take().expect("residency checked");
        let mut file = store.create(name)?;
        kvc.for_each_page(|page| Ok(file.write_chunk(page)?))?;
        file.finish()?;
        drop(kvc); // pages credit the pool here
        entry.bytes = file.bytes();
        entry.spilled = Some(file);
        let freed = entry.bytes;
        self.stats.evictions += 1;
        mimir_obs::emit(EventKind::CacheEvict, fxhash64(name.as_bytes()), freed);
        self.refresh_cached_bytes();
        Ok(Some(freed))
    }

    /// Evicts least-recently-used entries until at least `target_bytes`
    /// of payload have been released or nothing resident remains.
    /// Returns the bytes released. This is the admission-pressure hook:
    /// the sched service calls it before declaring a footprint
    /// unsatisfiable.
    ///
    /// # Errors
    /// Spill-file I/O failures.
    pub fn evict_to_spill(&mut self, target_bytes: u64, io: &IoModel) -> Result<u64> {
        let mut freed = 0u64;
        while freed < target_bytes {
            let Some(victim) = self
                .entries
                .iter()
                .filter(|(_, e)| e.resident.is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(n, _)| n.clone())
            else {
                break;
            };
            freed += self.evict(&victim, io)?.unwrap_or(0);
        }
        Ok(freed)
    }

    /// Payload bytes currently resident (and therefore evictable).
    pub fn resident_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter_map(|e| e.resident.as_ref())
            .map(KvContainer::bytes)
            .sum()
    }

    /// Drops the named entry entirely (pages freed, spill file deleted).
    pub fn remove(&mut self, name: &str) {
        self.entries.remove(name);
        self.refresh_cached_bytes();
    }

    /// Drops every entry. Iterative drivers call this when a chain ends
    /// so a finished workload holds nothing against the shared budget.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.refresh_cached_bytes();
    }

    /// Number of cached names (resident or spilled).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache-wide counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Per-name `(name, resident bytes, elisions)` snapshots, sorted by
    /// name for stable output. Names whose entries were removed but that
    /// accumulated elisions still appear with zero bytes.
    pub fn entry_snapshots(&self) -> Vec<CacheEntrySnapshot> {
        let mut names: Vec<&String> = self
            .entries
            .keys()
            .chain(self.elisions_by_name.keys())
            .collect();
        names.sort();
        names.dedup();
        names
            .into_iter()
            .map(|n| {
                let bytes = self
                    .entries
                    .get(n)
                    .and_then(|e| e.resident.as_ref())
                    .map_or(0, KvContainer::bytes);
                let elisions = self.elisions_by_name.get(n).copied().unwrap_or(0);
                (n.clone(), bytes, elisions)
            })
            .collect()
    }

    fn refresh_cached_bytes(&mut self) {
        self.stats.cached_bytes = self.resident_bytes();
    }
}

/// Rebuilds a container from an evicted entry's spill file. Chunks are
/// whole pages, and pages end at KV boundaries, so `push_run` re-pages
/// them without decoding individual KVs.
fn reload(entry: &CacheEntry, name: &str, pool: &MemPool) -> Result<KvContainer> {
    let file = entry
        .spilled
        .as_ref()
        .ok_or_else(|| MimirError::Cache(format!("entry `{name}` has neither pages nor spill")))?;
    let mut kvc = KvContainer::new(pool, entry.meta);
    let mut reader = file.read_chunks()?;
    while let Some(chunk) = reader.next_chunk()? {
        kvc.push_run(&chunk)?;
    }
    mimir_obs::emit(
        EventKind::CacheReload,
        fxhash64(name.as_bytes()),
        kvc.bytes(),
    );
    Ok(kvc)
}

/// Locks a [`SharedKvCache`], recovering from poisoning (a panicked
/// sibling job must not wedge every later job on the rank).
pub fn lock_cache(cache: &SharedKvCache) -> std::sync::MutexGuard<'_, KvCache> {
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partitioner;

    fn filled(pool: &MemPool, n: u64) -> KvContainer {
        let mut kvc = KvContainer::new(pool, KvMeta::fixed(8, 8));
        for i in 0..n {
            kvc.push(&i.to_le_bytes(), &(i * 3).to_le_bytes()).unwrap();
        }
        kvc
    }

    fn collect(kvc: &KvContainer) -> Vec<(u64, u64)> {
        kvc.iter()
            .map(|(k, v)| {
                (
                    u64::from_le_bytes(k.try_into().unwrap()),
                    u64::from_le_bytes(v.try_into().unwrap()),
                )
            })
            .collect()
    }

    #[test]
    fn insert_checkout_roundtrip_counts_hits() {
        let pool = MemPool::unlimited("t", 4096);
        let mut cache = KvCache::default();
        let fp = Partitioner::hash().fingerprint(4);
        cache.insert("a", filled(&pool, 100), fp);
        assert!(cache.contains("a"));
        assert_eq!(cache.stats().cached_bytes, 1600);

        let out = cache.checkout("a", &pool).unwrap();
        assert_eq!(out.fingerprint, fp);
        assert_eq!(collect(&out.kvc).len(), 100);
        assert_eq!(cache.stats().hits, 1);
        assert!(!cache.contains("a"));
        cache.checkin("a", out);
        assert!(cache.contains("a"));

        assert!(matches!(
            cache.checkout("missing", &pool),
            Err(MimirError::Cache(_))
        ));
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn evict_frees_pool_and_reload_restores_bytes() {
        let pool = MemPool::unlimited("t", 4096);
        let io = IoModel::free();
        let mut cache = KvCache::default();
        let fp = Partitioner::hash().fingerprint(1);
        let original = {
            let kvc = filled(&pool, 1000);
            let data = collect(&kvc);
            cache.insert("big", kvc, fp);
            data
        };
        let used_resident = pool.used();
        assert!(used_resident > 0);

        let freed = cache.evict("big", &io).unwrap().unwrap();
        assert_eq!(freed, 16_000);
        assert_eq!(pool.used(), 0, "eviction released every page");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().cached_bytes, 0);
        assert!(cache.contains("big"), "evicted, not forgotten");
        // Evicting an already-evicted entry is a no-op.
        assert_eq!(cache.evict("big", &io).unwrap(), None);

        let out = cache.checkout("big", &pool).unwrap();
        assert_eq!(collect(&out.kvc), original, "reload is lossless");
        assert_eq!(cache.stats().reloads, 1);
        cache.checkin("big", out);
        assert_eq!(pool.used(), used_resident);
    }

    #[test]
    fn evict_to_spill_takes_lru_first() {
        let pool = MemPool::unlimited("t", 4096);
        let io = IoModel::free();
        let mut cache = KvCache::default();
        let fp = Partitioner::hash().fingerprint(1);
        cache.insert("old", filled(&pool, 10), fp);
        cache.insert("new", filled(&pool, 10), fp);
        // Touch "old" so "new"... no: insertion order makes "old" LRU.
        let freed = cache.evict_to_spill(1, &io).unwrap();
        assert_eq!(freed, 160);
        let snaps = cache.entry_snapshots();
        let old = snaps.iter().find(|(n, _, _)| n == "old").unwrap();
        let new = snaps.iter().find(|(n, _, _)| n == "new").unwrap();
        assert_eq!(old.1, 0, "LRU entry was evicted");
        assert_eq!(new.1, 160, "recently inserted entry stayed resident");

        // Demanding more than everything evicts everything and stops.
        let freed = cache.evict_to_spill(u64::MAX, &io).unwrap();
        assert_eq!(freed, 160);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn snapshots_track_elisions_across_overwrites() {
        let pool = MemPool::unlimited("t", 4096);
        let mut cache = KvCache::default();
        let fp = Partitioner::hash().fingerprint(1);
        cache.insert("x", filled(&pool, 5), fp);
        cache.note_elision("x");
        cache.insert("x", filled(&pool, 7), fp); // overwrite
        cache.note_elision("x");
        let snaps = cache.entry_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0], ("x".to_string(), 7 * 16, 2));
        assert_eq!(cache.stats().elisions, 2);
        cache.remove("x");
        assert_eq!(
            cache.entry_snapshots()[0],
            ("x".to_string(), 0, 2),
            "elision history survives removal"
        );
    }

    #[test]
    fn clear_releases_everything() {
        let pool = MemPool::unlimited("t", 4096);
        let mut cache = KvCache::default();
        let fp = Partitioner::hash().fingerprint(1);
        cache.insert("a", filled(&pool, 50), fp);
        cache.insert("b", filled(&pool, 50), fp);
        assert!(pool.used() > 0);
        cache.clear();
        assert_eq!(pool.used(), 0);
        assert!(cache.is_empty());
    }
}
