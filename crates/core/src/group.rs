//! The shared grouping engine: an open-addressing, arena-keyed group
//! index used by convert pass 1, the KV-compression combiner, and
//! partial reduction.
//!
//! All three consumers answer the same question — "which group does this
//! key belong to?" — and previously answered it with
//! `HashMap<Vec<u8>, …>`: one heap allocation per unique key, a copy of
//! every key, and SipHash-free but still repeated hashing. [`GroupIndex`]
//! replaces that with:
//!
//! * **Dense entries in first-occurrence order.** Group ids are indices
//!   into an insertion-ordered entry array, so iterating ids `0..len`
//!   reproduces first-occurrence key order — the property the reduce
//!   output determinism test pins.
//! * **A compact slot table.** Each slot is one `u64` packing a 32-bit
//!   hash tag with a 32-bit group id. Probing is linear from a
//!   multiply-shift start slot ([`crate::hash::fast_range`], no `%`);
//!   the tag filters almost all false candidates before any key bytes
//!   are touched.
//! * **Interned keys.** Key bytes append into pool pages (oversize keys
//!   into pool-tracked jumbo buffers) — no per-key `Vec<u8>`, and the
//!   arena is charged to the node budget page by page.
//! * **Stored hashes.** Every entry keeps its full 64-bit hash, so
//!   growth rehashes without re-reading key bytes, and consumers can
//!   reuse the hash downstream (e.g. the shuffle partition of a combined
//!   KV via [`crate::Emitter::emit_hashed`]).
//!
//! Non-page metadata (the entry array and the slot table) is charged
//! through [`DeltaCharge`], which batches reservation resizes so pool
//! atomics are touched once per ~4 KiB of growth rather than per key.

use mimir_mem::MemPool;

use crate::buffer::TrackedBuf;
use crate::hash::{fast_range, fxhash64};
use crate::Result;

/// Maximum bytes a [`DeltaCharge`] may consume beyond its reservation.
///
/// Tables grow key by key; re-reserving on every insert would round-trip
/// the pool's atomics per unique key, so growth is batched. Batching by
/// *bytes* (not by key count, which with long keys could leave hundreds
/// of KiB untracked) bounds the accounting error to this constant
/// regardless of key length.
pub(crate) const RESIZE_DELTA: usize = 4096;

/// Incremental pool charge for growing table state: accumulates byte
/// deltas and settles them into a [`mimir_mem::Reservation`] whenever the
/// untracked amount reaches [`RESIZE_DELTA`].
pub(crate) struct DeltaCharge {
    res: mimir_mem::Reservation,
    /// Bytes the reservation currently covers.
    charged: usize,
    /// Bytes the owner actually holds.
    pending: usize,
}

impl DeltaCharge {
    pub fn new(pool: &MemPool) -> Result<Self> {
        Ok(Self {
            res: pool.try_reserve(0)?,
            charged: 0,
            pending: 0,
        })
    }

    /// Records `bytes` of growth, charging the pool once the untracked
    /// delta reaches the threshold. A single growth larger than the
    /// threshold is charged immediately.
    pub fn add(&mut self, bytes: usize) -> Result<()> {
        self.pending += bytes;
        self.maybe_settle()?;
        debug_assert!(self.untracked() < RESIZE_DELTA);
        Ok(())
    }

    /// Records `bytes` of release (e.g. the old slot table freed by a
    /// rehash), crediting the pool once the delta reaches the threshold.
    pub fn sub(&mut self, bytes: usize) -> Result<()> {
        self.pending = self.pending.saturating_sub(bytes);
        self.maybe_settle()
    }

    fn maybe_settle(&mut self) -> Result<()> {
        if self.pending.abs_diff(self.charged) >= RESIZE_DELTA {
            self.res.resize(self.pending)?;
            self.charged = self.pending;
        }
        Ok(())
    }

    /// Charges or credits any remaining untracked bytes.
    pub fn settle(&mut self) -> Result<()> {
        if self.charged != self.pending {
            self.res.resize(self.pending)?;
            self.charged = self.pending;
        }
        Ok(())
    }

    /// Bytes held but not yet charged to the pool (absolute drift).
    pub fn untracked(&self) -> usize {
        self.pending.abs_diff(self.charged)
    }
}

/// Where one interned key lives: a page or jumbo index (top bit selects
/// jumbo), a byte offset, and a length.
#[derive(Debug, Clone, Copy)]
struct KeyRef {
    loc: u32,
    off: u32,
    len: u32,
}

const JUMBO_BIT: u32 = 1 << 31;

/// One group: its full hash plus the interned key location.
#[derive(Debug, Clone, Copy)]
struct Entry {
    hash: u64,
    key: KeyRef,
}

/// Heap bytes one entry occupies beyond its interned key bytes.
const ENTRY_BYTES: usize = std::mem::size_of::<Entry>();
/// An unoccupied slot. Real slots can never collide with this value
/// because group ids are capped below `u32::MAX`.
const EMPTY: u64 = u64::MAX;
/// Number of probe-length histogram buckets (0, 1, 2, 3, 4–7, 8–15,
/// 16–31, 32+).
pub const PROBE_HIST_BUCKETS: usize = 8;

/// Counters describing one [`GroupIndex`] (or the merged tables of a
/// job). Cumulative across [`GroupIndex::clear`], so a streaming
/// combiner's repeated flushes accumulate rather than reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Keys looked up or inserted (one per KV routed through the table).
    pub inserts: u64,
    /// Total probe steps beyond the home slot across all inserts.
    pub probes: u64,
    /// Longest single probe sequence observed.
    pub max_probe: u64,
    /// Slot-table rebuilds (growth events with at least one live entry).
    pub rehashes: u64,
    /// Key bytes interned into the arena.
    pub interned_bytes: u64,
    /// Unique keys (live groups at measurement time, summed over
    /// clears).
    pub groups: u64,
    /// Slot-table capacity at measurement time.
    pub capacity: u64,
    /// Probe-length histogram: buckets 0, 1, 2, 3, 4–7, 8–15, 16–31,
    /// 32+.
    pub probe_hist: [u64; PROBE_HIST_BUCKETS],
}

impl GroupStats {
    /// Folds another table's counters into this one: traffic counters
    /// and the histogram sum, extremes take the max.
    pub fn merge(&mut self, other: &GroupStats) {
        self.inserts += other.inserts;
        self.probes += other.probes;
        self.max_probe = self.max_probe.max(other.max_probe);
        self.rehashes += other.rehashes;
        self.interned_bytes += other.interned_bytes;
        self.groups += other.groups;
        self.capacity = self.capacity.max(other.capacity);
        for (a, b) in self.probe_hist.iter_mut().zip(other.probe_hist.iter()) {
            *a += *b;
        }
    }

    /// Mean probe steps per insert (0 when nothing was inserted).
    pub fn avg_probe(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.probes as f64 / self.inserts as f64
        }
    }

    /// Live groups over slot capacity (0 when the table never grew).
    pub fn load_factor(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.groups as f64 / self.capacity as f64
        }
    }

    /// The histogram bucket a probe length falls into.
    pub fn probe_bucket(probe: u64) -> usize {
        match probe {
            0..=3 => probe as usize,
            4..=7 => 4,
            8..=15 => 5,
            16..=31 => 6,
            _ => 7,
        }
    }
}

/// The grouping engine. See the module docs for the layout.
pub struct GroupIndex {
    entries: Vec<Entry>,
    /// Open-addressing slot table: `(hash_tag << 32) | group_id`, or
    /// [`EMPTY`]. Length is a power of two (or zero before first use).
    slots: Vec<u64>,
    /// Key arena: fixed-size pool pages filled append-only.
    pages: Vec<mimir_mem::Page>,
    /// Keys longer than one page, each in its own tracked buffer.
    jumbos: Vec<TrackedBuf>,
    pool: MemPool,
    charge: DeltaCharge,
    stats: GroupStats,
}

#[inline]
fn slot_tag(hash: u64) -> u64 {
    // The slot index consumes the hash's high bits (multiply-shift), so
    // the tag takes the low 32 to stay independent of placement.
    u64::from(hash as u32) << 32
}

/// Golden-ratio remix applied to the hash before slot placement.
///
/// The shuffle partitioner routes a key to its rank by `fast_range` on
/// the *same* high hash bits ([`crate::hash::partition_of`]), so the
/// keys a rank's convert sees all live in one `1/p`-wide band of the
/// 64-bit space — mapped raw, they would pile into the same `1/p` slice
/// of the slot table and probe lengths would degenerate to the table
/// size. One odd-constant multiply makes the consumed high bits depend
/// on every bit of the hash again, decorrelating table placement from
/// partition routing.
const SLOT_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn start_slot(hash: u64, cap: usize) -> usize {
    fast_range(hash.wrapping_mul(SLOT_MIX), cap)
}

#[inline]
fn key_at<'a>(pages: &'a [mimir_mem::Page], jumbos: &'a [TrackedBuf], r: KeyRef) -> &'a [u8] {
    if r.len == 0 {
        return &[];
    }
    let (off, len) = (r.off as usize, r.len as usize);
    if r.loc & JUMBO_BIT != 0 {
        &jumbos[(r.loc & !JUMBO_BIT) as usize].as_slice()[off..off + len]
    } else {
        &pages[r.loc as usize].as_slice()[off..off + len]
    }
}

impl GroupIndex {
    /// Creates an empty index charging `pool`. No memory is taken until
    /// the first insert.
    ///
    /// # Errors
    /// Memory exhaustion registering the (zero-byte) reservation.
    pub fn new(pool: &MemPool) -> Result<Self> {
        Ok(Self {
            entries: Vec::new(),
            slots: Vec::new(),
            pages: Vec::new(),
            jumbos: Vec::new(),
            pool: pool.clone(),
            charge: DeltaCharge::new(pool)?,
            stats: GroupStats::default(),
        })
    }

    /// Looks up `key` under a precomputed `hash` (which must be
    /// `fxhash64(key)`), inserting a new group if absent. Returns the
    /// group id and whether it was newly created.
    ///
    /// Looking up an existing key performs no heap allocation — the hot
    /// path of skewed workloads is probe + tag compare + one key
    /// comparison.
    ///
    /// # Errors
    /// Memory exhaustion growing the table or interning the key.
    pub fn insert_hashed(&mut self, hash: u64, key: &[u8]) -> Result<(u32, bool)> {
        debug_assert_eq!(hash, fxhash64(key), "hash must be fxhash64 of key");
        if (self.entries.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow()?;
        }
        let cap = self.slots.len();
        let mask = cap - 1;
        let tag = slot_tag(hash);
        let mut i = start_slot(hash, cap);
        let mut probe = 0u64;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                let id = self.entries.len();
                assert!(id < u32::MAX as usize - 1, "group id space exhausted");
                let key_ref = self.intern(key)?;
                self.charge.add(ENTRY_BYTES)?;
                self.entries.push(Entry { hash, key: key_ref });
                self.slots[i] = tag | id as u64;
                self.note_probe(probe);
                return Ok((id as u32, true));
            }
            if s & !0xFFFF_FFFF == tag {
                let id = (s & 0xFFFF_FFFF) as u32;
                let e = self.entries[id as usize];
                if e.hash == hash && key_at(&self.pages, &self.jumbos, e.key) == key {
                    self.note_probe(probe);
                    return Ok((id, false));
                }
            }
            probe += 1;
            i = (i + 1) & mask;
        }
    }

    /// [`Self::insert_hashed`] hashing the key itself.
    pub fn insert(&mut self, key: &[u8]) -> Result<(u32, bool)> {
        self.insert_hashed(fxhash64(key), key)
    }

    /// The group id of `key`, if present. Read-only probe; records no
    /// statistics.
    pub fn get(&self, key: &[u8]) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let hash = fxhash64(key);
        let cap = self.slots.len();
        let mask = cap - 1;
        let tag = slot_tag(hash);
        let mut i = start_slot(hash, cap);
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return None;
            }
            if s & !0xFFFF_FFFF == tag {
                let id = (s & 0xFFFF_FFFF) as u32;
                let e = self.entries[id as usize];
                if e.hash == hash && key_at(&self.pages, &self.jumbos, e.key) == key {
                    return Some(id);
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// The interned key bytes of group `id`.
    ///
    /// # Panics
    /// `id` must be a live group id.
    #[inline]
    pub fn key(&self, id: u32) -> &[u8] {
        key_at(&self.pages, &self.jumbos, self.entries[id as usize].key)
    }

    /// The stored hash of group `id`.
    #[inline]
    pub fn hash_of(&self, id: u32) -> u64 {
        self.entries[id as usize].hash
    }

    /// Number of live groups.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no groups exist.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Slot-table capacity (0 before the first insert).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Drops all groups and interned keys but keeps the slot table (and
    /// its pool charge) at its current capacity, so a table that flushes
    /// repeatedly — the streaming combiner — does not regrow from
    /// scratch each cycle. Statistics are cumulative across clears.
    pub fn clear(&mut self) -> Result<()> {
        self.charge.sub(self.entries.len() * ENTRY_BYTES)?;
        self.stats.groups += self.entries.len() as u64;
        self.entries.clear();
        self.slots.fill(EMPTY);
        self.pages.clear();
        self.jumbos.clear();
        Ok(())
    }

    /// [`Self::clear`] plus a full release of the slot table: the index
    /// returns to its freshly-created footprint (zero pool bytes modulo
    /// charge batching). Used for final flushes, where retained capacity
    /// would outlive its last use.
    pub fn reset(&mut self) -> Result<()> {
        self.clear()?;
        self.charge.sub(self.slots.len() * 8)?;
        self.slots = Vec::new();
        self.charge.settle()
    }

    /// A snapshot of the table's counters.
    pub fn stats(&self) -> GroupStats {
        GroupStats {
            groups: self.stats.groups + self.entries.len() as u64,
            capacity: self.slots.len() as u64,
            ..self.stats
        }
    }

    #[inline]
    fn note_probe(&mut self, probe: u64) {
        self.stats.inserts += 1;
        self.stats.probes += probe;
        self.stats.max_probe = self.stats.max_probe.max(probe);
        self.stats.probe_hist[GroupStats::probe_bucket(probe)] += 1;
    }

    /// Doubles the slot table (first growth: 16 slots) and re-places
    /// every entry from its stored hash — key bytes are never re-read.
    fn grow(&mut self) -> Result<()> {
        let old_cap = self.slots.len();
        let new_cap = (old_cap * 2).max(16);
        self.charge.add(new_cap * 8)?;
        let mut slots = vec![EMPTY; new_cap];
        let mask = new_cap - 1;
        for (id, e) in self.entries.iter().enumerate() {
            let mut i = start_slot(e.hash, new_cap);
            while slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = slot_tag(e.hash) | id as u64;
        }
        self.slots = slots;
        self.charge.sub(old_cap * 8)?;
        if !self.entries.is_empty() {
            self.stats.rehashes += 1;
            mimir_obs::emit(
                mimir_obs::EventKind::GroupRehash,
                new_cap as u64,
                self.entries.len() as u64,
            );
        }
        Ok(())
    }

    /// Appends `key` into the arena: the current page if it fits, a
    /// fresh page otherwise, or a dedicated jumbo buffer when the key
    /// exceeds the page size.
    fn intern(&mut self, key: &[u8]) -> Result<KeyRef> {
        assert!(key.len() <= u32::MAX as usize, "key exceeds u32 length");
        self.stats.interned_bytes += key.len() as u64;
        if key.is_empty() {
            return Ok(KeyRef {
                loc: 0,
                off: 0,
                len: 0,
            });
        }
        if key.len() > self.pool.page_size() {
            let mut buf = TrackedBuf::new(&self.pool, key.len())?;
            buf.as_mut_slice().copy_from_slice(key);
            assert!(self.jumbos.len() < JUMBO_BIT as usize);
            self.jumbos.push(buf);
            return Ok(KeyRef {
                loc: JUMBO_BIT | (self.jumbos.len() as u32 - 1),
                off: 0,
                len: key.len() as u32,
            });
        }
        let fits = self
            .pages
            .last()
            .map(|p| p.remaining() >= key.len())
            .unwrap_or(false);
        if !fits {
            self.pages.push(self.pool.alloc_page()?);
        }
        let page = self.pages.last_mut().expect("page just ensured");
        let off = page.len();
        let ok = page.try_write(key);
        debug_assert!(ok, "key fits the page by construction");
        Ok(KeyRef {
            loc: self.pages.len() as u32 - 1,
            off: off as u32,
            len: key.len() as u32,
        })
    }
}

impl std::fmt::Debug for GroupIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupIndex")
            .field("groups", &self.entries.len())
            .field("capacity", &self.slots.len())
            .field("pages", &self.pages.len())
            .field("jumbos", &self.jumbos.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_assigns_first_occurrence_ids() {
        let pool = MemPool::unlimited("t", 4096);
        let mut ix = GroupIndex::new(&pool).unwrap();
        assert_eq!(ix.insert(b"apple").unwrap(), (0, true));
        assert_eq!(ix.insert(b"banana").unwrap(), (1, true));
        assert_eq!(ix.insert(b"apple").unwrap(), (0, false));
        assert_eq!(ix.insert(b"cherry").unwrap(), (2, true));
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.key(0), b"apple");
        assert_eq!(ix.key(1), b"banana");
        assert_eq!(ix.key(2), b"cherry");
        assert_eq!(ix.hash_of(1), fxhash64(b"banana"));
        assert_eq!(ix.get(b"cherry"), Some(2));
        assert_eq!(ix.get(b"durian"), None);
    }

    #[test]
    fn empty_key_is_a_valid_group() {
        let pool = MemPool::unlimited("t", 4096);
        let mut ix = GroupIndex::new(&pool).unwrap();
        assert_eq!(ix.insert(b"").unwrap(), (0, true));
        assert_eq!(ix.insert(b"x").unwrap(), (1, true));
        assert_eq!(ix.insert(b"").unwrap(), (0, false));
        assert_eq!(ix.key(0), b"");
        assert_eq!(ix.get(b""), Some(0));
    }

    #[test]
    fn oversize_keys_go_to_jumbos() {
        let pool = MemPool::unlimited("t", 64);
        let mut ix = GroupIndex::new(&pool).unwrap();
        let big = vec![7u8; 500];
        let (id, fresh) = ix.insert(&big).unwrap();
        assert!(fresh);
        assert_eq!(ix.key(id), &big[..]);
        assert_eq!(ix.insert(&big).unwrap(), (id, false));
        let small = b"tiny";
        let (id2, _) = ix.insert(small).unwrap();
        assert_eq!(ix.key(id2), small);
    }

    #[test]
    fn growth_preserves_every_group() {
        let pool = MemPool::unlimited("t", 4096);
        let mut ix = GroupIndex::new(&pool).unwrap();
        let keys: Vec<Vec<u8>> = (0..5000u32)
            .map(|i| format!("key-{i}").into_bytes())
            .collect();
        for k in &keys {
            ix.insert(k).unwrap();
        }
        assert_eq!(ix.len(), keys.len());
        for (want, k) in keys.iter().enumerate() {
            assert_eq!(ix.get(k), Some(want as u32), "key {want} survives growth");
            assert_eq!(ix.key(want as u32), &k[..]);
        }
        let s = ix.stats();
        assert!(
            s.rehashes >= 7,
            "5000 keys from 16 slots: {} rehashes",
            s.rehashes
        );
        assert!(s.capacity >= 8192);
        assert!(s.load_factor() <= 0.75 + 1e-9);
        assert_eq!(s.probe_hist.iter().sum::<u64>(), s.inserts);
    }

    #[test]
    fn memory_is_charged_and_released() {
        let pool = MemPool::new("t", 256, 1 << 20).unwrap();
        let mut ix = GroupIndex::new(&pool).unwrap();
        for i in 0..2000u32 {
            ix.insert(format!("key-{i}").as_bytes()).unwrap();
        }
        // At minimum the interned key bytes (page-granular) are charged.
        let interned: usize = (0..2000).map(|i| format!("key-{i}").len()).sum();
        assert!(pool.used() >= interned, "{} < {interned}", pool.used());
        drop(ix);
        assert_eq!(pool.used(), 0, "drop releases pages, jumbos, and charge");
    }

    #[test]
    fn budget_exhaustion_is_oom_not_panic() {
        let pool = MemPool::new("t", 256, 8 * 1024).unwrap();
        let mut ix = GroupIndex::new(&pool).unwrap();
        let mut failed = false;
        for i in 0..100_000u32 {
            if ix
                .insert(format!("unique-key-number-{i}").as_bytes())
                .is_err()
            {
                failed = true;
                break;
            }
        }
        assert!(failed, "unbounded inserts into an 8 KiB budget must fail");
        drop(ix);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn clear_keeps_capacity_but_drops_groups() {
        let pool = MemPool::new("t", 256, 1 << 20).unwrap();
        let mut ix = GroupIndex::new(&pool).unwrap();
        for i in 0..500u32 {
            ix.insert(format!("k{i}").as_bytes()).unwrap();
        }
        let cap = ix.capacity();
        let groups_before = ix.stats().groups;
        ix.clear().unwrap();
        assert_eq!(ix.len(), 0);
        assert_eq!(ix.capacity(), cap, "slot table survives clear");
        assert_eq!(ix.get(b"k3"), None);
        // Reinsert: ids restart from zero, no rehash needed.
        let r1 = ix.stats().rehashes;
        assert_eq!(ix.insert(b"k3").unwrap(), (0, true));
        assert_eq!(ix.stats().rehashes, r1);
        assert!(groups_before > 0);
    }

    #[test]
    fn stats_track_probes_and_histogram() {
        let pool = MemPool::unlimited("t", 4096);
        let mut ix = GroupIndex::new(&pool).unwrap();
        for i in 0..1000u32 {
            ix.insert(&i.to_le_bytes()).unwrap();
        }
        for i in 0..1000u32 {
            ix.insert(&i.to_le_bytes()).unwrap(); // all hits
        }
        let s = ix.stats();
        assert_eq!(s.inserts, 2000);
        assert_eq!(s.groups, 1000);
        assert!(
            s.avg_probe() < 4.0,
            "open addressing at 0.75: {}",
            s.avg_probe()
        );
        assert!(s.max_probe >= 1, "some collision occurs at this scale");
        assert_eq!(s.probe_hist.iter().sum::<u64>(), 2000);
    }

    #[test]
    fn stats_merge_sums_and_maxes() {
        let mut a = GroupStats {
            inserts: 10,
            probes: 5,
            max_probe: 3,
            rehashes: 1,
            interned_bytes: 100,
            groups: 4,
            capacity: 16,
            probe_hist: [5, 3, 1, 1, 0, 0, 0, 0],
        };
        let b = GroupStats {
            inserts: 20,
            probes: 2,
            max_probe: 7,
            rehashes: 2,
            interned_bytes: 50,
            groups: 6,
            capacity: 8,
            probe_hist: [18, 2, 0, 0, 0, 0, 0, 0],
        };
        a.merge(&b);
        assert_eq!(a.inserts, 30);
        assert_eq!(a.probes, 7);
        assert_eq!(a.max_probe, 7);
        assert_eq!(a.rehashes, 3);
        assert_eq!(a.interned_bytes, 150);
        assert_eq!(a.groups, 10);
        assert_eq!(a.capacity, 16);
        assert_eq!(a.probe_hist, [23, 5, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn delta_charge_error_stays_under_the_delta() {
        let pool = MemPool::new("t", 256, 1 << 20).unwrap();
        let mut charge = DeltaCharge::new(&pool).unwrap();
        // Long keys: a per-key-count policy would leave up to
        // count × entry_bytes untracked; the byte-delta policy keeps the
        // gap below RESIZE_DELTA at every step.
        let entry = 264;
        for i in 1..=500usize {
            charge.add(entry).unwrap();
            assert!(
                charge.untracked() < RESIZE_DELTA,
                "after {i} adds: {} untracked",
                charge.untracked()
            );
            assert!(pool.used() >= (i * entry).saturating_sub(RESIZE_DELTA - 1));
        }
        charge.settle().unwrap();
        assert_eq!(charge.untracked(), 0);
        assert_eq!(pool.used(), 500 * entry, "settle charges exactly");
        drop(charge);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn delta_charge_takes_big_single_adds_immediately() {
        let pool = MemPool::new("t", 256, 1 << 20).unwrap();
        let mut charge = DeltaCharge::new(&pool).unwrap();
        charge.add(10 * RESIZE_DELTA).unwrap();
        assert_eq!(charge.untracked(), 0, "oversize add charges at once");
        assert_eq!(pool.used(), 10 * RESIZE_DELTA);
    }

    #[test]
    fn delta_charge_growth_respects_the_budget() {
        // Budget smaller than the table: add() must fail, not overrun.
        let pool = MemPool::new("t", 256, 8 * 1024).unwrap();
        let mut charge = DeltaCharge::new(&pool).unwrap();
        let mut failed = false;
        for _ in 0..200 {
            if charge.add(100).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "20 KB of adds into an 8 KB budget must fail");
        assert!(pool.used() <= 8 * 1024);
    }

    #[test]
    fn delta_charge_sub_credits_the_pool() {
        let pool = MemPool::new("t", 256, 1 << 20).unwrap();
        let mut charge = DeltaCharge::new(&pool).unwrap();
        charge.add(100 * 1024).unwrap();
        charge.sub(60 * 1024).unwrap();
        charge.settle().unwrap();
        assert_eq!(pool.used(), 40 * 1024);
    }
}
