//! Cooperative job cancellation.
//!
//! A [`CancelToken`] is a shared flag the owner (typically a scheduler on
//! the same rank, or any thread) can raise at any time; the job observes
//! it at **phase boundaries**, where every rank is already synchronizing.
//!
//! The check is itself collective: each rank contributes its local view of
//! the flag to an `allreduce Max` on the job's own communicator, so either
//! *all* ranks abandon the job at the same boundary or none do — a rank
//! can never run `convert` while a peer has already bailed out of the
//! matching collective sequence. Raising the flag on a single rank is
//! therefore enough to cancel the whole job. When no token is installed
//! the checkpoints cost nothing (no extra collectives).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag for one job (cheaply clonable; all clones
/// observe the same flag).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-raised token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; callable from any thread. The
    /// job stops at its next phase boundary with
    /// [`crate::MimirError::Cancelled`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// This clone's local view of the flag (the collective checkpoint is
    /// what makes the *global* decision).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t2.is_cancelled());
        t.cancel();
        assert!(t2.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }
}
