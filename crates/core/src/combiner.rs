//! KV compression — the map-side combiner (paper Section III-C2).
//!
//! When enabled, map emissions land in a fold table instead of the send
//! buffer; a KV whose key is already present is merged with the resident
//! KV by the user's compression callback. Only when the map completes is
//! the table flushed into the shuffle ("the aggregate phase is delayed
//! until all KVs are compressed to maximize the benefit").
//!
//! Under [`GroupingMode::Arena`] (the default) the fold table runs on the
//! shared [`GroupIndex`] engine: keys are interned into pool-page arenas
//! and hashed exactly once per emitted KV, values merge in place, and the
//! flush hands each KV's stored hash to the shuffle via
//! [`Emitter::emit_hashed`] so partitioning does not re-hash. The
//! original `HashMap<Vec<u8>, Vec<u8>>` bucket survives as
//! [`GroupingMode::Legacy`] for ablations.
//!
//! The paper is explicit about the cost side, and this implementation
//! keeps it measurable: the table is charged to the node pool, so "it
//! reduces memory usage only if the compression ratio reaches a certain
//! threshold", and the per-KV probe shows up as compute time.

use std::collections::HashMap;

use mimir_mem::{MemPool, Reservation};

use crate::group::{GroupIndex, GroupStats};
use crate::hash::{fxhash64, FxBuild};
use crate::kv::validate;
use crate::shuffle::Emitter;
use crate::{GroupingMode, KvMeta, Result};

/// User callback merging two values of the same key:
/// `combine(key, accumulated, incoming, out)` writes the merged value to
/// `out`. Correctness requires the operation to be commutative and
/// associative, which is why this is an explicit opt-in.
pub type CombineFn<'f> = Box<dyn FnMut(&[u8], &[u8], &[u8], &mut Vec<u8>) + 'f>;

/// The grouping engine behind a [`FoldTable`]. The arena variant is
/// boxed: it is several pointers larger than the legacy map, and the
/// table lives behind long-lived owners (reducer, combiner), so one
/// indirection at creation beats carrying the size difference.
enum FoldInner {
    /// `HashMap` bucket: owns both keys and values (ablation baseline).
    Legacy {
        map: HashMap<Vec<u8>, Vec<u8>, FxBuild>,
    },
    /// [`GroupIndex`] keys + dense value array indexed by group id.
    Arena {
        index: Box<GroupIndex>,
        vals: Vec<Vec<u8>>,
    },
}

/// A pool-tracked fold table shared by KV compression and partial
/// reduction: key → current merged value.
pub(crate) struct FoldTable<'f> {
    inner: FoldInner,
    res: Reservation,
    acc_bytes: usize,
    reserved: usize,
    scratch: Vec<u8>,
    combine: CombineFn<'f>,
    n_folded: u64,
}

/// Estimated heap cost of one legacy table entry beyond key/value
/// payloads (HashMap slot + two `Vec` headers).
const TABLE_ENTRY_OVERHEAD: usize = 64;
/// Estimated heap cost of one arena value slot beyond the value bytes
/// (`Vec` header + allocator rounding). Keys and entry metadata are
/// charged by the [`GroupIndex`] itself.
const ARENA_VAL_OVERHEAD: usize = 32;
/// Accounting slack before the reservation is resized.
const RESYNC_SLACK: usize = 8 * 1024;

impl<'f> FoldTable<'f> {
    pub fn new(pool: &MemPool, combine: CombineFn<'f>, mode: GroupingMode) -> Result<Self> {
        let inner = match mode {
            GroupingMode::Legacy => FoldInner::Legacy {
                map: HashMap::default(),
            },
            GroupingMode::Arena => FoldInner::Arena {
                index: Box::new(GroupIndex::new(pool)?),
                vals: Vec::new(),
            },
        };
        Ok(Self {
            inner,
            res: pool.try_reserve(0)?,
            acc_bytes: 0,
            reserved: 0,
            scratch: Vec::new(),
            combine,
            n_folded: 0,
        })
    }

    /// Inserts or merges one KV, hashing the key at most once (arena
    /// mode; the legacy map hashes internally).
    pub fn fold(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        if matches!(self.inner, FoldInner::Legacy { .. }) {
            self.fold_legacy(key, val)
        } else {
            self.fold_hashed(fxhash64(key), key, val)
        }
    }

    /// [`Self::fold`] under a precomputed `hash` (`fxhash64(key)`); the
    /// arena path reuses it for the table probe and stores it for the
    /// flush.
    pub fn fold_hashed(&mut self, hash: u64, key: &[u8], val: &[u8]) -> Result<()> {
        if matches!(self.inner, FoldInner::Legacy { .. }) {
            return self.fold_legacy(key, val);
        }
        let Self {
            inner,
            scratch,
            combine,
            acc_bytes,
            n_folded,
            ..
        } = self;
        let FoldInner::Arena { index, vals } = inner else {
            unreachable!("mode checked above");
        };
        let (id, fresh) = index.insert_hashed(hash, key)?;
        if fresh {
            *acc_bytes += val.len() + ARENA_VAL_OVERHEAD;
            vals.push(val.to_vec());
        } else {
            let acc = &mut vals[id as usize];
            scratch.clear();
            combine(key, acc, val, scratch);
            *acc_bytes = *acc_bytes + scratch.len() - acc.len();
            // Swap, don't copy: the merged value moves in, the old
            // accumulator's buffer becomes the next merge's scratch.
            std::mem::swap(acc, scratch);
            *n_folded += 1;
        }
        self.resync()
    }

    fn fold_legacy(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        let FoldInner::Legacy { map } = &mut self.inner else {
            unreachable!("legacy fold on arena table");
        };
        match map.get_mut(key) {
            Some(acc) => {
                self.scratch.clear();
                (self.combine)(key, acc, val, &mut self.scratch);
                let delta_new = self.scratch.len();
                let delta_old = acc.len();
                acc.clear();
                acc.extend_from_slice(&self.scratch);
                self.acc_bytes = self.acc_bytes + delta_new - delta_old;
                self.n_folded += 1;
            }
            None => {
                self.acc_bytes += key.len() + val.len() + TABLE_ENTRY_OVERHEAD;
                map.insert(key.to_vec(), val.to_vec());
            }
        }
        self.resync()
    }

    fn resync(&mut self) -> Result<()> {
        if self.acc_bytes.abs_diff(self.reserved) > RESYNC_SLACK {
            self.res.resize(self.acc_bytes)?;
            self.reserved = self.acc_bytes;
        }
        Ok(())
    }

    /// Drains every entry into `out` and empties the table. Arena mode
    /// emits in first-occurrence key order with each KV's stored hash
    /// ([`Emitter::emit_hashed`]); `keep_capacity` retains the slot table
    /// for the next fill cycle (a streaming combiner's early flushes).
    pub fn drain_into(&mut self, out: &mut dyn Emitter, keep_capacity: bool) -> Result<()> {
        if self.len() != 0 {
            mimir_obs::emit(
                mimir_obs::EventKind::CombinerFlush,
                self.len() as u64,
                self.acc_bytes as u64,
            );
        }
        match &mut self.inner {
            FoldInner::Legacy { map } => {
                for (k, v) in map.drain() {
                    out.emit(&k, &v)?;
                }
            }
            FoldInner::Arena { index, vals } => {
                for (id, v) in vals.iter().enumerate() {
                    out.emit_hashed(index.key(id as u32), v, index.hash_of(id as u32))?;
                }
                vals.clear();
                if keep_capacity {
                    index.clear()?;
                } else {
                    index.reset()?;
                }
            }
        }
        self.acc_bytes = 0;
        self.res.resize(0)?;
        self.reserved = 0;
        Ok(())
    }

    /// Visits entries without draining.
    #[cfg(test)]
    pub fn for_each(&self, mut f: impl FnMut(&[u8], &[u8]) -> Result<()>) -> Result<()> {
        match &self.inner {
            FoldInner::Legacy { map } => {
                for (k, v) in map {
                    f(k, v)?;
                }
            }
            FoldInner::Arena { index, vals } => {
                for (id, v) in vals.iter().enumerate() {
                    f(index.key(id as u32), v)?;
                }
            }
        }
        Ok(())
    }

    pub fn len(&self) -> usize {
        match &self.inner {
            FoldInner::Legacy { map } => map.len(),
            FoldInner::Arena { vals, .. } => vals.len(),
        }
    }

    /// Estimated heap bytes the table occupies.
    pub fn bytes(&self) -> usize {
        self.acc_bytes
    }

    /// The grouping engine's counters (zero under legacy, which has no
    /// instrumented table).
    pub fn group_stats(&self) -> GroupStats {
        match &self.inner {
            FoldInner::Legacy { .. } => GroupStats::default(),
            FoldInner::Arena { index, .. } => index.stats(),
        }
    }

    #[cfg(test)]
    pub fn n_folded(&self) -> u64 {
        self.n_folded
    }
}

/// The KV-compression emitter: wraps the fold table behind the
/// [`Emitter`] interface handed to map callbacks.
pub struct CombinerTable<'f> {
    table: FoldTable<'f>,
    meta: KvMeta,
    kvs_in: u64,
}

impl<'f> CombinerTable<'f> {
    /// Creates a compression table charging `pool`, with the default
    /// grouping engine.
    ///
    /// # Errors
    /// Memory exhaustion.
    pub fn new(pool: &MemPool, meta: KvMeta, combine: CombineFn<'f>) -> Result<Self> {
        Self::with_mode(pool, meta, combine, GroupingMode::default())
    }

    /// [`Self::new`] with an explicit grouping engine.
    ///
    /// # Errors
    /// Memory exhaustion.
    pub fn with_mode(
        pool: &MemPool,
        meta: KvMeta,
        combine: CombineFn<'f>,
        mode: GroupingMode,
    ) -> Result<Self> {
        Ok(Self {
            table: FoldTable::new(pool, combine, mode)?,
            meta,
            kvs_in: 0,
        })
    }

    /// Flushes the compressed KVs into the shuffle emitter (the delayed
    /// aggregate) and fully releases the table.
    pub fn flush_into(&mut self, shuffler: &mut dyn Emitter) -> Result<()> {
        self.table.drain_into(shuffler, false)
    }

    /// Flush that keeps the slot table warm for the next fill cycle.
    pub(crate) fn flush_soft(&mut self, shuffler: &mut dyn Emitter) -> Result<()> {
        self.table.drain_into(shuffler, true)
    }

    /// Unique keys currently held.
    pub fn unique_keys(&self) -> usize {
        self.table.len()
    }

    /// Estimated table footprint in bytes (tracked against the pool).
    pub fn bytes(&self) -> usize {
        self.table.bytes()
    }

    /// KVs accepted so far (pre-compression).
    pub fn kvs_in(&self) -> u64 {
        self.kvs_in
    }

    /// The grouping engine's counters.
    pub fn group_stats(&self) -> GroupStats {
        self.table.group_stats()
    }

    /// The compression ratio so far: input KVs per retained unique KV.
    pub fn ratio(&self) -> f64 {
        if self.table.len() == 0 {
            return 1.0;
        }
        self.kvs_in as f64 / self.table.len() as f64
    }
}

/// A [`CombinerTable`] that flushes into a downstream emitter whenever
/// its footprint exceeds a byte budget — the bounded-memory KV
/// compression described in [`crate::MapReduceJob::compress_flush_bytes`].
pub struct StreamingCombiner<'f, 'o> {
    table: CombinerTable<'f>,
    out: &'o mut dyn Emitter,
    limit: usize,
    flushes: u64,
}

impl<'f, 'o> StreamingCombiner<'f, 'o> {
    /// Wraps `table`, flushing into `out` when the table exceeds
    /// `limit` bytes.
    pub fn new(table: CombinerTable<'f>, out: &'o mut dyn Emitter, limit: usize) -> Self {
        Self {
            table,
            out,
            limit,
            flushes: 0,
        }
    }

    /// Flushes the remainder and returns how many early flushes ran,
    /// plus the grouping engine's cumulative counters.
    ///
    /// # Errors
    /// Downstream emission failures.
    pub fn finish(mut self) -> Result<(u64, GroupStats)> {
        self.table.flush_into(self.out)?;
        Ok((self.flushes, self.table.group_stats()))
    }
}

impl Emitter for StreamingCombiner<'_, '_> {
    fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        self.table.emit(key, val)?;
        if self.table.bytes() > self.limit {
            self.table.flush_soft(self.out)?;
            self.flushes += 1;
        }
        Ok(())
    }
}

impl Emitter for CombinerTable<'_> {
    fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        validate(self.meta.key, key, "key")?;
        validate(self.meta.val, val, "value")?;
        self.kvs_in += 1;
        self.table.fold(key, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimir_mem::MemPool;

    const BOTH_MODES: [GroupingMode; 2] = [GroupingMode::Arena, GroupingMode::Legacy];

    fn sum_combine<'f>() -> CombineFn<'f> {
        Box::new(|_k, a, b, out| {
            let s = u64::from_le_bytes(a.try_into().unwrap())
                + u64::from_le_bytes(b.try_into().unwrap());
            out.extend_from_slice(&s.to_le_bytes());
        })
    }

    struct VecEmitter(Vec<(Vec<u8>, u64)>);
    impl Emitter for VecEmitter {
        fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
            self.0
                .push((key.to_vec(), u64::from_le_bytes(val.try_into().unwrap())));
            Ok(())
        }
    }

    #[test]
    fn duplicate_keys_are_merged() {
        for mode in BOTH_MODES {
            let pool = MemPool::unlimited("t", 4096);
            let mut c =
                CombinerTable::with_mode(&pool, KvMeta::cstr_key_u64_val(), sum_combine(), mode)
                    .unwrap();
            for _ in 0..100 {
                c.emit(b"dog", &1u64.to_le_bytes()).unwrap();
                c.emit(b"cat", &2u64.to_le_bytes()).unwrap();
            }
            assert_eq!(c.unique_keys(), 2);
            assert_eq!(c.kvs_in(), 200);
            assert!((c.ratio() - 100.0).abs() < f64::EPSILON);

            let mut out = VecEmitter(Vec::new());
            c.flush_into(&mut out).unwrap();
            let mut got = out.0;
            got.sort();
            assert_eq!(
                got,
                vec![(b"cat".to_vec(), 200), (b"dog".to_vec(), 100)],
                "{mode:?}"
            );
            assert_eq!(c.unique_keys(), 0, "flush drains the table");
        }
    }

    #[test]
    fn arena_flush_preserves_first_occurrence_order_and_hashes() {
        let pool = MemPool::unlimited("t", 4096);
        let mut c =
            CombinerTable::with_mode(&pool, KvMeta::var(), sum_combine(), GroupingMode::Arena)
                .unwrap();
        for k in ["zeta", "alpha", "mid", "alpha", "zeta"] {
            c.emit(k.as_bytes(), &1u64.to_le_bytes()).unwrap();
        }
        struct HashChecker(Vec<Vec<u8>>);
        impl Emitter for HashChecker {
            fn emit(&mut self, _k: &[u8], _v: &[u8]) -> Result<()> {
                panic!("arena flush must use emit_hashed");
            }
            fn emit_hashed(&mut self, k: &[u8], _v: &[u8], h: u64) -> Result<()> {
                assert_eq!(h, crate::fxhash64(k), "stored hash matches key");
                self.0.push(k.to_vec());
                Ok(())
            }
        }
        let mut out = HashChecker(Vec::new());
        c.flush_into(&mut out).unwrap();
        assert_eq!(
            out.0,
            vec![b"zeta".to_vec(), b"alpha".to_vec(), b"mid".to_vec()]
        );
    }

    #[test]
    fn table_memory_is_tracked_and_released() {
        for mode in BOTH_MODES {
            let pool = MemPool::new("t", 4096, 1 << 20).unwrap();
            let mut c =
                CombinerTable::with_mode(&pool, KvMeta::var(), sum_combine(), mode).unwrap();
            for i in 0..2000u64 {
                c.emit(format!("key-{i}").as_bytes(), &1u64.to_le_bytes())
                    .unwrap();
            }
            assert!(
                pool.used() > 2000 * ARENA_VAL_OVERHEAD / 2,
                "{mode:?}: bucket charged: {}",
                pool.used()
            );
            let mut out = VecEmitter(Vec::new());
            c.flush_into(&mut out).unwrap();
            assert!(
                pool.used() < RESYNC_SLACK * 2,
                "{mode:?}: bucket released: {}",
                pool.used()
            );
        }
    }

    #[test]
    fn table_oom_when_keys_do_not_compress() {
        for mode in BOTH_MODES {
            // The paper's caveat: with no duplicate keys the table only
            // costs.
            let pool = MemPool::new("t", 4096, 32 * 1024).unwrap();
            let mut c =
                CombinerTable::with_mode(&pool, KvMeta::var(), sum_combine(), mode).unwrap();
            let mut res = Ok(());
            for i in 0..100_000u64 {
                res = c.emit(format!("unique-{i}").as_bytes(), &1u64.to_le_bytes());
                if res.is_err() {
                    break;
                }
            }
            assert!(res.unwrap_err().is_oom(), "{mode:?}");
        }
    }

    #[test]
    fn variable_size_merged_values() {
        for mode in BOTH_MODES {
            // Combine = concatenate: exercises the size-change accounting.
            let pool = MemPool::new("t", 4096, 1 << 20).unwrap();
            let concat: CombineFn = Box::new(|_k, a, b, out| {
                out.extend_from_slice(a);
                out.extend_from_slice(b);
            });
            let mut t = FoldTable::new(&pool, concat, mode).unwrap();
            for _ in 0..10 {
                t.fold(b"k", b"xy").unwrap();
            }
            let mut seen = Vec::new();
            t.for_each(|_k, v| {
                seen = v.to_vec();
                Ok(())
            })
            .unwrap();
            assert_eq!(seen.len(), 20, "{mode:?}");
            assert_eq!(t.n_folded(), 9);
        }
    }

    #[test]
    fn streaming_flush_cycles_keep_the_slot_table_warm() {
        let pool = MemPool::unlimited("t", 4096);
        let mut out = VecEmitter(Vec::new());
        let table =
            CombinerTable::with_mode(&pool, KvMeta::var(), sum_combine(), GroupingMode::Arena)
                .unwrap();
        let mut sc = StreamingCombiner::new(table, &mut out, 2 * 1024);
        for i in 0..3000u64 {
            sc.emit(format!("k{}", i % 200).as_bytes(), &1u64.to_le_bytes())
                .unwrap();
        }
        let (flushes, stats) = sc.finish().unwrap();
        assert!(flushes >= 1, "limit forces early flushes");
        assert_eq!(stats.inserts, 3000);
        // Each flush cycle re-creates the 200 groups; cumulative groups
        // count every cycle.
        assert!(stats.groups >= 200);
        let total: u64 = out.0.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 3000, "no KV lost across flush cycles");
    }
}
