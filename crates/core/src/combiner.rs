//! KV compression — the map-side combiner (paper Section III-C2).
//!
//! When enabled, map emissions land in a hash bucket instead of the send
//! buffer; a KV whose key is already present is merged with the resident
//! KV by the user's compression callback. Only when the map completes is
//! the bucket flushed into the shuffle ("the aggregate phase is delayed
//! until all KVs are compressed to maximize the benefit").
//!
//! The paper is explicit about the cost side, and this implementation
//! keeps it measurable: the bucket is charged to the node pool, so "it
//! reduces memory usage only if the compression ratio reaches a certain
//! threshold", and the per-KV probe shows up as compute time.

use std::collections::HashMap;

use mimir_mem::{MemPool, Reservation};

use crate::hash::FxBuild;
use crate::kv::validate;
use crate::shuffle::Emitter;
use crate::{KvMeta, Result};

/// User callback merging two values of the same key:
/// `combine(key, accumulated, incoming, out)` writes the merged value to
/// `out`. Correctness requires the operation to be commutative and
/// associative, which is why this is an explicit opt-in.
pub type CombineFn<'f> = Box<dyn FnMut(&[u8], &[u8], &[u8], &mut Vec<u8>) + 'f>;

/// A pool-tracked fold table shared by KV compression and partial
/// reduction: key → current merged value.
pub(crate) struct FoldTable<'f> {
    map: HashMap<Vec<u8>, Vec<u8>, FxBuild>,
    res: Reservation,
    acc_bytes: usize,
    reserved: usize,
    scratch: Vec<u8>,
    combine: CombineFn<'f>,
    n_folded: u64,
}

/// Estimated heap cost of one table entry beyond key/value payloads.
const TABLE_ENTRY_OVERHEAD: usize = 64;
/// Accounting slack before the reservation is resized.
const RESYNC_SLACK: usize = 8 * 1024;

impl<'f> FoldTable<'f> {
    pub fn new(pool: &MemPool, combine: CombineFn<'f>) -> Result<Self> {
        Ok(Self {
            map: HashMap::default(),
            res: pool.try_reserve(0)?,
            acc_bytes: 0,
            reserved: 0,
            scratch: Vec::new(),
            combine,
            n_folded: 0,
        })
    }

    /// Inserts or merges one KV.
    pub fn fold(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        match self.map.get_mut(key) {
            Some(acc) => {
                self.scratch.clear();
                (self.combine)(key, acc, val, &mut self.scratch);
                let delta_new = self.scratch.len();
                let delta_old = acc.len();
                acc.clear();
                acc.extend_from_slice(&self.scratch);
                self.acc_bytes = self.acc_bytes + delta_new - delta_old;
                self.n_folded += 1;
            }
            None => {
                self.acc_bytes += key.len() + val.len() + TABLE_ENTRY_OVERHEAD;
                self.map.insert(key.to_vec(), val.to_vec());
            }
        }
        if self.acc_bytes.abs_diff(self.reserved) > RESYNC_SLACK {
            self.res.resize(self.acc_bytes)?;
            self.reserved = self.acc_bytes;
        }
        Ok(())
    }

    /// Drains every entry into `out` and empties the table.
    pub fn drain_into(&mut self, out: &mut dyn Emitter) -> Result<()> {
        if !self.map.is_empty() {
            mimir_obs::emit(
                mimir_obs::EventKind::CombinerFlush,
                self.map.len() as u64,
                self.acc_bytes as u64,
            );
        }
        for (k, v) in self.map.drain() {
            out.emit(&k, &v)?;
        }
        self.acc_bytes = 0;
        self.res.resize(0)?;
        self.reserved = 0;
        Ok(())
    }

    /// Visits entries without draining.
    #[cfg(test)]
    pub fn for_each(&self, mut f: impl FnMut(&[u8], &[u8]) -> Result<()>) -> Result<()> {
        for (k, v) in &self.map {
            f(k, v)?;
        }
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Estimated heap bytes the table occupies.
    pub fn bytes(&self) -> usize {
        self.acc_bytes
    }

    #[cfg(test)]
    pub fn n_folded(&self) -> u64 {
        self.n_folded
    }
}

/// The KV-compression emitter: wraps the fold table behind the
/// [`Emitter`] interface handed to map callbacks.
pub struct CombinerTable<'f> {
    table: FoldTable<'f>,
    meta: KvMeta,
    kvs_in: u64,
}

impl<'f> CombinerTable<'f> {
    /// Creates a compression table charging `pool`.
    ///
    /// # Errors
    /// Memory exhaustion.
    pub fn new(pool: &MemPool, meta: KvMeta, combine: CombineFn<'f>) -> Result<Self> {
        Ok(Self {
            table: FoldTable::new(pool, combine)?,
            meta,
            kvs_in: 0,
        })
    }

    /// Flushes the compressed KVs into the shuffle emitter (the delayed
    /// aggregate).
    pub fn flush_into(&mut self, shuffler: &mut dyn Emitter) -> Result<()> {
        self.table.drain_into(shuffler)
    }

    /// Unique keys currently held.
    pub fn unique_keys(&self) -> usize {
        self.table.len()
    }

    /// Estimated table footprint in bytes (tracked against the pool).
    pub fn bytes(&self) -> usize {
        self.table.bytes()
    }

    /// KVs accepted so far (pre-compression).
    pub fn kvs_in(&self) -> u64 {
        self.kvs_in
    }

    /// The compression ratio so far: input KVs per retained unique KV.
    pub fn ratio(&self) -> f64 {
        if self.table.len() == 0 {
            return 1.0;
        }
        self.kvs_in as f64 / self.table.len() as f64
    }
}

/// A [`CombinerTable`] that flushes into a downstream emitter whenever
/// its footprint exceeds a byte budget — the bounded-memory KV
/// compression described in [`crate::MapReduceJob::compress_flush_bytes`].
pub struct StreamingCombiner<'f, 'o> {
    table: CombinerTable<'f>,
    out: &'o mut dyn Emitter,
    limit: usize,
    flushes: u64,
}

impl<'f, 'o> StreamingCombiner<'f, 'o> {
    /// Wraps `table`, flushing into `out` when the table exceeds
    /// `limit` bytes.
    pub fn new(table: CombinerTable<'f>, out: &'o mut dyn Emitter, limit: usize) -> Self {
        Self {
            table,
            out,
            limit,
            flushes: 0,
        }
    }

    /// Flushes the remainder and returns how many early flushes ran.
    ///
    /// # Errors
    /// Downstream emission failures.
    pub fn finish(mut self) -> Result<u64> {
        self.table.flush_into(self.out)?;
        Ok(self.flushes)
    }
}

impl Emitter for StreamingCombiner<'_, '_> {
    fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        self.table.emit(key, val)?;
        if self.table.bytes() > self.limit {
            self.table.flush_into(self.out)?;
            self.flushes += 1;
        }
        Ok(())
    }
}

impl Emitter for CombinerTable<'_> {
    fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        validate(self.meta.key, key, "key")?;
        validate(self.meta.val, val, "value")?;
        self.kvs_in += 1;
        self.table.fold(key, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimir_mem::MemPool;

    fn sum_combine<'f>() -> CombineFn<'f> {
        Box::new(|_k, a, b, out| {
            let s = u64::from_le_bytes(a.try_into().unwrap())
                + u64::from_le_bytes(b.try_into().unwrap());
            out.extend_from_slice(&s.to_le_bytes());
        })
    }

    struct VecEmitter(Vec<(Vec<u8>, u64)>);
    impl Emitter for VecEmitter {
        fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
            self.0
                .push((key.to_vec(), u64::from_le_bytes(val.try_into().unwrap())));
            Ok(())
        }
    }

    #[test]
    fn duplicate_keys_are_merged() {
        let pool = MemPool::unlimited("t", 4096);
        let mut c = CombinerTable::new(&pool, KvMeta::cstr_key_u64_val(), sum_combine()).unwrap();
        for _ in 0..100 {
            c.emit(b"dog", &1u64.to_le_bytes()).unwrap();
            c.emit(b"cat", &2u64.to_le_bytes()).unwrap();
        }
        assert_eq!(c.unique_keys(), 2);
        assert_eq!(c.kvs_in(), 200);
        assert!((c.ratio() - 100.0).abs() < f64::EPSILON);

        let mut out = VecEmitter(Vec::new());
        c.flush_into(&mut out).unwrap();
        let mut got = out.0;
        got.sort();
        assert_eq!(got, vec![(b"cat".to_vec(), 200), (b"dog".to_vec(), 100)]);
        assert_eq!(c.unique_keys(), 0, "flush drains the table");
    }

    #[test]
    fn table_memory_is_tracked_and_released() {
        let pool = MemPool::new("t", 4096, 1 << 20).unwrap();
        let mut c = CombinerTable::new(&pool, KvMeta::var(), sum_combine()).unwrap();
        for i in 0..2000u64 {
            c.emit(format!("key-{i}").as_bytes(), &1u64.to_le_bytes())
                .unwrap();
        }
        assert!(
            pool.used() > 2000 * TABLE_ENTRY_OVERHEAD / 2,
            "bucket charged: {}",
            pool.used()
        );
        let mut out = VecEmitter(Vec::new());
        c.flush_into(&mut out).unwrap();
        assert!(
            pool.used() < RESYNC_SLACK * 2,
            "bucket released: {}",
            pool.used()
        );
    }

    #[test]
    fn table_oom_when_keys_do_not_compress() {
        // The paper's caveat: with no duplicate keys the table only costs.
        let pool = MemPool::new("t", 4096, 32 * 1024).unwrap();
        let mut c = CombinerTable::new(&pool, KvMeta::var(), sum_combine()).unwrap();
        let mut res = Ok(());
        for i in 0..100_000u64 {
            res = c.emit(format!("unique-{i}").as_bytes(), &1u64.to_le_bytes());
            if res.is_err() {
                break;
            }
        }
        assert!(res.unwrap_err().is_oom());
    }

    #[test]
    fn variable_size_merged_values() {
        // Combine = concatenate: exercises the size-change accounting.
        let pool = MemPool::new("t", 4096, 1 << 20).unwrap();
        let concat: CombineFn = Box::new(|_k, a, b, out| {
            out.extend_from_slice(a);
            out.extend_from_slice(b);
        });
        let mut t = FoldTable::new(&pool, concat).unwrap();
        for _ in 0..10 {
            t.fold(b"k", b"xy").unwrap();
        }
        let mut seen = Vec::new();
        t.for_each(|_k, v| {
            seen = v.to_vec();
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len(), 20);
        assert_eq!(t.n_folded(), 9);
    }
}
