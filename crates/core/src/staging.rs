//! Out-of-core staging of KV containers — an extension beyond the paper.
//!
//! Mimir itself never spills (its whole point is staying in memory), but
//! multi-stage pipelines sometimes need to *park* one stage's output on
//! the parallel file system while another stage runs — the in-situ
//! workflows of paper Section III-A keep several datasets alive at once.
//! [`StagedKvs`] writes a container's pages to a spill file (freeing the
//! memory immediately, page by page) and reloads them later into a fresh
//! container; both directions are charged to the I/O cost model, so
//! staging shows up in modeled time exactly like MR-MPI's spills.

use mimir_io::{SpillFile, SpillStore};
use mimir_mem::MemPool;

use crate::{KvContainer, KvMeta, Result};

/// A KV dataset parked on the I/O subsystem.
pub struct StagedKvs {
    file: SpillFile,
    meta: KvMeta,
    n_kvs: u64,
    bytes: u64,
}

impl StagedKvs {
    /// Writes `kvc` out through `store`, consuming it and releasing its
    /// memory page by page as pages are written.
    ///
    /// # Errors
    /// I/O failures writing the stage file.
    pub fn park(kvc: KvContainer, store: &SpillStore) -> Result<Self> {
        let meta = kvc.meta();
        let n_kvs = kvc.len();
        let bytes = kvc.bytes();
        let mut file = store.create("staged-kv")?;
        // Batch KVs back into page-sized chunks for the spill format.
        let mut chunk: Vec<u8> = Vec::with_capacity(64 * 1024);
        kvc.drain(|k, v| {
            crate::kv::encode_push(meta, k, v, &mut chunk);
            if chunk.len() >= 64 * 1024 {
                file.write_chunk(&chunk)?;
                chunk.clear();
            }
            Ok(())
        })?;
        if !chunk.is_empty() {
            file.write_chunk(&chunk)?;
        }
        file.finish()?;
        Ok(Self {
            file,
            meta,
            n_kvs,
            bytes,
        })
    }

    /// Reloads the dataset into a fresh container drawing pages from
    /// `pool`.
    ///
    /// # Errors
    /// I/O failures reading the stage file, or memory exhaustion
    /// rebuilding the container.
    pub fn restore(&self, pool: &MemPool) -> Result<KvContainer> {
        let mut kvc = KvContainer::new(pool, self.meta);
        let mut reader = self.file.read_chunks()?;
        while let Some(chunk) = reader.next_chunk()? {
            for (k, v) in crate::kv::KvDecoder::new(self.meta, &chunk) {
                kvc.push(k, v)?;
            }
        }
        Ok(kvc)
    }

    /// KVs parked.
    pub fn len(&self) -> u64 {
        self.n_kvs
    }

    /// True if the staged dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.n_kvs == 0
    }

    /// Encoded payload bytes parked.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The staged dataset's encoding.
    pub fn meta(&self) -> KvMeta {
        self.meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimir_io::IoModel;
    use mimir_mem::MemPool;

    #[test]
    fn park_and_restore_roundtrip() {
        let pool = MemPool::new("t", 4096, 1 << 20).unwrap();
        let store = SpillStore::new_temp("stage", IoModel::free()).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::cstr_key_u64_val());
        for i in 0..500u64 {
            kvc.push(format!("key-{i}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let n = kvc.len();
        let staged = StagedKvs::park(kvc, &store).unwrap();
        assert_eq!(pool.used(), 0, "memory fully released while parked");
        assert_eq!(staged.len(), n);

        let restored = staged.restore(&pool).unwrap();
        assert_eq!(restored.len(), n);
        let mut seen = 0u64;
        restored
            .drain(|k, v| {
                let i = u64::from_le_bytes(v.try_into().unwrap());
                assert_eq!(k, format!("key-{i}").as_bytes());
                seen += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, n);
    }

    #[test]
    fn staging_is_charged_to_the_io_model() {
        let io = IoModel::new(mimir_io::IoModelConfig {
            read_bw: 1024.0 * 1024.0,
            write_bw: 1024.0 * 1024.0,
            op_latency: std::time::Duration::ZERO,
        })
        .unwrap();
        let pool = MemPool::unlimited("t", 4096);
        let store = SpillStore::new_temp("stage", io.clone()).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::var());
        for i in 0..1000u64 {
            kvc.push(&i.to_le_bytes(), &[7u8; 32]).unwrap();
        }
        let staged = StagedKvs::park(kvc, &store).unwrap();
        let written = io.stats().bytes_written;
        assert!(written >= staged.bytes(), "{written} vs {}", staged.bytes());
        let _ = staged.restore(&pool).unwrap();
        assert!(io.stats().bytes_read >= staged.bytes());
        assert!(io.modeled_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn restore_can_run_multiple_times() {
        let pool = MemPool::unlimited("t", 4096);
        let store = SpillStore::new_temp("stage", IoModel::free()).unwrap();
        let mut kvc = KvContainer::new(&pool, KvMeta::var());
        kvc.push(b"a", b"1").unwrap();
        kvc.push(b"b", b"2").unwrap();
        let staged = StagedKvs::park(kvc, &store).unwrap();
        let r1 = staged.restore(&pool).unwrap();
        let r2 = staged.restore(&pool).unwrap();
        assert_eq!(r1.len(), 2);
        assert_eq!(r2.len(), 2);
    }

    #[test]
    fn empty_container_parks_cleanly() {
        let pool = MemPool::unlimited("t", 4096);
        let store = SpillStore::new_temp("stage", IoModel::free()).unwrap();
        let kvc = KvContainer::new(&pool, KvMeta::var());
        let staged = StagedKvs::park(kvc, &store).unwrap();
        assert!(staged.is_empty());
        assert_eq!(staged.restore(&pool).unwrap().len(), 0);
    }
}
