//! Checkpoint/restart for iterative jobs — the fault-tolerance extension.
//!
//! The paper names MR-MPI's "inability to handle system faults" as a
//! known shortcoming, addressed in the authors' companion work (FT-MRMPI,
//! Guo et al., SC'15). This module brings the same capability to the
//! reproduction's Mimir: an iterative application (octree refinement,
//! BFS levels, PageRank sweeps…) periodically checkpoints its state to
//! the parallel file system — charged to the I/O cost model like any
//! other PFS traffic — and, after a crash, a restarted world resumes from
//! the newest checkpoint *all ranks completed*.
//!
//! Design points:
//! * **Atomic per-rank checkpoints.** Each rank writes
//!   `ckpt-<rank>-<iteration>` via a temp-file rename, so a crash during
//!   a write never corrupts an older checkpoint.
//! * **Globally consistent restart.** On startup every rank proposes its
//!   newest on-disk iteration; an `allreduce(min)` picks the restart
//!   point, so a rank that died before writing iteration *k* rolls the
//!   whole world back to *k−1* (the classic coordinated-checkpoint rule).
//! * **Framework state is rebuilt, not checkpointed.** As in FT-MRMPI's
//!   re-execution mode, only *application* state is persisted; the
//!   framework's containers are reconstructed by re-running from the
//!   restart point.

use std::path::PathBuf;

use mimir_io::{IoError, IoModel};
use mimir_mpi::ReduceOp;

use crate::{MimirContext, MimirError, Result};

/// A per-rank checkpoint directory on the (simulated) parallel file
/// system.
pub struct CheckpointStore {
    dir: PathBuf,
    rank: usize,
    io: IoModel,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory shared by all
    /// ranks of a job; `rank` namespaces this rank's files.
    ///
    /// # Errors
    /// Filesystem failures creating the directory.
    pub fn open(dir: impl Into<PathBuf>, rank: usize, io: IoModel) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            MimirError::Io(IoError::Os {
                context: format!("creating checkpoint dir {dir:?}"),
                source: e,
            })
        })?;
        Ok(Self { dir, rank, io })
    }

    fn path_for(&self, iteration: u32) -> PathBuf {
        self.dir
            .join(format!("ckpt-{:05}-{iteration:010}", self.rank))
    }

    /// Atomically persists this rank's state for `iteration`.
    ///
    /// # Errors
    /// Filesystem failures; the previous checkpoint survives them.
    pub fn save(&self, iteration: u32, state: &[u8]) -> Result<()> {
        let tmp = self
            .dir
            .join(format!(".tmp-{:05}-{iteration:010}", self.rank));
        let os = |context: String| {
            move |e: std::io::Error| MimirError::Io(IoError::Os { context, source: e })
        };
        std::fs::write(&tmp, state).map_err(os(format!("writing checkpoint {tmp:?}")))?;
        std::fs::rename(&tmp, self.path_for(iteration)).map_err(os(format!(
            "publishing checkpoint for iteration {iteration}"
        )))?;
        self.io.charge_write(state.len());
        Ok(())
    }

    /// This rank's newest complete checkpoint, if any.
    ///
    /// # Errors
    /// Filesystem failures enumerating or reading the directory.
    pub fn latest(&self) -> Result<Option<(u32, Vec<u8>)>> {
        let prefix = format!("ckpt-{:05}-", self.rank);
        let mut best: Option<u32> = None;
        let entries = std::fs::read_dir(&self.dir).map_err(|e| {
            MimirError::Io(IoError::Os {
                context: format!("listing checkpoint dir {:?}", self.dir),
                source: e,
            })
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| {
                MimirError::Io(IoError::Os {
                    context: "reading checkpoint dir entry".into(),
                    source: e,
                })
            })?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(iter_str) = name.strip_prefix(&prefix) {
                if let Ok(iter) = iter_str.parse::<u32>() {
                    best = Some(best.map_or(iter, |b| b.max(iter)));
                }
            }
        }
        match best {
            None => Ok(None),
            Some(iter) => {
                let data = std::fs::read(self.path_for(iter)).map_err(|e| {
                    MimirError::Io(IoError::Os {
                        context: format!("reading checkpoint for iteration {iter}"),
                        source: e,
                    })
                })?;
                self.io.charge_read(data.len());
                Ok(Some((iter, data)))
            }
        }
    }

    /// Removes all of this rank's checkpoints (after a successful run).
    pub fn clear(&self) {
        let prefix = format!("ckpt-{:05}-", self.rank);
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with(&prefix))
                {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}

/// How an iterative recovery run begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPoint {
    /// No usable global checkpoint; start from the initial state.
    Fresh,
    /// Resume after this completed iteration.
    After(u32),
}

/// Drives an iterative application with coordinated checkpointing.
///
/// `step(ctx, state, iteration)` runs one iteration and returns `true`
/// when the application has converged. Every `interval` completed
/// iterations, all ranks synchronize and persist `encode(state)`. On
/// entry, ranks agree (via `allreduce(min)` over their newest on-disk
/// checkpoints) on a restart point and `decode` from it; a world where
/// any rank has no checkpoint starts fresh.
///
/// Returns the final state and the iteration count *executed in this
/// incarnation* (so tests can verify recovery actually skipped work).
///
/// # Errors
/// Step errors, checkpoint I/O failures.
pub fn run_iterative_with_recovery<S>(
    ctx: &mut MimirContext<'_>,
    ckpt: &CheckpointStore,
    interval: u32,
    init: impl FnOnce() -> S,
    encode: impl Fn(&S) -> Vec<u8>,
    decode: impl Fn(&[u8]) -> S,
    mut step: impl FnMut(&mut MimirContext<'_>, &mut S, u32) -> Result<bool>,
) -> Result<(S, u32)> {
    // Agree on the restart point: min over ranks of (latest iteration +1,
    // 0 = none). min==0 → someone has nothing → fresh start.
    let local = ckpt.latest()?;
    let proposal = local.as_ref().map_or(0, |(iter, _)| u64::from(*iter) + 1);
    let agreed = ctx.comm().allreduce_u64(ReduceOp::Min, proposal);
    let restart = if agreed == 0 {
        RestartPoint::Fresh
    } else {
        RestartPoint::After((agreed - 1) as u32)
    };

    let (mut state, mut iteration) = match restart {
        RestartPoint::Fresh => (init(), 0u32),
        RestartPoint::After(iter) => {
            // The agreed checkpoint may be older than this rank's newest;
            // load exactly the agreed one.
            let data = match local {
                Some((have, data)) if have == iter => data,
                _ => {
                    let data = std::fs::read(ckpt.path_for(iter)).map_err(|e| {
                        MimirError::Io(IoError::Os {
                            context: format!("reading agreed checkpoint {iter}"),
                            source: e,
                        })
                    })?;
                    ckpt.io.charge_read(data.len());
                    data
                }
            };
            (decode(&data), iter + 1)
        }
    };

    let mut executed = 0u32;
    loop {
        let done = step(ctx, &mut state, iteration)?;
        executed += 1;
        let done_flag = ctx.comm().allreduce_u64(ReduceOp::LAnd, u64::from(done));
        if (iteration + 1).is_multiple_of(interval) || done_flag == 1 {
            ctx.barrier();
            ckpt.save(iteration, &encode(&state))?;
        }
        if done_flag == 1 {
            return Ok((state, executed));
        }
        iteration += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimir_io::IoModel;

    #[test]
    fn save_latest_roundtrip_and_clear() {
        let dir = std::env::temp_dir().join(format!("mimir-ckpt-unit-{}", std::process::id()));
        let io = IoModel::free();
        let store = CheckpointStore::open(&dir, 3, io.clone()).unwrap();
        assert!(store.latest().unwrap().is_none());
        store.save(0, b"first").unwrap();
        store.save(7, b"seventh").unwrap();
        store.save(2, b"second").unwrap();
        let (iter, data) = store.latest().unwrap().unwrap();
        assert_eq!(iter, 7);
        assert_eq!(data, b"seventh");
        assert!(io.stats().bytes_written > 0);
        store.clear();
        assert!(store.latest().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ranks_do_not_collide() {
        let dir = std::env::temp_dir().join(format!("mimir-ckpt-ranks-{}", std::process::id()));
        let io = IoModel::free();
        let a = CheckpointStore::open(&dir, 0, io.clone()).unwrap();
        let b = CheckpointStore::open(&dir, 1, io).unwrap();
        a.save(5, b"rank0").unwrap();
        b.save(3, b"rank1").unwrap();
        assert_eq!(a.latest().unwrap().unwrap(), (5, b"rank0".to_vec()));
        assert_eq!(b.latest().unwrap().unwrap(), (3, b"rank1".to_vec()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
