use std::path::Path;

use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::Comm;

use crate::cache::{lock_cache, shared_cache, CacheStats, SharedKvCache};
use crate::job::MapReduceJob;
use crate::{CacheEntrySnapshot, CancelToken, KvContainer, MimirConfig, Result};

/// A rank's handle to the Mimir runtime: communication, the node memory
/// pool, the I/O model, and framework configuration. One context serves
/// many jobs (multi-stage and iterative workloads reuse it).
pub struct MimirContext<'w> {
    pub(crate) comm: &'w mut Comm,
    pub(crate) pool: MemPool,
    pub(crate) io: IoModel,
    pub(crate) cfg: MimirConfig,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) cache: SharedKvCache,
}

impl<'w> MimirContext<'w> {
    /// Binds a context to this rank's communicator, its node's pool, and
    /// an I/O model.
    ///
    /// # Errors
    /// Invalid configuration for the world size.
    pub fn new(comm: &'w mut Comm, pool: MemPool, io: IoModel, cfg: MimirConfig) -> Result<Self> {
        cfg.validate(comm.size())?;
        Ok(Self {
            comm,
            pool,
            io,
            cfg,
            cancel: None,
            cache: shared_cache(),
        })
    }

    /// Installs a cooperative cancellation token: every job run on this
    /// context votes on the flag collectively at its phase boundaries and
    /// fails with [`crate::MimirError::Cancelled`] once any rank's clone
    /// has been raised. Without a token the checkpoints are free (no extra
    /// collectives). Every rank of the job must install a token (or none):
    /// the vote is a collective.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The node memory pool backing this rank.
    pub fn pool(&self) -> &MemPool {
        &self.pool
    }

    /// The I/O cost model.
    pub fn io(&self) -> &IoModel {
        &self.io
    }

    /// The framework configuration.
    pub fn config(&self) -> MimirConfig {
        self.cfg
    }

    /// Starts building a job on this context.
    pub fn job(&mut self) -> MapReduceJob<'_, 'w> {
        MapReduceJob::new(self)
    }

    /// Replaces this context's cross-job KV cache handle. The sched
    /// service installs its rank-wide cache here so containers cached by
    /// one job are visible to every later job on the rank; standalone
    /// contexts keep the private cache created by [`Self::new`].
    pub fn set_cache(&mut self, cache: SharedKvCache) {
        self.cache = cache;
    }

    /// The cross-job KV cache handle (cheap to clone and share).
    pub fn cache(&self) -> SharedKvCache {
        self.cache.clone()
    }

    /// Cross-job cache counters for this rank.
    pub fn cache_stats(&self) -> CacheStats {
        lock_cache(&self.cache).stats()
    }

    /// Per-name cache snapshots `(name, resident bytes, elisions)`.
    pub fn cache_snapshots(&self) -> Vec<CacheEntrySnapshot> {
        lock_cache(&self.cache).entry_snapshots()
    }

    /// Whether `name` is currently cached (resident or spilled). Local;
    /// does not count toward hit/miss statistics.
    pub fn cache_contains(&self, name: &str) -> bool {
        lock_cache(&self.cache).contains(name)
    }

    /// Records a cold-start cache miss (an iterative driver probed a
    /// name before seeding it).
    pub fn cache_note_miss(&self) {
        lock_cache(&self.cache).note_miss();
    }

    /// Reads the named cached container without consuming it, reloading
    /// it from spill first if it was evicted.
    ///
    /// # Errors
    /// [`crate::MimirError::Cache`] for an unknown name; reload failures.
    pub fn with_cached<R>(
        &self,
        name: &str,
        f: impl FnOnce(&KvContainer) -> Result<R>,
    ) -> Result<R> {
        lock_cache(&self.cache).with_resident(name, &self.pool, f)
    }

    /// Forces the named entry out to spill (tests and pressure drills;
    /// the sched service evicts collectively through its own handle).
    ///
    /// # Errors
    /// Spill I/O failures.
    pub fn cache_evict(&self, name: &str) -> Result<Option<u64>> {
        lock_cache(&self.cache).evict(name, &self.io)
    }

    /// Drops the named cache entry, freeing its pages or spill file.
    pub fn cache_remove(&self, name: &str) {
        lock_cache(&self.cache).remove(name);
    }

    /// Drops every cache entry. Iterative drivers call this when their
    /// chain ends so a finished workload holds nothing against the
    /// shared memory budget.
    pub fn cache_clear(&self) {
        lock_cache(&self.cache).clear();
    }

    /// Reads this rank's record-aligned share of a text file on the
    /// simulated parallel file system (input source 1 of the paper's
    /// three: "files from disk").
    ///
    /// # Errors
    /// I/O failures.
    pub fn read_text_split(&self, path: &Path) -> Result<Vec<u8>> {
        Ok(mimir_io::splitter::read_split(
            path,
            self.comm.rank(),
            self.comm.size(),
            b'\n',
            &self.io,
        )?)
    }

    /// Reads this rank's share of a binary file of fixed-size records on
    /// the simulated parallel file system (points, edge lists — the
    /// paper's other benchmark datasets).
    ///
    /// # Errors
    /// I/O failures or a corrupt record layout.
    pub fn read_fixed_split(&self, path: &Path, record_size: usize) -> Result<Vec<u8>> {
        Ok(mimir_io::splitter::read_fixed_split(
            path,
            self.comm.rank(),
            self.comm.size(),
            record_size,
            &self.io,
        )?)
    }

    /// Writes a job's output KVs to the simulated parallel file system as
    /// one text part-file per rank (`part-<rank>` under `dir`), rendering
    /// each KV with `fmt`. The container is consumed (pages freed as
    /// written) and the write is charged to the I/O model — the standard
    /// way a MapReduce job persists results.
    ///
    /// # Errors
    /// Filesystem failures, or errors from draining the container.
    pub fn write_text_output(
        &self,
        kvc: crate::KvContainer,
        dir: &Path,
        mut fmt: impl FnMut(&[u8], &[u8], &mut String),
    ) -> Result<std::path::PathBuf> {
        use std::io::Write;
        std::fs::create_dir_all(dir).map_err(|e| {
            crate::MimirError::Io(mimir_io::IoError::Os {
                context: format!("creating output dir {dir:?}"),
                source: e,
            })
        })?;
        let path = dir.join(format!("part-{:05}", self.rank()));
        let file = std::fs::File::create(&path).map_err(|e| {
            crate::MimirError::Io(mimir_io::IoError::Os {
                context: format!("creating output file {path:?}"),
                source: e,
            })
        })?;
        let mut w = std::io::BufWriter::new(file);
        let mut line = String::new();
        let mut written = 0usize;
        kvc.drain(|k, v| {
            line.clear();
            fmt(k, v, &mut line);
            line.push('\n');
            written += line.len();
            w.write_all(line.as_bytes()).map_err(|e| {
                crate::MimirError::Io(mimir_io::IoError::Os {
                    context: format!("writing output file {path:?}"),
                    source: e,
                })
            })
        })?;
        w.flush().map_err(|e| {
            crate::MimirError::Io(mimir_io::IoError::Os {
                context: format!("flushing output file {path:?}"),
                source: e,
            })
        })?;
        self.io.charge_write(written);
        Ok(path)
    }

    /// Global synchronization across all ranks.
    pub fn barrier(&mut self) {
        self.comm.barrier();
    }

    /// Global sum across ranks.
    pub fn allreduce_sum(&mut self, value: u64) -> u64 {
        self.comm.allreduce_u64(mimir_mpi::ReduceOp::Sum, value)
    }

    /// Global max across ranks.
    pub fn allreduce_max(&mut self, value: u64) -> u64 {
        self.comm.allreduce_u64(mimir_mpi::ReduceOp::Max, value)
    }

    /// Direct access to the communicator for application-level messaging
    /// between MapReduce stages (the in-situ pattern).
    pub fn comm(&mut self) -> &mut Comm {
        self.comm
    }
}
