//! Robustness tests beyond the happy path: spilled MR-MPI runs of the
//! iterative benchmarks stay correct, metrics compose, and degenerate
//! inputs are handled.

use mimir_apps::bfs::{bfs_mrmpi, bfs_serial, pick_root, BfsOptions};
use mimir_apps::octree::{octree_mrmpi, octree_serial, OcOptions};
use mimir_apps::validate::validate_bfs_tree;
use mimir_apps::RunMetrics;
use mimir_core::{MimirConfig, MimirContext};
use mimir_datagen::{Graph500, PointGen};
use mimir_io::{IoModel, SpillStore};
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mrmpi::MrMpiConfig;

#[test]
fn spilled_octree_matches_serial() {
    // 2 KiB MR-MPI pages force spills in every phase of every iteration.
    let gen = PointGen::new(8);
    let n_points = 6_000;
    let opts = OcOptions::default();
    let expected = octree_serial(
        &(0..3)
            .flat_map(|r| gen.generate(r, 3, n_points))
            .collect::<Vec<_>>(),
        opts.density,
        opts.max_depth,
    );
    let per_rank = run_world(3, move |comm| {
        let pts = gen.generate(comm.rank(), 3, n_points);
        let pool = MemPool::unlimited("node", 4096);
        let store = SpillStore::new_temp("oc-spill", IoModel::free()).unwrap();
        let (res, metrics) = octree_mrmpi(
            comm,
            pool,
            &store,
            MrMpiConfig::with_page_size(2 * 1024),
            &pts,
            &opts,
        )
        .unwrap();
        (res, metrics.spilled)
    });
    assert!(
        per_rank.iter().any(|(_, spilled)| *spilled),
        "fixture must spill"
    );
    let got: std::collections::BTreeSet<Vec<u8>> = per_rank
        .iter()
        .flat_map(|(r, _)| r.local_dense.iter().map(|(k, _)| k.clone()))
        .collect();
    let want: std::collections::BTreeSet<Vec<u8>> = expected
        .local_dense
        .iter()
        .map(|(k, _)| k.clone())
        .collect();
    assert_eq!(got, want);
}

#[test]
fn spilled_bfs_tree_is_valid() {
    let scale = 8;
    let graph = Graph500::new(scale, 21);
    let all_edges: Vec<(u64, u64)> = (0..3).flat_map(|r| graph.edges(r, 3)).collect();
    let results = run_world(3, move |comm| {
        let edges = graph.edges(comm.rank(), comm.size());
        let root = pick_root(comm, &edges);
        let pool = MemPool::unlimited("node", 4096);
        let store = SpillStore::new_temp("bfs-spill", IoModel::free()).unwrap();
        let (res, metrics) = bfs_mrmpi(
            comm,
            pool,
            &store,
            MrMpiConfig::with_page_size(4 * 1024),
            &edges,
            root,
            &BfsOptions::default(),
        )
        .unwrap();
        (root, res, metrics.spilled)
    });
    assert!(results.iter().any(|(_, _, s)| *s), "fixture must spill");
    let root = results[0].0;
    let reference = bfs_serial(&all_edges, root);
    validate_bfs_tree(
        results.into_iter().map(|(_, r, _)| r).collect(),
        &all_edges,
        root,
        &reference,
    );
}

#[test]
fn metrics_absorb_composes() {
    let mut a = RunMetrics {
        wall: std::time::Duration::from_millis(10),
        node_peak: 100,
        kv_bytes: 5,
        kvs_emitted: 2,
        spilled: false,
        exchange_rounds: 1,
        iterations: 1,
        ..RunMetrics::default()
    };
    let b = RunMetrics {
        wall: std::time::Duration::from_millis(7),
        node_peak: 300,
        kv_bytes: 10,
        kvs_emitted: 3,
        spilled: true,
        exchange_rounds: 2,
        iterations: 4,
        ..RunMetrics::default()
    };
    a.absorb(&b);
    assert_eq!(a.wall, std::time::Duration::from_millis(17));
    assert_eq!(a.node_peak, 300, "peak is max, not sum");
    assert_eq!(a.kv_bytes, 15);
    assert_eq!(a.kvs_emitted, 5);
    assert!(a.spilled);
    assert_eq!(a.exchange_rounds, 3);
    assert_eq!(a.iterations, 5);
}

#[test]
fn empty_points_and_edges_are_fine() {
    run_world(2, |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        // Octree with no points anywhere: no dense octants, level 0.
        let (res, m) =
            mimir_apps::octree::octree_mimir(&mut ctx, &[], &OcOptions::default()).unwrap();
        assert_eq!(res.final_level, 0);
        assert!(res.local_dense.is_empty());
        assert!(m.iterations <= 1);
        // BFS with no edges: only the root is visited.
        let (res, _) =
            mimir_apps::bfs::bfs_mimir(&mut ctx, &[], 0, &BfsOptions::default()).unwrap();
        assert_eq!(res.visited_global, 1);
    });
}

#[test]
fn pick_root_with_empty_local_edges() {
    let roots = run_world(3, |comm| {
        let edges: Vec<(u64, u64)> = if comm.rank() == 1 {
            vec![(42, 43)]
        } else {
            Vec::new()
        };
        pick_root(comm, &edges)
    });
    assert_eq!(roots, vec![42, 42, 42]);
}
