//! Cross-framework validation: every benchmark, both frameworks, all
//! optimization combinations, checked against the serial references.

use mimir_apps::bfs::{bfs_mimir, bfs_mrmpi, bfs_serial, pick_root, BfsOptions};
use mimir_apps::octree::{octree_mimir, octree_mrmpi, octree_serial, OcOptions};
use mimir_apps::validate::{merge_counts, validate_bfs_tree};
use mimir_apps::wordcount::{wordcount_mimir, wordcount_mrmpi, wordcount_serial, WcOptions};
use mimir_core::{MimirConfig, MimirContext};
use mimir_datagen::{Graph500, PointGen, UniformWords, WikipediaWords};
use mimir_io::{IoModel, SpillStore};
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mrmpi::MrMpiConfig;

const N_RANKS: usize = 4;

fn pool() -> MemPool {
    MemPool::unlimited("node", 16 * 1024)
}

// --- WordCount ----------------------------------------------------------

fn wc_corpus(rank: usize) -> Vec<u8> {
    // Mix of uniform and skewed text exercises balanced and hot keys.
    let mut text = UniformWords {
        vocab: 200,
        word_len: 6,
        seed: 7,
    }
    .generate(rank, N_RANKS, 40_000);
    text.extend(WikipediaWords::new(9).generate(rank, N_RANKS, 40_000));
    text
}

fn wc_reference() -> std::collections::HashMap<Vec<u8>, u64> {
    let shares: Vec<Vec<u8>> = (0..N_RANKS).map(wc_corpus).collect();
    wordcount_serial(&shares.iter().map(Vec::as_slice).collect::<Vec<_>>())
}

#[test]
fn wordcount_mimir_all_option_combinations_match_serial() {
    let expected = wc_reference();
    for hint in [false, true] {
        for pr in [false, true] {
            for cps in [false, true] {
                let opts = WcOptions {
                    hint,
                    partial_reduce: pr,
                    compress: cps,
                };
                let per_rank = run_world(N_RANKS, move |comm| {
                    let mut ctx =
                        MimirContext::new(comm, pool(), IoModel::free(), MimirConfig::default())
                            .unwrap();
                    let text = wc_corpus(ctx.rank());
                    wordcount_mimir(&mut ctx, &text, &opts).unwrap().0
                });
                let got = merge_counts(per_rank);
                assert_eq!(got, expected, "hint={hint} pr={pr} cps={cps}");
            }
        }
    }
}

#[test]
fn wordcount_mrmpi_matches_serial() {
    let expected = wc_reference();
    for cps in [false, true] {
        let per_rank = run_world(N_RANKS, move |comm| {
            let p = pool();
            let store = SpillStore::new_temp("wc", IoModel::free()).unwrap();
            let text = wc_corpus(comm.rank());
            wordcount_mrmpi(
                comm,
                p,
                store,
                MrMpiConfig::with_page_size(64 * 1024),
                &text,
                cps,
            )
            .unwrap()
            .0
        });
        let got = merge_counts(per_rank);
        assert_eq!(got, expected, "cps={cps}");
    }
}

#[test]
fn wordcount_hint_reduces_kv_bytes() {
    let bytes_of = |hint: bool| {
        let runs = run_world(N_RANKS, move |comm| {
            let mut ctx =
                MimirContext::new(comm, pool(), IoModel::free(), MimirConfig::default()).unwrap();
            let text = wc_corpus(ctx.rank());
            let opts = WcOptions {
                hint,
                ..WcOptions::default()
            };
            wordcount_mimir(&mut ctx, &text, &opts).unwrap().1
        });
        runs.iter().map(|m| m.kv_bytes).sum::<u64>()
    };
    let plain = bytes_of(false);
    let hinted = bytes_of(true);
    let saving = 1.0 - hinted as f64 / plain as f64;
    // Figure 7 territory: the paper reports ~26 %.
    assert!(
        (0.15..0.45).contains(&saving),
        "hint saving {saving:.3} (plain {plain}, hinted {hinted})"
    );
}

// --- Octree clustering ---------------------------------------------------

const OC_POINTS: usize = 20_000;

fn oc_points(rank: usize) -> Vec<[f32; 3]> {
    PointGen::new(42).generate(rank, N_RANKS, OC_POINTS)
}

fn oc_reference(opts: &OcOptions) -> mimir_apps::octree::OcResult {
    let all: Vec<[f32; 3]> = (0..N_RANKS).flat_map(oc_points).collect();
    octree_serial(&all, opts.density, opts.max_depth)
}

fn dense_set(r: &mimir_apps::octree::OcResult) -> std::collections::BTreeSet<Vec<u8>> {
    r.local_dense.iter().map(|(k, _)| k.clone()).collect()
}

#[test]
fn octree_mimir_all_option_combinations_match_serial() {
    let base = OcOptions::default();
    let expected = oc_reference(&base);
    let expected_set: std::collections::BTreeSet<Vec<u8>> = dense_set(&expected);
    for hint in [false, true] {
        for pr in [false, true] {
            for cps in [false, true] {
                let opts = OcOptions {
                    hint,
                    partial_reduce: pr,
                    compress: cps,
                    ..base
                };
                let per_rank = run_world(N_RANKS, move |comm| {
                    let mut ctx =
                        MimirContext::new(comm, pool(), IoModel::free(), MimirConfig::default())
                            .unwrap();
                    let pts = oc_points(ctx.rank());
                    octree_mimir(&mut ctx, &pts, &opts).unwrap().0
                });
                let mut got = std::collections::BTreeSet::new();
                let mut level = 0;
                for r in per_rank {
                    got.extend(dense_set(&r));
                    level = level.max(r.final_level);
                }
                assert_eq!(level, expected.final_level, "hint={hint} pr={pr} cps={cps}");
                assert_eq!(got, expected_set, "hint={hint} pr={pr} cps={cps}");
            }
        }
    }
}

#[test]
fn octree_mrmpi_matches_serial() {
    let base = OcOptions::default();
    let expected = oc_reference(&base);
    let expected_set = dense_set(&expected);
    for cps in [false, true] {
        let opts = OcOptions {
            compress: cps,
            ..base
        };
        let per_rank = run_world(N_RANKS, move |comm| {
            let p = pool();
            let store = SpillStore::new_temp("oc", IoModel::free()).unwrap();
            let pts = oc_points(comm.rank());
            octree_mrmpi(
                comm,
                p,
                &store,
                MrMpiConfig::with_page_size(64 * 1024),
                &pts,
                &opts,
            )
            .unwrap()
            .0
        });
        let mut got = std::collections::BTreeSet::new();
        for r in per_rank {
            got.extend(dense_set(&r));
        }
        assert_eq!(got, expected_set, "cps={cps}");
    }
}

// --- BFS ------------------------------------------------------------------

fn bfs_edges(rank: usize, scale: u32) -> Vec<(u64, u64)> {
    Graph500::new(scale, 5).edges(rank, N_RANKS)
}

#[test]
fn bfs_mimir_tree_is_valid_under_all_options() {
    let scale = 9;
    let all_edges: Vec<(u64, u64)> = (0..N_RANKS).flat_map(|r| bfs_edges(r, scale)).collect();
    for hint in [false, true] {
        for cps in [false, true] {
            let opts = BfsOptions {
                hint,
                compress: cps,
            };
            let results = run_world(N_RANKS, move |comm| {
                let edges = bfs_edges(comm.rank(), scale);
                let root = pick_root(comm, &edges);
                let mut ctx =
                    MimirContext::new(comm, pool(), IoModel::free(), MimirConfig::default())
                        .unwrap();
                let (res, _) = bfs_mimir(&mut ctx, &edges, root, &opts).unwrap();
                (root, res)
            });
            let root = results[0].0;
            let reference = bfs_serial(&all_edges, root);
            let per_rank: Vec<_> = results.into_iter().map(|(_, r)| r).collect();
            assert!(per_rank[0].visited_global > 1, "hint={hint} cps={cps}");
            validate_bfs_tree(per_rank, &all_edges, root, &reference);
        }
    }
}

#[test]
fn bfs_mrmpi_tree_is_valid() {
    let scale = 8;
    let all_edges: Vec<(u64, u64)> = (0..N_RANKS).flat_map(|r| bfs_edges(r, scale)).collect();
    for cps in [false, true] {
        let opts = BfsOptions {
            hint: false,
            compress: cps,
        };
        let results = run_world(N_RANKS, move |comm| {
            let edges = bfs_edges(comm.rank(), scale);
            let root = pick_root(comm, &edges);
            let p = pool();
            let store = SpillStore::new_temp("bfs", IoModel::free()).unwrap();
            let (res, _) = bfs_mrmpi(
                comm,
                p,
                &store,
                MrMpiConfig::with_page_size(64 * 1024),
                &edges,
                root,
                &opts,
            )
            .unwrap();
            (root, res)
        });
        let root = results[0].0;
        let reference = bfs_serial(&all_edges, root);
        let per_rank: Vec<_> = results.into_iter().map(|(_, r)| r).collect();
        validate_bfs_tree(per_rank, &all_edges, root, &reference);
    }
}

#[test]
fn frameworks_agree_on_wordcount() {
    let mimir = {
        let per_rank = run_world(N_RANKS, |comm| {
            let mut ctx =
                MimirContext::new(comm, pool(), IoModel::free(), MimirConfig::default()).unwrap();
            let text = wc_corpus(ctx.rank());
            wordcount_mimir(&mut ctx, &text, &WcOptions::all())
                .unwrap()
                .0
        });
        merge_counts(per_rank)
    };
    let mrmpi_counts = {
        let per_rank = run_world(N_RANKS, |comm| {
            let p = pool();
            let store = SpillStore::new_temp("wc2", IoModel::free()).unwrap();
            let text = wc_corpus(comm.rank());
            wordcount_mrmpi(
                comm,
                p,
                store,
                MrMpiConfig::with_page_size(64 * 1024),
                &text,
                true,
            )
            .unwrap()
            .0
        });
        merge_counts(per_rank)
    };
    assert_eq!(mimir, mrmpi_counts);
}
