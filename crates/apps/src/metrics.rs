use std::time::Duration;

use mimir_core::JobStats;

/// Framework-neutral per-rank metrics collected by every benchmark run —
/// the quantities the paper's figures plot.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunMetrics {
    /// Measured compute wall time on this rank (excludes modeled I/O,
    /// which the harness adds from the shared `IoModel`).
    pub wall: Duration,
    /// Peak bytes on this rank's node pool.
    pub node_peak: usize,
    /// Intermediate KV bytes emitted (paper Figure 7's metric).
    pub kv_bytes: u64,
    /// Intermediate KVs emitted.
    pub kvs_emitted: u64,
    /// Whether any data spilled to the I/O subsystem (MR-MPI only; Mimir
    /// fails instead of spilling).
    pub spilled: bool,
    /// Exchange rounds across all stages.
    pub exchange_rounds: u64,
    /// Iterations executed (octree levels, BFS depth; 1 for WordCount).
    pub iterations: u32,
    /// Unified per-job statistics, folded across the run's stages via
    /// [`JobStats::merge`] (phase times and peaks are per-stage maxima;
    /// traffic counters sum). MR-MPI runs report through the same shape
    /// via [`job_stats_from_mr`].
    pub job: JobStats,
}

impl RunMetrics {
    /// Merges metrics from a later stage of the same run.
    pub fn absorb(&mut self, other: &RunMetrics) {
        self.wall += other.wall;
        self.node_peak = self.node_peak.max(other.node_peak);
        self.kv_bytes += other.kv_bytes;
        self.kvs_emitted += other.kvs_emitted;
        self.spilled |= other.spilled;
        self.exchange_rounds += other.exchange_rounds;
        self.iterations += other.iterations;
        self.job.merge(&other.job);
    }
}

/// Maps the MR-MPI baseline's stats onto the unified [`JobStats`] shape
/// so both frameworks report through the same registry. MR-MPI's
/// explicit aggregate and compress phases are folded into map time,
/// where Mimir interleaves them.
pub fn job_stats_from_mr(s: &mrmpi::MrStats) -> JobStats {
    JobStats {
        map_time: s.map_time + s.aggregate_time + s.compress_time,
        convert_time: s.convert_time,
        reduce_time: s.reduce_time,
        shuffle: mimir_core::ShuffleStats {
            kvs_emitted: s.kvs_mapped,
            rounds: s.exchange_rounds,
            ..mimir_core::ShuffleStats::default()
        },
        unique_keys: s.unique_keys,
        node_peak_bytes: s.node_peak_bytes,
        ..JobStats::default()
    }
}
