use std::time::Duration;

/// Framework-neutral per-rank metrics collected by every benchmark run —
/// the quantities the paper's figures plot.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunMetrics {
    /// Measured compute wall time on this rank (excludes modeled I/O,
    /// which the harness adds from the shared `IoModel`).
    pub wall: Duration,
    /// Peak bytes on this rank's node pool.
    pub node_peak: usize,
    /// Intermediate KV bytes emitted (paper Figure 7's metric).
    pub kv_bytes: u64,
    /// Intermediate KVs emitted.
    pub kvs_emitted: u64,
    /// Whether any data spilled to the I/O subsystem (MR-MPI only; Mimir
    /// fails instead of spilling).
    pub spilled: bool,
    /// Exchange rounds across all stages.
    pub exchange_rounds: u64,
    /// Iterations executed (octree levels, BFS depth; 1 for WordCount).
    pub iterations: u32,
}

impl RunMetrics {
    /// Merges metrics from a later stage of the same run.
    pub fn absorb(&mut self, other: &RunMetrics) {
        self.wall += other.wall;
        self.node_peak = self.node_peak.max(other.node_peak);
        self.kv_bytes += other.kv_bytes;
        self.kvs_emitted += other.kvs_emitted;
        self.spilled |= other.spilled;
        self.exchange_rounds += other.exchange_rounds;
        self.iterations += other.iterations;
    }
}
