//! WordCount (WC): the paper's single-pass benchmark.
//!
//! Counts occurrences of each unique word. The KV-hint configuration is
//! the paper's own example: "the key in the WordCount application is
//! usually a string with variable length, but the value is always a
//! 64-bit integer" — so the hint declares a NUL-terminated key and a
//! fixed 8-byte value.

use std::time::Instant;

use mimir_core::{typed, Emitter, KvMeta, MimirContext};
use mimir_io::{words, LineReader, SpillStore};
use mimir_mem::MemPool;
use mimir_mpi::Comm;
use mrmpi::{MapReduce, MrMpiConfig};

use crate::RunMetrics;

/// Reduced `(word, count)` pairs on one rank, with the run's metrics.
pub type WcOutput = (Vec<(Vec<u8>, u64)>, RunMetrics);

/// Which optional optimizations a Mimir WordCount run enables
/// (paper Section IV's `hint` / `pr` / `cps`).
#[derive(Debug, Clone, Copy, Default)]
pub struct WcOptions {
    /// KV-hint: NUL-terminated key, fixed 8-byte value.
    pub hint: bool,
    /// Partial reduction instead of convert+reduce.
    pub partial_reduce: bool,
    /// Map-side KV compression.
    pub compress: bool,
}

impl WcOptions {
    /// The full optimization stack (`hint;pr;cps`).
    pub fn all() -> Self {
        Self {
            hint: true,
            partial_reduce: true,
            compress: true,
        }
    }

    fn meta(&self) -> KvMeta {
        if self.hint {
            KvMeta::cstr_key_u64_val()
        } else {
            KvMeta::var()
        }
    }
}

fn sum_u64(_k: &[u8], a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&typed::enc_u64(typed::dec_u64(a) + typed::dec_u64(b)));
}

/// Runs WordCount on Mimir over this rank's text share. Returns the
/// locally reduced `(word, count)` pairs (each word on exactly one rank)
/// and run metrics.
///
/// # Errors
/// Out-of-memory (Mimir does not spill) or configuration errors.
pub fn wordcount_mimir(
    ctx: &mut MimirContext<'_>,
    text: &[u8],
    opts: &WcOptions,
) -> mimir_core::Result<WcOutput> {
    let t0 = Instant::now();
    let meta = opts.meta();
    let one = typed::enc_u64(1);
    let mut map = |em: &mut dyn Emitter| -> mimir_core::Result<()> {
        for line in LineReader::new(text) {
            for w in words(line) {
                em.emit(w, &one)?;
            }
        }
        Ok(())
    };

    let job = ctx.job().kv_meta(meta).out_meta(meta);
    let out = match (opts.partial_reduce, opts.compress) {
        (true, true) => {
            job.map_partial_reduce_compress(&mut map, Box::new(sum_u64), Box::new(sum_u64))?
        }
        (true, false) => job.map_partial_reduce(&mut map, Box::new(sum_u64))?,
        (false, true) => {
            job.map_reduce_compress(&mut map, Box::new(sum_u64), &mut |k, vals, em| {
                let total: u64 = vals.map(typed::dec_u64).sum();
                em.emit(k, &typed::enc_u64(total))
            })?
        }
        (false, false) => job.map_reduce(&mut map, &mut |k, vals, em| {
            let total: u64 = vals.map(typed::dec_u64).sum();
            em.emit(k, &typed::enc_u64(total))
        })?,
    };

    let mut counts = Vec::with_capacity(out.output.len() as usize);
    out.output.drain(|k, v| {
        counts.push((k.to_vec(), typed::dec_u64(v)));
        Ok(())
    })?;
    let metrics = RunMetrics {
        wall: t0.elapsed(),
        node_peak: ctx.pool().peak(),
        kv_bytes: out.stats.shuffle.kv_bytes_emitted,
        kvs_emitted: out.stats.shuffle.kvs_emitted,
        spilled: false,
        exchange_rounds: out.stats.shuffle.rounds,
        iterations: 1,
        job: out.stats,
    };
    Ok((counts, metrics))
}

/// Runs WordCount on MR-MPI over this rank's text share, with MR-MPI's
/// explicit phase calls (and optionally its KV compression).
///
/// # Errors
/// Page overflow (out-of-core disabled), OOM allocating page sets, or
/// I/O failures while spilling.
pub fn wordcount_mrmpi(
    comm: &mut Comm,
    pool: MemPool,
    store: SpillStore,
    cfg: MrMpiConfig,
    text: &[u8],
    compress: bool,
) -> mrmpi::Result<WcOutput> {
    let t0 = Instant::now();
    let mut mr = MapReduce::new(comm, pool.clone(), store, cfg);
    mr.map(|em| {
        for line in LineReader::new(text) {
            for w in words(line) {
                em.emit(w, &typed::enc_u64(1))?;
            }
        }
        Ok(())
    })?;
    let kv_bytes = mr.kv_bytes();
    let kvs = mr.kv_count();
    if compress {
        mr.compress(sum_u64)?;
    }
    mr.aggregate()?;
    mr.convert()?;
    mr.reduce(|k, vals, em| {
        let total: u64 = vals.map(typed::dec_u64).sum();
        em.emit(k, &typed::enc_u64(total))
    })?;

    let mut counts = Vec::new();
    mr.scan(|k, v| {
        counts.push((k.to_vec(), typed::dec_u64(v)));
        Ok(())
    })?;
    let stats = mr.stats();
    let metrics = RunMetrics {
        wall: t0.elapsed(),
        node_peak: pool.peak(),
        kv_bytes,
        kvs_emitted: kvs,
        spilled: stats.spilled,
        exchange_rounds: stats.exchange_rounds,
        iterations: 1,
        job: crate::job_stats_from_mr(&stats),
    };
    Ok((counts, metrics))
}

/// Serial reference: exact word counts of a whole corpus.
pub fn wordcount_serial(shares: &[&[u8]]) -> std::collections::HashMap<Vec<u8>, u64> {
    let mut counts = std::collections::HashMap::new();
    for share in shares {
        for line in LineReader::new(share) {
            for w in words(line) {
                *counts.entry(w.to_vec()).or_insert(0) += 1;
            }
        }
    }
    counts
}
