//! Breadth-first search (BFS): the paper's iterative map-only benchmark
//! (one of the three Graph500 kernels).
//!
//! Two stages, as in the paper:
//!
//! 1. **Graph partitioning** — every undirected edge is emitted in both
//!    directions keyed by endpoint and shuffled to the endpoint's owner
//!    rank, which builds its local adjacency. The paper notes BFS's
//!    *peak memory usage occurs in this phase* (the full edge list flows
//!    through the framework), which is why KV compression does not lower
//!    BFS's peak (Figures 11–13).
//! 2. **Level-synchronous traversal** — each iteration maps over the
//!    local frontier, emitting `(neighbor, parent)` KVs shuffled to the
//!    neighbor's owner; unvisited neighbors join the next frontier. This
//!    is "map-only": no convert/reduce.
//!
//! The traversal is chained through the cross-job KV cache: each level's
//! output is stashed under a frontier name with `output_cached` and the
//! next level consumes it in place with `input_cached` + `chain_shuffle`,
//! so frontier KVs never round-trip through serialization or spill
//! between levels. Traversal re-keys every KV (`vertex → neighbor`), so
//! the chain declares `shuffle_elision(false)` and each level still runs
//! a real exchange — the cache saves the *materialization*, not the
//! shuffle itself.
//!
//! Vertex ownership is `partition_of(key)` — identical to the shuffle's
//! partitioner, so shuffled KVs land exactly on their owner.

use std::collections::HashMap;
use std::time::Instant;

use mimir_core::{typed, Emitter, KvMeta, MimirContext};
use mimir_io::SpillStore;
use mimir_mem::{MemPool, Reservation};
use mimir_mpi::{Comm, ReduceOp};
use mrmpi::{MapReduce, MrMpiConfig};

use crate::RunMetrics;

/// BFS options (partial reduction does not apply to a map-only job).
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsOptions {
    /// KV-hint: fixed 8-byte vertex key and value.
    pub hint: bool,
    /// Map-side KV compression during traversal (first-parent wins):
    /// within a level, only the first proposal per neighbor leaves the
    /// emitting rank. MR-MPI runs it as a compress pass over the page
    /// set; Mimir's chained traversal dedupes at the emit site.
    pub compress: bool,
}

impl BfsOptions {
    /// Hint + compression.
    pub fn all() -> Self {
        Self {
            hint: true,
            compress: true,
        }
    }

    fn meta(&self) -> KvMeta {
        if self.hint {
            KvMeta::fixed(8, 8)
        } else {
            KvMeta::var()
        }
    }
}

/// The traversal output on one rank.
#[derive(Debug, Clone, Default)]
pub struct BfsResult {
    /// `vertex → parent` for the vertices this rank owns (the root maps
    /// to itself).
    pub parents: HashMap<u64, u64>,
    /// Vertices reached globally.
    pub visited_global: u64,
    /// Tree depth (BFS levels executed).
    pub depth: u32,
}

/// Keeps the first-proposed parent — a valid choice for BFS trees, and
/// the compression callback for traversal KVs.
fn keep_first(_k: &[u8], a: &[u8], _b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(a);
}

/// Local adjacency: owner-rank's vertices to their neighbors, with its
/// heap footprint charged to the node pool.
struct Adjacency {
    map: HashMap<u64, Vec<u64>>,
    res: Reservation,
    bytes: usize,
}

impl Adjacency {
    fn new(pool: &MemPool) -> mimir_core::Result<Self> {
        Ok(Self {
            map: HashMap::new(),
            res: pool.try_reserve(0)?,
            bytes: 0,
        })
    }

    fn add(&mut self, v: u64, n: u64) -> mimir_core::Result<()> {
        let entry = self.map.entry(v).or_insert_with(|| {
            self.bytes += 64;
            Vec::new()
        });
        entry.push(n);
        self.bytes += 8;
        if self.bytes.abs_diff(self.res.bytes()) > 16 * 1024 {
            self.res.resize(self.bytes)?;
        }
        Ok(())
    }
}

/// Picks a root every rank agrees on: the globally smallest vertex id
/// that has at least one edge.
pub fn pick_root(comm: &mut Comm, edges: &[(u64, u64)]) -> u64 {
    let local_min = edges
        .iter()
        .flat_map(|&(u, v)| [u, v])
        .min()
        .unwrap_or(u64::MAX);
    comm.allreduce_u64(ReduceOp::Min, local_min)
}

/// BFS on Mimir over this rank's edge share.
///
/// # Errors
/// Out-of-memory or configuration errors.
pub fn bfs_mimir(
    ctx: &mut MimirContext<'_>,
    edges: &[(u64, u64)],
    root: u64,
    opts: &BfsOptions,
) -> mimir_core::Result<(BfsResult, RunMetrics)> {
    let t0 = Instant::now();
    let meta = opts.meta();
    let rank = ctx.rank();
    let mut metrics = RunMetrics::default();

    // --- Stage 1: graph partitioning (map-only with shuffle). ----------
    let mut part_map = |em: &mut dyn Emitter| -> mimir_core::Result<()> {
        for &(u, v) in edges {
            em.emit(&typed::enc_u64(u), &typed::enc_u64(v))?;
            em.emit(&typed::enc_u64(v), &typed::enc_u64(u))?;
        }
        Ok(())
    };
    let out = ctx.job().kv_meta(meta).map_shuffle(&mut part_map)?;
    metrics.kv_bytes += out.stats.shuffle.kv_bytes_emitted;
    metrics.kvs_emitted += out.stats.shuffle.kvs_emitted;
    metrics.exchange_rounds += out.stats.shuffle.rounds;
    metrics.job.merge(&out.stats);

    let mut adj = Adjacency::new(ctx.pool())?;
    out.output
        .drain(|k, v| adj.add(typed::dec_u64(k), typed::dec_u64(v)))?;

    // --- Stage 2: level-synchronous traversal (iterative map-only), ----
    // chained through the cross-job cache. The seed job plants the root
    // proposal on its owner rank and stashes it as the frontier; every
    // level then consumes the cached frontier in place and stashes its
    // successor under the same name (the checkout happens before the
    // stash, so the overwrite is safe).
    const FRONTIER: &str = "bfs.frontier";
    let mut parents: HashMap<u64, u64> = HashMap::new();
    let mut seed_map = |em: &mut dyn Emitter| -> mimir_core::Result<()> {
        if rank == 0 {
            em.emit(&typed::enc_u64(root), &typed::enc_u64(root))?;
        }
        Ok(())
    };
    let out = ctx
        .job()
        .kv_meta(meta)
        .output_cached(FRONTIER)
        .map_shuffle(&mut seed_map)?;
    metrics.job.merge(&out.stats);

    let mut depth = 0u32;
    let mut level = 0u64;
    let compress = opts.compress;
    // Compression state: the neighbors this rank already proposed a
    // parent for in the current level (first-parent wins, so later
    // duplicate proposals carry no information and need not be shuffled).
    let mut proposed: std::collections::HashSet<u64> = std::collections::HashSet::new();
    loop {
        // Per-KV traversal map: claim the vertex (first parent proposal
        // across ranks wins at the claim site) and propose this vertex
        // as the parent of every neighbor.
        let mut new_local = 0u64;
        let adj_map = &adj.map;
        proposed.clear();
        let prop = &mut proposed;
        let mut trav_map = |k: &[u8], v: &[u8], em: &mut dyn Emitter| -> mimir_core::Result<()> {
            let vertex = typed::dec_u64(k);
            if let std::collections::hash_map::Entry::Vacant(e) = parents.entry(vertex) {
                e.insert(typed::dec_u64(v));
                new_local += 1;
                if let Some(neighbors) = adj_map.get(&vertex) {
                    for &n in neighbors {
                        if compress && !prop.insert(n) {
                            continue;
                        }
                        em.emit(&typed::enc_u64(n), &typed::enc_u64(vertex))?;
                    }
                }
            }
            Ok(())
        };
        let out = ctx
            .job()
            .kv_meta(meta)
            .input_cached(FRONTIER)
            .output_cached(FRONTIER)
            // Traversal re-keys (vertex → neighbor): placement changes,
            // so every level needs a real exchange.
            .shuffle_elision(false)
            .chain_shuffle(&mut trav_map)?;
        metrics.kv_bytes += out.stats.shuffle.kv_bytes_emitted;
        metrics.kvs_emitted += out.stats.shuffle.kvs_emitted;
        metrics.exchange_rounds += out.stats.shuffle.rounds;
        metrics.job.merge(&out.stats);

        let new_global = ctx.allreduce_sum(new_local);
        if new_global == 0 {
            break;
        }
        if level > 0 {
            depth += 1;
            metrics.iterations += 1;
        }
        level += 1;
    }
    ctx.cache_remove(FRONTIER);

    let visited_global = ctx.allreduce_sum(parents.len() as u64);
    metrics.wall = t0.elapsed();
    metrics.node_peak = ctx.pool().peak();
    Ok((
        BfsResult {
            parents,
            visited_global,
            depth,
        },
        metrics,
    ))
}

/// BFS on MR-MPI (fresh page sets per stage/iteration).
///
/// # Errors
/// Page overflow, OOM allocating page sets, or I/O failures.
pub fn bfs_mrmpi(
    comm: &mut Comm,
    pool: MemPool,
    store: &SpillStore,
    cfg: MrMpiConfig,
    edges: &[(u64, u64)],
    root: u64,
    opts: &BfsOptions,
) -> mrmpi::Result<(BfsResult, RunMetrics)> {
    let t0 = Instant::now();
    let p = comm.size();
    let rank = comm.rank();
    let mut metrics = RunMetrics::default();

    // MR-MPI has no hints; `opts.hint` is ignored (paper: hint is a Mimir
    // addition). Compression during partitioning would merge adjacency —
    // not applicable, as in the paper.
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    {
        let inner = SpillStore::new_temp("bfs-part", store.model().clone())?;
        let mut mr = MapReduce::new(comm, pool.clone(), inner, cfg);
        mr.map(|em| {
            for &(u, v) in edges {
                em.emit(&typed::enc_u64(u), &typed::enc_u64(v))?;
                em.emit(&typed::enc_u64(v), &typed::enc_u64(u))?;
            }
            Ok(())
        })?;
        metrics.kv_bytes += mr.kv_bytes();
        metrics.kvs_emitted += mr.kv_count();
        mr.aggregate()?;
        mr.scan(|k, v| {
            adj.entry(typed::dec_u64(k))
                .or_default()
                .push(typed::dec_u64(v));
            Ok(())
        })?;
        let s = mr.stats();
        metrics.spilled |= s.spilled;
        metrics.exchange_rounds += s.exchange_rounds;
        metrics.job.merge(&crate::job_stats_from_mr(&s));
    }

    let mut parents: HashMap<u64, u64> = HashMap::new();
    let mut frontier: Vec<u64> = Vec::new();
    // MR-MPI's partitioner is FNV-based; ownership must match the rank
    // that aggregate sent the adjacency to. Probe it with the same hash
    // the library uses by checking which rank holds the root's adjacency:
    // simpler and robust — the owner is whoever has it in `adj`, and the
    // root's owner is agreed by an allreduce.
    let i_own_root = adj.contains_key(&root);
    let owners = comm.allgather_u64(u64::from(i_own_root));
    let owner = owners.iter().position(|&o| o == 1);
    if owner == Some(rank) || (owner.is_none() && rank == 0) {
        parents.insert(root, root);
        frontier.push(root);
    }

    let mut depth = 0u32;
    loop {
        let mut received: Vec<(u64, u64)> = Vec::new();
        {
            let inner = SpillStore::new_temp("bfs-trav", store.model().clone())?;
            let mut mr = MapReduce::new(comm, pool.clone(), inner, cfg);
            mr.map(|em| {
                for &v in &frontier {
                    if let Some(neighbors) = adj.get(&v) {
                        for &n in neighbors {
                            em.emit(&typed::enc_u64(n), &typed::enc_u64(v))?;
                        }
                    }
                }
                Ok(())
            })?;
            metrics.kv_bytes += mr.kv_bytes();
            metrics.kvs_emitted += mr.kv_count();
            if opts.compress {
                mr.compress(keep_first)?;
            }
            mr.aggregate()?;
            mr.scan(|k, v| {
                received.push((typed::dec_u64(k), typed::dec_u64(v)));
                Ok(())
            })?;
            let s = mr.stats();
            metrics.spilled |= s.spilled;
            metrics.exchange_rounds += s.exchange_rounds;
            metrics.job.merge(&crate::job_stats_from_mr(&s));
        }

        let mut next: Vec<u64> = Vec::new();
        for (vertex, parent) in received {
            if let std::collections::hash_map::Entry::Vacant(e) = parents.entry(vertex) {
                e.insert(parent);
                next.push(vertex);
            }
        }
        frontier = next;
        let frontier_global = comm.allreduce_u64(ReduceOp::Sum, frontier.len() as u64);
        if frontier_global == 0 {
            break;
        }
        depth += 1;
        metrics.iterations += 1;
    }

    let visited_global = comm.allreduce_u64(ReduceOp::Sum, parents.len() as u64);
    metrics.wall = t0.elapsed();
    metrics.node_peak = pool.peak();
    let _ = p;
    Ok((
        BfsResult {
            parents,
            visited_global,
            depth,
        },
        metrics,
    ))
}

/// Serial reference BFS: the reachable set and its distances from
/// `root`.
pub fn bfs_serial(all_edges: &[(u64, u64)], root: u64) -> HashMap<u64, u32> {
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(u, v) in all_edges {
        adj.entry(u).or_default().push(v);
        adj.entry(v).or_default().push(u);
    }
    let mut dist = HashMap::new();
    dist.insert(root, 0u32);
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if let Some(ns) = adj.get(&v) {
            for &n in ns {
                dist.entry(n).or_insert_with(|| {
                    queue.push_back(n);
                    d + 1
                });
            }
        }
    }
    dist
}
