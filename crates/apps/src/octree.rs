//! Octree clustering (OC): the paper's iterative multi-stage benchmark.
//!
//! The MapReduce clustering algorithm of Estrada et al. for 3-D point
//! data: starting from the unit cube, each iteration deepens the octree
//! one level — every point inside a currently-dense octant maps to its
//! child octant id, the reduction counts points per child, and children
//! holding at least `density` of the total points stay dense. The
//! algorithm stops when no octant is dense (the previous level's dense
//! octants are the clusters) or at `max_depth`.
//!
//! The intermediate key is the octant path (one byte per level), so at
//! level ℓ the key has exactly ℓ bytes — a natural fit for the paper's
//! fixed-length KV-hint. The value is a fixed 8-byte count.

use std::collections::HashSet;
use std::time::Instant;

use mimir_core::{typed, Emitter, KvMeta, LenHint, MimirContext};
use mimir_io::SpillStore;
use mimir_mem::MemPool;
use mimir_mpi::Comm;
use mrmpi::{MapReduce, MrMpiConfig};

use crate::RunMetrics;

/// A point in the unit cube.
pub type Point = [f32; 3];

/// Octree clustering options.
#[derive(Debug, Clone, Copy)]
pub struct OcOptions {
    /// KV-hint: fixed-length octant-path key, fixed 8-byte value.
    pub hint: bool,
    /// Partial reduction instead of convert+reduce.
    pub partial_reduce: bool,
    /// Map-side KV compression.
    pub compress: bool,
    /// Density threshold as a fraction of total points (paper: 1 %).
    pub density: f64,
    /// Maximum refinement depth.
    pub max_depth: usize,
}

impl Default for OcOptions {
    fn default() -> Self {
        Self {
            hint: false,
            partial_reduce: false,
            compress: false,
            density: 0.01,
            max_depth: 8,
        }
    }
}

impl OcOptions {
    /// The full optimization stack.
    pub fn all() -> Self {
        Self {
            hint: true,
            partial_reduce: true,
            compress: true,
            ..Self::default()
        }
    }

    fn meta(&self, level: usize) -> KvMeta {
        if self.hint {
            KvMeta {
                key: LenHint::Fixed(level),
                val: LenHint::Fixed(8),
            }
        } else {
            KvMeta::var()
        }
    }
}

/// The octant path of `p` down to `depth` levels: one digit (0..8) per
/// level, bit 0/1/2 selecting the x/y/z half.
pub fn octant_path(p: Point, depth: usize) -> Vec<u8> {
    let mut lo = [0f32; 3];
    let mut half = 0.5f32;
    let mut path = Vec::with_capacity(depth);
    for _ in 0..depth {
        let mut digit = 0u8;
        for axis in 0..3 {
            let mid = lo[axis] + half;
            if p[axis] >= mid {
                digit |= 1 << axis;
                lo[axis] = mid;
            }
        }
        path.push(digit);
        half *= 0.5;
    }
    path
}

/// The result of a clustering run: the dense octant paths of the deepest
/// level that had any, with their point counts (on the rank that reduced
/// them), plus the level reached.
#[derive(Debug, Clone, Default)]
pub struct OcResult {
    /// Dense octant paths with counts, as reduced on this rank.
    pub local_dense: Vec<(Vec<u8>, u64)>,
    /// The deepest level that still had dense octants.
    pub final_level: usize,
}

fn sum_u64(_k: &[u8], a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&typed::enc_u64(typed::dec_u64(a) + typed::dec_u64(b)));
}

/// Gathers dense octant keys from every rank into a global active set.
fn allgather_dense(comm: &mut Comm, local: &[(Vec<u8>, u64)], level: usize) -> HashSet<Vec<u8>> {
    let mut packed = Vec::new();
    for (k, _) in local {
        debug_assert_eq!(k.len(), level);
        packed.extend_from_slice(k);
    }
    let mut set = HashSet::new();
    for buf in comm.allgather(packed) {
        for chunk in buf.chunks_exact(level) {
            set.insert(chunk.to_vec());
        }
    }
    set
}

/// Octree clustering on Mimir over this rank's points.
///
/// # Errors
/// Out-of-memory or configuration errors.
pub fn octree_mimir(
    ctx: &mut MimirContext<'_>,
    points: &[Point],
    opts: &OcOptions,
) -> mimir_core::Result<(OcResult, RunMetrics)> {
    let t0 = Instant::now();
    let total_points = ctx.allreduce_sum(points.len() as u64);
    let threshold = (total_points as f64 * opts.density).ceil() as u64;

    let mut active: HashSet<Vec<u8>> = HashSet::new();
    active.insert(Vec::new()); // the root octant
    let mut result = OcResult::default();
    let mut metrics = RunMetrics {
        iterations: 0,
        ..RunMetrics::default()
    };

    for level in 1..=opts.max_depth {
        if active.is_empty() {
            break;
        }
        let meta = opts.meta(level);
        let one = typed::enc_u64(1);
        let mut map = |em: &mut dyn Emitter| -> mimir_core::Result<()> {
            for &p in points {
                let path = octant_path(p, level);
                if active.contains(&path[..level - 1]) {
                    em.emit(&path, &one)?;
                }
            }
            Ok(())
        };
        let job = ctx.job().kv_meta(meta).out_meta(meta);
        let out = match (opts.partial_reduce, opts.compress) {
            (true, true) => {
                job.map_partial_reduce_compress(&mut map, Box::new(sum_u64), Box::new(sum_u64))?
            }
            (true, false) => job.map_partial_reduce(&mut map, Box::new(sum_u64))?,
            (false, true) => {
                job.map_reduce_compress(&mut map, Box::new(sum_u64), &mut |k, vals, em| {
                    let total: u64 = vals.map(typed::dec_u64).sum();
                    em.emit(k, &typed::enc_u64(total))
                })?
            }
            (false, false) => job.map_reduce(&mut map, &mut |k, vals, em| {
                let total: u64 = vals.map(typed::dec_u64).sum();
                em.emit(k, &typed::enc_u64(total))
            })?,
        };
        metrics.kv_bytes += out.stats.shuffle.kv_bytes_emitted;
        metrics.kvs_emitted += out.stats.shuffle.kvs_emitted;
        metrics.exchange_rounds += out.stats.shuffle.rounds;
        metrics.job.merge(&out.stats);
        metrics.iterations += 1;

        let mut local_dense = Vec::new();
        out.output.drain(|k, v| {
            let count = typed::dec_u64(v);
            if count >= threshold {
                local_dense.push((k.to_vec(), count));
            }
            Ok(())
        })?;
        let dense = allgather_dense(ctx.comm(), &local_dense, level);
        if dense.is_empty() {
            break;
        }
        result = OcResult {
            local_dense,
            final_level: level,
        };
        active = dense;
    }

    metrics.wall = t0.elapsed();
    metrics.node_peak = ctx.pool().peak();
    Ok((result, metrics))
}

/// Octree clustering on MR-MPI. A fresh `MapReduce` object (and page
/// sets) is created per iteration — the repeated allocate/free pattern
/// the paper describes for iterative MR-MPI jobs.
///
/// # Errors
/// Page overflow, OOM allocating page sets, or I/O failures.
pub fn octree_mrmpi(
    comm: &mut Comm,
    pool: MemPool,
    store: &SpillStore,
    cfg: MrMpiConfig,
    points: &[Point],
    opts: &OcOptions,
) -> mrmpi::Result<(OcResult, RunMetrics)> {
    let t0 = Instant::now();
    let total_points = comm.allreduce_u64(mimir_mpi::ReduceOp::Sum, points.len() as u64);
    let threshold = (total_points as f64 * opts.density).ceil() as u64;

    let mut active: HashSet<Vec<u8>> = HashSet::new();
    active.insert(Vec::new());
    let mut result = OcResult::default();
    let mut metrics = RunMetrics::default();

    for level in 1..=opts.max_depth {
        if active.is_empty() {
            break;
        }
        let mut local_dense = Vec::new();
        {
            let inner_store = SpillStore::new_temp("oc-iter", store.model().clone())?;
            let mut mr = MapReduce::new(comm, pool.clone(), inner_store, cfg);
            mr.map(|em| {
                for &p in points {
                    let path = octant_path(p, level);
                    if active.contains(&path[..level - 1]) {
                        em.emit(&path, &typed::enc_u64(1))?;
                    }
                }
                Ok(())
            })?;
            metrics.kv_bytes += mr.kv_bytes();
            metrics.kvs_emitted += mr.kv_count();
            if opts.compress {
                mr.compress(sum_u64)?;
            }
            mr.aggregate()?;
            mr.convert()?;
            mr.reduce(|k, vals, em| {
                let total: u64 = vals.map(typed::dec_u64).sum();
                em.emit(k, &typed::enc_u64(total))
            })?;
            mr.scan(|k, v| {
                let count = typed::dec_u64(v);
                if count >= threshold {
                    local_dense.push((k.to_vec(), count));
                }
                Ok(())
            })?;
            let s = mr.stats();
            metrics.spilled |= s.spilled;
            metrics.exchange_rounds += s.exchange_rounds;
            metrics.job.merge(&crate::job_stats_from_mr(&s));
        }
        metrics.iterations += 1;

        let dense = allgather_dense(comm, &local_dense, level);
        if dense.is_empty() {
            break;
        }
        result = OcResult {
            local_dense,
            final_level: level,
        };
        active = dense;
    }

    metrics.wall = t0.elapsed();
    metrics.node_peak = pool.peak();
    Ok((result, metrics))
}

/// Serial reference: the dense octant set of the deepest level that has
/// one, over the whole dataset.
pub fn octree_serial(all_points: &[Point], density: f64, max_depth: usize) -> OcResult {
    let threshold = (all_points.len() as f64 * density).ceil() as u64;
    let mut active: HashSet<Vec<u8>> = HashSet::new();
    active.insert(Vec::new());
    let mut result = OcResult::default();
    for level in 1..=max_depth {
        let mut counts: std::collections::HashMap<Vec<u8>, u64> = std::collections::HashMap::new();
        for &p in all_points {
            let path = octant_path(p, level);
            if active.contains(&path[..level - 1]) {
                *counts.entry(path).or_insert(0) += 1;
            }
        }
        let dense: Vec<(Vec<u8>, u64)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= threshold)
            .collect();
        if dense.is_empty() {
            break;
        }
        active = dense.iter().map(|(k, _)| k.clone()).collect();
        result = OcResult {
            local_dense: dense,
            final_level: level,
        };
    }
    result
}
