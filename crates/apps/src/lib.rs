//! # mimir-apps — the paper's three benchmarks
//!
//! Each benchmark has a Mimir implementation, an MR-MPI implementation,
//! and a serial reference used by the test suite to validate both:
//!
//! * [`wordcount`] — WC, "a single-pass MapReduce application" counting
//!   word occurrences. Supports all three optional optimizations.
//! * [`octree`] — OC, "an iterative MapReduce application with multiple
//!   MapReduce stages": density-based clustering of 3-D points by
//!   progressive octree refinement (Estrada et al.). Supports all three
//!   optimizations.
//! * [`bfs`] — "an iterative map-only application": Graph500-style
//!   breadth-first search with a graph-partitioning stage (where its
//!   memory peak lives) and a level-synchronous traversal. Supports
//!   KV-hint and KV compression (partial reduction does not apply, as in
//!   the paper).

pub mod bfs;
pub mod octree;
pub mod validate;
pub mod wordcount;

mod metrics;

pub use metrics::{job_stats_from_mr, RunMetrics};
