//! Cross-framework validation helpers used by the test suite and the
//! bench harness: merge per-rank outputs and check them against the
//! serial references (Graph500-style tree validation for BFS).

use std::collections::HashMap;

use crate::bfs::BfsResult;

/// Merges per-rank `(key, count)` outputs, asserting each key was
/// reduced on exactly one rank.
///
/// # Panics
/// Panics if a key appears on two ranks — a partitioning bug.
pub fn merge_counts(per_rank: Vec<Vec<(Vec<u8>, u64)>>) -> HashMap<Vec<u8>, u64> {
    let mut merged = HashMap::new();
    for rank_output in per_rank {
        for (k, v) in rank_output {
            assert!(
                merged.insert(k.clone(), v).is_none(),
                "key {:?} reduced on two ranks",
                String::from_utf8_lossy(&k)
            );
        }
    }
    merged
}

/// Graph500-style BFS tree validation: merges per-rank parent maps and
/// checks the tree against the full edge list and the reference
/// distances.
///
/// Returns the merged parent map on success.
///
/// # Panics
/// Panics with a description of the violated invariant.
pub fn validate_bfs_tree(
    per_rank: Vec<BfsResult>,
    all_edges: &[(u64, u64)],
    root: u64,
    reference_dist: &HashMap<u64, u32>,
) -> HashMap<u64, u64> {
    let mut parents: HashMap<u64, u64> = HashMap::new();
    for r in per_rank {
        for (v, p) in r.parents {
            assert!(
                parents.insert(v, p).is_none(),
                "vertex {v} has parents on two ranks"
            );
        }
    }

    // 1. Root is its own parent.
    assert_eq!(parents.get(&root), Some(&root), "root parent");

    // 2. Every tree edge is a graph edge.
    let mut edge_set = std::collections::HashSet::new();
    for &(u, v) in all_edges {
        edge_set.insert((u, v));
        edge_set.insert((v, u));
    }
    for (&v, &p) in &parents {
        if v != root {
            assert!(
                edge_set.contains(&(p, v)),
                "tree edge ({p} -> {v}) is not a graph edge"
            );
        }
    }

    // 3. Exactly the reachable set is visited.
    assert_eq!(
        parents.len(),
        reference_dist.len(),
        "visited set size mismatch"
    );
    for v in parents.keys() {
        assert!(
            reference_dist.contains_key(v),
            "unreachable vertex {v} visited"
        );
    }

    // 4. Levels are consistent: dist(v) == dist(parent(v)) + 1, and both
    //    match the reference (BFS trees are shortest-path trees).
    for (&v, &p) in &parents {
        if v != root {
            assert_eq!(
                reference_dist[&v],
                reference_dist[&p] + 1,
                "vertex {v}: non-shortest tree edge from {p}"
            );
        }
    }

    parents
}
