//! Wait-state attribution proven by construction: when one rank is
//! artificially delayed before a synchronization point, every *other*
//! rank's `wait_ns` must absorb (at least) the injected delay, while
//! their `work_ns` — transport memcpy time — stays flat. This is the
//! property that lets the diagnosis layer tell a straggler-bound
//! shuffle from a byte-bound one.

use std::time::Duration;

use mimir_mpi::{run_world, ReduceOp};

const RANKS: usize = 4;
const DELAY: Duration = Duration::from_millis(60);

/// The delayed rank sleeps before the barrier; its peers enter the
/// barrier immediately and block until it arrives.
#[test]
fn barrier_wait_absorbs_an_injected_delay() {
    let stats = run_world(RANKS, |comm| {
        let before = comm.stats();
        if comm.rank() == 0 {
            std::thread::sleep(DELAY);
        }
        comm.barrier();
        let after = comm.stats();
        (
            after.wait_ns - before.wait_ns,
            after.work_ns - before.work_ns,
        )
    });

    // Tolerance: scheduling jitter can shave a little off the observed
    // wait; 80% of the injected delay is well clear of noise.
    let floor = (DELAY.as_nanos() as u64 * 8) / 10;
    for (rank, &(wait, work)) in stats.iter().enumerate() {
        if rank == 0 {
            // The sleeper itself never waits for anyone at the barrier
            // beyond message latency.
            assert!(
                wait < floor,
                "delayed rank blocked for {wait} ns — it should be the one being waited on"
            );
        } else {
            assert!(
                wait >= floor,
                "rank {rank} waited only {wait} ns for a {DELAY:?} delay"
            );
        }
        // A barrier moves zero payload bytes: work time must stay flat
        // on every rank regardless of the delay.
        assert!(
            work < DELAY.as_nanos() as u64 / 10,
            "rank {rank} charged {work} ns of memcpy work to an empty barrier"
        );
    }
}

/// Allreduce funnels through the same blocking loop; the delay shows up
/// in the peers' wait time there too, proving the single-funnel claim.
#[test]
fn allreduce_wait_absorbs_an_injected_delay() {
    let stats = run_world(RANKS, |comm| {
        let before = comm.stats().wait_ns;
        if comm.rank() == 1 {
            std::thread::sleep(DELAY);
        }
        let sum = comm.allreduce_u64(ReduceOp::Sum, comm.rank() as u64);
        assert_eq!(sum, (RANKS * (RANKS - 1) / 2) as u64);
        comm.stats().wait_ns - before
    });

    let floor = (DELAY.as_nanos() as u64 * 8) / 10;
    let waited = stats
        .iter()
        .enumerate()
        .filter(|&(rank, &w)| rank != 1 && w >= floor)
        .count();
    // Every non-delayed rank sits somewhere on the reduce/bcast tree
    // below the value that rank 1 contributes late, so all of them wait.
    assert_eq!(
        waited,
        RANKS - 1,
        "all non-delayed ranks should block on the allreduce: {stats:?}"
    );
}

/// Uncontended traffic must not fabricate wait time: a rank receiving a
/// message that is already queued observes (near-)zero blocking.
#[test]
fn pre_posted_messages_cost_no_wait() {
    let waits = run_world(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, b"payload");
            comm.barrier();
            0
        } else {
            // The barrier guarantees nothing about delivery order here —
            // the eager transport enqueued the message at send time, so
            // after the barrier it is certainly in our channel.
            comm.barrier();
            let before = comm.stats().wait_ns;
            let got = comm.recv(0, 7);
            assert_eq!(got, b"payload");
            comm.stats().wait_ns - before
        }
    });
    assert!(
        waits[1] < Duration::from_millis(10).as_nanos() as u64,
        "recv of an already-delivered message waited {} ns",
        waits[1]
    );
}
