//! Tests for the zero-copy transport path: `alltoallv_into`, the
//! post/complete split, the pooled message buffers, and `isend`.

use std::ops::Range;

use mimir_datagen::rank_rng;
use mimir_mpi::{run_world, ReduceOp};

/// Deterministic partition content for (src, dst, round).
fn cell(seed: u64, src: usize, dst: usize, round: usize) -> Vec<u8> {
    let len = ((seed ^ ((src as u64) << 16) ^ ((dst as u64) << 8) ^ round as u64) % 73) as usize;
    vec![(src * 31 + dst * 7 + round) as u8; len]
}

#[test]
fn alltoallv_into_matches_the_allocating_variant() {
    for case in 0..16u64 {
        let mut rng = rank_rng(0x2E20_C0B1, case as usize);
        let n = rng.gen_range(1..6);
        let seed = rng.next_u64();
        let out = run_world(n, move |c| {
            let me = c.rank();
            let parts: Vec<Vec<u8>> = (0..n).map(|d| cell(seed, me, d, 0)).collect();
            let slices: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
            let mut recv = vec![0u8; (0..n).map(|s| cell(seed, s, me, 0).len()).sum()];
            let ranges = c.alltoallv_into(&slices, &mut recv);
            (recv, ranges)
        });
        for (dst, (recv, ranges)) in out.iter().enumerate() {
            assert_eq!(ranges.len(), n);
            for (src, range) in ranges.iter().enumerate() {
                assert_eq!(
                    &recv[range.clone()],
                    &cell(seed, src, dst, 0),
                    "case {case} [{src}→{dst}]"
                );
            }
        }
    }
}

#[test]
fn post_complete_overlaps_with_an_allreduce() {
    // The overlap shape the shuffler uses: post sends, run the
    // done-allreduce, then complete the receives. Every rank keeps the
    // same collective order, so matching holds.
    let n = 4;
    let rounds = 5usize;
    let out = run_world(n, move |c| {
        let me = c.rank();
        let mut recv = vec![0u8; 4 * 73];
        let mut ranges: Vec<Range<usize>> = Vec::new();
        let mut votes = Vec::new();
        for round in 0..rounds {
            let parts: Vec<Vec<u8>> = (0..n).map(|d| cell(7, me, d, round)).collect();
            let pending = c.alltoallv_post(parts.iter().map(Vec::as_slice), &mut recv);
            votes.push(c.allreduce_u64(ReduceOp::Sum, me as u64));
            c.alltoallv_complete(pending, &mut recv, &mut ranges);
            for (src, range) in ranges.iter().enumerate() {
                assert_eq!(&recv[range.clone()], &cell(7, src, me, round));
            }
        }
        votes
    });
    for votes in out {
        assert_eq!(votes, vec![6; rounds]);
    }
}

#[test]
fn steady_state_rounds_stop_allocating_send_buffers() {
    let n = 4;
    let out = run_world(n, move |c| {
        let me = c.rank();
        // Equal sizes: pooled buffers hit their high-water capacity in
        // round one, so the steady state is exact (uneven sizes may defer
        // one capacity growth past any fixed warm-up).
        let parts: Vec<Vec<u8>> = (0..n).map(|_| vec![me as u8; 64]).collect();
        let slices: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        let mut recv = vec![0u8; n * 128];
        // Warm-up: the pool fills with one buffer per peer and the pooled
        // buffers reach their high-water capacity.
        for _ in 0..3 {
            let _ = c.alltoallv_into(&slices, &mut recv);
        }
        let warm = c.stats().send_allocs;
        for _ in 0..20 {
            let _ = c.alltoallv_into(&slices, &mut recv);
        }
        (warm, c.stats().send_allocs)
    });
    for (rank, (warm, after)) in out.into_iter().enumerate() {
        assert_eq!(
            warm, after,
            "rank {rank}: send path allocated after warm-up ({warm} → {after})"
        );
    }
}

#[test]
fn bytes_copied_counts_both_directions() {
    // 2 ranks, each sends 10 B to the other and 5 B to itself.
    let out = run_world(2, |c| {
        let parts: Vec<Vec<u8>> = vec![
            vec![1u8; if c.rank() == 0 { 5 } else { 10 }],
            vec![2u8; if c.rank() == 0 { 10 } else { 5 }],
        ];
        let slices: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        let mut recv = [0u8; 32];
        let _ = c.alltoallv_into(&slices, &mut recv);
        c.stats()
    });
    // Each rank copies: own partition (5) + copy-in to pooled send buf
    // (10) + copy-out of the received remote partition (10).
    assert_eq!(out[0].bytes_copied, 25);
    assert_eq!(out[1].bytes_copied, 25);
}

#[test]
fn receive_overflow_panics_with_the_iii_b_bound() {
    let res = std::panic::catch_unwind(|| {
        run_world(2, |c| {
            let parts: Vec<Vec<u8>> = vec![vec![0u8; 8], vec![0u8; 8]];
            let slices: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
            // Receive buffer too small for own 8 B + remote 8 B.
            let mut recv = [0u8; 12];
            let _ = c.alltoallv_into(&slices, &mut recv);
        });
    });
    let payload = res.unwrap_err();
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("receive overflow"), "got: {msg}");
}

#[test]
fn isend_completes_and_delivers() {
    let out = run_world(2, |c| {
        if c.rank() == 0 {
            let data = vec![9u8; 33];
            let req = c.isend(1, 5, &data);
            assert!(req.test());
            req.wait();
            let req = c.isend_vec(1, 6, vec![7u8; 3]);
            req.wait();
            Vec::new()
        } else {
            let a = c.recv(0, 5);
            let b = c.recv(0, 6);
            vec![a, b]
        }
    });
    assert_eq!(out[1], vec![vec![9u8; 33], vec![7u8; 3]]);
}

#[test]
fn allgather_handles_large_and_uneven_payloads() {
    // Non-power-of-two world, per-rank payload sizes spanning empty to
    // multi-KiB — exercises the Bruck framing.
    for n in [1usize, 2, 3, 5, 7] {
        let out = run_world(n, move |c| {
            let me = c.rank();
            c.allgather(vec![me as u8; me * 701])
        });
        for per_rank in &out {
            for (src, buf) in per_rank.iter().enumerate() {
                assert_eq!(buf, &vec![src as u8; src * 701], "n={n} src={src}");
            }
        }
    }
}

#[test]
fn allgather_sends_o_log_p_messages_per_rank() {
    // The point of the Bruck rewrite: 8 ranks take 3 message steps, not 7
    // payload clones. Count messages attributable to the allgather alone.
    let out = run_world(8, |c| {
        let before = c.stats().msgs_sent;
        let _ = c.allgather(vec![0u8; 1024]);
        c.stats().msgs_sent - before
    });
    for (rank, sent) in out.into_iter().enumerate() {
        assert_eq!(sent, 3, "rank {rank}: ⌈log₂ 8⌉ = 3 sends expected");
    }
}
