//! Point-to-point messaging properties: FIFO per (source, tag) stream,
//! correct tag matching under interleaving, and stress traffic. Driven
//! by a seeded PRNG so failures replay deterministically.

use mimir_datagen::rank_rng;
use mimir_mpi::run_world;

#[test]
fn fifo_per_source_and_tag() {
    for case in 0..16u64 {
        let mut rng = rank_rng(0xF1F0 ^ case, case as usize);
        let msgs: Vec<(u32, u8)> = (0..1 + rng.gen_range(0..59))
            .map(|_| (rng.gen_range(0..4) as u32, rng.gen_range(0..256) as u8))
            .collect();
        // Rank 0 sends a tagged stream to rank 1; rank 1 receives each
        // tag's messages in order (receiving tags in a different global
        // order than they were sent).
        let m2 = msgs.clone();
        let out = run_world(2, move |c| {
            if c.rank() == 0 {
                for (i, &(tag, body)) in m2.iter().enumerate() {
                    c.send(1, tag, &[body, i as u8]);
                }
                Vec::new()
            } else {
                // Receive grouped by tag (reverse tag order to force the
                // pending queue to hold out-of-order messages).
                let mut got = Vec::new();
                for tag in (0u32..4).rev() {
                    let n = m2.iter().filter(|&&(t, _)| t == tag).count();
                    for _ in 0..n {
                        let m = c.recv(0, tag);
                        got.push((tag, m[0], m[1]));
                    }
                }
                got
            }
        });
        // Per tag, bodies arrive in send order.
        for tag in 0..4u32 {
            let sent: Vec<u8> = msgs
                .iter()
                .filter(|&&(t, _)| t == tag)
                .map(|&(_, b)| b)
                .collect();
            let received: Vec<u8> = out[1]
                .iter()
                .filter(|&&(t, _, _)| t == tag)
                .map(|&(_, b, _)| b)
                .collect();
            assert_eq!(received, sent, "case {case}, tag {tag}");
        }
    }
}

#[test]
fn all_pairs_stress() {
    for case in 0..16u64 {
        let mut rng = rank_rng(0xA11, case as usize);
        let n = rng.gen_range(2..5);
        let rounds = rng.gen_range(1..10);
        // Every rank sends `rounds` messages to every other rank and
        // receives them all back-to-back; nothing is lost or duplicated.
        let out = run_world(n, move |c| {
            let me = c.rank();
            for r in 0..rounds {
                for dst in 0..c.size() {
                    c.send(dst, 5, &[me as u8, r as u8]);
                }
            }
            let mut count = 0usize;
            for src in 0..c.size() {
                for r in 0..rounds {
                    let m = c.recv(src, 5);
                    assert_eq!(m[0] as usize, src);
                    assert_eq!(m[1] as usize, r);
                    count += 1;
                }
            }
            count
        });
        assert!(out.iter().all(|&c| c == n * rounds), "case {case}");
    }
}

#[test]
fn zero_length_messages() {
    let out = run_world(2, |c| {
        if c.rank() == 0 {
            c.send(1, 1, &[]);
            c.send_vec(1, 2, Vec::new());
            0
        } else {
            let a = c.recv(0, 1);
            let b = c.recv(0, 2);
            a.len() + b.len()
        }
    });
    assert_eq!(out[1], 0);
}

#[test]
fn large_message_roundtrip() {
    let out = run_world(2, |c| {
        if c.rank() == 0 {
            let big = vec![0xABu8; 4 << 20];
            c.send_vec(1, 9, big);
            true
        } else {
            let m = c.recv(0, 9);
            m.len() == 4 << 20 && m.iter().all(|&b| b == 0xAB)
        }
    });
    assert!(out[1]);
}

#[test]
#[should_panic(expected = "reserved for collectives")]
fn reserved_tags_are_refused() {
    run_world(1, |c| {
        c.send(0, 0xFFFF_FF00, b"nope");
    });
}
