//! The UDS backend run through the same SPMD programs the in-process
//! backend is tested with: point-to-point, collectives, dup/split
//! isolation, abort/panic propagation, flow-trace integrity across
//! process boundaries, wire-counter honesty, and the chaos case of a
//! rank killed mid-handshake.

use std::time::{Duration, Instant};

use mimir_mpi::{
    run_world_on, run_world_result_on, run_world_uds_with, FaultPoint, ReduceOp, TransportKind,
    UdsFault, UdsWorldOptions, WorldError,
};

const UDS: TransportKind = TransportKind::Uds;

#[test]
fn allreduce_and_ring_over_sockets() {
    let out: Vec<(u64, Vec<u8>)> = run_world_on(UDS, 4, |c| {
        let sum = c.allreduce_u64(ReduceOp::Sum, c.rank() as u64);
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        c.send(next, 7, &[c.rank() as u8; 3]);
        let got = c.recv(prev, 7);
        (sum, got)
    });
    for (rank, (sum, got)) in out.iter().enumerate() {
        assert_eq!(*sum, 6);
        assert_eq!(got, &[((rank + 3) % 4) as u8; 3]);
    }
}

#[test]
fn tag_matching_and_self_send_over_sockets() {
    let out: Vec<Vec<Vec<u8>>> = run_world_on(UDS, 2, |c| {
        if c.rank() == 0 {
            c.send(1, 1, b"first");
            c.send(1, 2, b"second");
            // Self-sends stay on the loopback and must still match tags.
            c.send(0, 9, b"self");
            vec![c.recv(0, 9)]
        } else {
            // Receive in the opposite order of sending.
            let b = c.recv(0, 2);
            let a = c.recv(0, 1);
            vec![a, b]
        }
    });
    assert_eq!(out[0], vec![b"self".to_vec()]);
    assert_eq!(out[1], vec![b"first".to_vec(), b"second".to_vec()]);
}

#[test]
fn alltoallv_transposes_over_sockets() {
    let out: Vec<Vec<Vec<u8>>> = run_world_on(UDS, 4, |c| {
        let me = c.rank() as u8;
        let parts: Vec<Vec<u8>> = (0..c.size()).map(|d| [me, d as u8].repeat(d + 1)).collect();
        c.alltoallv(parts)
    });
    for (dst, received) in out.iter().enumerate() {
        for (src, buf) in received.iter().enumerate() {
            assert_eq!(buf, &[src as u8, dst as u8].repeat(dst + 1));
        }
    }
}

type DupSplitResult = (Vec<u8>, Vec<u8>, usize, Vec<u64>);

#[test]
fn dup_isolates_and_split_partitions_over_sockets() {
    let out: Vec<DupSplitResult> = run_world_on(UDS, 4, |c| {
        let mut d = c.dup();
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        // Same tag on parent and duplicate; send parent-first, receive
        // dup-first. Any cross-match between namespaces swaps payloads.
        c.send(next, 7, &[b'P', c.rank() as u8]);
        d.send(next, 7, &[b'D', c.rank() as u8]);
        let from_dup = d.recv(prev, 7);
        let from_parent = c.recv(prev, 7);
        // Then split even/odd and allgather parent ranks in each group.
        let mut sub = c
            .split(Some((c.rank() % 2) as u64), c.rank() as u64)
            .unwrap();
        let group = sub.allgather_u64(c.rank() as u64);
        (from_parent, from_dup, sub.rank(), group)
    });
    for (rank, (p, d, sub_rank, group)) in out.iter().enumerate() {
        let prev = (rank + 3) % 4;
        assert_eq!(p, &[b'P', prev as u8]);
        assert_eq!(d, &[b'D', prev as u8]);
        assert_eq!(*sub_rank, rank / 2);
        let expect: Vec<u64> = if rank % 2 == 0 {
            vec![0, 2]
        } else {
            vec![1, 3]
        };
        assert_eq!(group, &expect);
    }
}

#[test]
fn result_world_propagates_abort() {
    let res: Result<Vec<u64>, _> = run_world_result_on(UDS, 4, |c| {
        if c.rank() == 1 {
            Err("bad input".to_string())
        } else {
            let _ = c.recv(1, 1);
            Ok(0u64)
        }
    });
    assert_eq!(res, Err(WorldError::Aborted("bad input".to_string())));
}

#[test]
fn rank_panic_surfaces_as_root_cause() {
    let res: Result<Vec<u64>, WorldError<String>> = run_world_result_on(UDS, 4, |c| {
        if c.rank() == 2 {
            panic!("deliberate failure on rank 2");
        }
        // Peers wedge on the dead rank; the disconnect cascade must fold
        // away behind the genuine panic.
        let _ = c.recv(2, 1);
        Ok(0u64)
    });
    match res {
        Err(WorldError::RankPanicked { rank, message }) => {
            assert_eq!(rank, 2);
            assert!(message.contains("deliberate failure"), "got: {message}");
        }
        other => panic!("expected RankPanicked, got {other:?}"),
    }
}

#[test]
fn wire_counters_are_honest() {
    let out: Vec<mimir_mpi::CommStats> = run_world_on(UDS, 3, |c| {
        c.send((c.rank() + 1) % 3, 5, &[7u8; 1000]);
        let _ = c.recv((c.rank() + 2) % 3, 5);
        c.send(c.rank(), 6, b"self");
        let _ = c.recv(c.rank(), 6);
        c.barrier();
        c.stats()
    });
    let total = out
        .iter()
        .fold(mimir_mpi::CommStats::default(), |a, s| a.merge(s));
    // Every cross-process frame is counted on both ends with identical
    // framing overhead; loopback traffic stays off the wire counters.
    assert_eq!(total.wire_frames_sent, total.wire_frames_recvd);
    assert_eq!(total.wire_bytes_sent, total.wire_bytes_recvd);
    for s in &out {
        // The 1000-byte payload plus barrier hops, all framed.
        assert!(s.wire_frames_sent >= 2, "frames: {}", s.wire_frames_sent);
        assert!(s.wire_bytes_sent > 1000, "bytes: {}", s.wire_bytes_sent);
        // Wire bytes exceed payload bytes by exactly the per-frame header,
        // minus the loopback traffic that never hits the wire.
        assert!(s.handshake_ns > 0, "handshake must be timed");
    }
    // Loopback self-sends counted as messages but not frames.
    assert!(total.msgs_sent as u64 > total.wire_frames_sent);
}

#[test]
fn flow_trace_pairs_across_process_boundaries() {
    use mimir_obs::{EventKind, Recorder, FLOW_SEQ_BITS};
    let epoch = Instant::now();
    // kind: 0 = FlowSend, 1 = FlowRecv; (kind, flow id, b-arg, t_ns).
    let out: Vec<Vec<(u8, u64, u64, u64)>> = run_world_on(UDS, 3, move |c| {
        mimir_obs::install(Recorder::with_epoch(c.rank(), 4096, epoch));
        c.send((c.rank() + 1) % 3, 3, &[7u8; 32]);
        let _ = c.recv((c.rank() + 2) % 3, 3);
        c.barrier();
        let r = mimir_obs::take().unwrap();
        r.events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::FlowSend => Some((0u8, e.a, e.b, e.t_ns)),
                EventKind::FlowRecv => Some((1u8, e.a, e.b, e.t_ns)),
                _ => None,
            })
            .collect()
    });
    let sends: Vec<_> = out.iter().flatten().filter(|e| e.0 == 0).collect();
    let recvs: Vec<_> = out.iter().flatten().filter(|e| e.0 == 1).collect();
    assert!(!sends.is_empty() && !recvs.is_empty());
    for r in &recvs {
        // Every FlowRecv pairs exactly one FlowSend with the same flow id,
        // even though the id crossed a process boundary in a frame header.
        let matching: Vec<_> = sends.iter().filter(|s| s.1 == r.1).collect();
        assert_eq!(matching.len(), 1, "exactly one send per received flow");
        // Forked children share the parent's monotonic clock, so the
        // happens-before edge holds across processes too.
        assert!(matching[0].3 <= r.3, "send happens before receive");
        assert_eq!(r.1 >> FLOW_SEQ_BITS, r.2 >> 48, "source rank consistent");
    }
}

#[test]
fn killed_child_mid_handshake_fails_bounded_not_hangs() {
    for at in [FaultPoint::BeforeListen, FaultPoint::AfterListen] {
        let opts = UdsWorldOptions {
            connect_window: Duration::from_millis(400),
            world_timeout: Duration::from_secs(60),
            fault: Some(UdsFault { rank: 2, at }),
        };
        let t0 = Instant::now();
        let res: Result<Vec<u64>, _> = run_world_uds_with(4, &opts, |c| {
            c.barrier();
            c.rank() as u64
        });
        let elapsed = t0.elapsed();
        match res {
            Err(WorldError::RankPanicked { rank, message }) => {
                // Root cause: the fault-injected rank died without a word;
                // survivors' handshake disconnects fold away behind it.
                assert_eq!(rank, 2, "{at:?}: {message}");
                assert!(
                    message.contains("exited with code"),
                    "{at:?}: unexpected message: {message}"
                );
            }
            other => panic!("{at:?}: expected RankPanicked, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(30),
            "{at:?}: handshake failure must be bounded, took {elapsed:?}"
        );
    }
}

#[test]
fn single_rank_uds_world() {
    let out: Vec<u64> = run_world_on(UDS, 1, |c| {
        c.barrier();
        c.send(0, 1, b"only");
        let got = c.recv(0, 1);
        got.len() as u64 + c.allreduce_u64(ReduceOp::Sum, 5)
    });
    assert_eq!(out, vec![9]);
}
