//! Randomized tests for the collective operations: results must match
//! single-threaded reference computations for arbitrary inputs, world
//! sizes, and operation sequences. Driven by a seeded PRNG so failures
//! replay deterministically.

use mimir_datagen::rank_rng;
use mimir_mpi::{run_world, ReduceOp};

#[test]
fn allreduce_matches_reference() {
    for case in 0..24u64 {
        let mut rng = rank_rng(0xA11_12ED, case as usize);
        let values: Vec<u64> = (0..1 + rng.gen_range(0..8))
            .map(|_| rng.next_u64())
            .collect();
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::LAnd][rng.gen_range(0..4)];
        let n = values.len();
        let expected = values[1..]
            .iter()
            .fold(values[0], |acc, &v| op.apply_for_test(acc, v));
        let vals = values.clone();
        let out = run_world(n, move |c| c.allreduce_u64(op, vals[c.rank()]));
        assert!(out.iter().all(|&v| v == expected), "case {case} ({op:?})");
    }
}

#[test]
fn alltoallv_is_a_matrix_transpose() {
    for case in 0..24u64 {
        let mut rng = rank_rng(0xA2A, case as usize);
        let n = rng.gen_range(1..6);
        let seed = rng.next_u64();
        // parts[src][dst] deterministic from (src, dst, seed).
        let cell = move |src: usize, dst: usize| -> Vec<u8> {
            let len = ((seed ^ (src as u64) << 8 ^ dst as u64) % 50) as usize;
            vec![(src * 16 + dst) as u8; len]
        };
        let out = run_world(n, move |c| {
            let me = c.rank();
            let parts: Vec<Vec<u8>> = (0..n).map(|d| cell(me, d)).collect();
            c.alltoallv(parts)
        });
        for (dst, received) in out.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                assert_eq!(buf, &cell(src, dst), "case {case} [{src}→{dst}]");
            }
        }
    }
}

#[test]
fn gather_bcast_roundtrip() {
    for case in 0..24u64 {
        let mut rng = rank_rng(0x6A7, case as usize);
        let n = rng.gen_range(1..6);
        let root = rng.gen_range(0..n);
        let payload: Vec<u8> = (0..rng.gen_range(0..64))
            .map(|_| rng.gen_range(0..256) as u8)
            .collect();
        let p2 = payload.clone();
        let out = run_world(n, move |c| {
            // Root gathers everyone's rank byte, then broadcasts the
            // payload; all ranks must see both consistently.
            let g = c.gather(root, vec![c.rank() as u8]);
            if c.rank() == root {
                let g = g.expect("root gathers");
                assert_eq!(g.len(), n);
                for (src, b) in g.iter().enumerate() {
                    assert_eq!(b, &[src as u8]);
                }
            }
            let data = if c.rank() == root {
                p2.clone()
            } else {
                Vec::new()
            };
            c.bcast(root, data)
        });
        for per_rank in out {
            assert_eq!(&per_rank, &payload, "case {case}");
        }
    }
}

#[test]
fn mixed_collective_sequences_stay_matched() {
    for case in 0..24u64 {
        let mut rng = rank_rng(0x005C_2147, case as usize);
        let n = rng.gen_range(2..5);
        let script: Vec<u8> = (0..1 + rng.gen_range(0..11))
            .map(|_| rng.gen_range(0..4) as u8)
            .collect();
        // Every rank runs the same random script of collectives; if
        // matching broke, this would deadlock or corrupt results.
        let s2 = script.clone();
        let out = run_world(n, move |c| {
            let mut acc = 0u64;
            for (i, step) in s2.iter().enumerate() {
                match step {
                    0 => acc ^= c.allreduce_u64(ReduceOp::Sum, c.rank() as u64 + i as u64),
                    1 => c.barrier(),
                    2 => {
                        let g = c.allgather_u64(acc);
                        acc ^= g.iter().sum::<u64>();
                    }
                    _ => {
                        let parts = vec![vec![acc as u8]; n];
                        let r = c.alltoallv(parts);
                        acc ^= r.iter().map(|b| u64::from(b[0])).sum::<u64>();
                    }
                }
            }
            acc
        });
        // At minimum the world terminated and produced n results.
        assert_eq!(out.len(), n, "case {case}");
    }
}

/// Test-only re-exposure of the reduction semantics.
trait ApplyForTest {
    fn apply_for_test(self, a: u64, b: u64) -> u64;
}

impl ApplyForTest for ReduceOp {
    fn apply_for_test(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::LAnd => u64::from(a != 0 && b != 0),
        }
    }
}
