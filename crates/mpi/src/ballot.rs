//! The adaptive shuffle's piggybacked ballot: one `Sum`-allreduce that
//! carries the done flag *and* the round's tuning votes in a single
//! bit-packed `u64`, so renegotiating the exchange mode or round size
//! costs zero extra collectives over the plain done-vote.
//!
//! Each rank contributes 0 or 1 per field; the wrapping `Sum` reduction
//! is exact because every field is wide enough ([`FIELD_BITS`] bits) to
//! hold the world size, so per-field sums can never carry into a
//! neighbour. All ranks unpack the identical total and feed it to the
//! same deterministic decision rule, which keeps the adaptive
//! controller collectively consistent without any extra round trips.

use crate::comm::Comm;
use crate::ReduceOp;

/// Bits per ballot field. Six fields of 10 bits fit one `u64` with room
/// to spare; each field counts at most `world size` votes.
pub const FIELD_BITS: u32 = 10;

/// Largest world size the packed ballot supports without per-field
/// overflow: `2^FIELD_BITS - 1` ranks.
pub const MAX_BALLOT_RANKS: usize = (1 << FIELD_BITS) - 1;

const DONE_SHIFT: u32 = 0;
const OVERLAP_SHIFT: u32 = FIELD_BITS;
const ZEROCOPY_SHIFT: u32 = 2 * FIELD_BITS;
const GROW_SHIFT: u32 = 3 * FIELD_BITS;
const SHRINK_SHIFT: u32 = 4 * FIELD_BITS;
const HOT_SHIFT: u32 = 5 * FIELD_BITS;
const FIELD_MASK: u64 = (1 << FIELD_BITS) - 1;

/// One rank's vote for a shuffle round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BallotVote {
    /// This rank has emitted all of its KVs (the classic done flag).
    pub done: bool,
    /// Last round looked sync-bound here: prefer overlapped posting.
    pub prefer_overlap: bool,
    /// Last round looked data-bound here: prefer vote-first zero-copy.
    pub prefer_zerocopy: bool,
    /// Grow the effective round size (amortize vote latency).
    pub grow: bool,
    /// Shrink the effective round size (smooth byte-bound rounds).
    pub shrink: bool,
    /// This rank holds staged hot-key KVs awaiting the salted flush.
    pub hot_pending: bool,
}

/// The world-summed ballot: per-field vote counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BallotTally {
    /// Ranks reporting done.
    pub done: u64,
    /// Ranks preferring overlapped posting.
    pub prefer_overlap: u64,
    /// Ranks preferring vote-first zero-copy.
    pub prefer_zerocopy: u64,
    /// Ranks voting to grow the round size.
    pub grow: u64,
    /// Ranks voting to shrink the round size.
    pub shrink: u64,
    /// Ranks holding staged hot-key KVs.
    pub hot_pending: u64,
}

/// Packs one rank's vote into the ballot word.
pub fn pack_vote(v: BallotVote) -> u64 {
    (v.done as u64) << DONE_SHIFT
        | (v.prefer_overlap as u64) << OVERLAP_SHIFT
        | (v.prefer_zerocopy as u64) << ZEROCOPY_SHIFT
        | (v.grow as u64) << GROW_SHIFT
        | (v.shrink as u64) << SHRINK_SHIFT
        | (v.hot_pending as u64) << HOT_SHIFT
}

/// Unpacks the summed ballot word into per-field counts.
pub fn unpack_tally(sum: u64) -> BallotTally {
    BallotTally {
        done: (sum >> DONE_SHIFT) & FIELD_MASK,
        prefer_overlap: (sum >> OVERLAP_SHIFT) & FIELD_MASK,
        prefer_zerocopy: (sum >> ZEROCOPY_SHIFT) & FIELD_MASK,
        grow: (sum >> GROW_SHIFT) & FIELD_MASK,
        shrink: (sum >> SHRINK_SHIFT) & FIELD_MASK,
        hot_pending: (sum >> HOT_SHIFT) & FIELD_MASK,
    }
}

impl Comm {
    /// The piggybacked round ballot: a single `Sum`-allreduce of the
    /// packed vote. Collective; every rank receives the identical tally.
    ///
    /// # Panics
    /// When the world is too large for the packed fields
    /// ([`MAX_BALLOT_RANKS`]); the adaptive shuffle rejects such worlds
    /// at construction, so a panic here means a caller skipped that
    /// validation.
    pub fn allreduce_ballot(&mut self, vote: BallotVote) -> BallotTally {
        assert!(
            self.size() <= MAX_BALLOT_RANKS,
            "packed ballot supports at most {MAX_BALLOT_RANKS} ranks"
        );
        unpack_tally(self.allreduce_u64(ReduceOp::Sum, pack_vote(vote)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run_world;

    #[test]
    fn pack_unpack_roundtrips_every_field() {
        for bits in 0..64u32 {
            let v = BallotVote {
                done: bits & 1 != 0,
                prefer_overlap: bits & 2 != 0,
                prefer_zerocopy: bits & 4 != 0,
                grow: bits & 8 != 0,
                shrink: bits & 16 != 0,
                hot_pending: bits & 32 != 0,
            };
            let t = unpack_tally(pack_vote(v));
            assert_eq!(t.done, v.done as u64);
            assert_eq!(t.prefer_overlap, v.prefer_overlap as u64);
            assert_eq!(t.prefer_zerocopy, v.prefer_zerocopy as u64);
            assert_eq!(t.grow, v.grow as u64);
            assert_eq!(t.shrink, v.shrink as u64);
            assert_eq!(t.hot_pending, v.hot_pending as u64);
        }
    }

    #[test]
    fn summed_votes_never_carry_between_fields() {
        // The worst case: MAX_BALLOT_RANKS ranks all voting 1 in every
        // field. Simulate the reduction locally (it is a wrapping sum).
        let all_on = pack_vote(BallotVote {
            done: true,
            prefer_overlap: true,
            prefer_zerocopy: true,
            grow: true,
            shrink: true,
            hot_pending: true,
        });
        let mut sum = 0u64;
        for _ in 0..MAX_BALLOT_RANKS {
            sum = sum.wrapping_add(all_on);
        }
        let t = unpack_tally(sum);
        let n = MAX_BALLOT_RANKS as u64;
        assert_eq!(
            (t.done, t.prefer_overlap, t.prefer_zerocopy),
            (n, n, n),
            "no carry into neighbouring fields"
        );
        assert_eq!((t.grow, t.shrink, t.hot_pending), (n, n, n));
    }

    #[test]
    fn ballot_allreduce_tallies_across_the_world() {
        let tallies = run_world(4, |comm| {
            let me = comm.rank();
            // Ranks 0..2 are done; rank 3 votes grow + hot_pending;
            // everyone prefers zero-copy.
            comm.allreduce_ballot(BallotVote {
                done: me < 3,
                prefer_overlap: false,
                prefer_zerocopy: true,
                grow: me == 3,
                shrink: false,
                hot_pending: me == 3,
            })
        });
        for t in tallies {
            assert_eq!(t.done, 3);
            assert_eq!(t.prefer_overlap, 0);
            assert_eq!(t.prefer_zerocopy, 4);
            assert_eq!(t.grow, 1);
            assert_eq!(t.shrink, 0);
            assert_eq!(t.hot_pending, 1);
        }
    }
}
