//! # mimir-mpi — an MPI-flavoured message-passing runtime
//!
//! Mimir (IPDPS'17) is a MapReduce implementation *over MPI*: its memory
//! behaviour is defined by which buffers it owns around `MPI_Alltoallv`,
//! `MPI_Allreduce`, and `MPI_Barrier` calls. This crate supplies those
//! primitives without requiring a system MPI installation: a *world* of
//! `n` ranks runs as `n` OS threads connected by per-pair FIFO channels,
//! and the collectives are implemented with the same binomial-tree
//! algorithms MPICH uses.
//!
//! What is deliberately preserved from MPI semantics:
//! * ranks are SPMD — every rank runs the same closure with its own
//!   [`Comm`];
//! * point-to-point messages are matched by `(source, tag)` and are FIFO
//!   per `(source, destination)` pair;
//! * collectives are matched by call order: every rank must invoke the
//!   same sequence of collective operations, exactly as in MPI;
//! * `alltoallv` moves byte buffers whose partitioning the *caller* chose,
//!   so Mimir's partitioned send buffer / paired receive buffer design is
//!   exercised unchanged.
//!
//! What is pluggable: transport. Everything under [`Comm`] goes through
//! the [`Transport`] seam, with two backends:
//!
//! * [`TransportKind::Inproc`] (the default): ranks are OS threads in one
//!   process connected by per-pair FIFO channels. A rank that panics
//!   drops its channel endpoints, which wakes every peer blocked on it
//!   with a "rank disconnected" panic — the in-process analogue of an MPI
//!   job abort — and [`run_world`] then re-raises the root-cause panic.
//! * [`TransportKind::Uds`]: ranks are real forked processes on one
//!   machine connected by Unix-domain sockets with length-prefixed
//!   frames, bootstrapped through a rendezvous directory. A rank process
//!   that dies closes its sockets, and peers wake with the same
//!   disconnect panic.
//!
//! [`run_world_on`] selects a backend explicitly;
//! [`TransportKind::from_env`] reads `MIMIR_TRANSPORT={inproc,uds}`.

mod ballot;
mod collectives;
mod comm;
mod error;
mod msg;
mod stats;
mod transport;
mod wire;
mod world;

pub use ballot::{pack_vote, unpack_tally, BallotTally, BallotVote, MAX_BALLOT_RANKS};
pub use collectives::PendingAlltoallv;
pub use comm::{Comm, Request};
pub use error::{is_disconnect_panic, panic_message, CommError, WorldError};
pub use msg::{Msg, Tag};
pub use stats::CommStats;
pub use transport::uds::{FaultPoint, UdsFault, UdsWorldOptions};
pub use transport::{Endpoint, Transport, TransportKind};
pub use wire::Wire;
pub use world::{
    run_world, run_world_named, run_world_on, run_world_result, run_world_result_on,
    run_world_uds_with,
};

/// Result alias for fallible communication operations.
pub type Result<T> = std::result::Result<T, CommError>;

/// Reduction operators supported by [`Comm::allreduce_u64`] and
/// [`Comm::reduce_u64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum.
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Logical AND of `0`/`1` flags (used for "is everyone done?" votes).
    LAnd,
}

impl ReduceOp {
    #[inline]
    pub(crate) fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::LAnd => u64::from(a != 0 && b != 0),
        }
    }
}
