use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mimir_obs::live::LiveShared;

use crate::error::DisconnectPanic;
use crate::msg::{tags, Msg, Payload, Tag};
use crate::transport::{Endpoint, Transport};
use crate::CommStats;

/// Maximum number of idle message buffers kept in the per-rank pool.
///
/// The exchange steady state needs one in-flight buffer per peer in each
/// direction; buffers flow sender → receiver → receiver's pool, so after a
/// warm-up round every rank's pool oscillates around `size - 1` entries.
/// The cap only matters for bursty user point-to-point traffic.
const BUF_POOL_CAP: usize = 64;

/// Bound on one blocking-receive slice while the telemetry plane is
/// armed: long enough that slicing costs nothing measurable, short
/// enough that a stuck rank's climbing wait reaches the publisher well
/// within one default 100ms publish interval.
const LIVE_WAIT_SLICE: Duration = Duration::from_millis(25);

/// Handle for a nonblocking send posted with [`Comm::isend`] /
/// [`Comm::isend_vec`].
///
/// Both backends are eager and unbounded: the payload is handed to the
/// destination's channel (or the peer's writer queue) at post time, so
/// requests are born complete. The type still exists so callers are
/// written against the MPI-shaped post/complete protocol (and so a
/// bounded-rendezvous transport could be dropped in later without touching
/// call sites).
#[derive(Debug)]
#[must_use = "an isend must be completed with wait() or test()"]
pub struct Request {
    completed: bool,
}

impl Request {
    /// True once the send buffer may be reused. Always true on the eager
    /// transports.
    pub fn test(&self) -> bool {
        self.completed
    }

    /// Blocks until the send completes (a no-op on the eager transports).
    pub fn wait(self) {
        debug_assert!(self.completed);
    }
}

/// A rank's endpoint into the world: point-to-point messaging plus the
/// collective operations (barrier, allreduce, alltoallv, …).
///
/// A `Comm` is owned by exactly one rank thread (it is `Send` but not
/// `Sync`, like an `MPI_Comm` used correctly). Receives are matched by
/// `(source, tag)`; messages that arrive ahead of the matching receive are
/// parked in a per-source pending queue, preserving FIFO order per pair.
///
/// Message delivery is delegated to a [`Transport`] backend: rank threads
/// over channel matrices in one process, or forked rank processes over
/// Unix-domain sockets. Everything in this type — tag matching, wait-state
/// attribution, flow stamping, pooled buffers, the derivation handshake —
/// is backend-independent.
pub struct Comm {
    name: String,
    rank: usize,
    size: usize,
    /// Number of derived communicators ([`Comm::dup`] / [`Comm::split`])
    /// created from this one so far. All ranks execute the same derivation
    /// sequence (dup/split are collective), so the counter doubles as a
    /// cross-rank sequence number for the consistency handshake.
    derived: u64,
    /// The message-delivery backend for this communicator.
    transport: Box<dyn Transport>,
    /// Messages received from each source but not yet matched by tag.
    pending: Vec<VecDeque<Msg>>,
    /// Idle message buffers, recycled between rounds so the steady-state
    /// exchange path performs no heap allocation (`send_allocs` counts the
    /// misses). Each communicator owns its own free-list: concurrent jobs
    /// on dup'd communicators never contend for (or poison) each other's
    /// pooled buffers.
    free_bufs: Vec<Vec<u8>>,
    pub(crate) stats: CommStats,
    /// The rank's live-telemetry accumulator, captured from the
    /// constructing thread at creation time (so derived communicators
    /// feed the same per-rank plane). `None` when the plane is unarmed —
    /// the common case, costing one `Option` check per operation.
    live: Option<Arc<LiveShared>>,
    /// Counters as of the last live push; the next push ships the
    /// difference, keeping pushes sum-correct across any number of
    /// communicators feeding one rank accumulator.
    live_last: CommStats,
}

impl Comm {
    pub(crate) fn new(
        name: String,
        rank: usize,
        size: usize,
        transport: Box<dyn Transport>,
    ) -> Self {
        Self {
            name,
            rank,
            size,
            derived: 0,
            transport,
            pending: (0..size).map(|_| VecDeque::new()).collect(),
            free_bufs: Vec::new(),
            stats: CommStats::default(),
            live: mimir_obs::live::shared(),
            live_last: CommStats::default(),
        }
    }

    /// Attaches the rank's live-telemetry accumulator. Normally captured
    /// from the constructing thread's armed plane in [`Comm::new`]
    /// (which covers derived communicators); world bootstrap constructs
    /// the root comms *before* the rank threads arm, so it attaches
    /// explicitly afterwards.
    pub(crate) fn attach_live(&mut self, live: Arc<LiveShared>) {
        self.live = Some(live);
    }

    /// Pushes the counters accrued since the last push into the rank's
    /// live accumulator; a no-op when the plane is unarmed.
    fn push_live(&mut self) {
        let Some(live) = &self.live else { return };
        let cur = self.stats.merge(&self.transport.extra_stats());
        let delta = cur.delta_since(&self.live_last);
        live.add_comm(&delta.counters());
        live.add_waits(&delta.wait_counters());
        self.live_last = cur;
    }

    /// This rank's index in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// This communicator's name — `"world"` for the root communicator of
    /// [`crate::run_world`], with a `.dupN` / `.splitN.cC` / custom-label
    /// suffix appended per derivation. Spill directories and trace lanes
    /// use it to attribute resources to the communicator that owns them.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Communication counters accumulated by this rank so far, including
    /// the backend's process-level extras (handshake time, reader-pool
    /// misses) when this is a world communicator.
    pub fn stats(&self) -> CommStats {
        self.stats.merge(&self.transport.extra_stats())
    }

    /// Sends `data` to `dst` with `tag`, taking ownership of the buffer
    /// (no copy).
    ///
    /// Sends never block: the transport is unbounded, modeling an eager
    /// protocol. Flow control in the reproduction comes from Mimir's own
    /// fixed-size communication buffers, exactly as in the paper.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or `tag` is in the reserved
    /// collective range, or (with a disconnect payload) if `dst` has
    /// exited.
    pub fn send_vec(&mut self, dst: usize, tag: Tag, data: Vec<u8>) {
        assert!(
            tag <= tags::USER_MAX,
            "tag {tag:#x} is reserved for collectives"
        );
        self.send_internal(dst, tag, data);
    }

    /// Copying variant of [`Self::send_vec`]. The copy lands in a pooled
    /// buffer, so repeated sends reuse a stable set of allocations.
    pub fn send(&mut self, dst: usize, tag: Tag, data: &[u8]) {
        assert!(
            tag <= tags::USER_MAX,
            "tag {tag:#x} is reserved for collectives"
        );
        self.send_copy_pooled(dst, tag, data);
    }

    /// Posts a nonblocking copying send and returns its [`Request`].
    ///
    /// The payload is copied into a pooled buffer at post time, so `data`
    /// may be reused immediately regardless of request completion.
    pub fn isend(&mut self, dst: usize, tag: Tag, data: &[u8]) -> Request {
        assert!(
            tag <= tags::USER_MAX,
            "tag {tag:#x} is reserved for collectives"
        );
        self.send_copy_pooled(dst, tag, data);
        Request { completed: true }
    }

    /// Posts a nonblocking send that takes ownership of `data` (no copy).
    pub fn isend_vec(&mut self, dst: usize, tag: Tag, data: Vec<u8>) -> Request {
        self.send_vec(dst, tag, data);
        Request { completed: true }
    }

    /// Receives the next message from `src` carrying `tag`, blocking until
    /// one arrives.
    ///
    /// # Panics
    /// Panics if `src` is out of range or `tag` is reserved, or (with a
    /// disconnect payload) if `src` exited before sending a matching
    /// message.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        assert!(
            tag <= tags::USER_MAX,
            "tag {tag:#x} is reserved for collectives"
        );
        self.recv_internal(src, tag)
    }

    /// Takes an idle buffer from the pool (cleared, arbitrary capacity) or
    /// allocates a fresh one, counting the miss in `send_allocs`.
    pub(crate) fn take_buf(&mut self) -> Vec<u8> {
        match self.free_bufs.pop() {
            Some(buf) => buf,
            None => {
                self.stats.send_allocs += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool for reuse (dropped if the pool is
    /// full).
    pub(crate) fn recycle_buf(&mut self, mut buf: Vec<u8>) {
        if self.free_bufs.len() < BUF_POOL_CAP && buf.capacity() > 0 {
            buf.clear();
            self.free_bufs.push(buf);
        }
    }

    /// Copies `data` into a pooled buffer and sends it. A growth of the
    /// pooled buffer's capacity counts as a `send_alloc` (steady state
    /// reaches a high-water capacity and stops).
    pub(crate) fn send_copy_pooled(&mut self, dst: usize, tag: Tag, data: &[u8]) {
        let mut buf = self.take_buf();
        if buf.capacity() < data.len() {
            self.stats.send_allocs += 1;
        }
        let copy_start = Instant::now();
        buf.extend_from_slice(data);
        self.stats.work_ns += copy_start.elapsed().as_nanos() as u64;
        self.stats.bytes_copied += data.len() as u64;
        self.send_internal(dst, tag, buf);
    }

    pub(crate) fn send_internal(&mut self, dst: usize, tag: Tag, data: Vec<u8>) {
        self.send_msg(
            dst,
            Msg {
                tag,
                data: Payload::Heap(data),
                flow: 0,
            },
        );
    }

    /// Sends a single `u64` carried inline — no heap allocation.
    pub(crate) fn send_u64_internal(&mut self, dst: usize, tag: Tag, value: u64) {
        self.send_msg(
            dst,
            Msg {
                tag,
                data: Payload::Small(value),
                flow: 0,
            },
        );
    }

    fn send_msg(&mut self, dst: usize, mut msg: Msg) {
        assert!(
            dst < self.size,
            "send to rank {dst} in a world of {}",
            self.size
        );
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += msg.data.len() as u64;
        // Causal stamp: every message (user, collective-internal, and
        // derivation control plane alike) carries its sender's flow id.
        // With tracing off this is one thread-local probe returning the
        // sentinel 0, and flow_send is then a no-op.
        msg.flow = mimir_obs::next_flow_id();
        mimir_obs::flow_send(msg.flow, dst as u64, msg.data.len() as u64);
        if let Err(err) = self.transport.send(dst, msg, &mut self.stats) {
            // resume_unwind skips the panic hook: the cascade teardown is
            // expected noise; the root-cause rank's own panic already
            // printed.
            std::panic::resume_unwind(Box::new(DisconnectPanic(err)));
        }
        self.push_live();
    }

    pub(crate) fn recv_internal(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        self.recv_msg(src, tag).into_vec()
    }

    /// Receives a message sent with [`Self::send_u64_internal`].
    pub(crate) fn recv_u64_internal(&mut self, src: usize, tag: Tag) -> u64 {
        match self.recv_msg(src, tag) {
            Payload::Small(v) => v,
            Payload::Heap(bytes) => {
                u64::from_le_bytes(bytes.try_into().expect("8-byte u64 payload"))
            }
            Payload::Endpoint(_) => unreachable!("endpoint payload on a value tag"),
        }
    }

    /// Ships a derivation endpoint to `dst` (communicator-derivation
    /// control plane only).
    fn send_endpoint_internal(&mut self, dst: usize, tag: Tag, ep: Endpoint) {
        self.send_msg(
            dst,
            Msg {
                tag,
                data: Payload::Endpoint(ep),
                flow: 0,
            },
        );
    }

    /// Receives an endpoint shipped with [`Self::send_endpoint_internal`].
    fn recv_endpoint_internal(&mut self, src: usize, tag: Tag) -> Endpoint {
        match self.recv_msg(src, tag) {
            Payload::Endpoint(ep) => ep,
            other => unreachable!("expected endpoint payload, got {} bytes", other.len()),
        }
    }

    fn recv_msg(&mut self, src: usize, tag: Tag) -> Payload {
        assert!(
            src < self.size,
            "recv from rank {src} in a world of {}",
            self.size
        );
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
            let msg = self.pending[src].remove(pos).expect("position just found");
            self.stats.msgs_recvd += 1;
            self.stats.bytes_recvd += msg.data.len() as u64;
            mimir_obs::flow_recv(msg.flow, msg.data.len() as u64);
            self.push_live();
            return msg.data;
        }
        // Everything below blocks on a peer: this loop is the single
        // funnel for every blocking point in the transport (recv and all
        // collective-internal receives), so timing it here gives complete
        // wait-state attribution with one clock read per matched message.
        let wait_start = Instant::now();
        let data = if let Some(live) = self.live.clone() {
            // Telemetry-plane variant: slice the indefinite block into
            // bounded waits and publish the in-flight blocked time on
            // each timeout, so a rank stuck behind a straggler keeps
            // reporting a climbing wait instead of going silent until
            // the message lands.
            loop {
                match self
                    .transport
                    .recv_deadline(src, &mut self.stats, LIVE_WAIT_SLICE)
                {
                    Ok(Some(msg)) if msg.tag == tag => {
                        self.stats.msgs_recvd += 1;
                        self.stats.bytes_recvd += msg.data.len() as u64;
                        mimir_obs::flow_recv(msg.flow, msg.data.len() as u64);
                        break msg.data;
                    }
                    Ok(Some(msg)) => self.pending[src].push_back(msg),
                    Ok(None) => {
                        live.set_pending_wait(wait_start.elapsed().as_nanos() as u64);
                    }
                    Err(err) => std::panic::resume_unwind(Box::new(DisconnectPanic(err))),
                }
            }
        } else {
            loop {
                match self.transport.recv(src, &mut self.stats) {
                    Ok(msg) if msg.tag == tag => {
                        self.stats.msgs_recvd += 1;
                        self.stats.bytes_recvd += msg.data.len() as u64;
                        mimir_obs::flow_recv(msg.flow, msg.data.len() as u64);
                        break msg.data;
                    }
                    Ok(msg) => self.pending[src].push_back(msg),
                    Err(err) => std::panic::resume_unwind(Box::new(DisconnectPanic(err))),
                }
            }
        };
        self.stats.wait_ns += wait_start.elapsed().as_nanos() as u64;
        if let Some(live) = &self.live {
            live.set_pending_wait(0);
        }
        self.push_live();
        data
    }

    pub(crate) fn count_collective(&mut self) {
        self.stats.collectives += 1;
    }
}

/// Derivation-handshake opcode for [`Comm::dup`] (top byte of the token).
const DERIVE_DUP: u64 = 1;
/// Derivation-handshake opcode for [`Comm::split`].
const DERIVE_SPLIT: u64 = 2;
/// Low bits of the handshake token carrying the derivation sequence number.
const DERIVE_SEQ_MASK: u64 = 0x00FF_FFFF_FFFF_FFFF;

impl Comm {
    /// Duplicates this communicator (collective).
    ///
    /// Every rank receives a new communicator spanning the same group with
    /// the same rank numbering but a *private message namespace*: traffic
    /// on the duplicate can never match traffic on the parent or on any
    /// other duplicate, whatever tags either side uses. (On the in-process
    /// backend the namespace is a private channel matrix; on the socket
    /// backend it is a fresh communicator id multiplexed over the existing
    /// connections.) This is the isolation primitive the job scheduler
    /// hands to each running job, so two jobs' `alltoallv` rounds can
    /// interleave on the same ranks (even from different threads — the
    /// duplicate is `Send` and fully independent).
    ///
    /// The duplicate starts with an empty pooled-buffer free-list, so
    /// concurrent owners never contend for recycled buffers.
    ///
    /// # Panics
    /// Panics if ranks disagree on the derivation sequence (one rank calls
    /// `dup` while another calls `split`, or their derivation counts have
    /// diverged) — the collective-consistency assert.
    pub fn dup(&mut self) -> Comm {
        let seq = self.begin_derivation(DERIVE_DUP);
        let name = format!("{}.dup{seq}", self.name);
        let members: Vec<usize> = (0..self.size).collect();
        self.derive_transport(name, seq, &members, self.rank, tags::DUP)
    }

    /// [`Comm::dup`] with a caller-chosen label suffix (e.g. a job name),
    /// visible in spill directories and panic messages.
    pub fn dup_named(&mut self, label: &str) -> Comm {
        let seq = self.begin_derivation(DERIVE_DUP);
        let name = format!("{}.{label}", self.name);
        let members: Vec<usize> = (0..self.size).collect();
        self.derive_transport(name, seq, &members, self.rank, tags::DUP)
    }

    /// Partitions this communicator into disjoint sub-communicators
    /// (collective): ranks passing the same `Some(color)` form one group,
    /// ordered by `(key, parent rank)`; ranks passing `None` participate
    /// in the exchange but receive no communicator (MPI's
    /// `MPI_UNDEFINED`).
    ///
    /// # Panics
    /// Panics on a derivation-sequence mismatch, like [`Comm::dup`].
    pub fn split(&mut self, color: Option<u64>, key: u64) -> Option<Comm> {
        let seq = self.begin_derivation(DERIVE_SPLIT);
        // Membership exchange: every rank contributes (present, color, key)
        // so the group roster is known identically everywhere.
        let mut payload = [0u8; 17];
        payload[0] = u8::from(color.is_some());
        payload[1..9].copy_from_slice(&color.unwrap_or(0).to_le_bytes());
        payload[9..17].copy_from_slice(&key.to_le_bytes());
        let all = self.allgather(payload.to_vec());
        let my_color = color?;
        let mut members: Vec<(u64, usize)> = Vec::new();
        for (old_rank, buf) in all.iter().enumerate() {
            let present = buf[0] != 0;
            let c = u64::from_le_bytes(buf[1..9].try_into().expect("color bytes"));
            let k = u64::from_le_bytes(buf[9..17].try_into().expect("key bytes"));
            if present && c == my_color {
                members.push((k, old_rank));
            }
        }
        members.sort_unstable();
        let new_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("caller belongs to its own color group");
        let name = format!("{}.split{seq}.c{my_color}", self.name);
        let members: Vec<usize> = members.into_iter().map(|(_, r)| r).collect();
        Some(self.derive_transport(name, seq, &members, new_rank, tags::SPLIT))
    }

    /// Collective entry gate for `dup`/`split`: allgathers a token packing
    /// (opcode, per-comm derivation sequence) and asserts every rank sent
    /// the same one. Catching the divergence here — rather than hanging in
    /// some later mismatched collective — is what makes concurrent-job
    /// bugs debuggable.
    fn begin_derivation(&mut self, opcode: u64) -> u64 {
        let seq = self.derived;
        self.derived += 1;
        let token = (opcode << 56) | (seq & DERIVE_SEQ_MASK);
        let tokens = self.allgather_u64(token);
        for (r, &t) in tokens.iter().enumerate() {
            assert!(
                t == token,
                "collective-consistency violation on \"{}\": rank {} entered \
                 derivation token {token:#x} but rank {r} entered {t:#x} \
                 (mixed dup/split calls or diverged derivation counts)",
                self.name,
                self.rank,
            );
        }
        seq
    }

    /// The single derivation code path behind `dup` and `split`, shared by
    /// every backend: the transport creates its receive side and one
    /// [`Endpoint`] per peer; this rank ships each endpoint to the rank
    /// that will use it over the parent's reserved `tag` (DUP or SPLIT, so
    /// user traffic can't interleave), then installs the endpoints it
    /// receives in turn. Sends are eager, so posting all sends before any
    /// receive cannot deadlock.
    ///
    /// `members[new_rank]` is the parent rank sitting at `new_rank` in the
    /// derived communicator; identical on every member by construction
    /// (dup: trivially; split: from the sorted membership exchange).
    fn derive_transport(
        &mut self,
        name: String,
        seq: u64,
        members: &[usize],
        my_new_rank: usize,
        tag: Tag,
    ) -> Comm {
        let (mut derivation, endpoints) = self.transport.begin_derive(seq, members, my_new_rank);
        for (new_rank, ep) in endpoints.into_iter().enumerate() {
            if let Some(ep) = ep {
                debug_assert_ne!(new_rank, my_new_rank);
                self.send_endpoint_internal(members[new_rank], tag, ep);
            }
        }
        for (new_rank, &old_rank) in members.iter().enumerate() {
            if new_rank != my_new_rank {
                let ep = self.recv_endpoint_internal(old_rank, tag);
                self.transport
                    .accept_endpoint(&mut derivation, new_rank, ep);
            }
        }
        let transport = self.transport.finish_derive(derivation);
        Comm::new(name, my_new_rank, members.len(), transport)
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}
