use std::collections::VecDeque;

use std::sync::mpsc::{Receiver, Sender};

use crate::error::DisconnectPanic;
use crate::msg::{tags, Msg, Tag};
use crate::{CommError, CommStats};

/// A rank's endpoint into the world: point-to-point messaging plus the
/// collective operations (barrier, allreduce, alltoallv, …).
///
/// A `Comm` is owned by exactly one rank thread (it is `Send` but not
/// `Sync`, like an `MPI_Comm` used correctly). Receives are matched by
/// `(source, tag)`; messages that arrive ahead of the matching receive are
/// parked in a per-source pending queue, preserving FIFO order per pair.
pub struct Comm {
    rank: usize,
    size: usize,
    /// Sender endpoint towards each destination rank.
    txs: Vec<Sender<Msg>>,
    /// Receiver endpoint from each source rank.
    rxs: Vec<Receiver<Msg>>,
    /// Messages received from each source but not yet matched by tag.
    pending: Vec<VecDeque<Msg>>,
    stats: CommStats,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        txs: Vec<Sender<Msg>>,
        rxs: Vec<Receiver<Msg>>,
    ) -> Self {
        debug_assert_eq!(txs.len(), size);
        debug_assert_eq!(rxs.len(), size);
        Self {
            rank,
            size,
            txs,
            rxs,
            pending: (0..size).map(|_| VecDeque::new()).collect(),
            stats: CommStats::default(),
        }
    }

    /// This rank's index in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Communication counters accumulated by this rank so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Sends `data` to `dst` with `tag`, taking ownership of the buffer
    /// (no copy).
    ///
    /// Sends never block: the transport is unbounded, modeling an eager
    /// protocol. Flow control in the reproduction comes from Mimir's own
    /// fixed-size communication buffers, exactly as in the paper.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or `tag` is in the reserved
    /// collective range, or (with a disconnect payload) if `dst` has
    /// exited.
    pub fn send_vec(&mut self, dst: usize, tag: Tag, data: Vec<u8>) {
        assert!(
            tag <= tags::USER_MAX,
            "tag {tag:#x} is reserved for collectives"
        );
        self.send_internal(dst, tag, data);
    }

    /// Copying variant of [`Self::send_vec`].
    pub fn send(&mut self, dst: usize, tag: Tag, data: &[u8]) {
        self.send_vec(dst, tag, data.to_vec());
    }

    /// Receives the next message from `src` carrying `tag`, blocking until
    /// one arrives.
    ///
    /// # Panics
    /// Panics if `src` is out of range or `tag` is reserved, or (with a
    /// disconnect payload) if `src` exited before sending a matching
    /// message.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        assert!(
            tag <= tags::USER_MAX,
            "tag {tag:#x} is reserved for collectives"
        );
        self.recv_internal(src, tag)
    }

    pub(crate) fn send_internal(&mut self, dst: usize, tag: Tag, data: Vec<u8>) {
        assert!(
            dst < self.size,
            "send to rank {dst} in a world of {}",
            self.size
        );
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += data.len() as u64;
        if self.txs[dst].send(Msg { tag, data }).is_err() {
            // resume_unwind skips the panic hook: the cascade teardown is
            // expected noise; the root-cause rank's own panic already
            // printed.
            std::panic::resume_unwind(Box::new(DisconnectPanic(CommError::RankDisconnected {
                observer: self.rank,
                peer: dst,
            })));
        }
    }

    pub(crate) fn recv_internal(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        assert!(
            src < self.size,
            "recv from rank {src} in a world of {}",
            self.size
        );
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
            let msg = self.pending[src].remove(pos).expect("position just found");
            self.stats.msgs_recvd += 1;
            self.stats.bytes_recvd += msg.data.len() as u64;
            return msg.data;
        }
        loop {
            match self.rxs[src].recv() {
                Ok(msg) if msg.tag == tag => {
                    self.stats.msgs_recvd += 1;
                    self.stats.bytes_recvd += msg.data.len() as u64;
                    return msg.data;
                }
                Ok(msg) => self.pending[src].push_back(msg),
                Err(_) => std::panic::resume_unwind(Box::new(DisconnectPanic(
                    CommError::RankDisconnected {
                        observer: self.rank,
                        peer: src,
                    },
                ))),
            }
        }
    }

    pub(crate) fn count_collective(&mut self) {
        self.stats.collectives += 1;
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}
