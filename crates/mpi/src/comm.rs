use std::collections::VecDeque;

use std::sync::mpsc::{self, Receiver, Sender};
use std::time::Instant;

use crate::error::DisconnectPanic;
use crate::msg::{tags, Msg, Payload, Tag};
use crate::{CommError, CommStats};

/// Maximum number of idle message buffers kept in the per-rank pool.
///
/// The exchange steady state needs one in-flight buffer per peer in each
/// direction; buffers flow sender → receiver → receiver's pool, so after a
/// warm-up round every rank's pool oscillates around `size - 1` entries.
/// The cap only matters for bursty user point-to-point traffic.
const BUF_POOL_CAP: usize = 64;

/// Handle for a nonblocking send posted with [`Comm::isend`] /
/// [`Comm::isend_vec`].
///
/// The in-process transport is eager and unbounded: the payload is handed
/// to the destination's channel at post time, so requests are born
/// complete. The type still exists so callers are written against the
/// MPI-shaped post/complete protocol (and so a bounded-rendezvous
/// transport could be dropped in later without touching call sites).
#[derive(Debug)]
#[must_use = "an isend must be completed with wait() or test()"]
pub struct Request {
    completed: bool,
}

impl Request {
    /// True once the send buffer may be reused. Always true on the eager
    /// transport.
    pub fn test(&self) -> bool {
        self.completed
    }

    /// Blocks until the send completes (a no-op on the eager transport).
    pub fn wait(self) {
        debug_assert!(self.completed);
    }
}

/// A rank's endpoint into the world: point-to-point messaging plus the
/// collective operations (barrier, allreduce, alltoallv, …).
///
/// A `Comm` is owned by exactly one rank thread (it is `Send` but not
/// `Sync`, like an `MPI_Comm` used correctly). Receives are matched by
/// `(source, tag)`; messages that arrive ahead of the matching receive are
/// parked in a per-source pending queue, preserving FIFO order per pair.
pub struct Comm {
    name: String,
    rank: usize,
    size: usize,
    /// Number of derived communicators ([`Comm::dup`] / [`Comm::split`])
    /// created from this one so far. All ranks execute the same derivation
    /// sequence (dup/split are collective), so the counter doubles as a
    /// cross-rank sequence number for the consistency handshake.
    derived: u64,
    /// Sender endpoint towards each destination rank.
    txs: Vec<Sender<Msg>>,
    /// Receiver endpoint from each source rank.
    rxs: Vec<Receiver<Msg>>,
    /// Messages received from each source but not yet matched by tag.
    pending: Vec<VecDeque<Msg>>,
    /// Idle message buffers, recycled between rounds so the steady-state
    /// exchange path performs no heap allocation (`send_allocs` counts the
    /// misses). Each communicator owns its own free-list: concurrent jobs
    /// on dup'd communicators never contend for (or poison) each other's
    /// pooled buffers.
    free_bufs: Vec<Vec<u8>>,
    pub(crate) stats: CommStats,
}

impl Comm {
    pub(crate) fn new(
        name: String,
        rank: usize,
        size: usize,
        txs: Vec<Sender<Msg>>,
        rxs: Vec<Receiver<Msg>>,
    ) -> Self {
        debug_assert_eq!(txs.len(), size);
        debug_assert_eq!(rxs.len(), size);
        Self {
            name,
            rank,
            size,
            derived: 0,
            txs,
            rxs,
            pending: (0..size).map(|_| VecDeque::new()).collect(),
            free_bufs: Vec::new(),
            stats: CommStats::default(),
        }
    }

    /// This rank's index in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// This communicator's name — `"world"` for the root communicator of
    /// [`crate::run_world`], with a `.dupN` / `.splitN.cC` / custom-label
    /// suffix appended per derivation. Spill directories and trace lanes
    /// use it to attribute resources to the communicator that owns them.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Communication counters accumulated by this rank so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Sends `data` to `dst` with `tag`, taking ownership of the buffer
    /// (no copy).
    ///
    /// Sends never block: the transport is unbounded, modeling an eager
    /// protocol. Flow control in the reproduction comes from Mimir's own
    /// fixed-size communication buffers, exactly as in the paper.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or `tag` is in the reserved
    /// collective range, or (with a disconnect payload) if `dst` has
    /// exited.
    pub fn send_vec(&mut self, dst: usize, tag: Tag, data: Vec<u8>) {
        assert!(
            tag <= tags::USER_MAX,
            "tag {tag:#x} is reserved for collectives"
        );
        self.send_internal(dst, tag, data);
    }

    /// Copying variant of [`Self::send_vec`]. The copy lands in a pooled
    /// buffer, so repeated sends reuse a stable set of allocations.
    pub fn send(&mut self, dst: usize, tag: Tag, data: &[u8]) {
        assert!(
            tag <= tags::USER_MAX,
            "tag {tag:#x} is reserved for collectives"
        );
        self.send_copy_pooled(dst, tag, data);
    }

    /// Posts a nonblocking copying send and returns its [`Request`].
    ///
    /// The payload is copied into a pooled buffer at post time, so `data`
    /// may be reused immediately regardless of request completion.
    pub fn isend(&mut self, dst: usize, tag: Tag, data: &[u8]) -> Request {
        assert!(
            tag <= tags::USER_MAX,
            "tag {tag:#x} is reserved for collectives"
        );
        self.send_copy_pooled(dst, tag, data);
        Request { completed: true }
    }

    /// Posts a nonblocking send that takes ownership of `data` (no copy).
    pub fn isend_vec(&mut self, dst: usize, tag: Tag, data: Vec<u8>) -> Request {
        self.send_vec(dst, tag, data);
        Request { completed: true }
    }

    /// Receives the next message from `src` carrying `tag`, blocking until
    /// one arrives.
    ///
    /// # Panics
    /// Panics if `src` is out of range or `tag` is reserved, or (with a
    /// disconnect payload) if `src` exited before sending a matching
    /// message.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        assert!(
            tag <= tags::USER_MAX,
            "tag {tag:#x} is reserved for collectives"
        );
        self.recv_internal(src, tag)
    }

    /// Takes an idle buffer from the pool (cleared, arbitrary capacity) or
    /// allocates a fresh one, counting the miss in `send_allocs`.
    pub(crate) fn take_buf(&mut self) -> Vec<u8> {
        match self.free_bufs.pop() {
            Some(buf) => buf,
            None => {
                self.stats.send_allocs += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool for reuse (dropped if the pool is
    /// full).
    pub(crate) fn recycle_buf(&mut self, mut buf: Vec<u8>) {
        if self.free_bufs.len() < BUF_POOL_CAP && buf.capacity() > 0 {
            buf.clear();
            self.free_bufs.push(buf);
        }
    }

    /// Copies `data` into a pooled buffer and sends it. A growth of the
    /// pooled buffer's capacity counts as a `send_alloc` (steady state
    /// reaches a high-water capacity and stops).
    pub(crate) fn send_copy_pooled(&mut self, dst: usize, tag: Tag, data: &[u8]) {
        let mut buf = self.take_buf();
        if buf.capacity() < data.len() {
            self.stats.send_allocs += 1;
        }
        let copy_start = Instant::now();
        buf.extend_from_slice(data);
        self.stats.work_ns += copy_start.elapsed().as_nanos() as u64;
        self.stats.bytes_copied += data.len() as u64;
        self.send_internal(dst, tag, buf);
    }

    pub(crate) fn send_internal(&mut self, dst: usize, tag: Tag, data: Vec<u8>) {
        self.send_msg(
            dst,
            Msg {
                tag,
                data: Payload::Heap(data),
                flow: 0,
            },
        );
    }

    /// Sends a single `u64` carried inline — no heap allocation.
    pub(crate) fn send_u64_internal(&mut self, dst: usize, tag: Tag, value: u64) {
        self.send_msg(
            dst,
            Msg {
                tag,
                data: Payload::Small(value),
                flow: 0,
            },
        );
    }

    fn send_msg(&mut self, dst: usize, mut msg: Msg) {
        assert!(
            dst < self.size,
            "send to rank {dst} in a world of {}",
            self.size
        );
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += msg.data.len() as u64;
        // Causal stamp: every message (user, collective-internal, and
        // derivation control plane alike) carries its sender's flow id.
        // With tracing off this is one thread-local probe returning the
        // sentinel 0, and flow_send is then a no-op.
        msg.flow = mimir_obs::next_flow_id();
        mimir_obs::flow_send(msg.flow, dst as u64, msg.data.len() as u64);
        if self.txs[dst].send(msg).is_err() {
            // resume_unwind skips the panic hook: the cascade teardown is
            // expected noise; the root-cause rank's own panic already
            // printed.
            std::panic::resume_unwind(Box::new(DisconnectPanic(CommError::RankDisconnected {
                observer: self.rank,
                peer: dst,
            })));
        }
    }

    pub(crate) fn recv_internal(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        self.recv_msg(src, tag).into_vec()
    }

    /// Receives a message sent with [`Self::send_u64_internal`].
    pub(crate) fn recv_u64_internal(&mut self, src: usize, tag: Tag) -> u64 {
        match self.recv_msg(src, tag) {
            Payload::Small(v) => v,
            Payload::Heap(bytes) => {
                u64::from_le_bytes(bytes.try_into().expect("8-byte u64 payload"))
            }
            Payload::Chan(_) => unreachable!("channel payload on a value tag"),
        }
    }

    /// Ships a fresh channel sender to `dst` (communicator-derivation
    /// control plane only).
    fn send_chan_internal(&mut self, dst: usize, tag: Tag, sender: Sender<Msg>) {
        self.send_msg(
            dst,
            Msg {
                tag,
                data: Payload::Chan(sender),
                flow: 0,
            },
        );
    }

    /// Receives a channel sender shipped with [`Self::send_chan_internal`].
    fn recv_chan_internal(&mut self, src: usize, tag: Tag) -> Sender<Msg> {
        match self.recv_msg(src, tag) {
            Payload::Chan(s) => s,
            other => unreachable!("expected channel payload, got {} bytes", other.len()),
        }
    }

    fn recv_msg(&mut self, src: usize, tag: Tag) -> Payload {
        assert!(
            src < self.size,
            "recv from rank {src} in a world of {}",
            self.size
        );
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
            let msg = self.pending[src].remove(pos).expect("position just found");
            self.stats.msgs_recvd += 1;
            self.stats.bytes_recvd += msg.data.len() as u64;
            mimir_obs::flow_recv(msg.flow, msg.data.len() as u64);
            return msg.data;
        }
        // Everything below blocks on a peer: this loop is the single
        // funnel for every blocking point in the transport (recv and all
        // collective-internal receives), so timing it here gives complete
        // wait-state attribution with one clock read per matched message.
        let wait_start = Instant::now();
        let data = loop {
            match self.rxs[src].recv() {
                Ok(msg) if msg.tag == tag => {
                    self.stats.msgs_recvd += 1;
                    self.stats.bytes_recvd += msg.data.len() as u64;
                    mimir_obs::flow_recv(msg.flow, msg.data.len() as u64);
                    break msg.data;
                }
                Ok(msg) => self.pending[src].push_back(msg),
                Err(_) => std::panic::resume_unwind(Box::new(DisconnectPanic(
                    CommError::RankDisconnected {
                        observer: self.rank,
                        peer: src,
                    },
                ))),
            }
        };
        self.stats.wait_ns += wait_start.elapsed().as_nanos() as u64;
        data
    }

    pub(crate) fn count_collective(&mut self) {
        self.stats.collectives += 1;
    }
}

/// Derivation-handshake opcode for [`Comm::dup`] (top byte of the token).
const DERIVE_DUP: u64 = 1;
/// Derivation-handshake opcode for [`Comm::split`].
const DERIVE_SPLIT: u64 = 2;
/// Low bits of the handshake token carrying the derivation sequence number.
const DERIVE_SEQ_MASK: u64 = 0x00FF_FFFF_FFFF_FFFF;

impl Comm {
    /// Duplicates this communicator (collective).
    ///
    /// Every rank receives a new communicator spanning the same group with
    /// the same rank numbering but a *private channel matrix*: traffic on
    /// the duplicate can never match traffic on the parent or on any other
    /// duplicate, whatever tags either side uses. This is the isolation
    /// primitive the job scheduler hands to each running job, so two jobs'
    /// `alltoallv` rounds can interleave on the same ranks (even from
    /// different threads — the duplicate is `Send` and fully independent).
    ///
    /// The duplicate starts with an empty pooled-buffer free-list, so
    /// concurrent owners never contend for recycled buffers.
    ///
    /// # Panics
    /// Panics if ranks disagree on the derivation sequence (one rank calls
    /// `dup` while another calls `split`, or their derivation counts have
    /// diverged) — the collective-consistency assert.
    pub fn dup(&mut self) -> Comm {
        let seq = self.begin_derivation(DERIVE_DUP);
        let name = format!("{}.dup{seq}", self.name);
        self.build_dup(name)
    }

    /// [`Comm::dup`] with a caller-chosen label suffix (e.g. a job name),
    /// visible in spill directories and panic messages.
    pub fn dup_named(&mut self, label: &str) -> Comm {
        let _seq = self.begin_derivation(DERIVE_DUP);
        let name = format!("{}.{label}", self.name);
        self.build_dup(name)
    }

    /// Partitions this communicator into disjoint sub-communicators
    /// (collective): ranks passing the same `Some(color)` form one group,
    /// ordered by `(key, parent rank)`; ranks passing `None` participate
    /// in the exchange but receive no communicator (MPI's
    /// `MPI_UNDEFINED`).
    ///
    /// # Panics
    /// Panics on a derivation-sequence mismatch, like [`Comm::dup`].
    pub fn split(&mut self, color: Option<u64>, key: u64) -> Option<Comm> {
        let seq = self.begin_derivation(DERIVE_SPLIT);
        // Membership exchange: every rank contributes (present, color, key)
        // so the group roster is known identically everywhere.
        let mut payload = [0u8; 17];
        payload[0] = u8::from(color.is_some());
        payload[1..9].copy_from_slice(&color.unwrap_or(0).to_le_bytes());
        payload[9..17].copy_from_slice(&key.to_le_bytes());
        let all = self.allgather(payload.to_vec());
        let my_color = color?;
        let mut members: Vec<(u64, usize)> = Vec::new();
        for (old_rank, buf) in all.iter().enumerate() {
            let present = buf[0] != 0;
            let c = u64::from_le_bytes(buf[1..9].try_into().expect("color bytes"));
            let k = u64::from_le_bytes(buf[9..17].try_into().expect("key bytes"));
            if present && c == my_color {
                members.push((k, old_rank));
            }
        }
        members.sort_unstable();
        let new_size = members.len();
        let new_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("caller belongs to its own color group");
        let name = format!("{}.split{seq}.c{my_color}", self.name);

        let mut txs: Vec<Option<Sender<Msg>>> = (0..new_size).map(|_| None).collect();
        let mut rxs = Vec::with_capacity(new_size);
        for (src_new, &(_, src_old)) in members.iter().enumerate() {
            let (t, r) = mpsc::channel::<Msg>();
            rxs.push(r);
            if src_new == new_rank {
                txs[new_rank] = Some(t);
            } else {
                self.send_chan_internal(src_old, tags::SPLIT, t);
            }
        }
        for (dst_new, &(_, dst_old)) in members.iter().enumerate() {
            if dst_new != new_rank {
                txs[dst_new] = Some(self.recv_chan_internal(dst_old, tags::SPLIT));
            }
        }
        let txs = txs
            .into_iter()
            .map(|t| t.expect("endpoint exchanged"))
            .collect();
        Some(Comm::new(name, new_rank, new_size, txs, rxs))
    }

    /// Collective entry gate for `dup`/`split`: allgathers a token packing
    /// (opcode, per-comm derivation sequence) and asserts every rank sent
    /// the same one. Catching the divergence here — rather than hanging in
    /// some later mismatched collective — is what makes concurrent-job
    /// bugs debuggable.
    fn begin_derivation(&mut self, opcode: u64) -> u64 {
        let seq = self.derived;
        self.derived += 1;
        let token = (opcode << 56) | (seq & DERIVE_SEQ_MASK);
        let tokens = self.allgather_u64(token);
        for (r, &t) in tokens.iter().enumerate() {
            assert!(
                t == token,
                "collective-consistency violation on \"{}\": rank {} entered \
                 derivation token {token:#x} but rank {r} entered {t:#x} \
                 (mixed dup/split calls or diverged derivation counts)",
                self.name,
                self.rank,
            );
        }
        seq
    }

    /// Builds the duplicate's channel matrix: this rank creates one fresh
    /// channel per source, keeps every receiving half, and ships each
    /// sending half to the rank that will use it — all over the parent's
    /// reserved `DUP` tag, so user traffic can't interleave. Sends are
    /// eager, so posting all sends before any receive cannot deadlock.
    fn build_dup(&mut self, name: String) -> Comm {
        let me = self.rank;
        let size = self.size;
        let mut txs: Vec<Option<Sender<Msg>>> = (0..size).map(|_| None).collect();
        let mut rxs = Vec::with_capacity(size);
        for src in 0..size {
            let (t, r) = mpsc::channel::<Msg>();
            rxs.push(r);
            if src == me {
                txs[me] = Some(t);
            } else {
                self.send_chan_internal(src, tags::DUP, t);
            }
        }
        for (dst, tx) in txs.iter_mut().enumerate() {
            if dst != me {
                *tx = Some(self.recv_chan_internal(dst, tags::DUP));
            }
        }
        let txs = txs
            .into_iter()
            .map(|t| t.expect("endpoint exchanged"))
            .collect();
        Comm::new(name, me, size, txs, rxs)
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}
