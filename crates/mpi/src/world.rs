use std::panic::AssertUnwindSafe;

use crate::comm::Comm;
use crate::error::{panic_message, DisconnectPanic, WorldError};
use crate::transport::inproc::InprocTransport;
use crate::transport::uds::{self, RankEnd, UdsWorldOptions};
use crate::transport::TransportKind;
use crate::wire::Wire;

/// Runs `f` as an SPMD program across `n_ranks` rank threads and returns
/// the per-rank results indexed by rank.
///
/// Equivalent to `mpiexec -n <n_ranks>` for the in-process world: every
/// rank executes the same closure with its own [`Comm`]. The call blocks
/// until all ranks finish.
///
/// ```
/// use mimir_mpi::{run_world, ReduceOp};
///
/// let sums = run_world(4, |comm| {
///     comm.allreduce_u64(ReduceOp::Sum, comm.rank() as u64)
/// });
/// assert_eq!(sums, vec![6, 6, 6, 6]); // 0+1+2+3 on every rank
/// ```
///
/// # Panics
/// If any rank panics, the whole world is torn down (peers blocked on the
/// dead rank wake with disconnect panics, like an MPI job abort) and the
/// *root-cause* panic is re-raised on the caller's thread.
pub fn run_world<R, F>(n_ranks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    run_world_named("world", n_ranks, f)
}

/// [`run_world`] with a name used for rank thread names (visible in
/// profilers and panic messages).
pub fn run_world_named<R, F>(name: &str, n_ranks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    match run_world_inner(name, n_ranks, &f) {
        Ok(results) => results,
        Err(mut panics) => {
            // Prefer a root-cause panic over the disconnect cascade it
            // caused.
            let root = panics
                .iter()
                .position(|(_, p)| !p.is::<DisconnectPanic>())
                .unwrap_or(0);
            std::panic::resume_unwind(panics.swap_remove(root).1)
        }
    }
}

/// A rank's panic payload, tagged with the rank that raised it.
type RankPanic = (usize, Box<dyn std::any::Any + Send>);

/// Spawns the rank threads and joins them, returning either every rank's
/// result or the full set of `(rank, panic payload)` failures for the
/// caller to interpret.
fn run_world_inner<R, F>(name: &str, n_ranks: usize, f: &F) -> Result<Vec<R>, Vec<RankPanic>>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    assert!(n_ranks > 0, "world needs at least one rank");

    let comms: Vec<Comm> = InprocTransport::make_world(n_ranks)
        .into_iter()
        .enumerate()
        .map(|(rank, t)| Comm::new(name.to_string(), rank, n_ranks, Box::new(t)))
        .collect();

    let mut results: Vec<Option<R>> = (0..n_ranks).map(|_| None).collect();
    let mut panics: Vec<RankPanic> = Vec::new();

    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, mut comm)| {
                std::thread::Builder::new()
                    .name(format!("{name}-rank{rank}"))
                    .spawn_scoped(scope, move || {
                        // Arm the live telemetry plane on the rank thread
                        // (no-op unless configured). The comm was built on
                        // the caller thread, so attach it explicitly.
                        let live = mimir_obs::live::arm(rank, n_ranks, false);
                        if let Some(handle) = &live {
                            comm.attach_live(handle.shared());
                        }
                        // Catch the panic so the Comm (and its channel
                        // endpoints) drops deterministically before the
                        // thread exits, waking blocked peers.
                        let res = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                        drop(comm);
                        if let Err(payload) = &res {
                            // Flight recorder: leave a doctor-ingestible
                            // corpse for the failed rank (no-op unarmed).
                            let cause = if payload.is::<DisconnectPanic>() {
                                "disconnect"
                            } else {
                                "panic"
                            };
                            mimir_obs::live::flight_dump(
                                rank,
                                n_ranks,
                                cause,
                                &panic_message(payload.as_ref()),
                            );
                        }
                        if let Some(handle) = live {
                            handle.disarm();
                        }
                        res
                    })
                    .expect("spawning rank thread")
            })
            .collect();

        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join().expect("rank thread result") {
                Ok(r) => results[rank] = Some(r),
                Err(payload) => panics.push((rank, payload)),
            }
        }
    });

    if !panics.is_empty() {
        return Err(panics);
    }

    Ok(results
        .into_iter()
        .map(|r| r.expect("rank completed without panic"))
        .collect())
}

/// [`run_world`] for fallible SPMD programs: a rank returning `Err`
/// aborts the world (like `MPI_Abort` — peers blocked on collectives are
/// torn down) and [`WorldError::Aborted`] carries the error back. With
/// multiple failing ranks, the lowest-ranked abort error is returned (the
/// others are dropped).
///
/// A rank that *panics* (instead of returning `Err`) no longer poisons the
/// caller with an opaque re-raised panic: it surfaces as
/// [`WorldError::RankPanicked`] naming the root-cause rank, with the
/// disconnect cascade on its peers folded away.
pub fn run_world_result<R, E, F>(n_ranks: usize, f: F) -> Result<Vec<R>, WorldError<E>>
where
    R: Send,
    E: Send + 'static,
    F: Fn(&mut Comm) -> Result<R, E> + Send + Sync,
{
    struct AbortPayload<E>(E);
    let wrapped = |comm: &mut Comm| match f(comm) {
        Ok(r) => r,
        // resume_unwind skips the panic hook: a rank-error abort is a
        // clean control-flow path, not a bug to report on stderr.
        Err(e) => std::panic::resume_unwind(Box::new(AbortPayload(e))),
    };
    match run_world_inner("world", n_ranks, &wrapped) {
        Ok(results) => Ok(results),
        Err(panics) => {
            // Precedence: a clean abort wins (it is always a root cause),
            // then a genuine panic, then — if every failure was a
            // disconnect cascade, which cannot happen without a root cause
            // but is handled defensively — the first observer.
            let mut first_panic: Option<(usize, String)> = None;
            let mut first_cascade: Option<(usize, String)> = None;
            for (rank, payload) in panics {
                match payload.downcast::<AbortPayload<E>>() {
                    Ok(abort) => return Err(WorldError::Aborted(abort.0)),
                    Err(payload) => {
                        let slot = if payload.is::<DisconnectPanic>() {
                            &mut first_cascade
                        } else {
                            &mut first_panic
                        };
                        if slot.is_none() {
                            *slot = Some((rank, panic_message(payload.as_ref())));
                        }
                    }
                }
            }
            let (rank, message) = first_panic
                .or(first_cascade)
                .expect("world failed with at least one panic");
            Err(WorldError::RankPanicked { rank, message })
        }
    }
}

/// [`run_world`] on an explicit [`TransportKind`]: rank threads for
/// [`TransportKind::Inproc`], forked rank processes over Unix-domain
/// sockets for [`TransportKind::Uds`]. The closure and its semantics are
/// identical on both backends; `R: Wire` is what lets a result cross the
/// process boundary.
///
/// Combine with [`TransportKind::from_env`] to let `MIMIR_TRANSPORT`
/// choose the backend at run time:
///
/// ```
/// use mimir_mpi::{run_world_on, ReduceOp, TransportKind};
///
/// let sums = run_world_on(TransportKind::from_env(), 4, |comm| {
///     comm.allreduce_u64(ReduceOp::Sum, comm.rank() as u64)
/// });
/// assert_eq!(sums, vec![6, 6, 6, 6]);
/// ```
///
/// # Panics
/// Like [`run_world`]: the root-cause rank failure is re-raised on the
/// caller's thread (for UDS as a `String` panic carrying the child's
/// panic message, with disconnect cascades and plain child deaths folded
/// away behind any genuine panic).
pub fn run_world_on<R, F>(kind: TransportKind, n_ranks: usize, f: F) -> Vec<R>
where
    R: Wire + Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    match kind {
        TransportKind::Inproc => run_world(n_ranks, f),
        TransportKind::Uds => {
            let ends = uds::run_world_uds("world", n_ranks, &UdsWorldOptions::default(), &|comm| {
                let mut bytes = Vec::new();
                f(comm).wire_write(&mut bytes);
                (false, bytes)
            });
            if let Some((rank, message)) = uds_failure(&ends) {
                panic!("rank {rank}: {message}");
            }
            ends.into_iter()
                .enumerate()
                .map(|(rank, end)| match end {
                    RankEnd::Ok(bytes) => decode_rank::<R>(rank, bytes),
                    _ => unreachable!("non-Ok rank end after failure check"),
                })
                .collect()
        }
    }
}

/// [`run_world_result`] on an explicit [`TransportKind`]. Abort and panic
/// precedence match the in-process backend: a rank's clean `Err` wins
/// (lowest rank), then a genuine panic, with disconnect cascades folded
/// away.
pub fn run_world_result_on<R, E, F>(
    kind: TransportKind,
    n_ranks: usize,
    f: F,
) -> Result<Vec<R>, WorldError<E>>
where
    R: Wire + Send,
    E: Wire + Send + 'static,
    F: Fn(&mut Comm) -> Result<R, E> + Send + Sync,
{
    match kind {
        TransportKind::Inproc => run_world_result(n_ranks, f),
        TransportKind::Uds => {
            let ends = uds::run_world_uds("world", n_ranks, &UdsWorldOptions::default(), &|comm| {
                let mut bytes = Vec::new();
                match f(comm) {
                    Ok(r) => {
                        r.wire_write(&mut bytes);
                        (false, bytes)
                    }
                    Err(e) => {
                        e.wire_write(&mut bytes);
                        (true, bytes)
                    }
                }
            });
            for end in &ends {
                if let RankEnd::Abort(bytes) = end {
                    let mut slice = &bytes[..];
                    let e = E::wire_read(&mut slice).expect("decoding abort error");
                    return Err(WorldError::Aborted(e));
                }
            }
            if let Some((rank, message)) = uds_failure(&ends) {
                return Err(WorldError::RankPanicked { rank, message });
            }
            Ok(ends
                .into_iter()
                .enumerate()
                .map(|(rank, end)| match end {
                    RankEnd::Ok(bytes) => decode_rank::<R>(rank, bytes),
                    _ => unreachable!("non-Ok rank end after failure checks"),
                })
                .collect())
        }
    }
}

/// A UDS world with explicit [`UdsWorldOptions`] — timeouts and the
/// fault-injection hooks used by the chaos tests — returning a structured
/// error instead of panicking. Rank failures surface as
/// [`WorldError::RankPanicked`] naming the root cause, with the same
/// precedence as [`run_world_on`]; a child that dies without reporting
/// (killed, fault-injected, or timed out) is folded in as a panic whose
/// message describes how it died.
pub fn run_world_uds_with<R, F>(
    n_ranks: usize,
    opts: &UdsWorldOptions,
    f: F,
) -> Result<Vec<R>, WorldError<String>>
where
    R: Wire + Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    let ends = uds::run_world_uds("world", n_ranks, opts, &|comm| {
        let mut bytes = Vec::new();
        f(comm).wire_write(&mut bytes);
        (false, bytes)
    });
    if let Some((rank, message)) = uds_failure(&ends) {
        return Err(WorldError::RankPanicked { rank, message });
    }
    Ok(ends
        .into_iter()
        .enumerate()
        .map(|(rank, end)| match end {
            RankEnd::Ok(bytes) => decode_rank::<R>(rank, bytes),
            _ => unreachable!("non-Ok rank end after failure check"),
        })
        .collect())
}

fn decode_rank<R: Wire>(rank: usize, bytes: Vec<u8>) -> R {
    let mut slice = &bytes[..];
    let v = R::wire_read(&mut slice)
        .unwrap_or_else(|| panic!("malformed result encoding from rank {rank}"));
    assert!(slice.is_empty(), "trailing result bytes from rank {rank}");
    v
}

/// Root-cause selection for a failed UDS world, mirroring the in-process
/// precedence: a genuine panic beats a silent child death, which beats
/// the disconnect cascade both of them cause on surviving ranks.
fn uds_failure(ends: &[RankEnd]) -> Option<(usize, String)> {
    let mut genuine: Option<(usize, String)> = None;
    let mut died: Option<(usize, String)> = None;
    let mut cascade: Option<(usize, String)> = None;
    for (rank, end) in ends.iter().enumerate() {
        let (slot, message) = match end {
            RankEnd::Panicked {
                message,
                disconnect: false,
            } => (&mut genuine, message),
            RankEnd::Died(message) => (&mut died, message),
            RankEnd::Panicked {
                message,
                disconnect: true,
            } => (&mut cascade, message),
            RankEnd::Ok(_) | RankEnd::Abort(_) => continue,
        };
        if slot.is_none() {
            *slot = Some((rank, message.clone()));
        }
    }
    genuine.or(died).or(cascade)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReduceOp;

    #[test]
    fn single_rank_world() {
        let out = run_world(1, |c| {
            c.barrier();
            c.rank() + c.size()
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_are_rank_indexed() {
        let out = run_world(7, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn point_to_point_ring() {
        let out = run_world(5, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, &[c.rank() as u8]);
            let got = c.recv(prev, 7);
            got[0] as usize
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn tag_matching_reorders_messages() {
        let out = run_world(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, b"first");
                c.send(1, 2, b"second");
                Vec::new()
            } else {
                // Receive in the opposite order of sending.
                let b = c.recv(0, 2);
                let a = c.recv(0, 1);
                vec![a, b]
            }
        });
        assert_eq!(out[1], vec![b"first".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn self_send_works() {
        let out = run_world(3, |c| {
            let me = c.rank();
            c.send(me, 9, &[me as u8; 4]);
            c.recv(me, 9)
        });
        assert_eq!(out[2], vec![2u8; 4]);
    }

    #[test]
    fn allreduce_all_ops() {
        for (op, expect) in [(ReduceOp::Sum, 15), (ReduceOp::Max, 5), (ReduceOp::Min, 0)] {
            let out = run_world(6, move |c| c.allreduce_u64(op, c.rank() as u64));
            assert!(out.iter().all(|&v| v == expect), "{op:?}");
        }
    }

    #[test]
    fn allreduce_land_votes() {
        let out = run_world(4, |c| c.allreduce_u64(ReduceOp::LAnd, 1));
        assert_eq!(out, vec![1; 4]);
        let out = run_world(4, |c| {
            c.allreduce_u64(ReduceOp::LAnd, u64::from(c.rank() != 2))
        });
        assert_eq!(out, vec![0; 4]);
    }

    #[test]
    fn reduce_only_root_sees_result() {
        let out = run_world(5, |c| c.reduce_u64(ReduceOp::Sum, 2));
        assert_eq!(out[0], Some(10));
        assert!(out[1..].iter().all(Option::is_none));
    }

    #[test]
    fn bcast_from_every_root() {
        for root in 0..4 {
            let out = run_world(4, move |c| {
                let data = if c.rank() == root {
                    vec![42, root as u8]
                } else {
                    Vec::new()
                };
                c.bcast(root, data)
            });
            assert!(out.iter().all(|v| v == &[42, root as u8]), "root {root}");
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_world(4, |c| c.gather(2, vec![c.rank() as u8; c.rank() + 1]));
        let gathered = out[2].as_ref().unwrap();
        assert_eq!(gathered.len(), 4);
        for (src, buf) in gathered.iter().enumerate() {
            assert_eq!(buf, &vec![src as u8; src + 1]);
        }
        assert!(out[0].is_none());
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let out = run_world(3, |c| c.allgather(vec![c.rank() as u8]));
        for per_rank in &out {
            assert_eq!(per_rank, &vec![vec![0u8], vec![1u8], vec![2u8]]);
        }
    }

    #[test]
    fn allgather_u64() {
        let out = run_world(5, |c| c.allgather_u64(c.rank() as u64 * 100));
        assert_eq!(out[3], vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn alltoallv_transposes_the_matrix() {
        let out = run_world(4, |c| {
            let me = c.rank() as u8;
            // parts[d] = [me, d] repeated (d+1) times
            let parts: Vec<Vec<u8>> = (0..c.size()).map(|d| [me, d as u8].repeat(d + 1)).collect();
            c.alltoallv(parts)
        });
        for (dst, received) in out.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                assert_eq!(buf, &[src as u8, dst as u8].repeat(dst + 1));
            }
        }
    }

    #[test]
    fn alltoallv_with_empty_partitions() {
        let out = run_world(3, |c| {
            let parts = vec![Vec::new(), Vec::new(), Vec::new()];
            c.alltoallv(parts)
        });
        assert!(out.iter().all(|r| r.iter().all(Vec::is_empty)));
    }

    #[test]
    fn repeated_collectives_do_not_cross_match() {
        let out = run_world(4, |c| {
            let mut acc = Vec::new();
            for round in 0..50u64 {
                acc.push(c.allreduce_u64(ReduceOp::Sum, round + c.rank() as u64));
                c.barrier();
            }
            acc
        });
        for per_rank in &out {
            for (round, &v) in per_rank.iter().enumerate() {
                assert_eq!(v, 4 * round as u64 + 6);
            }
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_world(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn stats_count_traffic() {
        let out = run_world(2, |c| {
            if c.rank() == 0 {
                c.send(1, 3, &[0u8; 100]);
            } else {
                let _ = c.recv(0, 3);
            }
            c.barrier();
            c.stats()
        });
        // rank 0: 100 B payload + 8 B barrier-bcast (it only receives in the
        // barrier's reduce half).
        assert_eq!(out[0].bytes_sent, 100 + 8);
        assert_eq!(out[1].bytes_recvd, 100 + 8);
        assert_eq!(out[0].collectives, 1);
    }

    #[test]
    fn messages_carry_matching_flow_stamps() {
        use mimir_obs::{EventKind, Recorder, FLOW_SEQ_BITS};
        // One shared epoch: cross-rank timestamp comparisons need it.
        let epoch = std::time::Instant::now();
        let out = run_world(2, move |c| {
            mimir_obs::install(Recorder::with_epoch(c.rank(), 1024, epoch));
            if c.rank() == 0 {
                c.send(1, 3, &[7u8; 32]);
            } else {
                let _ = c.recv(0, 3);
            }
            c.barrier();
            let r = mimir_obs::take().unwrap();
            r.events()
        });
        let sends: Vec<_> = out
            .iter()
            .flatten()
            .filter(|e| e.kind == EventKind::FlowSend)
            .collect();
        let recvs: Vec<_> = out
            .iter()
            .flatten()
            .filter(|e| e.kind == EventKind::FlowRecv)
            .collect();
        // The explicit send plus the barrier's internal hops all stamp.
        assert!(!sends.is_empty() && !recvs.is_empty());
        for r in &recvs {
            let matching: Vec<_> = sends.iter().filter(|s| s.a == r.a).collect();
            assert_eq!(matching.len(), 1, "exactly one send per received flow");
            assert!(matching[0].t_ns <= r.t_ns, "send happens before receive");
            // The source rank in the id's high bits matches the b packing.
            assert_eq!(r.a >> FLOW_SEQ_BITS, r.b >> 48);
        }
        // The user payload's edge is present with its byte count.
        assert!(sends
            .iter()
            .any(|s| s.b & 0xFFFF_FFFF_FFFF == 32 && s.b >> 48 == 1));
    }

    #[test]
    fn rank_panic_propagates_as_root_cause() {
        let res = std::panic::catch_unwind(|| {
            run_world(4, |c| {
                if c.rank() == 2 {
                    panic!("deliberate failure on rank 2");
                }
                // Other ranks block on the dead rank and must wake up.
                let _ = c.recv(2, 1);
            });
        });
        let payload = res.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("deliberate failure"), "got: {msg}");
    }

    #[test]
    fn big_world_smoke() {
        let out = run_world(64, |c| c.allreduce_u64(ReduceOp::Sum, 1));
        assert_eq!(out, vec![64; 64]);
    }

    #[test]
    fn result_world_propagates_err_as_aborted() {
        let res: Result<Vec<()>, _> = run_world_result(4, |c| {
            if c.rank() == 1 {
                Err("bad input".to_string())
            } else {
                let _ = c.recv(1, 1);
                Ok(())
            }
        });
        assert_eq!(
            res,
            Err(crate::WorldError::Aborted("bad input".to_string()))
        );
    }

    #[test]
    fn result_world_propagates_panic_as_structured_error() {
        let res: Result<Vec<()>, crate::WorldError<String>> = run_world_result(4, |c| {
            if c.rank() == 2 {
                panic!("deliberate failure on rank 2");
            }
            // Peers wedge on the dead rank; the cascade must fold away.
            let _ = c.recv(2, 1);
            Ok(())
        });
        match res {
            Err(crate::WorldError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 2);
                assert!(message.contains("deliberate failure"), "got: {message}");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn dup_gives_private_channels() {
        let out = run_world(4, |c| {
            let mut d = c.dup();
            assert_eq!(d.rank(), c.rank());
            assert_eq!(d.size(), c.size());
            assert!(d.name().starts_with("world.dup"), "name: {}", d.name());
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            // Same tag on both communicators; send order parent-first but
            // receive dup-first. Cross-matching would swap the payloads.
            c.send(next, 7, &[b'P', c.rank() as u8]);
            d.send(next, 7, &[b'D', c.rank() as u8]);
            let from_dup = d.recv(prev, 7);
            let from_parent = c.recv(prev, 7);
            (from_parent, from_dup)
        });
        for (rank, (p, d)) in out.iter().enumerate() {
            let prev = (rank + 3) % 4;
            assert_eq!(p, &[b'P', prev as u8]);
            assert_eq!(d, &[b'D', prev as u8]);
        }
    }

    #[test]
    fn dup_collectives_interleave_across_threads() {
        // Each rank hands its duplicate to a separate thread; both layers
        // run disjoint collective sequences concurrently. Any cross-match
        // between the two channel matrices would corrupt a result or hang.
        let out = run_world(4, |c| {
            let mut d = c.dup();
            let side = std::thread::spawn(move || {
                let mut acc = 0;
                for round in 0..100u64 {
                    acc += d.allreduce_u64(ReduceOp::Sum, round + d.rank() as u64);
                    d.barrier();
                }
                acc
            });
            let mut acc = 0;
            for round in 0..100u64 {
                acc += c.allreduce_u64(ReduceOp::Max, round * 2 + c.rank() as u64);
            }
            (acc, side.join().expect("dup thread"))
        });
        for (parent_acc, dup_acc) in out {
            // parent: sum over rounds of max(2r, 2r+1, 2r+2, 2r+3) = 2r+3
            assert_eq!(parent_acc, (0..100u64).map(|r| 2 * r + 3).sum::<u64>());
            // dup: sum over rounds of (4r + 0+1+2+3)
            assert_eq!(dup_acc, (0..100u64).map(|r| 4 * r + 6).sum::<u64>());
        }
    }

    #[test]
    fn split_partitions_by_color_and_orders_by_key() {
        let out = run_world(6, |c| {
            let color = (c.rank() % 2) as u64;
            // Reverse the key so new rank order is reversed parent order.
            let key = (c.size() - c.rank()) as u64;
            let sub = c.split(Some(color), key).expect("in a group");
            (sub.rank(), sub.size(), sub.name().to_string(), {
                let mut s = sub;
                s.allgather_u64(c.rank() as u64)
            })
        });
        // Even ranks {0,2,4} with reversed keys → new order [4,2,0].
        assert_eq!(out[4].0, 0);
        assert_eq!(out[2].0, 1);
        assert_eq!(out[0].0, 2);
        assert_eq!(out[0].1, 3);
        assert!(out[0].2.contains("split0.c0"), "name: {}", out[0].2);
        assert_eq!(out[0].3, vec![4, 2, 0]);
        assert_eq!(out[1].3, vec![5, 3, 1]);
    }

    #[test]
    fn split_none_gets_no_comm() {
        let out = run_world(4, |c| {
            let color = (c.rank() != 0).then_some(7u64);
            c.split(color, c.rank() as u64).map(|s| s.size())
        });
        assert_eq!(out, vec![None, Some(3), Some(3), Some(3)]);
    }

    #[test]
    fn mismatched_derivation_panics() {
        let res = std::panic::catch_unwind(|| {
            run_world(2, |c| {
                if c.rank() == 0 {
                    let _ = c.dup();
                } else {
                    let _ = c.split(Some(0), 0);
                }
            });
        });
        let payload = res.unwrap_err();
        let msg = crate::panic_message(payload.as_ref());
        assert!(
            msg.contains("collective-consistency violation"),
            "got: {msg}"
        );
    }
}
