//! Result encoding for multi-process worlds.
//!
//! With the in-process backend a rank's result moves to the caller as a
//! plain Rust value. With the UDS backend ranks are forked processes,
//! so [`crate::run_world_on`] needs each rank's result as bytes. [`Wire`]
//! is the minimal self-describing encoding that makes the same SPMD
//! closure runnable on both backends: little-endian fixed-width
//! integers, `u64` length prefixes for sequences, and a presence byte
//! for `Option`.
//!
//! Implementations exist for the primitive types, `String`, `Vec<T>`,
//! `Option<T>`, and tuples up to arity 6 — enough to carry test and
//! bench results. Downstream crates implement it for their own result
//! types (e.g. the scheduler's `JobOutcome`).

/// A value that can cross a process boundary as bytes.
///
/// `wire_read` consumes from the front of `buf` and returns `None` on
/// truncated or malformed input (decoding must never panic: the bytes
/// crossed a process boundary).
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn wire_write(&self, out: &mut Vec<u8>);
    /// Decodes one value from the front of `buf`, advancing it.
    fn wire_read(buf: &mut &[u8]) -> Option<Self>;
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Some(head)
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn wire_write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn wire_read(buf: &mut &[u8]) -> Option<Self> {
                let bytes = take(buf, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i8, i16, i32, i64, f64);

impl Wire for usize {
    fn wire_write(&self, out: &mut Vec<u8>) {
        (*self as u64).wire_write(out);
    }
    fn wire_read(buf: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::wire_read(buf)?).ok()
    }
}

impl Wire for bool {
    fn wire_write(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn wire_read(buf: &mut &[u8]) -> Option<Self> {
        match u8::wire_read(buf)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for () {
    fn wire_write(&self, _out: &mut Vec<u8>) {}
    fn wire_read(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl Wire for String {
    fn wire_write(&self, out: &mut Vec<u8>) {
        (self.len() as u64).wire_write(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn wire_read(buf: &mut &[u8]) -> Option<Self> {
        let len = usize::wire_read(buf)?;
        let bytes = take(buf, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn wire_write(&self, out: &mut Vec<u8>) {
        (self.len() as u64).wire_write(out);
        for item in self {
            item.wire_write(out);
        }
    }
    fn wire_read(buf: &mut &[u8]) -> Option<Self> {
        let len = usize::wire_read(buf)?;
        // Guard against corrupt length prefixes: never pre-reserve more
        // items than bytes remain.
        if len > buf.len() && std::mem::size_of::<T>() > 0 {
            return None;
        }
        let mut out = Vec::with_capacity(len.min(buf.len().max(1)));
        for _ in 0..len {
            out.push(T::wire_read(buf)?);
        }
        Some(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn wire_write(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.wire_write(out);
            }
        }
    }
    fn wire_read(buf: &mut &[u8]) -> Option<Self> {
        match u8::wire_read(buf)? {
            0 => Some(None),
            1 => Some(Some(T::wire_read(buf)?)),
            _ => None,
        }
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn wire_write(&self, out: &mut Vec<u8>) {
                $(self.$idx.wire_write(out);)+
            }
            fn wire_read(buf: &mut &[u8]) -> Option<Self> {
                Some(($($name::wire_read(buf)?,)+))
            }
        }
    };
}

wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl Wire for crate::CommStats {
    fn wire_write(&self, out: &mut Vec<u8>) {
        for v in self.as_array() {
            v.wire_write(out);
        }
    }
    fn wire_read(buf: &mut &[u8]) -> Option<Self> {
        let mut vals = [0u64; crate::CommStats::FIELDS];
        for v in vals.iter_mut() {
            *v = u64::wire_read(buf)?;
        }
        Some(crate::CommStats::from_array(vals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut bytes = Vec::new();
        v.wire_write(&mut bytes);
        let mut slice = &bytes[..];
        assert_eq!(T::wire_read(&mut slice), Some(v));
        assert!(slice.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-7i64);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip(());
        roundtrip(usize::MAX);
        roundtrip("héllo".to_string());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![vec![b'a'], vec![], vec![b'b', b'c']]);
        roundtrip(Some(vec![(1u64, "x".to_string())]));
        roundtrip(None::<u64>);
        roundtrip((1u8, 2u64, "three".to_string(), vec![4u32], Some(5i64), ()));
    }

    #[test]
    fn truncated_input_is_none_not_panic() {
        let mut bytes = Vec::new();
        vec![1u64, 2, 3].wire_write(&mut bytes);
        for cut in 0..bytes.len() {
            let mut slice = &bytes[..cut];
            assert_eq!(Vec::<u64>::wire_read(&mut slice), None, "cut at {cut}");
        }
        // A corrupt (huge) length prefix must not OOM the decoder.
        let mut slice: &[u8] = &u64::MAX.to_le_bytes();
        assert_eq!(Vec::<u64>::wire_read(&mut slice), None);
    }

    #[test]
    fn comm_stats_roundtrip() {
        let s = crate::CommStats {
            msgs_sent: 3,
            bytes_recvd: 999,
            wire_bytes_sent: 17,
            handshake_ns: 42,
            ..Default::default()
        };
        roundtrip(s);
    }
}
