//! Collective operations over the rank world.
//!
//! All collectives follow MPI's matching rule: every rank must call the
//! same sequence of collectives. Internally they use reserved tags and the
//! binomial-tree communication patterns of MPICH's small-message paths,
//! giving `O(log p)` depth for reductions and broadcasts. `alltoallv` is
//! the direct (pairwise-send) algorithm, which is also what MPICH uses for
//! the message sizes Mimir's 64 MB communication buffers produce.
//! `allgather` uses the Bruck dissemination algorithm (`⌈log₂ p⌉` message
//! steps per rank instead of `p − 1` payload clones).

use std::ops::Range;
use std::time::Instant;

use crate::msg::tags;
use crate::{Comm, ReduceOp};

/// An in-flight `alltoallv` round posted with [`Comm::alltoallv_post`] and
/// finished with [`Comm::alltoallv_complete`].
///
/// Holding this token between the two calls is what lets a caller overlap
/// the exchange with other work (e.g. Mimir's done-allreduce): the sends
/// are already on the wire, only the receives remain.
#[derive(Debug, Clone, Copy)]
#[must_use = "an alltoallv_post must be finished with alltoallv_complete"]
pub struct PendingAlltoallv {
    /// Bytes of this rank's own partition, already copied to the start of
    /// the receive buffer at post time.
    self_len: usize,
}

impl Comm {
    /// Blocks until every rank has entered the barrier.
    pub fn barrier(&mut self) {
        self.count_collective();
        // An allreduce of nothing is a barrier; reuse the binomial pattern
        // with a zero-byte payload via reduce+bcast on a dummy value.
        self.reduce_bcast_u64(ReduceOp::Sum, 0, tags::BARRIER);
    }

    /// Reduces `value` across all ranks with `op`; every rank receives the
    /// result.
    pub fn allreduce_u64(&mut self, op: ReduceOp, value: u64) -> u64 {
        self.count_collective();
        self.reduce_bcast_u64(op, value, tags::REDUCE)
    }

    /// Reduces `value` to rank 0; returns `Some(result)` on rank 0 and
    /// `None` elsewhere.
    pub fn reduce_u64(&mut self, op: ReduceOp, value: u64) -> Option<u64> {
        self.count_collective();
        let v = self.binomial_reduce(op, value, tags::REDUCE);
        (self.rank() == 0).then_some(v)
    }

    /// Broadcasts `data` from `root` to every rank; returns the payload on
    /// all ranks (the root gets its own buffer back).
    pub fn bcast(&mut self, root: usize, data: Vec<u8>) -> Vec<u8> {
        assert!(root < self.size(), "bcast root {root} out of range");
        self.count_collective();
        self.binomial_bcast(root, data, tags::BCAST)
    }

    /// Gathers each rank's buffer at `root`, indexed by source rank.
    /// Returns `Some(buffers)` at the root, `None` elsewhere.
    pub fn gather(&mut self, root: usize, data: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        assert!(root < self.size(), "gather root {root} out of range");
        self.count_collective();
        if self.rank() == root {
            let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.size());
            for src in 0..self.size() {
                if src == root {
                    out.push(data.clone());
                } else {
                    out.push(self.recv_internal(src, tags::GATHER));
                }
            }
            Some(out)
        } else {
            self.send_internal(root, tags::GATHER, data);
            None
        }
    }

    /// Every rank receives every rank's buffer, indexed by source rank.
    ///
    /// Bruck dissemination: `⌈log₂ p⌉` steps; at step `d` each rank ships
    /// its first `min(d, p − d)` known blocks (length-framed into one
    /// pooled message) to rank `(r − d) mod p` and learns as many from
    /// rank `(r + d) mod p`. The payload is copied once per edge it
    /// crosses instead of cloned `p − 1` times at the source.
    pub fn allgather(&mut self, data: Vec<u8>) -> Vec<Vec<u8>> {
        self.count_collective();
        let p = self.size();
        let me = self.rank();
        // blocks[i] holds the payload of rank (me + i) % p.
        let mut blocks: Vec<Vec<u8>> = Vec::with_capacity(p);
        blocks.push(data);
        let mut d = 1;
        while d < p {
            let count = d.min(p - d);
            let mut msg = self.take_buf();
            for b in &blocks[..count] {
                msg.extend_from_slice(&(b.len() as u32).to_le_bytes());
                msg.extend_from_slice(b);
            }
            self.send_internal((me + p - d) % p, tags::ALLGATHER, msg);
            let got = self.recv_internal((me + d) % p, tags::ALLGATHER);
            let mut off = 0;
            for _ in 0..count {
                let len = u32::from_le_bytes(got[off..off + 4].try_into().expect("frame header"))
                    as usize;
                off += 4;
                blocks.push(got[off..off + len].to_vec());
                off += len;
            }
            debug_assert_eq!(off, got.len(), "allgather frame exactly consumed");
            self.recycle_buf(got);
            d <<= 1;
        }
        // Un-rotate: out[src] = blocks[(src - me) mod p].
        let mut out: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
        for (i, b) in blocks.into_iter().enumerate() {
            out[(me + i) % p] = b;
        }
        out
    }

    /// Convenience allgather of one `u64` per rank.
    pub fn allgather_u64(&mut self, value: u64) -> Vec<u64> {
        self.allgather(value.to_le_bytes().to_vec())
            .into_iter()
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte allgather payload")))
            .collect()
    }

    /// The all-to-all personalized exchange at the heart of the MapReduce
    /// aggregate phase. `parts[d]` is the byte buffer destined for rank
    /// `d`; the return value holds one buffer per source rank.
    ///
    /// Ownership of `parts` moves in, so a caller that carved buffers out
    /// of its send pages pays no extra copy on the send side — matching
    /// Mimir's "map inserts directly into the send buffer" design.
    ///
    /// This is the allocating variant kept for callers that want owned
    /// buffers (and as the ablation baseline); the shuffle hot path uses
    /// [`Self::alltoallv_into`] / [`Self::alltoallv_post`] instead.
    ///
    /// # Panics
    /// Panics if `parts.len() != size()`.
    pub fn alltoallv(&mut self, mut parts: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(
            parts.len(),
            self.size(),
            "alltoallv needs exactly one buffer per rank"
        );
        self.count_collective();
        let me = self.rank();
        let mine = std::mem::take(&mut parts[me]);
        for (dst, buf) in parts.into_iter().enumerate() {
            if dst != me {
                // Every message rides a caller-allocated Vec that the
                // receiver frees — the per-message allocation the pooled
                // path exists to avoid. Count it so ablations compare.
                self.stats.send_allocs += 1;
                self.send_internal(dst, tags::ALLTOALLV, buf);
            }
        }
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == me {
                // Own partition moves straight across — no copy, no send.
                out.push(Vec::new());
            } else {
                out.push(self.recv_internal(src, tags::ALLTOALLV));
            }
        }
        out[me] = mine;
        out
    }

    /// Zero-copy `alltoallv`: sends each partition slice directly (via
    /// pooled transport buffers) and copies received data into the
    /// caller-owned `recv` buffer. Returns one `recv` sub-range per source
    /// rank (this rank's own partition lands at the front).
    ///
    /// `recv` must be large enough for the incoming total; under Mimir's
    /// partitioned-send-buffer protocol (Section III-B) every sender
    /// contributes at most one send-partition's worth, so a receive buffer
    /// of one send-buffer size always suffices — violations panic.
    ///
    /// # Panics
    /// Panics if `parts.len() != size()` or the received bytes overflow
    /// `recv`.
    pub fn alltoallv_into(&mut self, parts: &[&[u8]], recv: &mut [u8]) -> Vec<Range<usize>> {
        let mut ranges = Vec::with_capacity(parts.len());
        let pending = self.alltoallv_post(parts.iter().copied(), recv);
        self.alltoallv_complete(pending, recv, &mut ranges);
        ranges
    }

    /// Posts the send half of a zero-copy `alltoallv`: this rank's own
    /// partition is copied to the front of `recv` and every remote
    /// partition is shipped from its slice via a pooled buffer
    /// (nonblocking — the eager transport never waits on a send).
    ///
    /// The caller may do unrelated work (e.g. run another collective)
    /// before calling [`Self::alltoallv_complete`]; every rank must keep
    /// the same global call order for the matching rule to hold.
    ///
    /// # Panics
    /// Panics if `parts.len() != size()` or this rank's own partition does
    /// not fit in `recv`.
    pub fn alltoallv_post<'s>(
        &mut self,
        parts: impl ExactSizeIterator<Item = &'s [u8]>,
        recv: &mut [u8],
    ) -> PendingAlltoallv {
        assert_eq!(
            parts.len(),
            self.size(),
            "alltoallv needs exactly one buffer per rank"
        );
        self.count_collective();
        let me = self.rank();
        let mut self_len = 0;
        for (dst, part) in parts.enumerate() {
            if dst == me {
                assert!(
                    part.len() <= recv.len(),
                    "alltoallv own partition ({} B) overflows receive buffer ({} B)",
                    part.len(),
                    recv.len()
                );
                let copy_start = Instant::now();
                recv[..part.len()].copy_from_slice(part);
                self.stats.work_ns += copy_start.elapsed().as_nanos() as u64;
                self.stats.bytes_copied += part.len() as u64;
                self_len = part.len();
            } else {
                self.send_copy_pooled(dst, tags::ALLTOALLV, part);
            }
        }
        PendingAlltoallv { self_len }
    }

    /// Completes a zero-copy `alltoallv`: receives every remote partition
    /// into `recv` (after this rank's own bytes) and fills `ranges` with
    /// one `recv` sub-range per source rank. `ranges` is cleared first and
    /// reused, so a caller holding it across rounds allocates nothing.
    ///
    /// # Panics
    /// Panics if the received bytes overflow `recv` — i.e. a sender broke
    /// the Section III-B "at most one send-partition per receiver" bound.
    pub fn alltoallv_complete(
        &mut self,
        pending: PendingAlltoallv,
        recv: &mut [u8],
        ranges: &mut Vec<Range<usize>>,
    ) {
        ranges.clear();
        let me = self.rank();
        let mut off = pending.self_len;
        for src in 0..self.size() {
            if src == me {
                ranges.push(0..pending.self_len);
                continue;
            }
            let buf = self.recv_internal(src, tags::ALLTOALLV);
            let end = off + buf.len();
            assert!(
                end <= recv.len(),
                "alltoallv receive overflow: {} B from {} sources exceeds the \
                 {} B receive buffer (Section III-B bound violated)",
                end,
                src + 1,
                recv.len()
            );
            let copy_start = Instant::now();
            recv[off..end].copy_from_slice(&buf);
            self.stats.work_ns += copy_start.elapsed().as_nanos() as u64;
            self.stats.bytes_copied += buf.len() as u64;
            self.recycle_buf(buf);
            ranges.push(off..end);
            off = end;
        }
    }

    fn reduce_bcast_u64(&mut self, op: ReduceOp, value: u64, tag: u32) -> u64 {
        let reduced = self.binomial_reduce(op, value, tag);
        self.binomial_bcast_u64(0, reduced, tag)
    }

    /// Binomial-tree reduction to rank 0; only rank 0's return value is
    /// meaningful. Hops carry the value inline — no allocation.
    fn binomial_reduce(&mut self, op: ReduceOp, value: u64, tag: u32) -> u64 {
        let rank = self.rank();
        let size = self.size();
        let mut acc = value;
        let mut mask = 1usize;
        while mask < size {
            if rank & mask == 0 {
                let src = rank | mask;
                if src < size {
                    let other = self.recv_u64_internal(src, tag);
                    acc = op.apply(acc, other);
                }
            } else {
                let dst = rank & !mask;
                self.send_u64_internal(dst, tag, acc);
                break;
            }
            mask <<= 1;
        }
        acc
    }

    /// Binomial-tree broadcast of a `u64` from `root`, carried inline.
    fn binomial_bcast_u64(&mut self, root: usize, value: u64, tag: u32) -> u64 {
        let size = self.size();
        let relative = (self.rank() + size - root) % size;
        let mut mask = 1usize;
        let mut payload = value;
        while mask < size {
            if relative & mask != 0 {
                let parent = (relative - mask + root) % size;
                payload = self.recv_u64_internal(parent, tag);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if relative + mask < size {
                let child = (relative + mask + root) % size;
                self.send_u64_internal(child, tag, payload);
            }
            mask >>= 1;
        }
        payload
    }

    /// Binomial-tree broadcast from `root`.
    fn binomial_bcast(&mut self, root: usize, data: Vec<u8>, tag: u32) -> Vec<u8> {
        let size = self.size();
        let relative = (self.rank() + size - root) % size;
        let mut mask = 1usize;
        let mut payload = data;
        while mask < size {
            if relative & mask != 0 {
                let parent = (relative - mask + root) % size;
                payload = self.recv_internal(parent, tag);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if relative + mask < size {
                let child = (relative + mask + root) % size;
                self.send_internal(child, tag, payload.clone());
            }
            mask >>= 1;
        }
        payload
    }
}
