//! Collective operations over the rank world.
//!
//! All collectives follow MPI's matching rule: every rank must call the
//! same sequence of collectives. Internally they use reserved tags and the
//! binomial-tree communication patterns of MPICH's small-message paths,
//! giving `O(log p)` depth for reductions and broadcasts. `alltoallv` is
//! the direct (pairwise-send) algorithm, which is also what MPICH uses for
//! the message sizes Mimir's 64 MB communication buffers produce.

use crate::msg::tags;
use crate::{Comm, ReduceOp};

impl Comm {
    /// Blocks until every rank has entered the barrier.
    pub fn barrier(&mut self) {
        self.count_collective();
        // An allreduce of nothing is a barrier; reuse the binomial pattern
        // with a zero-byte payload via reduce+bcast on a dummy value.
        self.reduce_bcast_u64(ReduceOp::Sum, 0, tags::BARRIER);
    }

    /// Reduces `value` across all ranks with `op`; every rank receives the
    /// result.
    pub fn allreduce_u64(&mut self, op: ReduceOp, value: u64) -> u64 {
        self.count_collective();
        self.reduce_bcast_u64(op, value, tags::REDUCE)
    }

    /// Reduces `value` to rank 0; returns `Some(result)` on rank 0 and
    /// `None` elsewhere.
    pub fn reduce_u64(&mut self, op: ReduceOp, value: u64) -> Option<u64> {
        self.count_collective();
        let v = self.binomial_reduce(op, value, tags::REDUCE);
        (self.rank() == 0).then_some(v)
    }

    /// Broadcasts `data` from `root` to every rank; returns the payload on
    /// all ranks (the root gets its own buffer back).
    pub fn bcast(&mut self, root: usize, data: Vec<u8>) -> Vec<u8> {
        assert!(root < self.size(), "bcast root {root} out of range");
        self.count_collective();
        self.binomial_bcast(root, data, tags::BCAST)
    }

    /// Gathers each rank's buffer at `root`, indexed by source rank.
    /// Returns `Some(buffers)` at the root, `None` elsewhere.
    pub fn gather(&mut self, root: usize, data: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        assert!(root < self.size(), "gather root {root} out of range");
        self.count_collective();
        if self.rank() == root {
            let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.size());
            for src in 0..self.size() {
                if src == root {
                    out.push(data.clone());
                } else {
                    out.push(self.recv_internal(src, tags::GATHER));
                }
            }
            Some(out)
        } else {
            self.send_internal(root, tags::GATHER, data);
            None
        }
    }

    /// Every rank receives every rank's buffer, indexed by source rank.
    pub fn allgather(&mut self, data: Vec<u8>) -> Vec<Vec<u8>> {
        self.count_collective();
        let me = self.rank();
        for dst in 0..self.size() {
            if dst != me {
                self.send_internal(dst, tags::ALLGATHER, data.clone());
            }
        }
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == me {
                out.push(data.clone());
            } else {
                out.push(self.recv_internal(src, tags::ALLGATHER));
            }
        }
        out
    }

    /// Convenience allgather of one `u64` per rank.
    pub fn allgather_u64(&mut self, value: u64) -> Vec<u64> {
        self.allgather(value.to_le_bytes().to_vec())
            .into_iter()
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte allgather payload")))
            .collect()
    }

    /// The all-to-all personalized exchange at the heart of the MapReduce
    /// aggregate phase. `parts[d]` is the byte buffer destined for rank
    /// `d`; the return value holds one buffer per source rank.
    ///
    /// Ownership of `parts` moves in, so a caller that carved buffers out
    /// of its send pages pays no extra copy on the send side — matching
    /// Mimir's "map inserts directly into the send buffer" design.
    ///
    /// # Panics
    /// Panics if `parts.len() != size()`.
    pub fn alltoallv(&mut self, mut parts: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(
            parts.len(),
            self.size(),
            "alltoallv needs exactly one buffer per rank"
        );
        self.count_collective();
        let me = self.rank();
        let mine = std::mem::take(&mut parts[me]);
        for (dst, buf) in parts.into_iter().enumerate() {
            if dst != me {
                self.send_internal(dst, tags::ALLTOALLV, buf);
            }
        }
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == me {
                // Own partition moves straight across — no copy, no send.
                out.push(Vec::new());
            } else {
                out.push(self.recv_internal(src, tags::ALLTOALLV));
            }
        }
        out[me] = mine;
        out
    }

    fn reduce_bcast_u64(&mut self, op: ReduceOp, value: u64, tag: u32) -> u64 {
        let reduced = self.binomial_reduce(op, value, tag);
        let bytes = self.binomial_bcast(0, reduced.to_le_bytes().to_vec(), tag);
        u64::from_le_bytes(bytes.try_into().expect("8-byte reduce payload"))
    }

    /// Binomial-tree reduction to rank 0; only rank 0's return value is
    /// meaningful.
    fn binomial_reduce(&mut self, op: ReduceOp, value: u64, tag: u32) -> u64 {
        let rank = self.rank();
        let size = self.size();
        let mut acc = value;
        let mut mask = 1usize;
        while mask < size {
            if rank & mask == 0 {
                let src = rank | mask;
                if src < size {
                    let bytes = self.recv_internal(src, tag);
                    let other = u64::from_le_bytes(bytes.try_into().expect("8-byte payload"));
                    acc = op.apply(acc, other);
                }
            } else {
                let dst = rank & !mask;
                self.send_internal(dst, tag, acc.to_le_bytes().to_vec());
                break;
            }
            mask <<= 1;
        }
        acc
    }

    /// Binomial-tree broadcast from `root`.
    fn binomial_bcast(&mut self, root: usize, data: Vec<u8>, tag: u32) -> Vec<u8> {
        let size = self.size();
        let relative = (self.rank() + size - root) % size;
        let mut mask = 1usize;
        let mut payload = data;
        while mask < size {
            if relative & mask != 0 {
                let parent = (relative - mask + root) % size;
                payload = self.recv_internal(parent, tag);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if relative + mask < size {
                let child = (relative + mask + root) % size;
                self.send_internal(child, tag, payload.clone());
            }
            mask >>= 1;
        }
        payload
    }
}
