//! The in-process backend: ranks are OS threads in one address space,
//! one FIFO channel per `(src, dst)` pair, and a derived communicator
//! gets a genuinely private channel matrix by shipping fresh sender
//! halves to its peers. This is the original `mimir-mpi` data path,
//! now one implementation of [`Transport`].

use std::sync::mpsc::{self, Receiver, Sender};

use super::{Derivation, DeriveState, Endpoint, EndpointInner, Transport};
use crate::error::CommError;
use crate::msg::Msg;
use crate::CommStats;

/// Channel-matrix transport: `txs[dst]` sends to `dst`, `rxs[src]`
/// receives from `src`, both indexed in the owning communicator's rank
/// space.
pub(crate) struct InprocTransport {
    me: usize,
    txs: Vec<Sender<Msg>>,
    rxs: Vec<Receiver<Msg>>,
}

impl InprocTransport {
    pub(crate) fn new(me: usize, txs: Vec<Sender<Msg>>, rxs: Vec<Receiver<Msg>>) -> Self {
        debug_assert_eq!(txs.len(), rxs.len());
        Self { me, txs, rxs }
    }

    /// Builds the full channel matrix for a fresh world of `n` ranks,
    /// returning one transport per rank.
    pub(crate) fn make_world(n: usize) -> Vec<InprocTransport> {
        let mut txs: Vec<Vec<Sender<Msg>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut rxs: Vec<Vec<Receiver<Msg>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        for tx_row in txs.iter_mut() {
            for rx_row in rxs.iter_mut() {
                let (t, r) = mpsc::channel::<Msg>();
                tx_row.push(t);
                rx_row.push(r);
            }
        }
        txs.into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(me, (tx_row, rx_row))| InprocTransport::new(me, tx_row, rx_row))
            .collect()
    }
}

/// Derivation state: receiver halves created locally at `begin_derive`,
/// sender halves filled in (self at begin, peers via `accept_endpoint`).
#[derive(Debug)]
pub(crate) struct InprocDerive {
    txs: Vec<Option<Sender<Msg>>>,
    rxs: Vec<Receiver<Msg>>,
    my_new_rank: usize,
}

impl Transport for InprocTransport {
    fn send(&mut self, dst: usize, msg: Msg, _stats: &mut CommStats) -> Result<(), CommError> {
        self.txs[dst]
            .send(msg)
            .map_err(|_| CommError::RankDisconnected {
                observer: self.me,
                peer: dst,
            })
    }

    fn recv(&mut self, src: usize, _stats: &mut CommStats) -> Result<Msg, CommError> {
        self.rxs[src]
            .recv()
            .map_err(|_| CommError::RankDisconnected {
                observer: self.me,
                peer: src,
            })
    }

    fn recv_deadline(
        &mut self,
        src: usize,
        _stats: &mut CommStats,
        timeout: std::time::Duration,
    ) -> Result<Option<Msg>, CommError> {
        use std::sync::mpsc::RecvTimeoutError;
        match self.rxs[src].recv_timeout(timeout) {
            Ok(msg) => Ok(Some(msg)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(CommError::RankDisconnected {
                observer: self.me,
                peer: src,
            }),
        }
    }

    fn begin_derive(
        &mut self,
        _seq: u64,
        members: &[usize],
        my_new_rank: usize,
    ) -> (Derivation, Vec<Option<Endpoint>>) {
        // One fresh channel per source: keep every receiving half, hand
        // each sending half to the rank that will use it.
        let n = members.len();
        let mut txs: Vec<Option<Sender<Msg>>> = (0..n).map(|_| None).collect();
        let mut rxs = Vec::with_capacity(n);
        let mut endpoints = Vec::with_capacity(n);
        for new_rank in 0..n {
            let (t, r) = mpsc::channel::<Msg>();
            rxs.push(r);
            if new_rank == my_new_rank {
                txs[my_new_rank] = Some(t);
                endpoints.push(None);
            } else {
                endpoints.push(Some(Endpoint(EndpointInner::Chan(t))));
            }
        }
        (
            Derivation(DeriveState::Inproc(InprocDerive {
                txs,
                rxs,
                my_new_rank,
            })),
            endpoints,
        )
    }

    fn accept_endpoint(&mut self, d: &mut Derivation, from_new_rank: usize, ep: Endpoint) {
        let DeriveState::Inproc(state) = &mut d.0 else {
            unreachable!("inproc transport handed a foreign derivation");
        };
        let EndpointInner::Chan(sender) = ep.0 else {
            panic!(
                "collective-consistency violation: rank {} received a \
                 socket-namespace endpoint on the in-process backend",
                self.me
            );
        };
        debug_assert_ne!(from_new_rank, state.my_new_rank);
        state.txs[from_new_rank] = Some(sender);
    }

    fn finish_derive(&mut self, d: Derivation) -> Box<dyn Transport> {
        let DeriveState::Inproc(state) = d.0 else {
            unreachable!("inproc transport handed a foreign derivation");
        };
        let txs: Vec<Sender<Msg>> = state
            .txs
            .into_iter()
            .map(|t| t.expect("endpoint exchanged for every peer"))
            .collect();
        Box::new(InprocTransport::new(state.my_new_rank, txs, state.rxs))
    }
}
