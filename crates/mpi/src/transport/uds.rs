//! The Unix-domain-socket backend: ranks are real forked processes on
//! one machine.
//!
//! ## World bootstrap
//!
//! The parent creates a rendezvous directory and forks `n` children.
//! Child `r` binds `rank{r}.sock` in that directory, connects to every
//! lower rank (bounded wait with one retry — a peer may be slow to
//! bind under load), accepts from every higher rank under a deadline,
//! and identifies itself with a 4-byte hello frame. A peer that dies
//! mid-handshake therefore surfaces as a bounded-time error, never a
//! hang. Results travel back to the parent through per-rank files in
//! the same directory ([`crate::Wire`]-encoded), panics through marker
//! files, so the parent can classify every child's fate after `waitpid`.
//!
//! ## Framing
//!
//! One frame per message, over one socket pair per process pair:
//!
//! ```text
//! [len: u32][kind: u8][comm: u64][tag: u32][flow: u64][payload: len bytes]
//! ```
//!
//! `kind` distinguishes heap payloads from inline `u64`s (which never
//! allocate on either side) and from derivation endpoints. `comm`
//! multiplexes every communicator derived via `dup`/`split` over the
//! same connections: a reader thread routes each frame to the
//! `(comm, src)` inbox, so a derived communicator is a private message
//! namespace without new sockets. The `flow` stamp rides along, which
//! is what keeps causal tracing exact across process boundaries.
//!
//! ## Threads and the zero-copy discipline
//!
//! Per peer, one writer thread (drains a queue of frames; the rank
//! thread never blocks on a socket — sends stay eager) and one reader
//! thread (fills pooled buffers straight off the socket; pool misses
//! are counted in `wire_recv_allocs`). Heap payloads make exactly one
//! user-space copy on each side of the wire: rank memory → socket,
//! socket → pooled buffer. Sent buffers are recycled into the reader
//! pool, closing the same buffer economy the in-process backend gets
//! from shipping `Vec`s by ownership.

use std::time::Duration;

/// Where a fault-injected rank exits, for chaos tests
/// ([`UdsWorldOptions::fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// The rank dies before binding its socket: peers see connect
    /// failures and accept timeouts.
    BeforeListen,
    /// The rank dies after binding but before serving: lower ranks'
    /// connects land in a backlog that is never drained and die with
    /// the socket; higher ranks time out accepting.
    AfterListen,
}

/// A deliberately killed rank, for chaos tests: rank `rank` calls
/// `exit` at [`FaultPoint`] `at` instead of participating.
#[derive(Debug, Clone, Copy)]
pub struct UdsFault {
    pub rank: usize,
    pub at: FaultPoint,
}

/// Tunables for a UDS world ([`crate::run_world_uds_with`]).
#[derive(Debug, Clone)]
pub struct UdsWorldOptions {
    /// Per-attempt handshake window: a connect retries within this long
    /// (then once more — one full retry window), and the accept side
    /// waits two windows, matching the connect side's total bound.
    pub connect_window: Duration,
    /// Parent-side watchdog: children still running after this long are
    /// killed and reported as timed out.
    pub world_timeout: Duration,
    /// Chaos hook: kill one rank at a chosen point.
    pub fault: Option<UdsFault>,
}

impl Default for UdsWorldOptions {
    fn default() -> Self {
        UdsWorldOptions {
            connect_window: Duration::from_secs(10),
            world_timeout: Duration::from_secs(120),
            fault: None,
        }
    }
}

/// How one rank of a UDS world ended, as classified by the parent from
/// the child's exit status plus its result/panic files.
#[derive(Debug)]
pub(crate) enum RankEnd {
    /// Clean completion; the rank's `Wire`-encoded result.
    Ok(Vec<u8>),
    /// The rank's closure reported a clean abort (`run_world_result_on`
    /// with `Err`); the encoded error.
    Abort(Vec<u8>),
    /// The rank panicked; `disconnect` marks a disconnect-cascade panic
    /// (including handshake timeouts), folded away behind root causes.
    Panicked { message: String, disconnect: bool },
    /// The process died without reporting: killed, fault-injected, or
    /// timed out.
    Died(String),
}

#[cfg(unix)]
pub(crate) use imp::{run_world_uds, UdsDerive};

#[cfg(unix)]
mod imp {
    use std::collections::{HashMap, VecDeque};
    use std::io::{Read, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::panic::AssertUnwindSafe;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::mpsc::{self, Receiver, Sender};
    use std::sync::{Arc, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    use super::{FaultPoint, RankEnd, UdsWorldOptions};
    use crate::comm::Comm;
    use crate::error::{is_disconnect_panic, panic_message};
    use crate::msg::{Msg, Payload, Tag};
    use crate::transport::{Derivation, DeriveState, Endpoint, EndpointInner, Transport};
    use crate::CommError;
    use crate::CommStats;

    /// Frame header: `[len u32][kind u8][comm u64][tag u32][flow u64]`.
    const HEADER: usize = 25;
    const KIND_HEAP: u8 = 0;
    const KIND_SMALL: u8 = 1;
    const KIND_ENDPOINT: u8 = 2;

    /// Cap on the process-wide pool of idle receive buffers.
    const PROC_POOL_CAP: usize = 256;

    /// Exit code of a fault-injected rank (distinguishable from a panic's
    /// 101 in `Died` messages).
    const FAULT_EXIT: i32 = 86;

    /// The world communicator's id. Derived ids can never collide with it
    /// (`derive_id` never returns 0).
    const WORLD_COMM: u64 = 0;

    /// Minimal process-control FFI (libc symbols; no crate dependency).
    /// glibc's `fork` — not a raw syscall — so pthread_atfork handlers run
    /// and the child's allocator state is consistent even when the parent
    /// is mid-allocation on another thread (the `cargo test` harness is
    /// multi-threaded).
    mod sys {
        extern "C" {
            pub fn fork() -> i32;
            pub fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
            pub fn kill(pid: i32, sig: i32) -> i32;
        }
        pub const WNOHANG: i32 = 1;
        pub const SIGKILL: i32 = 9;
    }

    fn encode_header(hdr: &mut [u8; HEADER], len: u32, kind: u8, comm: u64, tag: Tag, flow: u64) {
        hdr[0..4].copy_from_slice(&len.to_le_bytes());
        hdr[4] = kind;
        hdr[5..13].copy_from_slice(&comm.to_le_bytes());
        hdr[13..17].copy_from_slice(&tag.to_le_bytes());
        hdr[17..25].copy_from_slice(&flow.to_le_bytes());
    }

    fn decode_header(hdr: &[u8; HEADER]) -> (u32, u8, u64, Tag, u64) {
        (
            u32::from_le_bytes(hdr[0..4].try_into().expect("len bytes")),
            hdr[4],
            u64::from_le_bytes(hdr[5..13].try_into().expect("comm bytes")),
            Tag::from_le_bytes(hdr[13..17].try_into().expect("tag bytes")),
            u64::from_le_bytes(hdr[17..25].try_into().expect("flow bytes")),
        )
    }

    /// splitmix64 finalizer: the mixing step of `derive_id`.
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Deterministic id for a derived communicator, computed
    /// independently by every member from collectively-agreed inputs
    /// (parent id, derivation sequence, membership in world ranks).
    /// Equality of the shipped ids is asserted at `accept_endpoint` —
    /// the socket backend's collective-consistency proof.
    fn derive_id(parent: u64, seq: u64, members_world: &[usize]) -> u64 {
        let mut h = mix(parent ^ mix(seq.wrapping_add(0x9e37_79b9_7f4a_7c15)));
        for &m in members_world {
            h = mix(h ^ (m as u64 + 1));
        }
        h.max(1)
    }

    enum WriteCmd {
        Frame {
            comm: u64,
            msg: Msg,
        },
        /// Flush barrier at world teardown: acked once every frame queued
        /// before it has hit the socket, so a cleanly-exiting rank never
        /// loses sent messages.
        Shutdown(Sender<()>),
    }

    struct Peer {
        out_tx: Sender<WriteCmd>,
        /// Set by the reader on EOF/error and by the writer on a failed
        /// write; sends to a dead peer fail fast with a disconnect.
        dead: AtomicBool,
    }

    #[derive(Default)]
    struct Router {
        /// `(comm, world_src)` → inbox of the owning communicator.
        inboxes: HashMap<(u64, usize), Sender<Msg>>,
        /// Frames that arrived before their communicator registered
        /// (a peer can finish a derivation and send before we install
        /// the inbox only in adversarial interleavings, but correctness
        /// must not depend on timing).
        stash: HashMap<(u64, usize), VecDeque<Msg>>,
        /// World ranks whose connection is gone. Registration against a
        /// dead source yields an already-closed inbox: stashed frames
        /// drain first, then the receiver observes the disconnect —
        /// exactly the in-process channel semantics.
        dead: Vec<bool>,
    }

    /// Per-process connection state, shared by every communicator and
    /// I/O thread in one rank process.
    struct Shared {
        peers: Vec<Option<Peer>>,
        router: Mutex<Router>,
        /// Idle receive buffers, filled by readers, returned by writers
        /// after a send — the cross-process analogue of shipping `Vec`
        /// ownership on the in-process backend.
        pool: Mutex<Vec<Vec<u8>>>,
        pool_misses: AtomicU64,
        handshake_ns: u64,
    }

    impl Shared {
        fn lock_router(&self) -> MutexGuard<'_, Router> {
            self.router.lock().unwrap_or_else(|p| p.into_inner())
        }

        fn route(&self, comm: u64, src: usize, msg: Msg) {
            let mut router = self.lock_router();
            if let Some(tx) = router.inboxes.get(&(comm, src)) {
                // A failed send means the communicator was dropped after
                // registering; late frames for it are discarded.
                let _ = tx.send(msg);
            } else {
                router.stash.entry((comm, src)).or_default().push_back(msg);
            }
        }

        fn register(&self, comm: u64, src: usize) -> Receiver<Msg> {
            let (tx, rx) = mpsc::channel();
            let mut router = self.lock_router();
            if let Some(stash) = router.stash.remove(&(comm, src)) {
                for m in stash {
                    let _ = tx.send(m);
                }
            }
            if !router.dead[src] {
                router.inboxes.insert((comm, src), tx);
            }
            rx
        }

        fn mark_dead(&self, world: usize) {
            if let Some(p) = &self.peers[world] {
                p.dead.store(true, Ordering::Relaxed);
            }
            let mut router = self.lock_router();
            router.dead[world] = true;
            // Dropping the inbox senders wakes every receiver blocked on
            // this source (after any already-routed frames), turning the
            // socket EOF into the same disconnect cascade the in-process
            // backend gets from dropped channel endpoints.
            router.inboxes.retain(|&(_, src), _| src != world);
        }

        fn take_recv_buf(&self, len: usize) -> Vec<u8> {
            let buf = self
                .pool
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop()
                .unwrap_or_default();
            if buf.capacity() < len {
                self.pool_misses.fetch_add(1, Ordering::Relaxed);
            }
            buf
        }

        fn recycle(&self, mut buf: Vec<u8>) {
            if buf.capacity() == 0 {
                return;
            }
            let mut pool = self.pool.lock().unwrap_or_else(|p| p.into_inner());
            if pool.len() < PROC_POOL_CAP {
                buf.clear();
                pool.push(buf);
            }
        }
    }

    fn writer_loop(
        shared: Arc<Shared>,
        world_peer: usize,
        mut stream: UnixStream,
        rx: Receiver<WriteCmd>,
    ) {
        let mut hdr = [0u8; HEADER];
        while let Ok(cmd) = rx.recv() {
            let (comm, msg) = match cmd {
                WriteCmd::Shutdown(ack) => {
                    let _ = ack.send(());
                    break;
                }
                WriteCmd::Frame { comm, msg } => (comm, msg),
            };
            let ok = match msg.data {
                Payload::Heap(buf) => {
                    assert!(buf.len() <= u32::MAX as usize, "frame payload over 4 GiB");
                    encode_header(
                        &mut hdr,
                        buf.len() as u32,
                        KIND_HEAP,
                        comm,
                        msg.tag,
                        msg.flow,
                    );
                    let res = stream.write_all(&hdr).and_then(|_| stream.write_all(&buf));
                    if res.is_ok() {
                        shared.recycle(buf);
                    }
                    res.is_ok()
                }
                Payload::Small(v) => {
                    let mut frame = [0u8; HEADER + 8];
                    let (head, tail) = frame.split_at_mut(HEADER);
                    encode_header(
                        head.try_into().expect("header slice"),
                        8,
                        KIND_SMALL,
                        comm,
                        msg.tag,
                        msg.flow,
                    );
                    tail.copy_from_slice(&v.to_le_bytes());
                    stream.write_all(&frame).is_ok()
                }
                Payload::Endpoint(ep) => match ep.0 {
                    EndpointInner::Tagged { comm: child } => {
                        let mut frame = [0u8; HEADER + 8];
                        let (head, tail) = frame.split_at_mut(HEADER);
                        encode_header(
                            head.try_into().expect("header slice"),
                            8,
                            KIND_ENDPOINT,
                            comm,
                            msg.tag,
                            msg.flow,
                        );
                        tail.copy_from_slice(&child.to_le_bytes());
                        stream.write_all(&frame).is_ok()
                    }
                    EndpointInner::Chan(_) => {
                        unreachable!("in-process channel endpoint on the socket backend")
                    }
                },
            };
            if !ok {
                shared.mark_dead(world_peer);
                break;
            }
        }
    }

    fn reader_loop(shared: Arc<Shared>, world_peer: usize, mut stream: UnixStream) {
        let mut hdr = [0u8; HEADER];
        loop {
            if stream.read_exact(&mut hdr).is_err() {
                break;
            }
            let (len, kind, comm, tag, flow) = decode_header(&hdr);
            let data = match kind {
                KIND_SMALL => {
                    let mut b = [0u8; 8];
                    if len != 8 || stream.read_exact(&mut b).is_err() {
                        break;
                    }
                    Payload::Small(u64::from_le_bytes(b))
                }
                KIND_ENDPOINT => {
                    let mut b = [0u8; 8];
                    if len != 8 || stream.read_exact(&mut b).is_err() {
                        break;
                    }
                    Payload::Endpoint(Endpoint(EndpointInner::Tagged {
                        comm: u64::from_le_bytes(b),
                    }))
                }
                KIND_HEAP => {
                    let mut buf = shared.take_recv_buf(len as usize);
                    buf.resize(len as usize, 0);
                    if stream.read_exact(&mut buf).is_err() {
                        break;
                    }
                    Payload::Heap(buf)
                }
                _ => break, // protocol corruption: treat as disconnect
            };
            shared.route(comm, world_peer, Msg { tag, data, flow });
        }
        shared.mark_dead(world_peer);
    }

    /// The socket transport for one communicator: peers are reached
    /// through the process-wide connections, namespaced by `comm` id.
    pub(crate) struct UdsTransport {
        comm: u64,
        /// This rank in the communicator's rank space.
        my_rank: usize,
        /// Communicator rank → world rank.
        members: Vec<usize>,
        shared: Arc<Shared>,
        /// Self-sends bypass the wire entirely.
        loop_tx: Sender<Msg>,
        /// Communicator rank → inbox (the loopback receiver at
        /// `my_rank`).
        rxs: Vec<Receiver<Msg>>,
        /// World communicators report the process-level extras
        /// (handshake time, reader-pool misses) exactly once.
        is_world: bool,
    }

    impl UdsTransport {
        fn for_comm(
            comm: u64,
            my_rank: usize,
            members: Vec<usize>,
            shared: Arc<Shared>,
            is_world: bool,
        ) -> UdsTransport {
            let (loop_tx, loop_rx) = mpsc::channel();
            let mut loop_rx = Some(loop_rx);
            let rxs: Vec<Receiver<Msg>> = members
                .iter()
                .enumerate()
                .map(|(new_rank, &w)| {
                    if new_rank == my_rank {
                        loop_rx.take().expect("exactly one self slot")
                    } else {
                        shared.register(comm, w)
                    }
                })
                .collect();
            UdsTransport {
                comm,
                my_rank,
                members,
                shared,
                loop_tx,
                rxs,
                is_world,
            }
        }

        fn disconnect(&self, peer: usize) -> CommError {
            CommError::RankDisconnected {
                observer: self.my_rank,
                peer,
            }
        }
    }

    impl Drop for UdsTransport {
        fn drop(&mut self) {
            // Unregister this communicator's routes; frames arriving
            // afterwards are discarded by `route`.
            let comm = self.comm;
            let mut router = self.shared.lock_router();
            router.inboxes.retain(|&(c, _), _| c != comm);
            router.stash.retain(|&(c, _), _| c != comm);
        }
    }

    impl Transport for UdsTransport {
        fn send(&mut self, dst: usize, msg: Msg, stats: &mut CommStats) -> Result<(), CommError> {
            if dst == self.my_rank {
                return self.loop_tx.send(msg).map_err(|_| self.disconnect(dst));
            }
            let world_dst = self.members[dst];
            let peer = self.shared.peers[world_dst]
                .as_ref()
                .expect("non-self comm rank maps to a peer connection");
            if peer.dead.load(Ordering::Relaxed) {
                return Err(self.disconnect(dst));
            }
            stats.wire_frames_sent += 1;
            stats.wire_bytes_sent += (HEADER + msg.data.len()) as u64;
            peer.out_tx
                .send(WriteCmd::Frame {
                    comm: self.comm,
                    msg,
                })
                .map_err(|_| self.disconnect(dst))
        }

        fn recv(&mut self, src: usize, stats: &mut CommStats) -> Result<Msg, CommError> {
            match self.rxs[src].recv() {
                Ok(msg) => {
                    if src != self.my_rank {
                        stats.wire_frames_recvd += 1;
                        stats.wire_bytes_recvd += (HEADER + msg.data.len()) as u64;
                    }
                    Ok(msg)
                }
                Err(_) => Err(self.disconnect(src)),
            }
        }

        fn recv_deadline(
            &mut self,
            src: usize,
            stats: &mut CommStats,
            timeout: std::time::Duration,
        ) -> Result<Option<Msg>, CommError> {
            use std::sync::mpsc::RecvTimeoutError;
            match self.rxs[src].recv_timeout(timeout) {
                Ok(msg) => {
                    if src != self.my_rank {
                        stats.wire_frames_recvd += 1;
                        stats.wire_bytes_recvd += (HEADER + msg.data.len()) as u64;
                    }
                    Ok(Some(msg))
                }
                Err(RecvTimeoutError::Timeout) => Ok(None),
                Err(RecvTimeoutError::Disconnected) => Err(self.disconnect(src)),
            }
        }

        fn begin_derive(
            &mut self,
            seq: u64,
            members: &[usize],
            my_new_rank: usize,
        ) -> (Derivation, Vec<Option<Endpoint>>) {
            let members_world: Vec<usize> = members.iter().map(|&m| self.members[m]).collect();
            let child = derive_id(self.comm, seq, &members_world);
            let endpoints = (0..members.len())
                .map(|new_rank| {
                    (new_rank != my_new_rank)
                        .then_some(Endpoint(EndpointInner::Tagged { comm: child }))
                })
                .collect();
            (
                Derivation(DeriveState::Uds(UdsDerive {
                    comm: child,
                    members_world,
                    my_new_rank,
                })),
                endpoints,
            )
        }

        fn accept_endpoint(&mut self, d: &mut Derivation, from_new_rank: usize, ep: Endpoint) {
            let DeriveState::Uds(state) = &mut d.0 else {
                unreachable!("uds transport handed a foreign derivation");
            };
            let EndpointInner::Tagged { comm: got } = ep.0 else {
                panic!(
                    "collective-consistency violation: rank {} received an \
                     in-process channel endpoint on the socket backend",
                    self.my_rank
                );
            };
            assert!(
                got == state.comm,
                "collective-consistency violation: rank {} computed derived \
                 comm id {:#x} but rank {from_new_rank} shipped {got:#x} \
                 (diverged membership or derivation inputs)",
                self.my_rank,
                state.comm,
            );
        }

        fn finish_derive(&mut self, d: Derivation) -> Box<dyn Transport> {
            let DeriveState::Uds(state) = d.0 else {
                unreachable!("uds transport handed a foreign derivation");
            };
            Box::new(UdsTransport::for_comm(
                state.comm,
                state.my_new_rank,
                state.members_world,
                Arc::clone(&self.shared),
                false,
            ))
        }

        fn extra_stats(&self) -> CommStats {
            if !self.is_world {
                return CommStats::default();
            }
            CommStats {
                handshake_ns: self.shared.handshake_ns,
                wire_recv_allocs: self.shared.pool_misses.load(Ordering::Relaxed),
                ..CommStats::default()
            }
        }
    }

    /// Derivation state for the socket backend: the deterministic child
    /// id plus the membership, carried between `begin_derive` and
    /// `finish_derive`. (The inboxes are registered lazily in
    /// `finish_derive`; the router stash covers any frame racing ahead.)
    #[derive(Debug)]
    pub(crate) struct UdsDerive {
        comm: u64,
        members_world: Vec<usize>,
        my_new_rank: usize,
    }

    /// Owner of the per-peer writer threads; `shutdown` is the flush
    /// barrier that makes "exited cleanly" imply "every sent frame was
    /// delivered to the kernel".
    struct WorldGuard {
        shared: Arc<Shared>,
        writers: Vec<(usize, std::thread::JoinHandle<()>)>,
    }

    impl WorldGuard {
        fn shutdown(self) {
            let mut acks: Vec<(usize, Receiver<()>)> = Vec::new();
            for (w, _) in &self.writers {
                if let Some(p) = &self.shared.peers[*w] {
                    let (tx, rx) = mpsc::channel();
                    if p.out_tx.send(WriteCmd::Shutdown(tx)).is_ok() {
                        acks.push((*w, rx));
                    }
                }
            }
            let mut acked = vec![false; self.shared.peers.len()];
            for (w, rx) in acks {
                if rx.recv_timeout(Duration::from_secs(10)).is_ok() {
                    acked[w] = true;
                }
            }
            for (w, handle) in self.writers {
                // A writer that never acked is wedged on a dead peer's
                // socket; leak it (the process is about to exit) rather
                // than hang the flush.
                if acked[w] {
                    let _ = handle.join();
                }
            }
        }
    }

    fn sock_path(dir: &Path, rank: usize) -> PathBuf {
        dir.join(format!("rank{rank}.sock"))
    }

    fn connect_with_retry(
        path: &Path,
        window: Duration,
        me: usize,
        peer: usize,
    ) -> Result<UnixStream, String> {
        let mut last_err = String::from("never attempted");
        // One bounded attempt window plus one full retry window: a slow
        // peer gets 2×window total before we declare it disconnected.
        for _attempt in 0..2 {
            let deadline = Instant::now() + window;
            loop {
                match UnixStream::connect(path) {
                    Ok(s) => return Ok(s),
                    Err(e) => {
                        last_err = e.to_string();
                        if Instant::now() >= deadline {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        Err(format!(
            "rank {me}: handshake with rank {peer} failed after retry \
             ({:?} per attempt): {last_err}",
            window
        ))
    }

    /// Builds this rank's connection set, threads, and world transport.
    /// Errors are handshake failures (peer died or timed out) and must
    /// surface as bounded-time disconnects, never hangs.
    fn bootstrap(
        rank: usize,
        n: usize,
        dir: &Path,
        opts: &UdsWorldOptions,
    ) -> Result<(UdsTransport, WorldGuard), String> {
        let t0 = Instant::now();
        let listener = UnixListener::bind(sock_path(dir, rank))
            .map_err(|e| format!("rank {rank}: binding rendezvous socket: {e}"))?;
        if let Some(fault) = &opts.fault {
            if fault.rank == rank && fault.at == FaultPoint::AfterListen {
                std::process::exit(FAULT_EXIT);
            }
        }
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("rank {rank}: nonblocking listener: {e}"))?;

        let mut streams: Vec<Option<UnixStream>> = (0..n).map(|_| None).collect();
        // Connect to every lower rank, announcing our rank in a hello
        // frame so the acceptor can index us.
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let mut s = connect_with_retry(&sock_path(dir, peer), opts.connect_window, rank, peer)?;
            s.write_all(&(rank as u32).to_le_bytes())
                .map_err(|e| format!("rank {rank}: hello to rank {peer}: {e}"))?;
            *slot = Some(s);
        }
        // Accept from every higher rank under a deadline matching the
        // connect side's total bound (window + one retry window).
        let need = n - rank - 1;
        let deadline = Instant::now() + opts.connect_window * 2;
        let mut got = 0;
        while got < need {
            match listener.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)
                        .map_err(|e| format!("rank {rank}: accepted socket: {e}"))?;
                    s.set_read_timeout(Some(opts.connect_window))
                        .map_err(|e| format!("rank {rank}: hello timeout: {e}"))?;
                    let mut hello = [0u8; 4];
                    (&s).read_exact(&mut hello)
                        .map_err(|e| format!("rank {rank}: reading hello: {e}"))?;
                    let peer = u32::from_le_bytes(hello) as usize;
                    if peer <= rank || peer >= n || streams[peer].is_some() {
                        return Err(format!("rank {rank}: bogus hello from rank {peer}"));
                    }
                    s.set_read_timeout(None)
                        .map_err(|e| format!("rank {rank}: clearing hello timeout: {e}"))?;
                    streams[peer] = Some(s);
                    got += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "rank {rank}: handshake timed out waiting for {} \
                             peer connection(s)",
                            need - got
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(format!("rank {rank}: accepting peer: {e}")),
            }
        }

        // Connections complete: build the shared state, then the I/O
        // threads, then the world transport (inboxes registered before
        // readers start is not required — the stash covers the gap —
        // but peers/router must exist before any thread runs).
        let mut out_rxs: Vec<Option<Receiver<WriteCmd>>> = (0..n).map(|_| None).collect();
        let peers: Vec<Option<Peer>> = (0..n)
            .map(|w| {
                streams[w].as_ref()?;
                let (tx, rx) = mpsc::channel();
                out_rxs[w] = Some(rx);
                Some(Peer {
                    out_tx: tx,
                    dead: AtomicBool::new(false),
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            peers,
            router: Mutex::new(Router {
                dead: vec![false; n],
                ..Router::default()
            }),
            pool: Mutex::new(Vec::new()),
            pool_misses: AtomicU64::new(0),
            handshake_ns: t0.elapsed().as_nanos() as u64,
        });
        let mut writers = Vec::new();
        for (w, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            let reader = stream
                .try_clone()
                .map_err(|e| format!("rank {rank}: cloning socket for rank {w}: {e}"))?;
            let out_rx = out_rxs[w].take().expect("writer queue for connected peer");
            let shared_w = Arc::clone(&shared);
            let writer = std::thread::Builder::new()
                .name(format!("uds-w{rank}-{w}"))
                .spawn(move || writer_loop(shared_w, w, stream, out_rx))
                .map_err(|e| format!("rank {rank}: spawning writer: {e}"))?;
            writers.push((w, writer));
            let shared_r = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("uds-r{rank}-{w}"))
                .spawn(move || reader_loop(shared_r, w, reader))
                .map_err(|e| format!("rank {rank}: spawning reader: {e}"))?;
        }
        let transport = UdsTransport::for_comm(
            WORLD_COMM,
            rank,
            (0..n).collect(),
            Arc::clone(&shared),
            true,
        );
        Ok((transport, WorldGuard { shared, writers }))
    }

    /// Removes the rendezvous directory when the parent is done.
    struct DirGuard(PathBuf);
    impl Drop for DirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Worlds started by this process, for unique rendezvous paths.
    static WORLD_SEQ: AtomicU64 = AtomicU64::new(0);

    fn rendezvous_dir() -> PathBuf {
        let mut base = std::env::temp_dir();
        // sun_path caps socket paths around 108 bytes; fall back to /tmp
        // when TMPDIR is somewhere deep.
        if base.as_os_str().len() > 64 {
            base = PathBuf::from("/tmp");
        }
        base.join(format!(
            "mimir-uds-{}-{}",
            std::process::id(),
            WORLD_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn write_file(dir: &Path, tmp_name: String, final_name: String, bytes: &[u8]) {
        let tmp = dir.join(tmp_name);
        let fin = dir.join(final_name);
        if std::fs::write(&tmp, bytes).is_ok() {
            let _ = std::fs::rename(&tmp, &fin);
        }
    }

    fn write_result(dir: &Path, rank: usize, abort: bool, bytes: &[u8]) {
        let mut out = Vec::with_capacity(bytes.len() + 1);
        out.push(u8::from(abort));
        out.extend_from_slice(bytes);
        write_file(
            dir,
            format!(".result{rank}.tmp"),
            format!("result{rank}.bin"),
            &out,
        );
    }

    fn write_panic(dir: &Path, rank: usize, disconnect: bool, message: &str) {
        let mut out = Vec::with_capacity(message.len() + 1);
        out.push(u8::from(disconnect));
        out.extend_from_slice(message.as_bytes());
        write_file(
            dir,
            format!(".panic{rank}.tmp"),
            format!("panic{rank}.txt"),
            &out,
        );
    }

    fn child_main<F>(
        rank: usize,
        n: usize,
        name: &str,
        dir: &Path,
        opts: &UdsWorldOptions,
        body: &F,
    ) -> !
    where
        F: Fn(&mut Comm) -> (bool, Vec<u8>),
    {
        // Arm the live telemetry plane before bootstrap (no-op unless
        // configured). `process_scoped` installs the SIGTERM flight
        // recorder: a forked rank killed mid-run still leaves a corpse.
        // Comm::new below runs on this thread after arming, so the comm
        // picks the accumulator up from the thread-local.
        let live = mimir_obs::live::arm(rank, n, true);
        // The guard escapes the catch so queued frames flush on every
        // exit path that got past the handshake — on a panic, peers
        // still receive everything sent before it, matching in-process
        // channel semantics where sent messages stay deliverable.
        let guard_slot: Mutex<Option<WorldGuard>> = Mutex::new(None);
        let outcome =
            std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<(bool, Vec<u8>), String> {
                if let Some(fault) = &opts.fault {
                    if fault.rank == rank && fault.at == FaultPoint::BeforeListen {
                        std::process::exit(FAULT_EXIT);
                    }
                }
                let (transport, guard) = bootstrap(rank, n, dir, opts)?;
                *guard_slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(guard);
                let mut comm = Comm::new(name.to_string(), rank, n, Box::new(transport));
                let out = body(&mut comm);
                drop(comm);
                Ok(out)
            }));
        if let Some(g) = guard_slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
            g.shutdown();
        }
        let code = match outcome {
            Ok(Ok((abort, bytes))) => {
                write_result(dir, rank, abort, &bytes);
                if abort {
                    mimir_obs::live::flight_dump(rank, n, "abort", "rank returned an error");
                }
                0
            }
            Ok(Err(handshake)) => {
                // Handshake failures are disconnect-class: the peer died
                // or stalled; fold behind genuine root causes.
                write_panic(dir, rank, true, &handshake);
                mimir_obs::live::flight_dump(rank, n, "disconnect", &handshake);
                101
            }
            Err(payload) => {
                let disconnect = is_disconnect_panic(payload.as_ref());
                let message = panic_message(payload.as_ref());
                write_panic(dir, rank, disconnect, &message);
                mimir_obs::live::flight_dump(
                    rank,
                    n,
                    if disconnect { "disconnect" } else { "panic" },
                    &message,
                );
                101
            }
        };
        if let Some(handle) = live {
            handle.disarm();
        }
        std::process::exit(code)
    }

    #[derive(Clone, Copy)]
    enum ChildStatus {
        Exited(i32),
        Signaled(i32),
        TimedOut,
        Lost,
    }

    fn classify(dir: &Path, rank: usize, status: ChildStatus) -> RankEnd {
        if let Ok(bytes) = std::fs::read(dir.join(format!("result{rank}.bin"))) {
            if !bytes.is_empty() {
                let payload = bytes[1..].to_vec();
                return if bytes[0] == 0 {
                    RankEnd::Ok(payload)
                } else {
                    RankEnd::Abort(payload)
                };
            }
        }
        if let Ok(bytes) = std::fs::read(dir.join(format!("panic{rank}.txt"))) {
            if !bytes.is_empty() {
                return RankEnd::Panicked {
                    disconnect: bytes[0] != 0,
                    message: String::from_utf8_lossy(&bytes[1..]).into_owned(),
                };
            }
        }
        RankEnd::Died(match status {
            ChildStatus::Exited(code) => {
                format!("rank process exited with code {code} before reporting a result")
            }
            ChildStatus::Signaled(sig) => {
                format!("rank process killed by signal {sig} before reporting a result")
            }
            ChildStatus::TimedOut => {
                "rank process exceeded the world timeout and was killed".to_string()
            }
            ChildStatus::Lost => "rank process lost by waitpid".to_string(),
        })
    }

    /// Forks `n` rank processes, runs `body` in each over a bootstrapped
    /// socket world, and returns every rank's fate. The parent never
    /// hangs: the handshake is bounded on the children's side and the
    /// world timeout bounds everything else.
    pub(crate) fn run_world_uds<F>(
        name: &str,
        n: usize,
        opts: &UdsWorldOptions,
        body: &F,
    ) -> Vec<RankEnd>
    where
        F: Fn(&mut Comm) -> (bool, Vec<u8>),
    {
        assert!(n > 0, "world needs at least one rank");
        let dir = rendezvous_dir();
        std::fs::create_dir_all(&dir).expect("creating rendezvous directory");
        let guard = DirGuard(dir.clone());

        let mut pids: Vec<i32> = Vec::with_capacity(n);
        for rank in 0..n {
            match unsafe { sys::fork() } {
                -1 => {
                    for &pid in &pids {
                        unsafe {
                            sys::kill(pid, sys::SIGKILL);
                            let mut st = 0;
                            sys::waitpid(pid, &mut st, 0);
                        }
                    }
                    panic!("fork failed spawning rank {rank}");
                }
                0 => child_main(rank, n, name, &dir, opts, body),
                pid => pids.push(pid),
            }
        }

        let deadline = Instant::now() + opts.world_timeout;
        let mut statuses: Vec<Option<ChildStatus>> = (0..n).map(|_| None).collect();
        loop {
            let mut pending = false;
            let mut progressed = false;
            for (r, &pid) in pids.iter().enumerate() {
                if statuses[r].is_some() {
                    continue;
                }
                let mut st: i32 = 0;
                let got = unsafe { sys::waitpid(pid, &mut st, sys::WNOHANG) };
                if got == pid {
                    statuses[r] = Some(if st & 0x7f == 0 {
                        ChildStatus::Exited((st >> 8) & 0xff)
                    } else {
                        ChildStatus::Signaled(st & 0x7f)
                    });
                    progressed = true;
                } else if got == -1 {
                    statuses[r] = Some(ChildStatus::Lost);
                    progressed = true;
                } else {
                    pending = true;
                }
            }
            if !pending {
                break;
            }
            if Instant::now() >= deadline {
                for (r, &pid) in pids.iter().enumerate() {
                    if statuses[r].is_none() {
                        unsafe {
                            sys::kill(pid, sys::SIGKILL);
                            let mut st = 0;
                            sys::waitpid(pid, &mut st, 0);
                        }
                        statuses[r] = Some(ChildStatus::TimedOut);
                    }
                }
                break;
            }
            if !progressed {
                std::thread::sleep(Duration::from_millis(2));
            }
        }

        let ends = statuses
            .into_iter()
            .enumerate()
            .map(|(r, st)| classify(&dir, r, st.expect("every child reaped")))
            .collect();
        drop(guard);
        ends
    }
}

#[cfg(not(unix))]
pub(crate) use stub::{run_world_uds, UdsDerive};

#[cfg(not(unix))]
mod stub {
    use super::{RankEnd, UdsWorldOptions};
    use crate::comm::Comm;

    #[derive(Debug)]
    pub(crate) struct UdsDerive {}

    pub(crate) fn run_world_uds<F>(
        _name: &str,
        _n: usize,
        _opts: &UdsWorldOptions,
        _body: &F,
    ) -> Vec<RankEnd>
    where
        F: Fn(&mut Comm) -> (bool, Vec<u8>),
    {
        panic!("the uds transport requires a Unix platform");
    }
}
