//! The transport seam beneath [`crate::Comm`].
//!
//! Everything above this module — tag matching, wait-state attribution,
//! flow stamping, the collectives, and the whole MapReduce stack — talks
//! to peers through the [`Transport`] trait: point-to-point delivery of
//! [`Msg`]s plus a three-step collective *derivation* protocol that
//! builds the private message namespace behind [`crate::Comm::dup`] and
//! [`crate::Comm::split`].
//!
//! Two backends implement the trait:
//!
//! * [`inproc`] — ranks are OS threads in one process; each communicator
//!   owns a private matrix of in-process FIFO channels and derivation
//!   ships fresh channel senders to peers ([`Endpoint`]s of the `Chan`
//!   flavour).
//! * [`uds`] — ranks are real forked processes on one machine connected
//!   by Unix-domain sockets with length-prefixed frames; derivation
//!   ships a *communicator id* ([`Endpoint`]s of the `Tagged` flavour)
//!   that namespaces tag-multiplexed traffic over the same connections.
//!
//! The derivation protocol is the part that generalizes: a new
//! communicator needs each member to hand every peer "the thing you
//! will use to reach me on the new communicator". For channels that
//! thing is a sender half; for multiplexed sockets it is a namespace
//! token; for a future network backend it would be an address. The
//! endpoints travel over the *parent* communicator's reserved tag space
//! in both cases, so [`crate::Comm`] has exactly one derivation code
//! path.

pub(crate) mod inproc;
pub(crate) mod uds;

use crate::error::CommError;
use crate::msg::Msg;
use crate::CommStats;

/// Which backend a world runs on. Selected explicitly via
/// [`crate::run_world_on`] or from the `MIMIR_TRANSPORT` environment
/// variable (`inproc` | `uds`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Rank threads in one process over private channel matrices (the
    /// default).
    #[default]
    Inproc,
    /// Forked rank processes over Unix-domain sockets.
    Uds,
}

impl TransportKind {
    /// Reads `MIMIR_TRANSPORT` (`inproc` | `uds`, case-insensitive);
    /// unset or unrecognized values fall back to [`TransportKind::Inproc`]
    /// (unrecognized values warn once on stderr).
    pub fn from_env() -> Self {
        match std::env::var("MIMIR_TRANSPORT") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "" | "inproc" => TransportKind::Inproc,
                "uds" => TransportKind::Uds,
                other => {
                    use std::sync::Once;
                    static WARN: Once = Once::new();
                    WARN.call_once(|| {
                        eprintln!(
                            "mimir-mpi: unknown MIMIR_TRANSPORT={other:?} \
                             (expected inproc|uds); using inproc"
                        );
                    });
                    TransportKind::Inproc
                }
            },
            Err(_) => TransportKind::Inproc,
        }
    }

    /// Stable lowercase name (`"inproc"` / `"uds"`), as accepted by
    /// `MIMIR_TRANSPORT` and used in bench/CI artifact labels.
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Inproc => "inproc",
            TransportKind::Uds => "uds",
        }
    }
}

/// One peer's handle into a communicator under construction: the thing
/// this rank hands to a peer so the peer can reach it on the *derived*
/// communicator. Shipped over the parent communicator's reserved tag
/// space during [`crate::Comm::dup`] / [`crate::Comm::split`].
#[derive(Debug)]
pub struct Endpoint(pub(crate) EndpointInner);

impl Endpoint {
    /// Bytes this endpoint occupies on the wire: in-process channel
    /// senders have no wire form (they never cross a process boundary);
    /// socket-namespace tokens travel as their 8-byte communicator id.
    pub(crate) fn wire_len(&self) -> usize {
        match &self.0 {
            EndpointInner::Chan(_) => 0,
            EndpointInner::Tagged { .. } => 8,
        }
    }
}

#[derive(Debug)]
pub(crate) enum EndpointInner {
    /// In-process: the sending half of a fresh channel into the
    /// endpoint's creator.
    Chan(std::sync::mpsc::Sender<Msg>),
    /// Socket: the derived communicator's id, namespacing multiplexed
    /// frames on the existing connections. Carried on the wire; the
    /// receiver asserts it equals its own independently computed id
    /// (the collective-consistency proof for the socket backend).
    Tagged { comm: u64 },
}

/// Backend state accumulated between [`Transport::begin_derive`] and
/// [`Transport::finish_derive`].
#[derive(Debug)]
pub struct Derivation(pub(crate) DeriveState);

#[derive(Debug)]
pub(crate) enum DeriveState {
    Inproc(inproc::InprocDerive),
    Uds(uds::UdsDerive),
}

/// The message-delivery seam beneath [`crate::Comm`].
///
/// Implementations are `Send` (a `Comm` moves between threads, e.g.
/// into a scheduler's job workers) but not `Sync` — a transport, like a
/// `Comm`, is owned by exactly one rank thread.
///
/// `stats` is threaded through `send`/`recv` so backends can keep their
/// wire-level counters (`wire_bytes_*`, `wire_frames_*`) on the owning
/// rank's [`CommStats`] without any cross-thread aggregation.
pub trait Transport: Send {
    /// Delivers `msg` to peer `dst` (this communicator's rank space).
    /// Sends are eager: they enqueue without waiting for the receiver.
    fn send(&mut self, dst: usize, msg: Msg, stats: &mut CommStats) -> Result<(), CommError>;

    /// Blocks for the next message from `src`, in FIFO order per
    /// `(src, self)` pair. Tag matching happens above the seam.
    fn recv(&mut self, src: usize, stats: &mut CommStats) -> Result<Msg, CommError>;

    /// Like [`Transport::recv`], but gives up after `timeout` and
    /// returns `Ok(None)`. The telemetry plane uses this to slice an
    /// indefinite blocking receive into bounded waits, so a rank stuck
    /// on a straggler still publishes its climbing wait time instead of
    /// going silent.
    fn recv_deadline(
        &mut self,
        src: usize,
        stats: &mut CommStats,
        timeout: std::time::Duration,
    ) -> Result<Option<Msg>, CommError>;

    /// Starts building a derived communicator spanning `members`
    /// (indexed by new rank, holding *this* communicator's ranks; this
    /// rank appears at `my_new_rank`). Returns the backend state plus,
    /// for every new rank except `my_new_rank`, the [`Endpoint`] this
    /// rank must ship to that peer. `seq` is the parent's derivation
    /// sequence number, already proven collective-consistent by the
    /// caller.
    fn begin_derive(
        &mut self,
        seq: u64,
        members: &[usize],
        my_new_rank: usize,
    ) -> (Derivation, Vec<Option<Endpoint>>);

    /// Installs the endpoint received from `from_new_rank`.
    ///
    /// # Panics
    /// Panics if the endpoint does not belong to this backend or (UDS)
    /// carries a mismatched communicator id — both are
    /// collective-consistency violations.
    fn accept_endpoint(&mut self, d: &mut Derivation, from_new_rank: usize, ep: Endpoint);

    /// Completes the derivation: every peer endpoint has been accepted.
    fn finish_derive(&mut self, d: Derivation) -> Box<dyn Transport>;

    /// Backend counters not tracked on the per-operation path (socket
    /// handshake time, reader-pool misses). Only a world's root
    /// transport reports nonzero values, so merging per-communicator
    /// stats never double-counts process-level numbers.
    fn extra_stats(&self) -> CommStats {
        CommStats::default()
    }
}
