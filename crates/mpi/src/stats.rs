/// Per-rank communication counters.
///
/// The paper's KV-hint discussion (Section III-C3) notes that shrinking the
/// KV encoding "also reduces the amount of data that needs to be
/// communicated during the aggregate phase"; these counters let the bench
/// harness report exactly that. `bytes_copied` and `send_allocs` expose the
/// transport's copy and allocation behavior so the zero-copy shuffle path
/// can be verified from counters alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages this rank sent (point-to-point and collective-internal).
    pub msgs_sent: u64,
    /// Payload bytes this rank sent.
    pub bytes_sent: u64,
    /// Messages this rank received.
    pub msgs_recvd: u64,
    /// Payload bytes this rank received.
    pub bytes_recvd: u64,
    /// Collective operations this rank participated in.
    pub collectives: u64,
    /// Payload bytes memcpy'd by the transport (into pooled send buffers
    /// and out into caller-owned receive buffers).
    pub bytes_copied: u64,
    /// Heap allocations taken on the send path: pool misses plus pooled
    /// buffer capacity growths. Stops increasing once the exchange reaches
    /// steady state.
    pub send_allocs: u64,
    /// Nanoseconds this rank spent *blocked* waiting for a peer: every
    /// blocking point in the transport (point-to-point `recv`, and the
    /// internal receives of barrier / allreduce / allgather / alltoallv /
    /// gather / bcast, which all funnel through the same matching loop)
    /// counts the time from entering the blocking wait to message arrival.
    /// Sends never block on the eager transport (send-buffer acquisition is
    /// a pool pop; misses are `send_allocs`), so wait time is entirely
    /// "blocked on peers". The BSP diagnosis question — byte-bound or
    /// straggler-bound? — is answered by comparing this against `work_ns`.
    pub wait_ns: u64,
    /// Nanoseconds the transport spent doing *work* on payload bytes:
    /// memcpy into pooled send buffers and out into caller-owned receive
    /// buffers (the time behind `bytes_copied`). Stays flat when a peer is
    /// slow; grows with traffic volume.
    pub work_ns: u64,
}

impl CommStats {
    /// Element-wise sum, for aggregating across ranks.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        CommStats {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_recvd: self.msgs_recvd + other.msgs_recvd,
            bytes_recvd: self.bytes_recvd + other.bytes_recvd,
            collectives: self.collectives + other.collectives,
            bytes_copied: self.bytes_copied + other.bytes_copied,
            send_allocs: self.send_allocs + other.send_allocs,
            wait_ns: self.wait_ns + other.wait_ns,
            work_ns: self.work_ns + other.work_ns,
        }
    }
}
