/// Per-rank communication counters.
///
/// The paper's KV-hint discussion (Section III-C3) notes that shrinking the
/// KV encoding "also reduces the amount of data that needs to be
/// communicated during the aggregate phase"; these counters let the bench
/// harness report exactly that. `bytes_copied` and `send_allocs` expose the
/// transport's copy and allocation behavior so the zero-copy shuffle path
/// can be verified from counters alone.
///
/// The `wire_*` and `handshake_ns` fields are per-backend: they stay zero
/// on the in-process transport (messages move by ownership transfer, there
/// is no wire) and count frames, framed bytes, and bootstrap time on the
/// UDS socket backend. Comparing `wire_bytes_sent` against `bytes_sent`
/// answers "how much framing overhead did crossing process boundaries
/// add"; `wire_frames_sent / wire_bytes_sent` exposes tiny-message chatter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages this rank sent (point-to-point and collective-internal).
    pub msgs_sent: u64,
    /// Payload bytes this rank sent.
    pub bytes_sent: u64,
    /// Messages this rank received.
    pub msgs_recvd: u64,
    /// Payload bytes this rank received.
    pub bytes_recvd: u64,
    /// Collective operations this rank participated in.
    pub collectives: u64,
    /// Payload bytes memcpy'd by the transport (into pooled send buffers
    /// and out into caller-owned receive buffers).
    pub bytes_copied: u64,
    /// Heap allocations taken on the send path: pool misses plus pooled
    /// buffer capacity growths. Stops increasing once the exchange reaches
    /// steady state.
    pub send_allocs: u64,
    /// Nanoseconds this rank spent *blocked* waiting for a peer: every
    /// blocking point in the transport (point-to-point `recv`, and the
    /// internal receives of barrier / allreduce / allgather / alltoallv /
    /// gather / bcast, which all funnel through the same matching loop)
    /// counts the time from entering the blocking wait to message arrival.
    /// Sends never block on the eager transport (send-buffer acquisition is
    /// a pool pop; misses are `send_allocs`), so wait time is entirely
    /// "blocked on peers". The BSP diagnosis question — byte-bound or
    /// straggler-bound? — is answered by comparing this against `work_ns`.
    pub wait_ns: u64,
    /// Nanoseconds the transport spent doing *work* on payload bytes:
    /// memcpy into pooled send buffers and out into caller-owned receive
    /// buffers (the time behind `bytes_copied`). Stays flat when a peer is
    /// slow; grows with traffic volume.
    pub work_ns: u64,
    /// Bytes this rank put on the wire, *including framing headers*.
    /// Zero on the in-process backend (no wire). Self-sends stay on a
    /// process-local loopback and are not counted.
    pub wire_bytes_sent: u64,
    /// Bytes this rank took off the wire, including framing headers.
    pub wire_bytes_recvd: u64,
    /// Frames this rank sent (one frame per message on the UDS backend).
    pub wire_frames_sent: u64,
    /// Frames this rank received.
    pub wire_frames_recvd: u64,
    /// Receive-side buffer-pool misses: frames whose payload needed a
    /// fresh heap allocation because the socket reader's pool was empty.
    /// The wire-side analogue of `send_allocs`.
    pub wire_recv_allocs: u64,
    /// Nanoseconds this rank spent in transport bootstrap (socket bind /
    /// connect / accept / hello exchange). Reported once per rank by the
    /// world communicator; derived communicators reuse the connections
    /// and report zero.
    pub handshake_ns: u64,
}

impl CommStats {
    /// Number of counter fields (the fixed-width encoding used by the
    /// `Wire` impl and [`CommStats::as_array`]).
    pub const FIELDS: usize = 15;

    /// Element-wise sum, for aggregating across ranks.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        let mut a = self.as_array();
        for (acc, v) in a.iter_mut().zip(other.as_array()) {
            *acc += v;
        }
        CommStats::from_array(a)
    }

    /// The counters in declaration order, for encoding and aggregation.
    pub fn as_array(&self) -> [u64; Self::FIELDS] {
        [
            self.msgs_sent,
            self.bytes_sent,
            self.msgs_recvd,
            self.bytes_recvd,
            self.collectives,
            self.bytes_copied,
            self.send_allocs,
            self.wait_ns,
            self.work_ns,
            self.wire_bytes_sent,
            self.wire_bytes_recvd,
            self.wire_frames_sent,
            self.wire_frames_recvd,
            self.wire_recv_allocs,
            self.handshake_ns,
        ]
    }

    /// Element-wise saturating difference `self − earlier`, for pushing
    /// incremental deltas (e.g. to the live telemetry plane) from a
    /// cumulative counter set.
    pub fn delta_since(&self, earlier: &CommStats) -> CommStats {
        let mut a = self.as_array();
        for (acc, v) in a.iter_mut().zip(earlier.as_array()) {
            *acc = acc.saturating_sub(v);
        }
        CommStats::from_array(a)
    }

    /// This rank's counters as the dependency-free `mimir-obs` mirror
    /// used by [`mimir_obs::RankReport`]. `wait_ns`/`work_ns` are not
    /// part of the mirror — they belong to the report's wait-state
    /// section, see [`CommStats::wait_counters`].
    pub fn counters(&self) -> mimir_obs::CommCounters {
        mimir_obs::CommCounters {
            sends: self.msgs_sent,
            recvs: self.msgs_recvd,
            bytes_sent: self.bytes_sent,
            bytes_recvd: self.bytes_recvd,
            collectives: self.collectives,
            bytes_copied: self.bytes_copied,
            send_allocs: self.send_allocs,
            wire_bytes_sent: self.wire_bytes_sent,
            wire_bytes_recvd: self.wire_bytes_recvd,
            wire_frames_sent: self.wire_frames_sent,
            wire_frames_recvd: self.wire_frames_recvd,
            wire_recv_allocs: self.wire_recv_allocs,
            handshake_ns: self.handshake_ns,
        }
    }

    /// The transport-attributed half of the report's wait-state section:
    /// total blocked and total copy/encode time. The shuffle-attributed
    /// categories (`sync`/`data`/`barrier`) live above this crate.
    pub fn wait_counters(&self) -> mimir_obs::WaitCounters {
        mimir_obs::WaitCounters {
            total_wait_ns: self.wait_ns,
            total_work_ns: self.work_ns,
            ..mimir_obs::WaitCounters::default()
        }
    }

    /// Inverse of [`CommStats::as_array`].
    pub fn from_array(v: [u64; Self::FIELDS]) -> CommStats {
        CommStats {
            msgs_sent: v[0],
            bytes_sent: v[1],
            msgs_recvd: v[2],
            bytes_recvd: v[3],
            collectives: v[4],
            bytes_copied: v[5],
            send_allocs: v[6],
            wait_ns: v[7],
            work_ns: v[8],
            wire_bytes_sent: v[9],
            wire_bytes_recvd: v[10],
            wire_frames_sent: v[11],
            wire_frames_recvd: v[12],
            wire_recv_allocs: v[13],
            handshake_ns: v[14],
        }
    }
}
