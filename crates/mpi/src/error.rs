use std::fmt;

/// Errors surfaced by the communication runtime.
///
/// Most misuse (rank out of range, tag in the reserved collective space)
/// panics instead, matching the fail-fast behaviour of an MPI
/// implementation with error checking enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer rank's thread exited (normally or by panic) while this
    /// rank was still expecting traffic from it.
    RankDisconnected {
        /// Rank that observed the disconnect.
        observer: usize,
        /// Rank whose channel went away.
        peer: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankDisconnected { observer, peer } => {
                write!(f, "rank {observer}: peer rank {peer} disconnected")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Panic payload used when a peer disconnects, so [`crate::run_world`] can
/// distinguish cascade panics from the root cause.
#[derive(Debug)]
pub(crate) struct DisconnectPanic(pub CommError);

/// True if a caught panic payload is the peer-disconnect cascade raised
/// when a rank's channel endpoints vanish (the in-process analogue of an
/// MPI job abort reaching a survivor).
///
/// Schedulers running jobs on [`crate::Comm::dup`]'d communicators use
/// this to classify a worker's `catch_unwind` payload: a disconnect panic
/// means *some peer* failed first and this rank is collateral, so the
/// job's failure should be attributed to the root cause, not to this rank.
pub fn is_disconnect_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<DisconnectPanic>()
}

/// Renders a caught panic payload as text: `&str` and `String` payloads
/// pass through, disconnect cascades print their [`CommError`], anything
/// else gets a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(d) = payload.downcast_ref::<DisconnectPanic>() {
        d.0.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Structured outcome of a world where a rank failed, returned by
/// [`crate::run_world_result`] instead of poisoning the caller with an
/// opaque re-raised panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldError<E> {
    /// A rank returned `Err(e)` — the clean abort path.
    Aborted(E),
    /// A rank panicked; peers were torn down by the disconnect cascade.
    RankPanicked {
        /// The root-cause rank (the first rank whose panic was not a
        /// disconnect cascade; if every failure was a cascade, the first
        /// observer).
        rank: usize,
        /// Rendered panic message of the root cause.
        message: String,
    },
}

impl<E: fmt::Display> fmt::Display for WorldError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::Aborted(e) => write!(f, "world aborted: {e}"),
            WorldError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for WorldError<E> {}
