use std::fmt;

/// Errors surfaced by the communication runtime.
///
/// Most misuse (rank out of range, tag in the reserved collective space)
/// panics instead, matching the fail-fast behaviour of an MPI
/// implementation with error checking enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer rank's thread exited (normally or by panic) while this
    /// rank was still expecting traffic from it.
    RankDisconnected {
        /// Rank that observed the disconnect.
        observer: usize,
        /// Rank whose channel went away.
        peer: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankDisconnected { observer, peer } => {
                write!(f, "rank {observer}: peer rank {peer} disconnected")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Panic payload used when a peer disconnects, so [`crate::run_world`] can
/// distinguish cascade panics from the root cause.
#[derive(Debug)]
pub(crate) struct DisconnectPanic(
    #[allow(
        dead_code,
        reason = "kept so the panic payload prints which rank disconnected"
    )]
    pub CommError,
);
