use crate::transport::Endpoint;

/// Message tag. User code may use any value below `0xFFFF_FF00`; the
/// collective implementations reserve the values above it.
pub type Tag = u32;

/// Namespaced tags so user point-to-point traffic can never match a
/// collective's internal messages.
pub(crate) mod tags {
    use super::Tag;

    /// Highest tag available to user point-to-point traffic.
    pub const USER_MAX: Tag = 0xFFFF_FEFF;
    pub const BARRIER: Tag = 0xFFFF_FF00;
    pub const REDUCE: Tag = 0xFFFF_FF01;
    pub const BCAST: Tag = 0xFFFF_FF02;
    pub const GATHER: Tag = 0xFFFF_FF03;
    pub const ALLGATHER: Tag = 0xFFFF_FF04;
    pub const ALLTOALLV: Tag = 0xFFFF_FF05;
    /// Endpoint exchange inside [`crate::Comm::dup`].
    pub const DUP: Tag = 0xFFFF_FF06;
    /// Endpoint exchange inside [`crate::Comm::split`].
    pub const SPLIT: Tag = 0xFFFF_FF07;
}

/// Message payload: a single `u64` carried inline (the collectives'
/// control-message path — no heap allocation per hop), an owned byte
/// buffer, or a transport endpoint shipped during communicator
/// construction.
#[derive(Debug)]
pub(crate) enum Payload {
    /// A `u64` carried inline in the message struct. On the wire this is
    /// the little-endian 8-byte encoding of the value.
    Small(u64),
    /// An owned heap buffer. Receivers recycle these into their buffer
    /// pool so steady-state exchange traffic reuses a stable set of
    /// allocations.
    Heap(Vec<u8>),
    /// A backend endpoint shipped to a peer while building a derived
    /// communicator ([`crate::Comm::dup`] / [`crate::Comm::split`]): a
    /// fresh channel sender on the in-process backend, a communicator-id
    /// token on the socket backend. Each rank keeps its receive side and
    /// distributes these over the parent communicator's reserved tag
    /// space.
    Endpoint(Endpoint),
}

impl Payload {
    /// Wire length in bytes. In-process channel endpoints are
    /// control-plane objects with no wire representation (zero bytes);
    /// socket-namespace endpoints travel as their 8-byte communicator id.
    pub fn len(&self) -> usize {
        match self {
            Payload::Small(_) => 8,
            Payload::Heap(v) => v.len(),
            Payload::Endpoint(ep) => ep.wire_len(),
        }
    }

    /// Materializes the payload as an owned buffer (allocates for the
    /// `Small` case — only user-facing receive paths hit this).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            Payload::Small(v) => v.to_le_bytes().to_vec(),
            Payload::Heap(v) => v,
            Payload::Endpoint(_) => unreachable!("endpoint payloads never reach byte receives"),
        }
    }
}

/// An in-flight message: a tag plus a payload, stamped with the
/// sender's flow id.
///
/// Public because it crosses the [`crate::transport::Transport`] trait
/// boundary; its innards stay crate-private (backends and `Comm` are the
/// only constructors).
#[derive(Debug)]
pub struct Msg {
    pub(crate) tag: Tag,
    pub(crate) data: Payload,
    /// Causal-tracing stamp: `(src_world_rank << 48) | seq`, allocated
    /// by the sending rank's recorder just before the message ships, or
    /// 0 when tracing is off. The receive loop records the matched id,
    /// turning every message into a reconstructible happens-before edge
    /// (see `mimir_obs::EventKind::FlowSend`/`FlowRecv`).
    pub(crate) flow: u64,
}
