/// Message tag. User code may use any value below `0xFFFF_FF00`; the
/// collective implementations reserve the values above it.
pub type Tag = u32;

/// Namespaced tags so user point-to-point traffic can never match a
/// collective's internal messages.
pub(crate) mod tags {
    use super::Tag;

    /// Highest tag available to user point-to-point traffic.
    pub const USER_MAX: Tag = 0xFFFF_FEFF;
    pub const BARRIER: Tag = 0xFFFF_FF00;
    pub const REDUCE: Tag = 0xFFFF_FF01;
    pub const BCAST: Tag = 0xFFFF_FF02;
    pub const GATHER: Tag = 0xFFFF_FF03;
    pub const ALLGATHER: Tag = 0xFFFF_FF04;
    pub const ALLTOALLV: Tag = 0xFFFF_FF05;
}

/// An in-flight message: a tag plus an owned byte payload.
#[derive(Debug)]
pub(crate) struct Msg {
    pub tag: Tag,
    pub data: Vec<u8>,
}
