//! What a tenant submits: a named, prioritized, footprint-bounded job.

use std::sync::Arc;

use mimir_core::{AdaptPolicy, MimirConfig, MimirContext, MimirError, ShuffleMode};

/// What a job body hands back to the service when it finishes.
///
/// Bodies drain their result KVs into plain heap bytes (`data`) rather
/// than returning pool-backed containers: a finished job must hold
/// nothing against the shared memory budget, or its output would eat
/// into the headroom the admission controller thinks it has.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JobYield {
    /// This rank's serialized output (format is the job's business).
    pub data: Vec<u8>,
    /// KVs the job's reduce produced on this rank (reported into the
    /// per-job `RankReport` section).
    pub kvs_out: u64,
    /// Bytes the job spilled to disk on this rank, if it used a spill
    /// store (reported into the per-job `RankReport` section).
    pub spill_bytes: u64,
}

impl JobYield {
    /// A yield carrying only output bytes.
    pub fn from_data(data: Vec<u8>) -> Self {
        JobYield {
            data,
            ..JobYield::default()
        }
    }
}

/// The job's rank program. It runs on a worker thread against a
/// [`MimirContext`] bound to the job's *private* duplicated
/// communicator, so anything `MimirContext` supports — multi-stage
/// pipelines, iteration, raw collectives — is fair game.
///
/// The body is an `Arc<dyn Fn>` rather than a `FnOnce` because a job
/// suspended on OOM is re-run from the start after re-admission.
pub type JobBody = Arc<dyn Fn(&mut MimirContext<'_>) -> Result<JobYield, MimirError> + Send + Sync>;

/// A job submission: name, priority, declared memory footprint, the
/// framework configuration to run under, and the rank program itself.
///
/// Like every scheduler entry point, specs are SPMD: each rank submits
/// an equivalent spec (same name/priority/footprint, a body computing
/// that rank's share) in the same order.
#[derive(Clone)]
pub struct JobSpec {
    /// Human-readable name (also labels the job's spill directory).
    pub name: String,
    /// Higher runs first; ties are FIFO by submission order.
    pub priority: u64,
    /// Estimated bytes of node-pool memory the job needs. Admission
    /// reserves this much on every node before the job starts; a lowball
    /// estimate costs a suspend-and-retry cycle with the estimate
    /// doubled.
    pub footprint_bytes: usize,
    /// Framework configuration the job's context is built with.
    pub config: MimirConfig,
    pub(crate) body: JobBody,
}

impl JobSpec {
    /// A priority-0 spec with the default [`MimirConfig`].
    pub fn new(
        name: impl Into<String>,
        footprint_bytes: usize,
        body: impl Fn(&mut MimirContext<'_>) -> Result<JobYield, MimirError> + Send + Sync + 'static,
    ) -> Self {
        JobSpec {
            name: name.into(),
            priority: 0,
            footprint_bytes,
            config: MimirConfig::default(),
            body: Arc::new(body),
        }
    }

    /// Sets the scheduling priority (higher runs first).
    #[must_use]
    pub fn priority(mut self, priority: u64) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the framework configuration the job runs under.
    #[must_use]
    pub fn config(mut self, config: MimirConfig) -> Self {
        self.config = config;
        self
    }

    /// Opts this job into the adaptive shuffle runtime with a per-job
    /// [`AdaptPolicy`] override — a tenant-level knob layered over
    /// whatever [`MimirConfig`] the spec carries. SPMD like the rest of
    /// the spec: every rank must submit the same policy, since adaptive
    /// decisions are taken by lockstep ballot.
    #[must_use]
    pub fn adaptive(mut self, policy: AdaptPolicy) -> Self {
        self.config.shuffle_mode = ShuffleMode::Adaptive;
        self.config.adapt = policy;
        self
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("priority", &self.priority)
            .field("footprint_bytes", &self.footprint_bytes)
            .finish_non_exhaustive()
    }
}
