//! Job lifecycle states and terminal outcomes.

use mimir_core::MimirError;
use mimir_mpi::Wire;

/// Where a job is in its lifecycle:
/// `Queued → Admitted → Running → {Done, Failed, Cancelled}`.
///
/// `Admitted` is the instant between the successful admission vote
/// (every node's reservation held) and the worker thread starting; in
/// this implementation both happen inside one scheduler tick, so
/// external observers see `Queued` become `Running`. A job suspended on
/// OOM moves from `Running` back to `Queued`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the admission queue.
    Queued,
    /// Reservation held on every node; worker about to start.
    Admitted,
    /// Worker threads executing the body on every rank.
    Running,
    /// Finished successfully; output retrievable.
    Done,
    /// Finished unsuccessfully (body error, panic, admission
    /// impossibility, or OOM retries exhausted).
    Failed,
    /// Cancelled — before it started, or cooperatively at a phase
    /// boundary while running.
    Cancelled,
}

/// How a job ended. The numeric codes double as *severities* for the
/// cross-rank outcome reconciliation vote: when the per-rank workers of
/// one job disagree (one rank OOMs and returns early, collapsing the
/// job's communicator; its peers then die with disconnect panics), the
/// `allreduce Max` over these codes picks the root cause, because the
/// symptom — [`JobOutcome::Disconnected`] — is deliberately the lowest
/// non-success severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum JobOutcome {
    /// Every rank's body returned `Ok`.
    Done = 0,
    /// This rank's worker died because a peer dropped the job
    /// communicator — a symptom of whatever outcome the peer reports.
    /// Never the reconciled outcome of a whole job unless every rank
    /// reports it (which indicates a scheduler bug).
    Disconnected = 1,
    /// The cooperative cancellation vote fired at a phase boundary.
    Cancelled = 2,
    /// The body ran out of pool memory. Retryable: the scheduler
    /// suspends the job and re-queues it with a doubled footprint.
    /// Once retries are exhausted this becomes the terminal outcome
    /// (with final state [`JobState::Failed`]) so the root cause stays
    /// visible.
    OutOfMemory = 3,
    /// The body returned a non-OOM, non-cancellation error, or the
    /// job's footprint could never be admitted.
    Failed = 4,
    /// The body panicked (a genuine panic, not a disconnect cascade).
    Panicked = 5,
}

impl JobOutcome {
    /// Stable numeric code (the severity used in reconciliation votes
    /// and recorded in `JobEnd` trace events / per-job reports).
    pub fn code(self) -> u64 {
        self as u64
    }

    /// Inverse of [`Self::code`].
    pub fn from_code(code: u64) -> Option<JobOutcome> {
        match code {
            0 => Some(JobOutcome::Done),
            1 => Some(JobOutcome::Disconnected),
            2 => Some(JobOutcome::Cancelled),
            3 => Some(JobOutcome::OutOfMemory),
            4 => Some(JobOutcome::Failed),
            5 => Some(JobOutcome::Panicked),
            _ => None,
        }
    }

    /// The terminal [`JobState`] this outcome maps to.
    pub fn final_state(self) -> JobState {
        match self {
            JobOutcome::Done => JobState::Done,
            JobOutcome::Cancelled => JobState::Cancelled,
            _ => JobState::Failed,
        }
    }

    /// The [`MimirError`] a caller should see for a failed outcome, or
    /// `None` for [`JobOutcome::Done`]. Notably, a reconciled
    /// `Disconnected` — a peer rank's process or transport died —
    /// surfaces as [`MimirError::Disconnected`] rather than a hang or a
    /// generic failure.
    pub fn as_error(self) -> Option<MimirError> {
        match self {
            JobOutcome::Done => None,
            JobOutcome::Disconnected => Some(MimirError::Disconnected(
                "a peer rank's worker dropped the job communicator".into(),
            )),
            JobOutcome::Cancelled => Some(MimirError::Cancelled),
            JobOutcome::OutOfMemory => Some(MimirError::Config(
                "job suspended on OOM until retries were exhausted".into(),
            )),
            JobOutcome::Failed => Some(MimirError::Config("job body returned an error".into())),
            JobOutcome::Panicked => Some(MimirError::Config("job body panicked".into())),
        }
    }
}

/// Outcomes cross process boundaries in result files and reconciliation
/// traffic on the socket transport; the stable [`JobOutcome::code`] is
/// the wire form.
impl Wire for JobOutcome {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.code().wire_write(out);
    }

    fn wire_read(buf: &mut &[u8]) -> Option<Self> {
        JobOutcome::from_code(u64::wire_read(buf)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_order_by_severity() {
        for code in 0..6 {
            assert_eq!(JobOutcome::from_code(code).unwrap().code(), code);
        }
        assert_eq!(JobOutcome::from_code(6), None);
        // The reconciliation vote depends on this ordering.
        assert!(JobOutcome::Disconnected.code() < JobOutcome::Cancelled.code());
        assert!(JobOutcome::Cancelled.code() < JobOutcome::OutOfMemory.code());
        assert!(JobOutcome::OutOfMemory.code() < JobOutcome::Failed.code());
        assert!(JobOutcome::Failed.code() < JobOutcome::Panicked.code());
    }

    #[test]
    fn outcomes_map_to_terminal_states() {
        assert_eq!(JobOutcome::Done.final_state(), JobState::Done);
        assert_eq!(JobOutcome::Cancelled.final_state(), JobState::Cancelled);
        assert_eq!(JobOutcome::OutOfMemory.final_state(), JobState::Failed);
        assert_eq!(JobOutcome::Panicked.final_state(), JobState::Failed);
    }
}
