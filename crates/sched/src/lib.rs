//! # mimir-sched — a multi-tenant job service over the Mimir runtime
//!
//! On a large machine, a MapReduce framework rarely has a node to
//! itself: analysis pipelines submit many jobs with different
//! footprints and priorities, and the memory budget — the resource the
//! Mimir paper is built around — is shared between them. This crate
//! turns the single-job `MimirContext` API into a per-world *job
//! service*: each rank runs a [`JobService`] that accepts [`JobSpec`]s
//! and executes several jobs concurrently against the shared node
//! memory pool.
//!
//! Three mechanisms make that safe:
//!
//! 1. **Communicator isolation.** Every admitted job gets a private
//!    communicator via `Comm::dup` — its own channel matrix, so one
//!    job's collectives and point-to-point traffic can never match
//!    another job's (or the scheduler's own votes). This is the
//!    in-process analogue of `MPI_Comm_dup` contexts.
//! 2. **Memory-aware admission control.** A job declares an estimated
//!    footprint; it starts only once a reservation for that many bytes
//!    succeeds on *every* node (a collective vote over non-counting
//!    probes). Jobs that do not fit wait in a FIFO-within-priority
//!    queue. A running job that still exhausts the pool is *suspended*:
//!    its reservation is released and it is re-queued with a doubled
//!    footprint estimate, up to a retry limit.
//! 3. **Lifecycle + backpressure.** Jobs move through
//!    `Queued → Admitted → Running → {Done, Failed, Cancelled}`
//!    (see [`JobState`]); cancellation is cooperative and collective
//!    (every rank observes it at the same phase boundary, so containers
//!    unwind and the pool is credited on every rank); and
//!    [`JobService::submit`] blocks once the queue is full, pushing
//!    backpressure onto producers instead of growing without bound.
//!
//! The scheduler itself is a *collective program*: every rank drives
//! its service in lockstep ([`JobService::tick`] /
//! [`JobService::run_until_idle`]), and every scheduling decision —
//! admission, completion, suspension — is an `allreduce` vote on the
//! parent communicator, so the per-rank schedulers can never diverge.
//! Job lifecycle events flow into `mimir-obs` (chrome-trace lanes per
//! job id, a per-job section in `RankReport`).

mod service;
mod spec;
mod state;

pub use service::{JobService, SchedConfig};
pub use spec::{JobBody, JobSpec, JobYield};
pub use state::{JobOutcome, JobState};
