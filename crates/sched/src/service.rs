//! The per-rank scheduler: a collective program over the parent
//! communicator.
//!
//! Every rank of the world runs one [`JobService`] and drives it in
//! lockstep. All scheduling *decisions* are collective votes
//! (`allreduce` on the parent communicator), so per-rank schedulers can
//! never diverge even though per-rank *observations* — did my
//! reservation probe succeed? has my worker thread finished? — differ:
//!
//! - **admission**: a job starts only when `LAnd` over "my node's
//!   reservation probe succeeded" is true — i.e. the footprint is
//!   reserved on every node or on none;
//! - **completion**: a job leaves the running set only when `LAnd` over
//!   "my worker finished" is true, so no rank joins early;
//! - **outcome**: the terminal outcome is `Max` over per-rank severity
//!   codes (see [`JobOutcome`]), which picks the root cause over
//!   disconnect symptoms.
//!
//! The running jobs themselves never touch the parent communicator:
//! each gets a private duplicate (`Comm::dup`), so scheduler votes and
//! job traffic can interleave freely across threads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mimir_core::{lock_cache, shared_cache, CancelToken, MimirContext, SharedKvCache};
use mimir_io::IoModel;
use mimir_mem::{MemPool, Reservation};
use mimir_mpi::{Comm, ReduceOp};
use mimir_obs::{EventKind, JobRecord};

use crate::spec::{JobBody, JobSpec, JobYield};
use crate::state::{JobOutcome, JobState};

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Queued-job capacity; [`JobService::submit`] blocks (driving the
    /// scheduler) while the queue is at capacity — the service's
    /// backpressure boundary.
    pub queue_cap: usize,
    /// Maximum jobs in the running set at once.
    pub max_running: usize,
    /// How many times an OOM-suspended job is re-queued (with its
    /// footprint estimate doubled each time) before it fails.
    pub max_retries: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            queue_cap: 16,
            max_running: 4,
            max_retries: 3,
        }
    }
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    /// Current footprint ask (doubles on each OOM suspend).
    footprint: usize,
    retries: u64,
    cancel: CancelToken,
    queued_at: Instant,
    record: JobRecord,
}

struct RunningJob {
    id: u64,
    spec: JobSpec,
    footprint: usize,
    retries: u64,
    cancel: CancelToken,
    /// Held for the job's whole run: the declared footprint stays
    /// charged against the node pool so admission can't oversubscribe
    /// the headroom. Dropped (credited back) at completion or suspend.
    reservation: Reservation,
    handle: JoinHandle<WorkerOut>,
    admitted_at: Instant,
    record: JobRecord,
}

struct FinishedJob {
    id: u64,
    outcome: JobOutcome,
    output: Option<JobYield>,
    record: JobRecord,
}

struct WorkerOut {
    severity: u64,
    output: Option<JobYield>,
}

/// One rank's slice of the job service. See the crate docs for the
/// model; see the module docs for the collective protocol.
///
/// **SPMD discipline.** Every method that schedules — [`submit`],
/// [`tick`], [`run_until_idle`], [`cancel`] — must be called on every
/// rank, in the same order, with equivalent arguments. The service
/// keeps per-rank state convergent by construction, but it cannot
/// repair a world where rank 0 submits a job rank 1 never heard of.
///
/// [`submit`]: JobService::submit
/// [`tick`]: JobService::tick
/// [`run_until_idle`]: JobService::run_until_idle
/// [`cancel`]: JobService::cancel
pub struct JobService<'w> {
    comm: &'w mut Comm,
    pool: MemPool,
    io: IoModel,
    cfg: SchedConfig,
    next_id: u64,
    /// Sorted: priority descending, then id ascending (FIFO within
    /// priority). Identical on every rank.
    queue: Vec<QueuedJob>,
    /// Admission order. Identical on every rank.
    running: Vec<RunningJob>,
    finished: Vec<FinishedJob>,
    /// Last time [`Self::tick`] emitted per-job memory heartbeats;
    /// decimates the heartbeat stream to ~1 ms so a busy tick loop
    /// (500 µs cadence) doesn't double the trace volume.
    last_heartbeat: Instant,
    /// Last time [`Self::tick`] pushed job lifecycle + pool gauges into
    /// the live telemetry plane; decimated to ~5 ms (cloning the retired
    /// record list every 500 µs tick would dominate small jobs).
    last_live: Instant,
    /// The rank-wide cross-job KV cache, installed on every worker's
    /// context so chained jobs see each other's cached outputs. Cached
    /// pages stay charged to `pool`, which makes them admission-visible;
    /// the admission sweep evicts from here before declaring a footprint
    /// unsatisfiable.
    cache: SharedKvCache,
}

impl<'w> JobService<'w> {
    /// Binds a service to this rank's world communicator, its node's
    /// memory pool, and an I/O model shared by all jobs.
    pub fn new(comm: &'w mut Comm, pool: MemPool, io: IoModel, cfg: SchedConfig) -> Self {
        JobService {
            comm,
            pool,
            io,
            cfg,
            next_id: 0,
            queue: Vec::new(),
            running: Vec::new(),
            finished: Vec::new(),
            last_heartbeat: Instant::now(),
            last_live: Instant::now(),
            cache: shared_cache(),
        }
    }

    /// Submits a job and returns its id (assigned in submission order,
    /// identical on every rank).
    ///
    /// **Backpressure**: when the queue is at capacity this call blocks,
    /// driving [`Self::tick`] until a slot frees up — submission rate
    /// can never outrun the service's ability to retire jobs.
    pub fn submit(&mut self, spec: JobSpec) -> u64 {
        while self.queue.len() >= self.cfg.queue_cap {
            if !self.tick() {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        mimir_obs::emit(EventKind::JobSubmit, id, spec.priority);
        let record = JobRecord {
            id,
            name: spec.name.clone(),
            priority: spec.priority,
            ..JobRecord::default()
        };
        self.queue.push(QueuedJob {
            id,
            footprint: spec.footprint_bytes,
            spec,
            retries: 0,
            cancel: CancelToken::new(),
            queued_at: Instant::now(),
            record,
        });
        self.sort_queue();
        id
    }

    /// One scheduler step: sweep the running set for completed jobs,
    /// then admit queued jobs while memory and run slots allow. Returns
    /// whether anything changed (a completion, suspension, admission, or
    /// terminal failure). Collective: every rank must call it in
    /// lockstep.
    pub fn tick(&mut self) -> bool {
        let mut progressed = false;

        // Memory heartbeat: one JobHeartbeat per running job carrying
        // the node pool's current usage, rendered by the chrome exporter
        // as a per-job counter lane. Decimated to ~1 ms.
        if mimir_obs::active() && !self.running.is_empty() {
            let now = Instant::now();
            if now.duration_since(self.last_heartbeat) >= Duration::from_millis(1) {
                self.last_heartbeat = now;
                let used = self.pool.used() as u64;
                for r in &self.running {
                    mimir_obs::emit(EventKind::JobHeartbeat, r.id, used);
                }
            }
        }

        // Live telemetry lane: retired-job lifecycle records plus the
        // node pool's gauges. Independent of the recorder gate above —
        // the plane is armed per-thread and is its own opt-in.
        if let Some(live) = mimir_obs::live::shared() {
            let now = Instant::now();
            if now.duration_since(self.last_live) >= Duration::from_millis(5) {
                self.last_live = now;
                live.set_jobs(self.job_records());
                let ps = self.pool.stats();
                live.set_mem(mimir_obs::MemCounters {
                    pages_allocated: ps.page_allocs,
                    pages_recycled: ps.page_frees,
                    bytes_in_use: ps.used as u64,
                    peak_bytes: ps.peak as u64,
                    budget_bytes: if ps.budget == usize::MAX {
                        0
                    } else {
                        ps.budget as u64
                    },
                    oom_events: ps.oom_events,
                });
            }
        }

        // Completion sweep. Workers that died because a peer collapsed
        // the job communicator count as finished too, so `LAnd` always
        // converges once any rank's worker returns.
        let mut i = 0;
        while i < self.running.len() {
            let local_done = u64::from(self.running[i].handle.is_finished());
            let all_done = self.comm.allreduce_u64(ReduceOp::LAnd, local_done) == 1;
            if all_done {
                let job = self.running.remove(i);
                self.complete(job);
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Admission sweep: strictly in queue order (priority, then
        // FIFO), stopping at the first job that does not fit — memory
        // freed by future completions belongs to the head of the queue,
        // not to whoever happens to fit around it.
        while self.running.len() < self.cfg.max_running && !self.queue.is_empty() {
            if self.queue[0].cancel.is_cancelled() {
                let q = self.queue.remove(0);
                self.finish_unran(q, JobOutcome::Cancelled);
                progressed = true;
                continue;
            }
            let probe = self.pool.probe_reserve(self.queue[0].footprint);
            let all_ok = self
                .comm
                .allreduce_u64(ReduceOp::LAnd, u64::from(probe.is_some()))
                == 1;
            if all_ok {
                let q = self.queue.remove(0);
                let reservation = probe.expect("voted yes with a reservation in hand");
                self.admit(q, reservation);
                progressed = true;
            } else {
                drop(probe);
                if self.try_cache_relief() {
                    progressed = true;
                    continue;
                }
                if self.running.is_empty() {
                    // Nothing the service controls will ever free more
                    // memory: the footprint is unsatisfiable.
                    let q = self.queue.remove(0);
                    self.finish_unran(q, JobOutcome::Failed);
                    progressed = true;
                    continue;
                }
                break;
            }
        }

        progressed
    }

    /// Drives [`Self::tick`] until the queue and running set are both
    /// empty. Collective.
    pub fn run_until_idle(&mut self) {
        while !self.queue.is_empty() || !self.running.is_empty() {
            if !self.tick() {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }

    /// Requests cancellation of a job. Queued jobs are retired (without
    /// running) at the next tick; running jobs observe the flag
    /// cooperatively at their next phase boundary — the cancellation
    /// vote is collective, so every rank's containers unwind and credit
    /// the pool. Must be called on every rank (SPMD discipline).
    pub fn cancel(&mut self, id: u64) {
        if let Some(q) = self.queue.iter().find(|q| q.id == id) {
            q.cancel.cancel();
        } else if let Some(r) = self.running.iter().find(|r| r.id == id) {
            r.cancel.cancel();
        }
    }

    /// Where a job is in its lifecycle, or `None` for an unknown id.
    pub fn state(&self, id: u64) -> Option<JobState> {
        if self.queue.iter().any(|q| q.id == id) {
            return Some(JobState::Queued);
        }
        if self.running.iter().any(|r| r.id == id) {
            return Some(JobState::Running);
        }
        self.finished
            .iter()
            .find(|f| f.id == id)
            .map(|f| f.outcome.final_state())
    }

    /// A finished job's outcome, or `None` while it is still queued or
    /// running (or unknown).
    pub fn outcome(&self, id: u64) -> Option<JobOutcome> {
        self.finished.iter().find(|f| f.id == id).map(|f| f.outcome)
    }

    /// Takes this rank's output of a successfully finished job. Returns
    /// `None` if the job is not finished, did not succeed, or was
    /// already taken.
    pub fn take_output(&mut self, id: u64) -> Option<JobYield> {
        self.finished
            .iter_mut()
            .find(|f| f.id == id)
            .and_then(|f| f.output.take())
    }

    /// A finished job's failure as a [`mimir_core::MimirError`], or
    /// `None` while it runs or when it succeeded. A job whose peer
    /// process died mid-run (or mid-handshake on the socket transport)
    /// comes back as [`mimir_core::MimirError::Disconnected`] — the
    /// reconciliation vote already ran, so this never hangs.
    pub fn take_error(&self, id: u64) -> Option<mimir_core::MimirError> {
        self.outcome(id).and_then(|o| o.as_error())
    }

    /// Per-job lifecycle records for every retired job (for the
    /// `jobs` section of a `RankReport`).
    pub fn job_records(&self) -> Vec<JobRecord> {
        let mut records: Vec<JobRecord> = self.finished.iter().map(|f| f.record.clone()).collect();
        records.sort_by_key(|r| r.id);
        records
    }

    /// Jobs waiting for admission.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently running.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// The node memory pool the service admits against.
    pub fn pool(&self) -> &MemPool {
        &self.pool
    }

    /// The rank-wide cross-job KV cache shared by every job this service
    /// runs (installed on worker contexts at admission).
    pub fn cache(&self) -> SharedKvCache {
        self.cache.clone()
    }

    /// Cache-pressure relief for the admission head: while any rank
    /// still holds resident cached containers (a collective `Max` vote),
    /// those ranks spill them LRU-first and the head's reservation is
    /// re-probed and re-voted. Returns whether the head was admitted.
    /// Bounded: every round with a yes-vote evicts at least one entry on
    /// every rank that voted yes, so the vote goes to no within
    /// `Σ entries` rounds. This is what keeps cache memory — charged to
    /// the pool so admission *sees* it — from deadlocking admission.
    fn try_cache_relief(&mut self) -> bool {
        let footprint = self.queue[0].footprint;
        // A rank whose spill path errors stops claiming evictability, so
        // a broken spill directory cannot wedge the vote loop.
        let mut spill_broken = false;
        loop {
            let evictable = !spill_broken && lock_cache(&self.cache).resident_bytes() > 0;
            let any = self.comm.allreduce_u64(ReduceOp::Max, u64::from(evictable)) == 1;
            if !any {
                return false;
            }
            if evictable {
                // Local spill I/O, no collectives. Target at least one
                // byte so a zero footprint still makes progress.
                let target = (footprint as u64).max(1);
                if let Err(e) = lock_cache(&self.cache).evict_to_spill(target, &self.io) {
                    eprintln!("sched: cache eviction failed: {e}");
                    spill_broken = true;
                }
            }
            let probe = self.pool.probe_reserve(footprint);
            let all_ok = self
                .comm
                .allreduce_u64(ReduceOp::LAnd, u64::from(probe.is_some()))
                == 1;
            if all_ok {
                let q = self.queue.remove(0);
                let reservation = probe.expect("voted yes with a reservation in hand");
                self.admit(q, reservation);
                return true;
            }
            drop(probe);
        }
    }

    fn sort_queue(&mut self) {
        self.queue
            .sort_by_key(|q| std::cmp::Reverse(q.priority_key()));
    }

    fn admit(&mut self, q: QueuedJob, reservation: Reservation) {
        let mut record = q.record;
        record.queued_s += q.queued_at.elapsed().as_secs_f64();
        record.retries = q.retries;
        record.footprint_bytes = q.footprint as u64;
        mimir_obs::emit(EventKind::JobAdmit, q.id, q.footprint as u64);
        // Admitted → Running: duplicate the parent communicator
        // (collective — every rank admits the same job in the same
        // tick) and hand the private comm to a worker thread.
        let comm = self.comm.dup_named(&format!("job{}", q.id));
        let pool = self.pool.clone();
        let io = self.io.clone();
        let cfg = q.spec.config;
        let body = q.spec.body.clone();
        let cancel = q.cancel.clone();
        let cache = self.cache.clone();
        let handle =
            std::thread::spawn(move || run_worker(comm, pool, io, cfg, cancel, cache, body));
        self.running.push(RunningJob {
            id: q.id,
            spec: q.spec,
            footprint: q.footprint,
            retries: q.retries,
            cancel: q.cancel,
            reservation,
            handle,
            admitted_at: Instant::now(),
            record,
        });
    }

    fn complete(&mut self, job: RunningJob) {
        let RunningJob {
            id,
            spec,
            footprint,
            retries,
            cancel,
            reservation,
            handle,
            admitted_at,
            mut record,
        } = job;
        let out = handle.join().unwrap_or(WorkerOut {
            severity: JobOutcome::Panicked.code(),
            output: None,
        });
        // Outcome reconciliation: Max over severities picks the root
        // cause (e.g. one rank's OOM) over its symptoms (the peers'
        // disconnect panics).
        let severity = self.comm.allreduce_u64(ReduceOp::Max, out.severity);
        let outcome = JobOutcome::from_code(severity).unwrap_or(JobOutcome::Panicked);
        record.running_s += admitted_at.elapsed().as_secs_f64();
        // Credit the footprint back before anything else: suspended and
        // finished jobs alike hold nothing against the pool.
        drop(reservation);

        if outcome == JobOutcome::OutOfMemory && retries < self.cfg.max_retries {
            // Suspend-and-retry: the estimate was too low, so double it
            // and send the job back through admission.
            let retries = retries + 1;
            mimir_obs::emit(EventKind::JobSuspend, id, retries);
            self.queue.push(QueuedJob {
                id,
                footprint: footprint.saturating_mul(2),
                spec,
                retries,
                cancel,
                queued_at: Instant::now(),
                record,
            });
            self.sort_queue();
            return;
        }

        mimir_obs::emit(EventKind::JobEnd, id, outcome.code());
        record.outcome = outcome.code();
        if let Some(y) = &out.output {
            record.kvs_out = y.kvs_out;
            record.spill_bytes = y.spill_bytes;
        }
        self.finished.push(FinishedJob {
            id,
            outcome,
            output: if outcome == JobOutcome::Done {
                out.output
            } else {
                None
            },
            record,
        });
    }

    /// Retires a job straight from the queue (cancelled before start,
    /// or unsatisfiable footprint).
    fn finish_unran(&mut self, q: QueuedJob, outcome: JobOutcome) {
        let mut record = q.record;
        record.queued_s += q.queued_at.elapsed().as_secs_f64();
        record.retries = q.retries;
        record.outcome = outcome.code();
        mimir_obs::emit(EventKind::JobEnd, q.id, outcome.code());
        self.finished.push(FinishedJob {
            id: q.id,
            outcome,
            output: None,
            record,
        });
    }
}

impl QueuedJob {
    /// Sort key: higher priority first, then FIFO by id. (Negated id so
    /// one descending sort handles both.)
    fn priority_key(&self) -> (u64, u64) {
        (self.spec.priority, u64::MAX - self.id)
    }
}

/// The worker thread: builds a context over the job's private
/// communicator, runs the body, and classifies how it ended into a
/// severity code for the reconciliation vote.
fn run_worker(
    mut comm: Comm,
    pool: MemPool,
    io: IoModel,
    cfg: mimir_core::MimirConfig,
    cancel: CancelToken,
    cache: SharedKvCache,
    body: JobBody,
) -> WorkerOut {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut ctx = MimirContext::new(&mut comm, pool, io, cfg)?;
        ctx.set_cancel_token(cancel);
        ctx.set_cache(cache);
        body(&mut ctx)
    }));
    let (severity, output) = match result {
        Ok(Ok(y)) => (JobOutcome::Done.code(), Some(y)),
        Ok(Err(e)) if e.is_cancelled() => (JobOutcome::Cancelled.code(), None),
        Ok(Err(e)) if e.is_oom() => (JobOutcome::OutOfMemory.code(), None),
        // A body that caught the transport loss and returned it as an
        // error votes the same severity as one that panicked on it.
        Ok(Err(e)) if e.is_disconnected() => (JobOutcome::Disconnected.code(), None),
        Ok(Err(_)) => (JobOutcome::Failed.code(), None),
        Err(payload) if mimir_mpi::is_disconnect_panic(payload.as_ref()) => {
            (JobOutcome::Disconnected.code(), None)
        }
        Err(_) => (JobOutcome::Panicked.code(), None),
    };
    WorkerOut { severity, output }
}

#[cfg(test)]
impl JobSpec {
    /// Test helper: same job, different footprint.
    fn clone_with_footprint(mut self, footprint: usize) -> JobSpec {
        self.footprint_bytes = footprint;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use mimir_core::MimirError;
    use mimir_mem::MemError;
    use mimir_mpi::run_world;

    const RANKS: usize = 2;

    fn service_world<R: Send + 'static>(
        budget: usize,
        cfg: SchedConfig,
        f: impl Fn(&mut JobService<'_>) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        run_world(RANKS, move |comm| {
            let pool = MemPool::new(format!("node{}", comm.rank()), 64 * 1024, budget).unwrap();
            let mut svc = JobService::new(comm, pool, IoModel::free(), cfg);
            f(&mut svc)
        })
    }

    /// A tiny allreduce job: proves the body really ran on the job's
    /// own communicator and produced a deterministic value.
    fn sum_job(name: &str, priority: u64) -> JobSpec {
        JobSpec::new(name, 64 * 1024, |ctx| {
            let total = ctx.allreduce_sum(ctx.rank() as u64 + 1);
            Ok(JobYield::from_data(total.to_le_bytes().to_vec()))
        })
        .priority(priority)
    }

    #[test]
    fn jobs_run_and_deliver_output() {
        let outs = service_world(16 << 20, SchedConfig::default(), |svc| {
            let a = svc.submit(sum_job("a", 0));
            let b = svc.submit(sum_job("b", 0));
            svc.run_until_idle();
            assert_eq!(svc.outcome(a), Some(JobOutcome::Done));
            assert_eq!(svc.state(b), Some(JobState::Done));
            (
                svc.take_output(a).unwrap().data,
                svc.take_output(b).unwrap().data,
            )
        });
        for (a, b) in outs {
            assert_eq!(a, 3u64.to_le_bytes().to_vec(), "1 + 2 over 2 ranks");
            assert_eq!(b, 3u64.to_le_bytes().to_vec());
        }
    }

    #[test]
    fn priority_orders_admission_fifo_within_ties() {
        // One run slot, so admission order is observable via record
        // ordering in time: the high-priority job must finish first.
        let cfg = SchedConfig {
            max_running: 1,
            ..SchedConfig::default()
        };
        let outs = service_world(16 << 20, cfg, |svc| {
            let low1 = svc.submit(sum_job("low1", 1));
            let low2 = svc.submit(sum_job("low2", 1));
            let high = svc.submit(sum_job("high", 9));
            svc.run_until_idle();
            let records = svc.job_records();
            (low1, low2, high, records)
        });
        for (low1, low2, high, records) in outs {
            assert_eq!(records.len(), 3);
            let queued = |id: u64| {
                records
                    .iter()
                    .find(|r| r.id == id)
                    .map(|r| r.queued_s)
                    .unwrap()
            };
            // The high-priority job jumps both low-priority submissions;
            // the two ties keep FIFO order.
            assert!(queued(high) <= queued(low2), "high priority runs first");
            assert!(queued(low1) <= queued(low2), "FIFO within a priority");
        }
    }

    #[test]
    fn oom_job_is_suspended_doubled_and_retried() {
        let outs = service_world(16 << 20, SchedConfig::default(), |svc| {
            // Fails with OOM on the first attempt (on every rank — the
            // vote needs symmetry), succeeds on the second.
            let attempts = Arc::new(AtomicU64::new(0));
            let spec = {
                let attempts = Arc::clone(&attempts);
                JobSpec::new("flaky", 128 * 1024, move |ctx| {
                    if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                        return Err(MimirError::Mem(MemError::OutOfMemory {
                            pool: "test".into(),
                            requested: 1,
                            used: 0,
                            budget: 0,
                        }));
                    }
                    let total = ctx.allreduce_sum(1);
                    Ok(JobYield::from_data(total.to_le_bytes().to_vec()))
                })
            };
            let id = svc.submit(spec);
            svc.run_until_idle();
            (
                svc.outcome(id),
                svc.take_output(id).unwrap().data,
                svc.job_records().remove(0),
            )
        });
        for (outcome, data, record) in outs {
            assert_eq!(outcome, Some(JobOutcome::Done));
            assert_eq!(data, 2u64.to_le_bytes().to_vec());
            assert_eq!(record.retries, 1, "one suspend-and-retry cycle");
            assert_eq!(
                record.footprint_bytes,
                256 * 1024,
                "footprint doubled on retry"
            );
        }
    }

    #[test]
    fn oom_retries_exhaust_into_failed() {
        let cfg = SchedConfig {
            max_retries: 2,
            ..SchedConfig::default()
        };
        let outs = service_world(16 << 20, cfg, |svc| {
            let spec = JobSpec::new("hopeless", 64 * 1024, |_ctx| {
                Err(MimirError::Mem(MemError::OutOfMemory {
                    pool: "test".into(),
                    requested: 1,
                    used: 0,
                    budget: 0,
                }))
            });
            let id = svc.submit(spec);
            svc.run_until_idle();
            (
                svc.outcome(id),
                svc.state(id),
                svc.job_records().remove(0),
                svc.pool().used(),
            )
        });
        for (outcome, state, record, used) in outs {
            assert_eq!(
                outcome,
                Some(JobOutcome::OutOfMemory),
                "the root cause survives retry exhaustion"
            );
            assert_eq!(state, Some(JobState::Failed));
            assert_eq!(record.retries, 2, "both retries consumed");
            assert_eq!(used, 0, "no reservation survives a failed job");
        }
    }

    #[test]
    fn unsatisfiable_footprint_fails_instead_of_wedging() {
        let outs = service_world(1 << 20, SchedConfig::default(), |svc| {
            let id = svc.submit(sum_job("whale", 0).clone_with_footprint(64 << 20));
            svc.run_until_idle();
            svc.outcome(id)
        });
        for outcome in outs {
            assert_eq!(outcome, Some(JobOutcome::Failed));
        }
    }

    #[test]
    fn panicking_job_reports_panicked_and_releases_memory() {
        let outs = service_world(16 << 20, SchedConfig::default(), |svc| {
            let spec = JobSpec::new("boom", 64 * 1024, |ctx| {
                // Only rank 0 panics; rank 1 blocks in a collective and
                // dies of the disconnect — reconciliation must still
                // report the genuine panic.
                if ctx.rank() == 0 {
                    panic!("job body exploded");
                }
                ctx.barrier();
                ctx.barrier();
                Ok(JobYield::default())
            });
            let id = svc.submit(spec);
            svc.run_until_idle();
            (svc.outcome(id), svc.pool().used())
        });
        for (outcome, used) in outs {
            assert_eq!(outcome, Some(JobOutcome::Panicked));
            assert_eq!(used, 0);
        }
    }

    #[test]
    fn lost_peer_surfaces_as_disconnected_error_not_a_hang() {
        let outs = service_world(16 << 20, SchedConfig::default(), |svc| {
            // Rank 0's body observes the transport loss and returns it as
            // an error; rank 1 blocks on the dead peer and dies of the
            // disconnect cascade. Both vote Disconnected, reconciliation
            // completes, and take_error hands back a typed MimirError.
            let spec = JobSpec::new("lost-peer", 64 * 1024, |ctx| {
                if ctx.rank() == 0 {
                    return Err(mimir_core::MimirError::Disconnected(
                        "peer socket closed mid-exchange".into(),
                    ));
                }
                ctx.barrier();
                Ok(JobYield::default())
            });
            let id = svc.submit(spec);
            let ok = svc.submit(sum_job("after", 0));
            svc.run_until_idle();
            (
                svc.outcome(id),
                svc.take_error(id),
                svc.take_error(ok),
                svc.pool().used(),
            )
        });
        for (outcome, err, ok_err, used) in outs {
            assert_eq!(outcome, Some(JobOutcome::Disconnected));
            assert!(err.expect("failed job yields an error").is_disconnected());
            assert!(ok_err.is_none(), "successful jobs yield no error");
            assert_eq!(used, 0, "reservation released despite the loss");
        }
    }

    #[test]
    fn submit_blocks_at_queue_capacity() {
        let cfg = SchedConfig {
            queue_cap: 2,
            max_running: 1,
            ..SchedConfig::default()
        };
        let outs = service_world(16 << 20, cfg, |svc| {
            // 5 submissions against a 2-deep queue and 1 run slot: the
            // later submits can only return by retiring earlier jobs.
            let ids: Vec<u64> = (0..5)
                .map(|i| svc.submit(sum_job(&format!("j{i}"), 0)))
                .collect();
            assert!(svc.queued_len() <= 2, "backpressure bounds the queue");
            svc.run_until_idle();
            ids.iter().map(|&id| svc.outcome(id)).collect::<Vec<_>>()
        });
        for outcomes in outs {
            assert!(outcomes.iter().all(|o| *o == Some(JobOutcome::Done)));
        }
    }

    #[test]
    fn running_jobs_emit_memory_heartbeats() {
        let outs = service_world(16 << 20, SchedConfig::default(), |svc| {
            mimir_obs::install(mimir_obs::Recorder::new(0, 4096));
            let spec = JobSpec::new("sleepy", 64 * 1024, |_ctx| {
                std::thread::sleep(Duration::from_millis(20));
                Ok(JobYield::default())
            });
            let id = svc.submit(spec);
            svc.run_until_idle();
            let rec = mimir_obs::take().expect("recorder installed");
            let events = rec.events();
            events
                .iter()
                .filter(|e| e.kind == EventKind::JobHeartbeat && e.a == id)
                .count()
        });
        for beats in outs {
            assert!(beats >= 1, "a 20 ms job spans at least one 1 ms heartbeat");
        }
    }

    #[test]
    fn cancelling_a_queued_job_retires_it_unran() {
        let cfg = SchedConfig {
            max_running: 1,
            ..SchedConfig::default()
        };
        let outs = service_world(16 << 20, cfg, |svc| {
            let keep = svc.submit(sum_job("keep", 5));
            let drop_ = svc.submit(sum_job("drop", 0));
            svc.cancel(drop_);
            svc.run_until_idle();
            (svc.outcome(keep), svc.outcome(drop_), svc.state(drop_))
        });
        for (keep, dropped, state) in outs {
            assert_eq!(keep, Some(JobOutcome::Done));
            assert_eq!(dropped, Some(JobOutcome::Cancelled));
            assert_eq!(state, Some(JobState::Cancelled));
        }
    }
}
