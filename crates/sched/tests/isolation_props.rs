//! Communicator-isolation property: two jobs running *concurrently* on
//! their own duplicated communicators must deliver exactly what each
//! would deliver running *alone* — across every shuffle and grouping
//! mode. If the duplicated channel matrices leaked into each other
//! (a misrouted send, a cross-matched collective), the interleaved
//! shuffles would corrupt both outputs.
//!
//! The whole suite is parameterized over the transport backend:
//! `MIMIR_TRANSPORT=uds` re-proves every property with ranks as forked
//! processes exchanging frames over Unix-domain sockets, with zero
//! changes above the `Comm` API.

use mimir_apps::wordcount::{wordcount_mimir, WcOptions};
use mimir_core::{GroupingMode, MimirConfig, MimirContext, ShuffleMode};
use mimir_datagen::UniformWords;
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::{run_world_on, TransportKind};
use mimir_sched::{JobOutcome, JobService, JobSpec, JobYield, SchedConfig};

const RANKS: usize = 4;
const BUDGET: usize = 32 << 20;
const BYTES_PER_RANK: usize = 24 * 1024;

fn make_pool(rank: usize) -> MemPool {
    MemPool::new(format!("node{rank}"), 64 * 1024, BUDGET).unwrap()
}

/// Serializes a rank's WordCount output deterministically: sorted
/// `word \0 count` records.
fn encode_counts(mut counts: Vec<(Vec<u8>, u64)>) -> Vec<u8> {
    counts.sort();
    let mut out = Vec::new();
    for (word, n) in counts {
        out.extend_from_slice(&word);
        out.push(0);
        out.extend_from_slice(&n.to_le_bytes());
    }
    out
}

fn wc_body(seed: u64, ctx: &mut MimirContext<'_>) -> mimir_core::Result<JobYield> {
    let text = UniformWords::new(seed).generate(ctx.rank(), ctx.size(), BYTES_PER_RANK);
    let (counts, _metrics) = wordcount_mimir(ctx, &text, &WcOptions::default())?;
    let kvs = counts.len() as u64;
    Ok(JobYield {
        data: encode_counts(counts),
        kvs_out: kvs,
        spill_bytes: 0,
    })
}

/// Runs WordCount for `seed` alone in a world and returns each rank's
/// encoded output.
fn solo_outputs(cfg: MimirConfig, seed: u64) -> Vec<Vec<u8>> {
    run_world_on(TransportKind::from_env(), RANKS, move |comm| {
        let pool = make_pool(comm.rank());
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), cfg).unwrap();
        wc_body(seed, &mut ctx).unwrap().data
    })
}

/// Runs both WordCounts concurrently under the job service and returns
/// each rank's encoded outputs `(job_a, job_b)`.
fn concurrent_outputs(cfg: MimirConfig) -> Vec<(Vec<u8>, Vec<u8>)> {
    run_world_on(TransportKind::from_env(), RANKS, move |comm| {
        let pool = make_pool(comm.rank());
        let mut svc = JobService::new(comm, pool, IoModel::free(), SchedConfig::default());
        let a = svc.submit(JobSpec::new("wc-a", 1 << 20, move |ctx| wc_body(1, ctx)).config(cfg));
        let b = svc.submit(JobSpec::new("wc-b", 1 << 20, move |ctx| wc_body(2, ctx)).config(cfg));
        svc.run_until_idle();
        assert_eq!(svc.outcome(a), Some(JobOutcome::Done));
        assert_eq!(svc.outcome(b), Some(JobOutcome::Done));
        (
            svc.take_output(a).unwrap().data,
            svc.take_output(b).unwrap().data,
        )
    })
}

/// The world-wide multiset of counted words: per-rank encodings,
/// sorted — rank attribution removed, content kept.
fn multiset(outputs: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut all = outputs.to_vec();
    all.sort();
    all
}

fn check_mode(shuffle_mode: ShuffleMode, grouping_mode: GroupingMode) {
    let cfg = MimirConfig {
        shuffle_mode,
        grouping_mode,
        ..MimirConfig::default()
    };
    let solo_a = solo_outputs(cfg, 1);
    let solo_b = solo_outputs(cfg, 2);
    let both = concurrent_outputs(cfg);
    let (conc_a, conc_b): (Vec<_>, Vec<_>) = both.into_iter().unzip();
    assert_eq!(
        multiset(&conc_a),
        multiset(&solo_a),
        "job A's multiset changed under concurrency ({shuffle_mode:?}/{grouping_mode:?})"
    );
    assert_eq!(
        multiset(&conc_b),
        multiset(&solo_b),
        "job B's multiset changed under concurrency ({shuffle_mode:?}/{grouping_mode:?})"
    );
}

#[test]
fn concurrent_jobs_match_solo_legacy_legacy() {
    check_mode(ShuffleMode::Legacy, GroupingMode::Legacy);
}

#[test]
fn concurrent_jobs_match_solo_legacy_arena() {
    check_mode(ShuffleMode::Legacy, GroupingMode::Arena);
}

#[test]
fn concurrent_jobs_match_solo_zerocopy_legacy() {
    check_mode(ShuffleMode::ZeroCopy, GroupingMode::Legacy);
}

#[test]
fn concurrent_jobs_match_solo_zerocopy_arena() {
    check_mode(ShuffleMode::ZeroCopy, GroupingMode::Arena);
}

#[test]
fn concurrent_jobs_match_solo_overlapped_legacy() {
    check_mode(ShuffleMode::Overlapped, GroupingMode::Legacy);
}

#[test]
fn concurrent_jobs_match_solo_overlapped_arena() {
    check_mode(ShuffleMode::Overlapped, GroupingMode::Arena);
}

#[test]
fn concurrent_jobs_match_solo_adaptive_arena() {
    check_mode(ShuffleMode::Adaptive, GroupingMode::Arena);
}

/// The per-job adaptive override: `JobSpec::adaptive` flips just that
/// tenant's shuffle onto the adaptive runtime, and its isolated run
/// still matches a solo run under the same configuration.
#[test]
fn adaptive_spec_override_matches_solo() {
    use mimir_core::AdaptPolicy;
    let policy = AdaptPolicy {
        hysteresis_rounds: 2,
        ..AdaptPolicy::default()
    };
    let adaptive_cfg = MimirConfig {
        shuffle_mode: ShuffleMode::Adaptive,
        adapt: policy,
        ..MimirConfig::default()
    };
    let solo_a = solo_outputs(adaptive_cfg, 1);
    let solo_b = solo_outputs(MimirConfig::default(), 2);
    let both = run_world_on(TransportKind::from_env(), RANKS, move |comm| {
        let pool = make_pool(comm.rank());
        let mut svc = JobService::new(comm, pool, IoModel::free(), SchedConfig::default());
        // Job A opts into the adaptive runtime via the spec; job B stays
        // on the session default.
        let a =
            svc.submit(JobSpec::new("wc-a", 1 << 20, move |ctx| wc_body(1, ctx)).adaptive(policy));
        let b = svc.submit(JobSpec::new("wc-b", 1 << 20, move |ctx| wc_body(2, ctx)));
        svc.run_until_idle();
        assert_eq!(svc.outcome(a), Some(JobOutcome::Done));
        assert_eq!(svc.outcome(b), Some(JobOutcome::Done));
        (
            svc.take_output(a).unwrap().data,
            svc.take_output(b).unwrap().data,
        )
    });
    let (conc_a, conc_b): (Vec<_>, Vec<_>) = both.into_iter().unzip();
    assert_eq!(multiset(&conc_a), multiset(&solo_a));
    assert_eq!(multiset(&conc_b), multiset(&solo_b));
}

/// Stronger than the multiset property for the default configuration:
/// with the same world size, each rank's output must be *byte
/// identical* to its solo run — the hash partitioning sees the same
/// communicator size, so every word lands on the same rank.
#[test]
fn concurrent_outputs_are_byte_identical_to_solo_per_rank() {
    let cfg = MimirConfig::default();
    let solo_a = solo_outputs(cfg, 1);
    let solo_b = solo_outputs(cfg, 2);
    let both = concurrent_outputs(cfg);
    for (rank, (conc_a, conc_b)) in both.into_iter().enumerate() {
        assert_eq!(conc_a, solo_a[rank], "rank {rank} job A output diverged");
        assert_eq!(conc_b, solo_b[rank], "rank {rank} job B output diverged");
    }
}
