//! Scheduler stress: 16 mixed-priority jobs on 4 ranks under a tight
//! memory budget, wrapped in a watchdog. The service must retire every
//! job deterministically, never violate the node budget (the pool's
//! hard cap plus the admission reservations), and end with the pool
//! fully credited.

use std::time::{Duration, Instant};

use mimir_apps::wordcount::{wordcount_mimir, WcOptions};
use mimir_datagen::UniformWords;
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mimir_sched::{JobOutcome, JobService, JobSpec, JobYield, SchedConfig};

const RANKS: usize = 4;
/// Tight: a handful of concurrent WordCounts saturate it, forcing the
/// admission queue to actually queue.
const BUDGET: usize = 6 << 20;
const JOBS: usize = 16;
const WATCHDOG: Duration = Duration::from_secs(120);

fn word_total(data: &[u8]) -> u64 {
    // Each encoded record is `word \0 count(8B le)`; sum the counts.
    let mut total = 0;
    let mut i = 0;
    while i < data.len() {
        let nul = i + data[i..].iter().position(|&b| b == 0).unwrap();
        total += u64::from_le_bytes(data[nul + 1..nul + 9].try_into().unwrap());
        i = nul + 9;
    }
    total
}

fn stress_world() -> Vec<(Vec<Option<JobOutcome>>, u64, usize, usize)> {
    run_world(RANKS, |comm| {
        let pool = MemPool::new(format!("node{}", comm.rank()), 64 * 1024, BUDGET).unwrap();
        let cfg = SchedConfig {
            queue_cap: 8,
            max_running: 3,
            max_retries: 3,
        };
        let mut svc = JobService::new(comm, pool, IoModel::free(), cfg);

        let ids: Vec<u64> = (0..JOBS as u64)
            .map(|j| {
                let bytes_per_rank = 4 * 1024 + (j as usize % 4) * 4 * 1024;
                let spec = JobSpec::new(format!("wc{j}"), 256 * 1024, move |ctx| {
                    let text =
                        UniformWords::new(j + 1).generate(ctx.rank(), ctx.size(), bytes_per_rank);
                    let (mut counts, _m) = wordcount_mimir(ctx, &text, &WcOptions::default())?;
                    counts.sort();
                    let mut data = Vec::new();
                    for (word, n) in &counts {
                        data.extend_from_slice(word);
                        data.push(0);
                        data.extend_from_slice(&n.to_le_bytes());
                    }
                    let kvs = counts.len() as u64;
                    Ok(JobYield {
                        data,
                        kvs_out: kvs,
                        spill_bytes: 0,
                    })
                })
                .priority(j % 3); // mixed priorities
                svc.submit(spec)
            })
            .collect();

        svc.run_until_idle();

        let outcomes: Vec<_> = ids.iter().map(|&id| svc.outcome(id)).collect();
        // Deterministic content check: the total word count across all
        // ranks of every job equals the generated word count.
        let mut words_counted = 0;
        for &id in &ids {
            if let Some(y) = svc.take_output(id) {
                words_counted += word_total(&y.data);
            }
        }
        (
            outcomes,
            words_counted,
            svc.pool().peak(),
            svc.pool().used(),
        )
    })
}

#[test]
fn sixteen_mixed_priority_jobs_on_a_tight_budget() {
    // Watchdog: the whole SPMD run must finish well inside the bound —
    // a deadlocked vote or a lost wakeup would otherwise hang CI.
    let start = Instant::now();
    let runner = std::thread::spawn(stress_world);
    while !runner.is_finished() {
        assert!(
            start.elapsed() < WATCHDOG,
            "watchdog: scheduler stress did not finish within {WATCHDOG:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let outs = runner.join().unwrap();

    let mut per_rank_words = Vec::new();
    for (outcomes, words, peak, used) in outs {
        assert_eq!(outcomes.len(), JOBS);
        for (j, outcome) in outcomes.iter().enumerate() {
            assert_eq!(
                *outcome,
                Some(JobOutcome::Done),
                "job {j} should finish despite the tight budget"
            );
        }
        assert!(
            peak <= BUDGET,
            "budget violation: peak {peak} B over the {BUDGET} B node budget"
        );
        assert_eq!(used, 0, "all reservations and pages credited back");
        per_rank_words.push(words);
    }
    // Every rank holds a deterministic slice of each job's output, and
    // the world-wide totals must match the generated corpora exactly:
    // the sum over ranks is the same regardless of scheduling order.
    let total: u64 = per_rank_words.iter().sum();
    assert!(total > 0, "the jobs counted nothing");
    let rerun_total: u64 = {
        let outs = {
            let runner = std::thread::spawn(stress_world);
            runner.join().unwrap()
        };
        outs.iter().map(|(_, words, _, _)| words).sum()
    };
    assert_eq!(
        total, rerun_total,
        "scheduling nondeterminism changed job outputs"
    );
}
